"""ArkFS data path: reads, writes, append, truncate, sharing, leases."""

import pytest

from repro.posix import BadFileHandle, OpenFlags
from repro.core.filelease import DIRECT, WRITE


OSZ_HINT = 2 * 1024 * 1024  # default data object size


class TestBasicIO:
    def test_roundtrip_small(self, fs):
        fs.write_file("/f", b"hello")
        assert fs.read_file("/f") == b"hello"

    def test_roundtrip_multi_object(self, fs, cluster):
        osz = cluster.params.data_object_size
        data = bytes(i % 251 for i in range(2 * osz + 123))
        fs.write_file("/big", data, do_fsync=True)
        assert fs.read_file("/big") == data

    def test_sequential_writes_append_via_handle(self, fs):
        h = fs.create("/f")
        h.write(b"abc")
        h.write(b"def")
        h.close()
        assert fs.read_file("/f") == b"abcdef"

    def test_pwrite_pread_do_not_move_offset(self, fs):
        h = fs.open("/f", OpenFlags.O_CREAT | OpenFlags.O_RDWR)
        h.write(b"0123456789")
        assert h.read(4, offset=2) == b"2345"
        assert h.handle.pos == 10
        h.write(b"XX", offset=0)
        h.close()
        assert fs.read_file("/f") == b"XX23456789"

    def test_read_past_eof_returns_empty(self, fs):
        fs.write_file("/f", b"short")
        h = fs.open("/f", OpenFlags.O_RDONLY)
        assert h.read(100, offset=10) == b""
        h.close()

    def test_read_clipped_at_eof(self, fs):
        fs.write_file("/f", b"12345")
        h = fs.open("/f", OpenFlags.O_RDONLY)
        assert h.read(100) == b"12345"
        h.close()

    def test_overwrite_in_middle(self, fs):
        fs.write_file("/f", b"A" * 100)
        h = fs.open("/f", OpenFlags.O_WRONLY)
        h.write(b"B" * 10, offset=45)
        h.close()
        data = fs.read_file("/f")
        assert data == b"A" * 45 + b"B" * 10 + b"A" * 45

    def test_sparse_write_reads_zeros(self, fs):
        h = fs.open("/f", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        h.write(b"end", offset=1000)
        h.close()
        data = fs.read_file("/f")
        assert len(data) == 1003
        assert data[:1000] == b"\x00" * 1000
        assert data[-3:] == b"end"

    def test_append_flag(self, fs):
        fs.write_file("/log", b"line1\n")
        h = fs.open("/log", OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
        h.write(b"line2\n")
        h.close()
        assert fs.read_file("/log") == b"line1\nline2\n"

    def test_append_ignores_explicit_offset_positioning(self, fs):
        fs.write_file("/f", b"12345")
        h = fs.open("/f", OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
        h.handle.pos = 0
        h.write(b"X")
        h.close()
        assert fs.read_file("/f") == b"12345X"


class TestHandleRules:
    def test_read_on_writeonly_fails(self, fs):
        h = fs.open("/f", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        with pytest.raises(BadFileHandle):
            h.read(10)
        h.close()

    def test_write_on_readonly_fails(self, fs):
        fs.write_file("/f", b"x")
        h = fs.open("/f", OpenFlags.O_RDONLY)
        with pytest.raises(BadFileHandle):
            h.write(b"y")
        h.close()

    def test_use_after_close_fails(self, fs):
        h = fs.create("/f")
        h.close()
        with pytest.raises(BadFileHandle):
            h.write(b"x")


class TestTruncate:
    def test_truncate_shrink(self, fs):
        fs.write_file("/f", b"0123456789")
        fs.truncate("/f", 4)
        assert fs.stat("/f").st_size == 4
        assert fs.read_file("/f") == b"0123"

    def test_truncate_grow_zero_fills(self, fs):
        fs.write_file("/f", b"ab")
        fs.truncate("/f", 6)
        assert fs.stat("/f").st_size == 6
        assert fs.read_file("/f") == b"ab\x00\x00\x00\x00"

    def test_truncate_to_zero(self, fs):
        fs.write_file("/f", b"data", do_fsync=True)
        fs.truncate("/f", 0)
        assert fs.read_file("/f") == b""

    def test_truncate_multi_object(self, fs, cluster):
        osz = cluster.params.data_object_size
        fs.write_file("/f", b"q" * (3 * osz), do_fsync=True)
        fs.truncate("/f", osz + 10)
        assert fs.stat("/f").st_size == osz + 10
        assert fs.read_file("/f") == b"q" * (osz + 10)


class TestDurability:
    def test_fsync_persists_data_to_store(self, fs, cluster):
        h = fs.create("/f")
        h.write(b"durable")
        h.fsync()
        h.close()
        # Data object must now exist in the backing store.
        client = cluster.client(0)
        ino = fs.stat("/f").st_ino
        key = cluster.prt.key_data(ino, 0)
        assert key in cluster.store

    def test_unfsynced_write_is_cached_not_stored(self, fs, cluster):
        h = fs.create("/f")
        h.write(b"volatile")
        h.close()
        ino = fs.stat("/f").st_ino
        assert cluster.prt.key_data(ino, 0) not in cluster.store
        # ... but a sync() pushes it out.
        fs._run(cluster.client(0).sync())
        assert cluster.prt.key_data(ino, 0) in cluster.store

    def test_journal_commit_interval_flushes_metadata(self, fs, sim, cluster):
        fs.create("/f").close()
        ino = fs.stat("/f").st_ino
        key = cluster.prt.key_inode(ino)
        assert key not in cluster.store  # still buffered in the running txn
        sim.run(until=sim.now + 2.0)     # > journal_commit_interval
        assert key in cluster.store


class TestSharing:
    def test_reader_sees_writer_data_across_clients(self, fs, fs2):
        fs.write_file("/shared.txt", b"v1")
        assert fs2.read_file("/shared.txt") == b"v1"

    def test_write_then_other_client_reads_without_fsync(self, fs, fs2):
        """Write-back cached data must be flushed when another client gains
        a read lease (leader revokes the writer)."""
        h = fs.create("/wb.txt")
        h.write(b"write-back data")
        h.close()
        assert fs2.read_file("/wb.txt") == b"write-back data"

    def test_concurrent_readers_both_cache(self, fs, fs2, cluster):
        fs.write_file("/r.txt", b"cacheable", do_fsync=True)
        assert fs.read_file("/r.txt") == b"cacheable"
        assert fs2.read_file("/r.txt") == b"cacheable"
        ino = fs.stat("/r.txt").st_ino
        assert cluster.client(1).cache.cached_entries(ino) > 0

    def test_write_conflict_forces_direct_mode(self, cluster, fs, fs2, sim):
        """Two clients holding leases + a write -> direct I/O (paper III-D)."""
        fs.write_file("/c.txt", b"base", do_fsync=True)
        # Both clients open and hold read leases.
        h1 = fs.open("/c.txt", OpenFlags.O_RDWR)
        h2 = fs2.open("/c.txt", OpenFlags.O_RDWR)
        h1.read(4)
        h2.read(4)
        # Writer on client2: other read-lease holders exist -> direct mode.
        h2.write(b"NEW!", offset=0)
        ino = fs.stat("/c.txt").st_ino
        leader = cluster.client(0)
        assert leader.fleases.is_direct(ino)
        # Direct writes bypass the cache and land in storage at once.
        assert fs.read_file("/c.txt") == b"NEW!"
        h1.close()
        h2.close()

    def test_sole_writer_gets_exclusive_write_lease(self, cluster, fs):
        fs.write_file("/solo.txt", b"x", do_fsync=True)
        h = fs.open("/solo.txt", OpenFlags.O_WRONLY)
        h.write(b"y")
        ino = fs.stat("/solo.txt").st_ino
        leader = cluster.client(0)
        assert not leader.fleases.is_direct(ino)
        st = leader.fleases.files[ino]
        assert st.holders["client0"][0] == WRITE
        h.close()

    def test_size_visible_to_other_client_after_close(self, fs, fs2):
        h = fs.create("/grow.txt")
        h.write(b"123456")
        h.close()
        assert fs2.stat("/grow.txt").st_size == 6
