"""Inode/Dentry serialization and the UUID inode allocator."""

from hypothesis import given, strategies as st

from repro.core import Dentry, Inode, InoAllocator, ROOT_INO, ino_hex
from repro.posix import Acl, FileType


def test_ino_hex_fixed_width():
    assert len(ino_hex(1)) == 32
    assert len(ino_hex((1 << 128) - 1)) == 32
    assert ino_hex(255) == "0" * 30 + "ff"


def test_allocator_is_deterministic():
    a, b = InoAllocator(seed=42), InoAllocator(seed=42)
    assert [a.new() for _ in range(10)] == [b.new() for _ in range(10)]


def test_allocator_unique_and_avoids_root():
    alloc = InoAllocator(seed=0)
    seen = {alloc.new() for _ in range(1000)}
    assert len(seen) == 1000
    assert ROOT_INO not in seen
    assert 0 not in seen


def test_allocator_produces_128bit_values():
    alloc = InoAllocator(seed=1)
    assert any(alloc.new() > (1 << 64) for _ in range(10))


def test_inode_roundtrip():
    ino = Inode(ino=123456789, ftype=FileType.REGULAR, mode=0o640, uid=5,
                gid=6, size=42, nlink=1, atime=1.5, mtime=2.5, ctime=3.5)
    back = Inode.from_bytes(ino.to_bytes())
    assert back == ino


def test_inode_roundtrip_with_acl_and_symlink():
    acl = Acl.from_mode(0o750)
    acl.set_user(99, 5)
    ino = Inode(ino=7, ftype=FileType.SYMLINK, mode=0o777, uid=0, gid=0,
                symlink_target="/some/where", acl=acl)
    back = Inode.from_bytes(ino.to_bytes())
    assert back.symlink_target == "/some/where"
    assert back.acl == acl


def test_directory_nlink_starts_at_two():
    d = Inode(ino=9, ftype=FileType.DIRECTORY, mode=0o755, uid=0, gid=0)
    assert d.nlink == 2


def test_inode_stat_mode_bits():
    ino = Inode(ino=1, ftype=FileType.REGULAR, mode=0o4755, uid=1, gid=2,
                size=10)
    s = ino.stat()
    assert s.is_file and not s.is_dir
    assert s.perm_bits & 0o777 == 0o755
    assert s.st_mode & 0o4000  # setuid preserved
    assert s.st_size == 10


def test_inode_stat_shows_acl_mask_in_group_bits():
    acl = Acl.from_mode(0o770)
    acl.set_user(5, 7)
    acl.mask = 4
    ino = Inode(ino=1, ftype=FileType.REGULAR, mode=0o770, uid=1, gid=2,
                acl=acl)
    assert (ino.stat().perm_bits >> 3) & 7 == 4


def test_inode_copy_is_deep_for_acl():
    acl = Acl.from_mode(0o700)
    ino = Inode(ino=1, ftype=FileType.REGULAR, mode=0o700, uid=0, gid=0,
                acl=acl)
    cp = ino.copy()
    cp.acl.set_user(1, 7)
    assert not ino.acl.named_users


def test_dentry_roundtrip():
    d = Dentry(name="file.txt", ino=999, ftype=FileType.REGULAR)
    assert Dentry.from_bytes(d.to_bytes()) == d


@given(ino=st.integers(1, (1 << 128) - 1), mode=st.integers(0, 0o7777),
       uid=st.integers(0, 1 << 31), size=st.integers(0, 1 << 50),
       t=st.sampled_from(list(FileType)))
def test_inode_roundtrip_property(ino, mode, uid, size, t):
    inode = Inode(ino=ino, ftype=t, mode=mode, uid=uid, gid=uid, size=size,
                  atime=0.25, mtime=0.5, ctime=0.125)
    assert Inode.from_bytes(inode.to_bytes()) == inode


@given(name=st.text(st.characters(blacklist_characters="/\x00",
                                  blacklist_categories=("Cs",)),
                    min_size=1, max_size=50),
       ino=st.integers(1, (1 << 128) - 1))
def test_dentry_roundtrip_property(name, ino):
    d = Dentry(name=name, ino=ino, ftype=FileType.DIRECTORY)
    assert Dentry.from_bytes(d.to_bytes()) == d
