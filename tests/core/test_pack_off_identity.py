"""Acceptance criterion: packing disabled ⇒ bit-identical results.

``pack_enabled=False`` (the default) must keep ArkFS structurally
identical to a build that predates the pack subsystem — the same pattern
``faults=None`` pins for fault injection. With packing off no
:class:`PackWriter` is constructed at all (``client.pack is None``), the
cache holds no pack reference, no maintenance ticker runs, and every
pack hook in the write/read/unlink paths is an ``is not None`` check
that adds zero simulation events. These tests pin that down from three
angles: the default is off and builds nothing, repeated pack-off runs
are bit-identical on the realistic store (same sim clock, same network
traffic, same store bytes — what keeps BENCH_fig6.json unchanged), and
a pack-off run leaves no pack artifacts (``p``/``x`` keys) or pack
metrics behind.
"""

from repro.core import DEFAULT_PARAMS, build_arkfs
from repro.obs import Observability
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator


def _workload(cluster, sim):
    """Small-file-heavy (everything far below pack_threshold, so packing
    WOULD engage if it were on), plus rename/unlink/truncate and a
    checkpoint drain."""
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/w")
    fs.mkdir("/w/sub")
    for i in range(8):
        fs.write_file(f"/w/f{i}", bytes([i + 1]) * (3000 + 17 * i),
                      do_fsync=True)
    fs.rename("/w/f0", "/w/sub/moved")
    fs.unlink("/w/f1")
    fs.truncate("/w/f2", 1000)
    for client in cluster.clients:
        sim.run_process(client.sync())
    sim.run(until=sim.now + 3)


def _fingerprint(sim, cluster):
    store = cluster.store
    backing = getattr(store, "backing", store)
    content = {k: bytes(backing.sync_get(k)) for k in backing.sync_list("")}
    return {
        "now": sim.now,
        "messages": cluster.net.messages_sent,
        "bytes": cluster.net.bytes_sent,
        "store_ops": dict(backing.op_counts),
        "content": content,
    }


def test_default_is_off_and_builds_no_pack_layer():
    assert DEFAULT_PARAMS.pack_enabled is False, \
        "packing must stay opt-in: the default run is the paper baseline"
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, seed=0)
    for client in cluster.clients:
        assert client.pack is None
        assert client.cache._pack is None
    assert cluster.prt.pack_enabled is False


def test_pack_off_runs_bit_identical_on_realistic_store():
    """Two independent pack-off builds replay to identical clocks, network
    totals, store op counts, and store *bytes* — the property that keeps
    regenerated BENCH figures unchanged by this subsystem."""
    prints = []
    for _ in range(2):
        sim = Simulator()
        cluster = build_arkfs(sim, n_clients=2, seed=0)
        _workload(cluster, sim)
        prints.append(_fingerprint(sim, cluster))
    assert prints[0] == prints[1]


def test_pack_off_leaves_no_pack_artifacts():
    """No container/index objects in the store and no pack metric scopes
    registered: the subsystem is absent, not merely idle."""
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, functional=True, seed=0)
    _workload(cluster, sim)
    store = cluster.store
    backing = getattr(store, "backing", store)
    keys = backing.sync_list("")
    assert not [k for k in keys if k[0] in ("p", "x")]
    snap = Observability.of(sim).metrics.to_dict()
    assert not [k for k in snap["counters"] if ".pack." in k]


def test_pack_on_changes_layout_but_not_contents():
    """Control for the identity tests: the same workload with packing ON
    does produce containers — proving the off-run's absence of them is
    the subsystem staying out of the way, not the workload being too
    small to trigger it — while files still read back identically."""
    results = {}
    for enabled in (False, True):
        sim = Simulator()
        params = DEFAULT_PARAMS.with_(
            pack_enabled=enabled, pack_threshold=64 * 1024,
            pack_target_size=256 * 1024, pack_seal_age=0.5)
        cluster = build_arkfs(sim, n_clients=2, params=params,
                              functional=True, seed=0)
        _workload(cluster, sim)
        fs = SyncFS(cluster.client(1), ROOT_CREDS)
        contents = {}
        for name in ("/w/sub/moved", "/w/f2", "/w/f3", "/w/f7"):
            contents[name] = fs.read_file(name)
        backing = getattr(cluster.store, "backing", cluster.store)
        kinds = sorted({k[0] for k in backing.sync_list("")})
        results[enabled] = (contents, kinds)
    assert results[False][0] == results[True][0]
    assert "p" not in results[False][1] and "x" not in results[False][1]
    assert "p" in results[True][1] and "x" in results[True][1]
    assert "d" not in results[True][1]   # everything was sub-threshold
