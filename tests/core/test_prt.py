"""PRT: key schema, chunking, sparse data path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PRT, Dentry, Inode
from repro.objectstore import InMemoryObjectStore
from repro.posix import FileType
from repro.sim import Simulator


OSZ = 64  # tiny object size so tests exercise chunk boundaries


@pytest.fixture
def prt():
    sim = Simulator()
    store = InMemoryObjectStore(sim)
    return sim, PRT(store, data_object_size=OSZ)


def run(sim, gen):
    return sim.run_process(gen)


class TestKeys:
    def test_prefixes_match_paper(self):
        assert PRT.key_inode(5).startswith("i")
        assert PRT.key_dentry(5, "f").startswith("e")
        assert PRT.key_journal(5, 0).startswith("j")
        assert PRT.key_data(5, 0).startswith("d")

    def test_key_formats(self):
        assert PRT.key_inode(0xAB) == "i" + "0" * 30 + "ab"
        assert PRT.key_dentry(1, "x.txt").endswith("/x.txt")
        assert PRT.key_journal(1, 7).endswith("/000000000007")
        assert PRT.key_data(1, 3).endswith("/0000000003")

    def test_data_keys_sort_numerically(self):
        keys = [PRT.key_data(1, i) for i in (0, 1, 2, 10, 100)]
        assert keys == sorted(keys)

    def test_journal_keys_sort_numerically(self):
        keys = [PRT.key_journal(1, i) for i in (0, 1, 9, 10, 11, 100)]
        assert keys == sorted(keys)


class TestChunking:
    def test_aligned_whole_objects(self):
        p = PRT(InMemoryObjectStore(Simulator()), OSZ)
        assert p.chunk_range(0, 2 * OSZ) == [(0, 0, OSZ), (1, 0, OSZ)]

    def test_unaligned_range(self):
        p = PRT(InMemoryObjectStore(Simulator()), OSZ)
        assert p.chunk_range(10, OSZ) == [(0, 10, OSZ - 10), (1, 0, 10)]

    def test_within_one_object(self):
        p = PRT(InMemoryObjectStore(Simulator()), OSZ)
        assert p.chunk_range(5, 6) == [(0, 5, 6)]

    def test_empty_range(self):
        p = PRT(InMemoryObjectStore(Simulator()), OSZ)
        assert p.chunk_range(100, 0) == []

    def test_negative_rejected(self):
        p = PRT(InMemoryObjectStore(Simulator()), OSZ)
        with pytest.raises(ValueError):
            p.chunk_range(-1, 5)

    @given(offset=st.integers(0, 1000), length=st.integers(0, 1000))
    def test_pieces_cover_range_exactly(self, offset, length):
        p = PRT(InMemoryObjectStore(Simulator()), OSZ)
        pieces = p.chunk_range(offset, length)
        assert sum(n for _, _, n in pieces) == length
        pos = offset
        for idx, off, n in pieces:
            assert idx * OSZ + off == pos
            assert 0 < n <= OSZ
            assert off + n <= OSZ
            pos += n


class TestMetadataObjects:
    def test_inode_roundtrip(self, prt):
        sim, p = prt
        inode = Inode(ino=77, ftype=FileType.REGULAR, mode=0o644, uid=1,
                      gid=1, size=10)
        run(sim, p.put_inode(inode))
        assert run(sim, p.get_inode(77)) == inode
        assert run(sim, p.inode_exists(77))
        run(sim, p.delete_inode(77))
        assert not run(sim, p.inode_exists(77))

    def test_delete_inode_idempotent(self, prt):
        sim, p = prt
        run(sim, p.delete_inode(123))  # no error

    def test_dentry_listing_sorted(self, prt):
        sim, p = prt
        for name in ["zeta", "alpha", "mid"]:
            run(sim, p.put_dentry(5, Dentry(name, 1, FileType.REGULAR)))
        names = [d.name for d in run(sim, p.list_dentries(5))]
        assert names == ["alpha", "mid", "zeta"]

    def test_dentries_of_different_dirs_isolated(self, prt):
        sim, p = prt
        run(sim, p.put_dentry(1, Dentry("a", 10, FileType.REGULAR)))
        run(sim, p.put_dentry(2, Dentry("b", 11, FileType.REGULAR)))
        assert [d.name for d in run(sim, p.list_dentries(1))] == ["a"]

    def test_get_dentry(self, prt):
        sim, p = prt
        d = Dentry("f", 9, FileType.SYMLINK)
        run(sim, p.put_dentry(3, d))
        assert run(sim, p.get_dentry(3, "f")) == d


class TestDataPath:
    def test_write_read_roundtrip(self, prt):
        sim, p = prt
        data = bytes(range(200)) + b"tail"
        run(sim, p.write_data(9, 0, data))
        assert run(sim, p.read_data(9, 0, len(data), len(data))) == data

    def test_write_spans_multiple_objects(self, prt):
        sim, p = prt
        data = b"x" * (3 * OSZ + 7)
        run(sim, p.write_data(9, 0, data))
        keys = p.store.sync_list(p.key_data_prefix(9))
        assert len(keys) == 4

    def test_partial_overwrite_rmw(self, prt):
        sim, p = prt
        run(sim, p.write_data(9, 0, b"A" * (2 * OSZ)))
        run(sim, p.write_data(9, 10, b"B" * 5))
        out = run(sim, p.read_data(9, 0, 2 * OSZ, 2 * OSZ))
        assert out == b"A" * 10 + b"B" * 5 + b"A" * (2 * OSZ - 15)

    def test_cross_boundary_overwrite(self, prt):
        sim, p = prt
        run(sim, p.write_data(9, 0, b"A" * (2 * OSZ)))
        run(sim, p.write_data(9, OSZ - 3, b"B" * 6))
        out = run(sim, p.read_data(9, OSZ - 3, 6, 2 * OSZ))
        assert out == b"B" * 6

    def test_sparse_holes_read_as_zeros(self, prt):
        sim, p = prt
        # Write only object 2; objects 0..1 are holes.
        run(sim, p.write_data(9, 2 * OSZ, b"Z" * 10))
        size = 2 * OSZ + 10
        out = run(sim, p.read_data(9, 0, size, size))
        assert out == b"\x00" * (2 * OSZ) + b"Z" * 10

    def test_read_clipped_by_file_size(self, prt):
        sim, p = prt
        run(sim, p.write_data(9, 0, b"abc"))
        assert run(sim, p.read_data(9, 0, 100, 3)) == b"abc"
        assert run(sim, p.read_data(9, 5, 10, 3)) == b""

    def test_truncate_shrinks(self, prt):
        sim, p = prt
        run(sim, p.write_data(9, 0, b"x" * (3 * OSZ)))
        run(sim, p.truncate_data(9, 3 * OSZ, OSZ + 5))
        keys = p.store.sync_list(p.key_data_prefix(9))
        assert len(keys) == 2
        assert p.store.sync_head(p.key_data(9, 1)) == 5

    def test_truncate_to_zero_removes_all(self, prt):
        sim, p = prt
        run(sim, p.write_data(9, 0, b"x" * (2 * OSZ)))
        run(sim, p.truncate_data(9, 2 * OSZ, 0))
        assert p.store.sync_list(p.key_data_prefix(9)) == []

    def test_truncate_grow_is_noop(self, prt):
        sim, p = prt
        run(sim, p.write_data(9, 0, b"x" * 10))
        run(sim, p.truncate_data(9, 10, 100))
        assert run(sim, p.read_data(9, 0, 10, 10)) == b"x" * 10

    def test_delete_data(self, prt):
        sim, p = prt
        run(sim, p.write_data(9, 0, b"x" * (2 * OSZ + 1)))
        n = run(sim, p.delete_data(9))
        assert n == 3
        assert p.store.sync_list(p.key_data_prefix(9)) == []

    def test_object_size_limit_enforced(self, prt):
        sim, p = prt
        with pytest.raises(ValueError):
            run(sim, p.write_object(9, 0, b"x" * (OSZ + 1)))

    @settings(max_examples=40, deadline=None)
    @given(writes=st.lists(
        st.tuples(st.integers(0, 5 * OSZ), st.binary(min_size=1, max_size=OSZ)),
        min_size=1, max_size=8))
    def test_write_read_matches_bytearray_model(self, writes):
        """PRT's chunked data path behaves like one flat byte array."""
        sim = Simulator()
        p = PRT(InMemoryObjectStore(sim), OSZ)
        model = bytearray()
        for offset, data in writes:
            sim.run_process(p.write_data(1, offset, data))
            if len(model) < offset:
                model += b"\x00" * (offset - len(model))
            model[offset:offset + len(data)] = data
        out = sim.run_process(p.read_data(1, 0, len(model), len(model)))
        assert out == bytes(model)
