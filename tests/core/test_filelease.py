"""File read/write lease protocol (leader-side service), in isolation."""

import pytest

from repro.core.filelease import DIRECT, READ, WRITE, FileLeaseService
from repro.sim import Simulator


class Recorder:
    """Revocation callback that records (holder, ino) pairs."""

    def __init__(self, sim):
        self.sim = sim
        self.revoked = []

    def __call__(self, holder, ino, deleted=False):
        self.revoked.append((holder, ino))
        yield self.sim.timeout(0.001)


@pytest.fixture
def svc():
    sim = Simulator()
    rec = Recorder(sim)
    return sim, FileLeaseService(sim, lease_period=5.0, revoke_cb=rec), rec


def acquire(sim, service, ino, client, mode):
    return sim.run_process(service.acquire(ino, client, mode))


class TestReadLeases:
    def test_multiple_readers_share(self, svc):
        sim, s, rec = svc
        g1 = acquire(sim, s, 1, "a", READ)
        g2 = acquire(sim, s, 1, "b", READ)
        assert g1.mode == READ and g2.mode == READ
        assert s.holder_count(1) == 2
        assert rec.revoked == []

    def test_lease_expires(self, svc):
        sim, s, rec = svc
        g = acquire(sim, s, 1, "a", READ)
        assert g.expires_at == pytest.approx(5.0)
        sim.run(until=6.0)
        assert s.holder_count(1) == 0

    def test_renewal_extends(self, svc):
        sim, s, rec = svc
        acquire(sim, s, 1, "a", READ)
        sim.run(until=3.0)
        g = acquire(sim, s, 1, "a", READ)
        assert g.expires_at == pytest.approx(8.0)


class TestWriteUpgrade:
    def test_sole_holder_gets_exclusive_write(self, svc):
        sim, s, rec = svc
        acquire(sim, s, 1, "a", READ)
        g = acquire(sim, s, 1, "a", WRITE)
        assert g.mode == WRITE
        assert not s.is_direct(1)
        assert rec.revoked == []

    def test_version_bumps_on_write_grant(self, svc):
        sim, s, rec = svc
        g0 = acquire(sim, s, 1, "a", READ)
        g1 = acquire(sim, s, 1, "a", WRITE)
        assert g1.version > g0.version

    def test_conflict_revokes_and_goes_direct(self, svc):
        sim, s, rec = svc
        acquire(sim, s, 1, "a", READ)
        acquire(sim, s, 1, "b", READ)
        g = acquire(sim, s, 1, "b", WRITE)
        assert g.mode == DIRECT
        assert s.is_direct(1)
        assert ("a", 1) in rec.revoked  # the other holder was flushed

    def test_direct_mode_sticky_while_holders_remain(self, svc):
        sim, s, rec = svc
        acquire(sim, s, 1, "a", READ)
        acquire(sim, s, 1, "b", WRITE)  # direct (conflict)
        g = acquire(sim, s, 1, "c", READ)
        assert g.mode == DIRECT

    def test_direct_clears_when_all_leave(self, svc):
        sim, s, rec = svc
        acquire(sim, s, 1, "a", READ)
        acquire(sim, s, 1, "b", WRITE)
        v_direct = acquire(sim, s, 1, "c", READ).version
        s.release(1, "a")
        s.release(1, "b")
        s.release(1, "c")
        g = acquire(sim, s, 1, "d", READ)
        assert g.mode == READ
        assert g.version > v_direct  # fresh version after the direct era

    def test_new_reader_revokes_active_writer(self, svc):
        sim, s, rec = svc
        acquire(sim, s, 1, "w", WRITE)
        g = acquire(sim, s, 1, "r", READ)
        assert ("w", 1) in rec.revoked  # writer flushed before reader reads
        assert g.mode == READ

    def test_expired_writer_revoked_before_regrant(self, svc):
        """A writer that silently lapsed must still be flushed before anyone
        else can trust storage."""
        sim, s, rec = svc
        acquire(sim, s, 1, "w", WRITE)
        sim.run(until=6.0)  # writer's lease lapsed
        acquire(sim, s, 1, "r", READ)
        assert ("w", 1) in rec.revoked


class TestLifecycle:
    def test_release_unknown_is_noop(self, svc):
        sim, s, rec = svc
        s.release(99, "nobody")

    def test_forget_file(self, svc):
        sim, s, rec = svc
        acquire(sim, s, 1, "a", READ)
        s.forget_file(1)
        assert s.holder_count(1) == 0

    def test_files_are_independent(self, svc):
        sim, s, rec = svc
        acquire(sim, s, 1, "a", WRITE)
        g = acquire(sim, s, 2, "b", WRITE)
        assert g.mode == WRITE
        assert not s.is_direct(1) and not s.is_direct(2)

    def test_bad_mode_rejected(self, svc):
        sim, s, rec = svc
        with pytest.raises(ValueError):
            acquire(sim, s, 1, "a", "rw")

    def test_stats_counted(self, svc):
        sim, s, rec = svc
        acquire(sim, s, 1, "a", READ)
        acquire(sim, s, 1, "a", WRITE)
        acquire(sim, s, 1, "b", WRITE)
        assert s.stats["grants"] == 3
        assert s.stats["upgrades"] >= 1
        assert s.stats["direct_demotions"] == 1
