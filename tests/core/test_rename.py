"""RENAME semantics: same-directory, cross-directory 2PC, overwrite rules."""

import pytest

from repro.posix import (
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    NotFound,
    DirectoryNotEmpty,
)


class TestSameDirectory:
    def test_rename_file(self, fs):
        fs.write_file("/a.txt", b"data")
        fs.rename("/a.txt", "/b.txt")
        assert not fs.exists("/a.txt")
        assert fs.read_file("/b.txt") == b"data"

    def test_rename_preserves_inode(self, fs):
        fs.write_file("/a", b"x")
        ino = fs.stat("/a").st_ino
        fs.rename("/a", "/b")
        assert fs.stat("/b").st_ino == ino

    def test_rename_to_self_is_noop(self, fs):
        fs.write_file("/a", b"keep")
        fs.rename("/a", "/a")
        assert fs.read_file("/a") == b"keep"

    def test_rename_missing_source(self, fs):
        with pytest.raises(NotFound):
            fs.rename("/ghost", "/dst")

    def test_rename_overwrites_file(self, fs):
        fs.write_file("/src", b"new")
        fs.write_file("/dst", b"old")
        fs.rename("/src", "/dst")
        assert fs.read_file("/dst") == b"new"
        assert not fs.exists("/src")

    def test_rename_dir_over_file_fails(self, fs):
        fs.mkdir("/d")
        fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):  # ENOTDIR, as rename(2) specifies
            fs.rename("/d", "/f")

    def test_rename_file_over_dir_fails(self, fs):
        fs.write_file("/f", b"")
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):  # EISDIR
            fs.rename("/f", "/d")

    def test_rename_dir_over_empty_dir(self, fs):
        fs.mkdir("/src")
        fs.write_file("/src/f", b"inner")
        fs.mkdir("/dst")
        fs.rename("/src", "/dst")
        assert fs.read_file("/dst/f") == b"inner"

    def test_rename_dir_over_nonempty_dir_fails(self, fs):
        fs.mkdir("/src")
        fs.mkdir("/dst")
        fs.write_file("/dst/blocker", b"")
        with pytest.raises(DirectoryNotEmpty):
            fs.rename("/src", "/dst")

    def test_rename_directory_keeps_contents(self, fs):
        fs.makedirs("/olddir/sub")
        fs.write_file("/olddir/sub/deep", b"deep data")
        fs.rename("/olddir", "/newdir")
        assert fs.read_file("/newdir/sub/deep") == b"deep data"
        assert not fs.exists("/olddir")


class TestCrossDirectory:
    def test_move_file(self, fs):
        fs.mkdir("/src")
        fs.mkdir("/dst")
        fs.write_file("/src/f", b"moved bytes")
        fs.rename("/src/f", "/dst/g")
        assert not fs.exists("/src/f")
        assert fs.read_file("/dst/g") == b"moved bytes"

    def test_move_preserves_inode_and_data_objects(self, fs, cluster):
        fs.mkdir("/src")
        fs.mkdir("/dst")
        osz = cluster.params.data_object_size
        payload = b"k" * (osz + 100)
        fs.write_file("/src/f", payload, do_fsync=True)
        ino = fs.stat("/src/f").st_ino
        fs.rename("/src/f", "/dst/f")
        assert fs.stat("/dst/f").st_ino == ino
        assert fs.read_file("/dst/f") == payload

    def test_move_directory(self, fs):
        fs.makedirs("/a/deep")
        fs.mkdir("/b")
        fs.write_file("/a/deep/f", b"content")
        fs.rename("/a/deep", "/b/moved")
        assert fs.read_file("/b/moved/f") == b"content"
        assert fs.readdir("/a") == []

    def test_move_updates_nlink_counts(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.mkdir("/a/sub")
        a_before = fs.stat("/a").st_nlink
        b_before = fs.stat("/b").st_nlink
        fs.rename("/a/sub", "/b/sub")
        assert fs.stat("/a").st_nlink == a_before - 1
        assert fs.stat("/b").st_nlink == b_before + 1

    def test_move_into_own_subtree_fails(self, fs):
        fs.makedirs("/a/b")
        with pytest.raises(InvalidArgument):
            fs.rename("/a", "/a/b/c")

    def test_rename_root_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(InvalidArgument):
            fs.rename("/", "/d/root")
        with pytest.raises(InvalidArgument):
            fs.rename("/d", "/")

    def test_cross_dir_overwrite_file(self, fs):
        fs.mkdir("/src")
        fs.mkdir("/dst")
        fs.write_file("/src/f", b"new")
        fs.write_file("/dst/f", b"old", do_fsync=True)
        fs.rename("/src/f", "/dst/f")
        assert fs.read_file("/dst/f") == b"new"

    def test_cross_dir_between_leaders(self, fs, fs2):
        """Source led by client0, destination led by client1: full 2PC."""
        fs.mkdir("/c0dir")
        fs2.mkdir("/c1dir")
        fs.write_file("/c0dir/f", b"traveller")   # client0 leads /c0dir
        fs2.write_file("/c1dir/seed", b"")        # client1 leads /c1dir
        fs.rename("/c0dir/f", "/c1dir/f")
        assert fs2.read_file("/c1dir/f") == b"traveller"
        assert not fs.exists("/c0dir/f")

    def test_decision_record_cleaned_up(self, fs, cluster):
        fs.mkdir("/s")
        fs.mkdir("/d")
        fs.write_file("/s/f", b"x")
        fs.rename("/s/f", "/d/f")
        leftovers = cluster.store.sync_list("t") if hasattr(
            cluster.store, "sync_list") else cluster.store.backing.sync_list("t")
        assert leftovers == []

    def test_journals_clean_after_2pc(self, fs, cluster, sim):
        fs.mkdir("/s")
        fs.mkdir("/d")
        fs.write_file("/s/f", b"x")
        fs.rename("/s/f", "/d/f")
        sim.run(until=sim.now + 3)  # allow checkpoints
        journal_keys = cluster.store.sync_list("j") if hasattr(
            cluster.store, "sync_list") else []
        assert journal_keys == []

    def test_open_handle_survives_rename(self, fs):
        fs.mkdir("/s")
        fs.mkdir("/d")
        fs.write_file("/s/f", b"0123456789", do_fsync=True)
        from repro.posix import OpenFlags
        h = fs.open("/s/f", OpenFlags.O_RDONLY)
        fs.rename("/s/f", "/d/f")
        # Data objects are keyed by ino: reads keep working.
        assert h.read(4) == b"0123"
        h.close()
