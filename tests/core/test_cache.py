"""Data object cache: write-back, read-ahead window policy, eviction."""

import pytest

from repro.core import PRT, DataObjectCache, ReadAheadState
from repro.objectstore import InMemoryObjectStore
from repro.sim import Simulator


ESZ = 128  # tiny entries for tests


@pytest.fixture
def env():
    sim = Simulator()
    store = InMemoryObjectStore(sim)
    prt = PRT(store, data_object_size=ESZ)
    cache = DataObjectCache(sim, prt, node=None, entry_size=ESZ,
                            capacity_bytes=8 * ESZ, max_readahead=4 * ESZ)
    return sim, store, prt, cache


def run(sim, gen):
    return sim.run_process(gen)


class TestWriteBack:
    def test_write_is_cached_not_stored(self, env):
        sim, store, prt, cache = env
        run(sim, cache.write(1, 0, b"dirty data", old_size=0))
        assert prt.key_data(1, 0) not in store
        assert cache.has_dirty(1)

    def test_flush_persists(self, env):
        sim, store, prt, cache = env
        run(sim, cache.write(1, 0, b"dirty data", old_size=0))
        run(sim, cache.flush(1))
        assert store.sync_get(prt.key_data(1, 0)) == b"dirty data"
        assert not cache.has_dirty(1)

    def test_read_after_write_hits_cache(self, env):
        sim, store, prt, cache = env
        run(sim, cache.write(1, 0, b"abcdef", old_size=0))
        assert run(sim, cache.read(1, 2, 3)) == b"cde"
        assert cache.stats["hits"] >= 1

    def test_partial_write_fetches_existing(self, env):
        sim, store, prt, cache = env
        store.sync_put(prt.key_data(1, 0), b"A" * ESZ)
        run(sim, cache.write(1, 10, b"BB", old_size=ESZ))
        run(sim, cache.flush(1))
        out = store.sync_get(prt.key_data(1, 0))
        assert out == b"A" * 10 + b"BB" + b"A" * (ESZ - 12)

    def test_full_overwrite_skips_fetch(self, env):
        sim, store, prt, cache = env
        store.sync_put(prt.key_data(1, 0), b"A" * ESZ)
        gets_before = store.op_counts["get"]
        run(sim, cache.write(1, 0, b"B" * ESZ, old_size=ESZ))
        assert store.op_counts["get"] == gets_before

    def test_write_beyond_eof_no_fetch(self, env):
        sim, store, prt, cache = env
        gets_before = store.op_counts["get"]
        run(sim, cache.write(1, 5 * ESZ, b"tail", old_size=10))
        assert store.op_counts["get"] == gets_before

    def test_write_spanning_entries(self, env):
        sim, store, prt, cache = env
        data = bytes(range(256)) * ((2 * ESZ + 50) // 256 + 1)
        data = data[: 2 * ESZ + 50]
        run(sim, cache.write(1, 0, data, old_size=0))
        run(sim, cache.flush(1))
        whole = b"".join(store.sync_get(prt.key_data(1, i)) for i in range(3))
        assert whole == data


class TestReadPath:
    def test_miss_fetches_from_store(self, env):
        sim, store, prt, cache = env
        store.sync_put(prt.key_data(1, 0), b"stored!")
        assert run(sim, cache.read(1, 0, 7)) == b"stored!"
        assert cache.stats["misses"] == 1

    def test_hole_reads_zeros(self, env):
        sim, store, prt, cache = env
        store.sync_put(prt.key_data(1, 1), b"x" * ESZ)
        out = run(sim, cache.read(1, 0, ESZ + 4))
        assert out == b"\x00" * ESZ + b"xxxx"

    def test_zero_length_read(self, env):
        sim, store, prt, cache = env
        assert run(sim, cache.read(1, 0, 0)) == b""


class TestReadAheadPolicy:
    def test_read_from_start_opens_max_window(self):
        ra = ReadAheadState()
        ra.on_read(0, 10, entry_size=ESZ, max_readahead=4 * ESZ)
        assert ra.window == 4 * ESZ

    def test_sequential_reads_double_window(self):
        ra = ReadAheadState()
        ra.on_read(100, 50, entry_size=ESZ, max_readahead=8 * ESZ)
        assert ra.window == ESZ
        ra.on_read(150, 50, ESZ, 8 * ESZ)
        assert ra.window == 2 * ESZ
        ra.on_read(200, 50, ESZ, 8 * ESZ)
        assert ra.window == 4 * ESZ

    def test_window_capped_at_max(self):
        ra = ReadAheadState()
        ra.on_read(0, 10, ESZ, 2 * ESZ)
        assert ra.window == 2 * ESZ
        ra.on_read(10, 10, ESZ, 2 * ESZ)
        assert ra.window == 2 * ESZ

    def test_random_access_shrinks_window(self):
        ra = ReadAheadState()
        ra.on_read(0, 10, ESZ, 8 * ESZ)
        assert ra.window == 8 * ESZ
        ra.on_read(5000, 10, ESZ, 8 * ESZ)  # jump
        assert ra.window == ESZ

    def test_prefetch_populates_ahead(self, env):
        sim, store, prt, cache = env
        for i in range(6):
            store.sync_put(prt.key_data(1, i), bytes([i]) * ESZ)
        ra = ReadAheadState()
        run(sim, cache.read(1, 0, 10, ra=ra))
        sim.run()  # let async prefetch processes complete
        assert cache.stats["prefetches"] > 0
        assert cache.cached_entries(1) > 1

    def test_prefetched_read_is_hit(self, env):
        sim, store, prt, cache = env
        for i in range(4):
            store.sync_put(prt.key_data(1, i), bytes([i]) * ESZ)
        ra = ReadAheadState()
        run(sim, cache.read(1, 0, ESZ, ra=ra))
        sim.run()
        misses_before = cache.stats["misses"]
        run(sim, cache.read(1, ESZ, ESZ, ra=ra))
        assert cache.stats["misses"] == misses_before


class TestEviction:
    def test_capacity_enforced(self, env):
        sim, store, prt, cache = env
        for i in range(20):
            run(sim, cache.write(1, i * ESZ, b"z" * ESZ, old_size=i * ESZ))
        assert cache.total_entries <= cache.capacity

    def test_eviction_flushes_dirty_victim(self, env):
        sim, store, prt, cache = env
        for i in range(cache.capacity + 2):
            run(sim, cache.write(1, i * ESZ, bytes([i]) * ESZ,
                                 old_size=i * ESZ))
        # The first (LRU) entries were evicted and must be durable.
        assert store.sync_get(prt.key_data(1, 0)) == bytes([0]) * ESZ
        assert cache.stats["evictions"] >= 2

    def test_lru_order(self, env):
        sim, store, prt, cache = env
        for i in range(cache.capacity):
            run(sim, cache.write(1, i * ESZ, b"x" * ESZ, old_size=i * ESZ))
        # Touch entry 0 so entry 1 becomes LRU.
        run(sim, cache.read(1, 0, 4))
        run(sim, cache.write(1, cache.capacity * ESZ, b"y" * ESZ,
                             old_size=cache.capacity * ESZ))
        assert cache.cached_entries(1) == cache.capacity
        # Entry 1 was evicted (flushed); entry 0 still cached.
        fc_keys = set()
        for ino_idx, _ in cache._lru.items():
            fc_keys.add(ino_idx[1])
        assert 0 in fc_keys and 1 not in fc_keys


class TestInvalidation:
    def test_invalidate_flushes_then_drops(self, env):
        sim, store, prt, cache = env
        run(sim, cache.write(1, 0, b"keepme", old_size=0))
        run(sim, cache.invalidate(1, flush_dirty=True))
        assert cache.cached_entries(1) == 0
        assert store.sync_get(prt.key_data(1, 0)) == b"keepme"

    def test_invalidate_discard_loses_dirty(self, env):
        sim, store, prt, cache = env
        run(sim, cache.write(1, 0, b"loseme", old_size=0))
        run(sim, cache.invalidate(1, flush_dirty=False))
        assert prt.key_data(1, 0) not in store

    def test_discard_all_instant(self, env):
        sim, store, prt, cache = env
        run(sim, cache.write(1, 0, b"x", old_size=0))
        cache.discard_all()
        assert cache.total_entries == 0

    def test_drop_all_flushes_everything(self, env):
        sim, store, prt, cache = env
        run(sim, cache.write(1, 0, b"a", old_size=0))
        run(sim, cache.write(2, 0, b"b", old_size=0))
        run(sim, cache.drop_all())
        assert store.sync_get(prt.key_data(1, 0)) == b"a"
        assert store.sync_get(prt.key_data(2, 0)) == b"b"
        assert cache.total_entries == 0


def test_entry_size_must_match_prt():
    sim = Simulator()
    prt = PRT(InMemoryObjectStore(sim), 64)
    with pytest.raises(ValueError):
        DataObjectCache(sim, prt, None, entry_size=128, capacity_bytes=1024,
                        max_readahead=256)
