"""Fuzz-lite for fsck: seeded corruption of single store objects.

Build a small, quiesced, fsck-clean namespace, then corrupt exactly one
metadata/journal object per trial (mode and target drawn from a PRNG
seeded by ``REPRO_SEED``, default fixed) and assert that fsck

* never raises — a checker that crashes on the corruption it exists to
  find is useless as a recovery oracle, and
* detects and *classifies* the damage: errors for broken metadata,
  warnings for benign residue (stale 2PC decision records).

Replay any failure with ``REPRO_SEED=<printed seed> pytest -k fsck_fuzz``.
"""

import os
import random

import pytest

from repro.core import build_arkfs, fsck
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator

SEED = int(os.environ.get("REPRO_SEED", "31337"))
TRIALS = 20

MODES = ("garble", "truncate", "delete", "swap", "fake-journal",
         "stale-decision")


def _quiesced_cluster():
    """A small namespace covering every object kind, settled on storage."""
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, functional=True)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/a")
    fs.mkdir("/a/deep")
    fs.mkdir("/b")
    for i in range(4):
        fs.write_file(f"/a/f{i}", bytes([i]) * (60 + i), do_fsync=True)
    fs.rename("/a/f3", "/b/moved")
    sim.run_process(cluster.client(0).sync())
    sim.run(until=sim.now + 3)
    report = sim.run_process(fsck(cluster.prt))
    assert report.clean, f"baseline not clean: {report.summary()}"
    return sim, cluster


def _corrupt(rng, store, mode):
    """Apply one seeded corruption; returns a human-readable description."""
    meta_keys = sorted(k for k in store.sync_list("")
                       if k[0] in ("i", "e"))
    if mode == "garble":
        key = rng.choice(meta_keys)
        junk = bytes(rng.randrange(256) for _ in range(24))
        store.sync_put(key, junk)
        return f"garble {key}"
    if mode == "truncate":
        key = rng.choice(meta_keys)
        raw = store.sync_get(key)
        store.sync_put(key, raw[:max(1, len(raw) // 2)])
        return f"truncate {key}"
    if mode == "delete":
        # Deleting the dentry of the lone root-level file would merely
        # orphan it; deleting an *inode* always dangles a dentry. Either
        # way fsck must flag it — pick from inodes (root excluded: that
        # has its own dedicated error).
        key = rng.choice([k for k in meta_keys if k[0] == "i"])
        store.sync_delete(key)
        return f"delete {key}"
    if mode == "swap":
        # Cross-wire two objects of the same kind: keys no longer match
        # their payloads (inode claims wrong ino / dentry wrong name).
        kind = rng.choice(("i", "e"))
        pool = [k for k in meta_keys if k[0] == kind]
        a, b = rng.sample(pool, 2)
        ra, rb = store.sync_get(a), store.sync_get(b)
        store.sync_put(a, rb)
        store.sync_put(b, ra)
        return f"swap {a} <-> {b}"
    if mode == "fake-journal":
        # A journal transaction surviving on a quiesced system means an
        # unrecovered crash — hard error regardless of its payload.
        junk = bytes(rng.randrange(256) for _ in range(16))
        store.sync_put("jdeadbeefdeadbeefdeadbeefdeadbeef/000000000007",
                       junk)
        return "fake journal txn"
    if mode == "stale-decision":
        store.sync_put("tfuzz-stale-txid", b"commit")
        return "stale decision record"
    raise AssertionError(mode)


def test_fsck_fuzz_detects_and_classifies():
    print(f"fsck fuzz seed: REPRO_SEED={SEED}")
    rng = random.Random(SEED)
    for trial in range(TRIALS):
        mode = MODES[trial % len(MODES)]
        sim, cluster = _quiesced_cluster()
        what = _corrupt(rng, cluster.store, mode)
        try:
            report = sim.run_process(fsck(cluster.prt))
        except Exception as exc:  # noqa: BLE001
            pytest.fail(f"fsck crashed on [{what}] "
                        f"(trial {trial}, REPRO_SEED={SEED}): {exc!r}")
        if mode == "stale-decision":
            # Benign residue: classified as a warning, not an error.
            assert report.clean, \
                f"[{what}] escalated to error (REPRO_SEED={SEED}): " \
                + report.summary()
            assert any("decision" in w for w in report.warnings), \
                f"[{what}] not surfaced (REPRO_SEED={SEED})"
        else:
            assert not report.clean, \
                f"[{what}] went undetected (trial {trial}, " \
                f"REPRO_SEED={SEED})"


def test_fsck_never_crashes_on_random_metadata_bytes():
    """Pure chaos trial: overwrite several metadata objects with random
    bytes at once; fsck must still terminate with a report."""
    print(f"fsck fuzz seed: REPRO_SEED={SEED}")
    rng = random.Random(SEED ^ 0x5A5A)
    sim, cluster = _quiesced_cluster()
    store = cluster.store
    keys = [k for k in store.sync_list("") if k[0] in ("i", "e")]
    for key in rng.sample(keys, min(5, len(keys))):
        store.sync_put(key, bytes(rng.randrange(256) for _ in range(32)))
    report = sim.run_process(fsck(cluster.prt))
    assert not report.clean
    assert report.errors
