"""Functional tests for the elastic metadata plane's client-side routing.

Three behaviors the crashcheck sweeps and property tests don't pin:

1. A client holding a stale route to a directory that split under it must
   resolve the new shard map FROM THE STORE after the old leader's
   "led by None" redirect — not by acquiring the parent lease through the
   manager. Under a concurrent split every client briefly takes the
   parent lease to learn the map, so manager-chasing degenerates into a
   parade of transient-holder redirects that can exhaust the retry budget
   (observed as spurious EIO at 16 clients in the mdtest-hard shared-dir
   benchmark).

2. Shard-lease placement spreads first-touch shard leaderships over the
   client population by consistent hash, instead of letting the splitting
   client — the only one that already holds the map in memory — win every
   acquisition race and re-create the single-owner hotspot the split
   exists to break. A dead preferred peer is skipped.

3. The split migrates file leases with the files: every holder is revoked
   (flushing dirty write-back data) while the parent is still the sole
   authority, so no client survives the split with a grant the new shard
   leaders never heard about.
"""

from repro.core import DEFAULT_PARAMS, build_arkfs
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator

SHARD_PARAMS = dict(shards_enabled=True, shard_split_threshold=6,
                    shard_fanout=4)


def _split_dir_setup(n_clients, n_files=10, **extra):
    sim = Simulator()
    params = DEFAULT_PARAMS.with_(**{**SHARD_PARAMS, **extra})
    cluster = build_arkfs(sim, n_clients=n_clients, params=params,
                          functional=True, seed=0)
    fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
    fs0.mkdir("/d")
    for i in range(n_files):
        fs0.write_file(f"/d/f{i}", bytes([i + 1]) * 16)
    sim.run(until=sim.now + 2)  # let the split settle
    d_ino = fs0.stat("/d").st_ino
    assert any(d_ino in c._shard_maps for c in cluster.clients), \
        "setup must actually split /d"
    return sim, cluster, d_ino


class TestStaleRouteResolution:
    def test_leaderless_redirect_resolves_map_from_store(self):
        """After "dir split under me", the stale client learns the shard
        map without ever taking the parent lease."""
        sim = Simulator()
        params = DEFAULT_PARAMS.with_(**SHARD_PARAMS)
        cluster = build_arkfs(sim, n_clients=2, params=params,
                              functional=True, seed=0)
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs0.mkdir("/d")
        fs0.write_file("/d/f0", b"before")
        # client1 learns (and caches) the pre-split route to client0.
        assert fs1.read_file("/d/f0") == b"before"
        d_ino = fs0.stat("/d").st_ino
        assert cluster.client(1).remotes[d_ino].leader == "client0"
        for i in range(1, 10):
            fs0.write_file(f"/d/f{i}", b"x")
        sim.run(until=sim.now + 2)
        assert d_ino in cluster.client(0)._shard_maps
        # Stale route -> old leader answers "led by None" -> the map must
        # come from the store, with the parent lease never claimed (the
        # manager-chasing alternative acquires and releases it, which is
        # what cascades into EIO when many clients resolve concurrently).
        releases_before = cluster.lease_service.stats["release"]
        assert fs1.read_file("/d/f5") == b"x"
        assert d_ino in cluster.client(1)._shard_maps
        assert cluster.lease_service.holder_of(d_ino) is None
        assert cluster.lease_service.stats["release"] == releases_before, \
            "resolving a split directory must not re-take the parent lease"


class TestShardLeasePlacement:
    def test_leadership_spreads_over_the_population(self):
        """With placement, the splitting client does not end up leading
        every shard once the population touches the directory."""
        sim, cluster, d_ino = _split_dir_setup(n_clients=4)
        smap = cluster.client(0)._shard_maps[d_ino]
        for ci in range(1, 4):
            fs = SyncFS(cluster.client(ci), ROOT_CREDS)
            for i in range(10):
                fs.stat(f"/d/f{i}")
        leaders = {c.name for c in cluster.clients
                   if any(si in c.metatables for si in smap.shard_inos())}
        assert len(leaders) >= 2, \
            f"shard leaderships concentrated on {leaders}"

    def test_placement_prefers_the_hashed_peer(self):
        """Every client computes the same preferred leader for a shard,
        and a client that IS the preferred leader acquires locally."""
        sim, cluster, d_ino = _split_dir_setup(n_clients=4)
        smap = cluster.client(0)._shard_maps[d_ino]
        # Teach everyone the map (stat via each client), then compare.
        for c in cluster.clients[1:]:
            SyncFS(c, ROOT_CREDS).stat("/d/f0")
        for si in smap.shard_inos():
            prefs = {c._preferred_shard_leader(si)
                     for c in cluster.clients if si in c._shard_home}
            assert len(prefs) == 1, \
                f"clients disagree on placement for shard {si:x}: {prefs}"

    def test_dead_preferred_peer_is_skipped(self):
        """Crashing a preferred shard leader must not wedge the shard:
        the ring walk skips dead nodes and someone live takes over."""
        sim, cluster, d_ino = _split_dir_setup(n_clients=4)
        smap = cluster.client(0)._shard_maps[d_ino]
        # Find a file whose shard is preferred on a client other than 0.
        c0 = cluster.client(0)
        victim_file = None
        for i in range(10):
            si = smap.route(f"f{i}")
            pref = c0._preferred_shard_leader(si)
            if pref not in (None, "client0") and si not in c0.metatables:
                victim_file, victim = f"f{i}", pref
                break
        if victim_file is None:  # placement hashed everything onto c0
            return
        cluster.net.nodes[victim].crash()
        fs0 = SyncFS(c0, ROOT_CREDS)
        data = fs0.read_file(f"/d/{victim_file}")
        assert data, "shard op must survive a dead preferred peer"


class TestSplitMovesFileLeases:
    def test_dirty_writeback_flushed_before_split(self):
        """A writer's dirty cached data must be revoked (flushed) by the
        split, so readers routed to the new shard leader see the write."""
        sim = Simulator()
        params = DEFAULT_PARAMS.with_(**SHARD_PARAMS)
        cluster = build_arkfs(sim, n_clients=3, params=params,
                              functional=True, seed=0)
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs2 = SyncFS(cluster.client(2), ROOT_CREDS)
        fs0.mkdir("/d")
        fs0.write_file("/d/target", b"old")
        # client1 rewrites it WITHOUT fsync: dirty write-back data under a
        # WRITE lease tracked by the pre-split authority.
        fs1.write_file("/d/target", b"new-bytes", do_fsync=False)
        # client0 pushes the directory over the threshold -> split.
        for i in range(10):
            fs0.write_file(f"/d/f{i}", b"x")
        sim.run(until=sim.now + 2)
        d_ino = fs0.stat("/d").st_ino
        assert d_ino in cluster.client(0)._shard_maps
        # A third client (fresh cache) must see client1's write.
        assert fs2.read_file("/d/target") == b"new-bytes"
