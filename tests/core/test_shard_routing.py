"""Property tests for the elastic metadata plane's two hash rings.

1. The *directory shard* ring (``repro.core.shards``): the hash-range map
   must be a total partition of the 32-bit name-hash space — every name
   routes to exactly one shard — and the routing function must be stable
   across the whole split lifecycle (splitting map, active map, and a
   serialization round-trip all agree), because clients cache maps at
   different points of the protocol.

2. The *lease manager* ring (``LeaseManagerCluster``): range authority
   epochs must be monotonic under ARBITRARY kill / restart / failover
   schedules, every range's owner must always be a live manager, and every
   authority change must raise a fence. Epoch reuse anywhere would let a
   deposed manager's grants pass the journal's fencing check.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lease import LeaseGrant, LeaseManagerCluster, LeaseWait
from repro.core.params import DEFAULT_PARAMS
from repro.core.shards import (
    HASH_SPACE,
    ShardMap,
    ShardRange,
    make_ranges,
    name_hash,
)
from repro.sim import Network, Node, Simulator

# -- strategy helpers ---------------------------------------------------------

fanouts = st.integers(min_value=2, max_value=16)
names = st.lists(st.text(min_size=1, max_size=24), max_size=40)
hashes = st.lists(st.integers(min_value=0, max_value=HASH_SPACE - 1),
                  max_size=40)


def _smap(fanout: int, state: str = ShardMap.ACTIVE) -> ShardMap:
    shards = [ShardRange(0x1000 + i, lo, hi)
              for i, (lo, hi) in enumerate(make_ranges(fanout))]
    return ShardMap(0x7, state, shards)


# -- 1. the shard map is a total partition ------------------------------------


@given(fanout=fanouts)
def test_make_ranges_is_a_total_partition(fanout):
    ranges = make_ranges(fanout)
    assert len(ranges) == fanout
    assert ranges[0][0] == 0
    assert ranges[-1][1] == HASH_SPACE
    for (_lo1, hi1), (lo2, _hi2) in zip(ranges, ranges[1:]):
        assert hi1 == lo2, "ranges must be contiguous"
    assert sum(hi - lo for lo, hi in ranges) == HASH_SPACE
    assert all(lo < hi for lo, hi in ranges), "no empty ranges"


@given(fanout=fanouts, names=names, hashes=hashes)
def test_every_name_routes_to_exactly_one_shard(fanout, names, hashes):
    smap = _smap(fanout)
    for h in hashes + [name_hash(n) for n in names]:
        covering = [r for r in smap.shards if r.covers(h)]
        assert len(covering) == 1, (h, covering)
        assert smap.shard_for_hash(h) is covering[0]


@given(fanout=fanouts, names=names)
def test_routing_is_stable_across_the_split_lifecycle(fanout, names):
    """A client holding the SPLITTING map, one holding the ACTIVE map, and
    one that just deserialized the map from the store must all route every
    name identically — the partition is fixed the moment it is published."""
    splitting = _smap(fanout, ShardMap.SPLITTING)
    active = splitting.with_state(ShardMap.ACTIVE)
    thawed = ShardMap.from_bytes(active.to_bytes())
    for n in names:
        assert splitting.route(n) == active.route(n) == thawed.route(n)
    assert thawed.shard_inos() == active.shard_inos()
    assert thawed.home_ino() == active.home_ino()


@given(fanout=st.integers(min_value=3, max_value=16),
       drop=st.integers(min_value=0, max_value=15))
def test_maps_with_holes_are_rejected(fanout, drop):
    """Removing any one range from a valid map must fail validation: a
    hole means some names route nowhere."""
    shards = [ShardRange(0x1000 + i, lo, hi)
              for i, (lo, hi) in enumerate(make_ranges(fanout))]
    del shards[drop % fanout]
    with pytest.raises(ValueError):
        ShardMap(0x7, ShardMap.ACTIVE, shards)


def test_degenerate_maps_are_rejected():
    with pytest.raises(ValueError):
        make_ranges(1)
    with pytest.raises(ValueError):
        ShardMap(1, ShardMap.ACTIVE, [])
    with pytest.raises(ValueError):  # does not reach HASH_SPACE
        ShardMap(1, ShardMap.ACTIVE, [ShardRange(2, 0, 10)])
    with pytest.raises(ValueError):  # overlap
        ShardMap(1, ShardMap.ACTIVE,
                 [ShardRange(2, 0, 10), ShardRange(3, 5, HASH_SPACE)])
    with pytest.raises(ValueError):  # unknown state
        ShardMap(1, "frozen", [ShardRange(2, 0, HASH_SPACE)])


# -- 2. epoch monotonicity on the manager ring --------------------------------

events = st.lists(
    st.tuples(st.sampled_from(["crash", "restart", "failover"]),
              st.integers(min_value=0, max_value=15)),
    min_size=1, max_size=50)


def _cluster(n: int) -> LeaseManagerCluster:
    sim = Simulator()
    net = Network(sim)
    nodes = [Node(sim, f"m{i}", net=net) for i in range(n)]
    return LeaseManagerCluster(sim, nodes, DEFAULT_PARAMS)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(min_value=2, max_value=5), events=events)
def test_epochs_monotonic_under_arbitrary_schedules(n, events):
    """Under any interleaving of manager crashes, restarts, and explicit
    failovers: every range's epoch only ever grows, each authority change
    bumps the epoch (no epoch is ever served by two owners), owners are
    always live managers, and each bump raises a fresh fence."""
    svc = _cluster(n)
    seen = {rs.index: (rs.epoch, rs.owner) for rs in svc.ranges}
    for kind, x in events:
        i = x % n
        live = [j for j in range(n) if j not in svc._down]
        if kind == "crash":
            if i in svc._down or len(live) < 2:
                continue  # a dead cluster has no authority to misbehave
            svc.crash_manager(i)
        elif kind == "restart":
            svc.restart_manager(i)
        else:
            if len(live) < 2:
                continue
            svc.fail_over(i)
        for rs in svc.ranges:
            old_epoch, old_owner = seen[rs.index]
            assert rs.epoch >= old_epoch, "epoch went backwards"
            if rs.owner != old_owner:
                assert rs.epoch > old_epoch, \
                    "authority changed without an epoch bump"
            if rs.epoch > old_epoch:
                assert rs.fence_until >= svc.sim.now, \
                    "epoch bump must raise a fence"
            assert rs.owner not in svc._down, "range owned by a dead manager"
            seen[rs.index] = (rs.epoch, rs.owner)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=2, max_value=4), events=events)
def test_stale_epoch_grants_rejected_after_any_schedule(n, events):
    """After an arbitrary schedule, a manager that is NOT the current range
    owner must refuse to grant (LeaseWait, not a grant), and the current
    owner's grant must carry the current epoch — the token the journal
    fences commits against."""
    svc = _cluster(n)
    sim = svc.sim
    for kind, x in events:
        i = x % n
        live = [j for j in range(n) if j not in svc._down]
        if kind == "crash":
            if i in svc._down or len(live) < 2:
                continue
            svc.crash_manager(i)
        elif kind == "restart":
            svc.restart_manager(i)
        else:
            if len(live) < 2:
                continue
            svc.fail_over(i)
    dir_ino = 0xD1
    rs = svc.range_for(dir_ino)
    for idx, m in enumerate(svc.managers):
        if idx in svc._down or idx == rs.owner:
            continue
        resp = sim.run_process(m._h_acquire(dir_ino, "c"))
        assert isinstance(resp, LeaseWait), \
            "a deposed manager must not grant"
    # Let the fence lapse, then the real owner grants at the live epoch.
    def _sleep(dt):
        yield sim.timeout(dt)
    sim.run_process(_sleep(max(0.0, rs.fence_until - sim.now) + 1e-9))
    resp = sim.run_process(svc.managers[rs.owner]._h_acquire(dir_ino, "c"))
    assert isinstance(resp, LeaseGrant), resp
    assert resp.mgr_epoch == rs.epoch
