"""Access control through the full ArkFS stack: mode bits, ACLs, ownership."""

import pytest

from repro.posix import (
    Acl,
    Credentials,
    NotPermitted,
    OpenFlags,
    PermissionDenied,
    R_OK,
    ROOT_CREDS,
    SyncFS,
    W_OK,
    X_OK,
)

ALICE = Credentials(uid=1000, gid=1000)
BOB = Credentials(uid=1001, gid=1001)
CAROL_IN_ALICE_GROUP = Credentials(uid=1002, gid=1002, groups=(1000,))


@pytest.fixture
def setup(cluster):
    """Root prepares /home/alice owned by alice, mode 0700."""
    root = SyncFS(cluster.client(0), ROOT_CREDS)
    root.makedirs("/home/alice")
    root.chown("/home/alice", 1000, 1000)
    root.chmod("/home/alice", 0o700)
    root.chmod("/home", 0o755)
    root.chmod("/", 0o755)
    return cluster, root


def as_user(cluster, creds, i=0):
    return SyncFS(cluster.client(i), creds)


class TestModeBits:
    def test_owner_can_enter_others_cannot(self, setup):
        cluster, root = setup
        alice = as_user(cluster, ALICE)
        alice.write_file("/home/alice/secret", b"mine")
        bob = as_user(cluster, BOB)
        with pytest.raises(PermissionDenied):
            bob.read_file("/home/alice/secret")

    def test_group_access_via_supplementary_group(self, setup):
        cluster, root = setup
        root.chmod("/home/alice", 0o750)
        root.chown("/home/alice", 1000, 1000)
        as_user(cluster, ALICE).write_file("/home/alice/f", b"x", 0o640)
        carol = as_user(cluster, CAROL_IN_ALICE_GROUP)
        assert carol.read_file("/home/alice/f") == b"x"
        bob = as_user(cluster, BOB)
        with pytest.raises(PermissionDenied):
            bob.read_file("/home/alice/f")

    def test_write_denied_without_w_on_dir(self, setup):
        cluster, root = setup
        bob = as_user(cluster, BOB)
        root.chmod("/home/alice", 0o755)
        with pytest.raises(PermissionDenied):
            bob.write_file("/home/alice/intruder", b"")

    def test_unlink_needs_dir_write(self, setup):
        cluster, root = setup
        alice = as_user(cluster, ALICE)
        root.chmod("/home/alice", 0o755)
        alice.as_user(ALICE)
        as_user(cluster, ALICE).write_file("/home/alice/f", b"")
        bob = as_user(cluster, BOB)
        with pytest.raises(PermissionDenied):
            bob.unlink("/home/alice/f")

    def test_file_mode_enforced_on_open(self, setup):
        cluster, root = setup
        alice = as_user(cluster, ALICE)
        root.chmod("/home/alice", 0o755)
        alice.write_file("/home/alice/ro", b"x", mode=0o444)
        with pytest.raises(PermissionDenied):
            alice.open("/home/alice/ro", OpenFlags.O_WRONLY)

    def test_umask_applied_at_create(self, setup):
        cluster, _ = setup
        masked = Credentials(uid=1000, gid=1000, umask=0o077)
        fs = as_user(cluster, masked)
        fs.write_file("/home/alice/m", b"", mode=0o666)
        assert fs.stat("/home/alice/m").perm_bits & 0o777 == 0o600

    def test_root_bypasses_everything(self, setup):
        cluster, root = setup
        as_user(cluster, ALICE).write_file("/home/alice/p", b"s", 0o600)
        assert root.read_file("/home/alice/p") == b"s"

    def test_access_syscall(self, setup):
        cluster, root = setup
        as_user(cluster, ALICE).write_file("/home/alice/f", b"", 0o640)
        root.chmod("/home/alice", 0o755)
        alice = as_user(cluster, ALICE)
        assert alice.access("/home/alice/f", R_OK | W_OK)
        bob = as_user(cluster, BOB)
        assert not bob.access("/home/alice/f", R_OK)

    def test_traversal_needs_x_on_every_component(self, setup):
        cluster, root = setup
        root.chmod("/home", 0o700)  # only root may traverse /home now
        bob = as_user(cluster, BOB)
        with pytest.raises(PermissionDenied):
            bob.stat("/home/alice")


class TestOwnership:
    def test_chmod_requires_owner(self, setup):
        cluster, root = setup
        as_user(cluster, ALICE).write_file("/home/alice/f", b"", 0o644)
        root.chmod("/home/alice", 0o755)
        bob = as_user(cluster, BOB)
        with pytest.raises(NotPermitted):
            bob.chmod("/home/alice/f", 0o777)

    def test_chown_requires_root(self, setup):
        cluster, root = setup
        alice = as_user(cluster, ALICE)
        alice.write_file("/home/alice/f", b"")
        with pytest.raises(NotPermitted):
            alice.chown("/home/alice/f", 1001, 1001)

    def test_owner_may_chgrp_to_own_group(self, setup):
        cluster, root = setup
        creds = Credentials(uid=1000, gid=1000, groups=(3000,))
        fs = as_user(cluster, creds)
        fs.write_file("/home/alice/f", b"")
        fs.chown("/home/alice/f", 1000, 3000)
        assert fs.stat("/home/alice/f").st_gid == 3000

    def test_owner_may_not_chgrp_to_foreign_group(self, setup):
        cluster, root = setup
        alice = as_user(cluster, ALICE)
        alice.write_file("/home/alice/f", b"")
        with pytest.raises(NotPermitted):
            alice.chown("/home/alice/f", 1000, 9999)


class TestAcls:
    def test_setfacl_grants_named_user(self, setup):
        cluster, root = setup
        alice = as_user(cluster, ALICE)
        alice.write_file("/home/alice/shared", b"payload", 0o600)
        root.chmod("/home/alice", 0o701)  # bob can traverse but not list
        acl = alice.getfacl("/home/alice/shared")
        acl.set_user(1001, R_OK)
        alice.setfacl("/home/alice/shared", acl)
        bob = as_user(cluster, BOB)
        assert bob.read_file("/home/alice/shared") == b"payload"
        with pytest.raises(PermissionDenied):
            bob.open("/home/alice/shared", OpenFlags.O_WRONLY)

    def test_acl_mask_caps_named_user(self, setup):
        cluster, root = setup
        alice = as_user(cluster, ALICE)
        root.chmod("/home/alice", 0o701)
        alice.write_file("/home/alice/f", b"x", 0o600)
        acl = alice.getfacl("/home/alice/f")
        acl.set_user(1001, R_OK | W_OK)
        acl.mask = 0
        alice.setfacl("/home/alice/f", acl)
        bob = as_user(cluster, BOB)
        with pytest.raises(PermissionDenied):
            bob.read_file("/home/alice/f")

    def test_acl_on_directory_controls_entry(self, setup):
        cluster, root = setup
        alice = as_user(cluster, ALICE)
        acl = alice.getfacl("/home/alice")
        acl.set_user(1001, R_OK | X_OK)
        alice.setfacl("/home/alice", acl)
        alice.write_file("/home/alice/f", b"ok", 0o644)
        bob = as_user(cluster, BOB)
        assert bob.read_file("/home/alice/f") == b"ok"

    def test_setfacl_requires_owner(self, setup):
        cluster, root = setup
        alice = as_user(cluster, ALICE)
        alice.write_file("/home/alice/f", b"")
        root.chmod("/home/alice", 0o755)
        bob = as_user(cluster, BOB)
        acl = Acl.from_mode(0o777)
        with pytest.raises(NotPermitted):
            bob.setfacl("/home/alice/f", acl)

    def test_acl_survives_storage_roundtrip(self, setup, sim):
        cluster, root = setup
        alice = as_user(cluster, ALICE)
        alice.write_file("/home/alice/f", b"", 0o600)
        acl = alice.getfacl("/home/alice/f")
        acl.set_user(42, 5)
        alice.setfacl("/home/alice/f", acl)
        # Push metadata through journal checkpoint, then read from the other
        # client (loads the inode from object storage via its own lease).
        sim.run(until=sim.now + 3)
        bob_view = as_user(cluster, ROOT_CREDS, i=1)
        got = bob_view.getfacl("/home/alice/f")
        assert got.named_users == {42: 5}

    def test_chmod_updates_acl_mask(self, setup):
        cluster, root = setup
        alice = as_user(cluster, ALICE)
        alice.write_file("/home/alice/f", b"", 0o660)
        acl = alice.getfacl("/home/alice/f")
        acl.set_user(1001, 7)
        alice.setfacl("/home/alice/f", acl)
        alice.chmod("/home/alice/f", 0o600)
        got = alice.getfacl("/home/alice/f")
        assert got.mask == 0


class TestPermissionCacheSemantics:
    def test_pcache_serves_stale_perm_until_expiry(self, cluster, sim):
        """In pcache mode a permission change becomes visible to other
        clients only after the lease period (the paper's relaxation)."""
        assert cluster.params.permission_cache
        root0 = SyncFS(cluster.client(0), ROOT_CREDS)
        root0.makedirs("/data/proj")
        root0.chmod("/data", 0o755)
        root0.chmod("/data/proj", 0o755)
        root0.write_file("/data/proj/f", b"x", 0o644)
        bob = SyncFS(cluster.client(1), BOB)
        assert bob.read_file("/data/proj/f") == b"x"  # warms client1's pcache
        root0.chmod("/data", 0o700)  # lock /data down
        # Within the lease period the cached permission still allows entry.
        assert bob.read_file("/data/proj/f") == b"x"
        # After expiry the new permissions are enforced.
        sim.run(until=sim.now + cluster.params.lease_period + 1)
        with pytest.raises(PermissionDenied):
            bob.read_file("/data/proj/f")
