"""Per-directory metadata tables: load path and local operations."""

import pytest

from repro.core import PRT, Metatable, RemoteTable, load_metatable
from repro.core.types import Dentry, Inode
from repro.objectstore import InMemoryObjectStore
from repro.posix import FileType, NotFound
from repro.sim import Simulator


def dir_inode(ino=100):
    return Inode(ino=ino, ftype=FileType.DIRECTORY, mode=0o755, uid=0, gid=0)


def file_inode(ino, size=0):
    return Inode(ino=ino, ftype=FileType.REGULAR, mode=0o644, uid=0, gid=0,
                 size=size)


class TestMetatable:
    def test_add_lookup_remove(self):
        mt = Metatable(dir_inode=dir_inode())
        d = Dentry("f", 7, FileType.REGULAR)
        mt.add(d, file_inode(7))
        assert mt.lookup("f") == d
        assert mt.child_inode(7).ino == 7
        assert mt.has("f")
        removed = mt.remove("f")
        assert removed == d
        assert not mt.has("f")
        with pytest.raises(NotFound):
            mt.lookup("f")
        with pytest.raises(NotFound):
            mt.child_inode(7)

    def test_remove_missing_raises(self):
        mt = Metatable(dir_inode=dir_inode())
        with pytest.raises(NotFound):
            mt.remove("ghost")

    def test_directory_children_have_no_inode_here(self):
        mt = Metatable(dir_inode=dir_inode())
        mt.add(Dentry("sub", 8, FileType.DIRECTORY), None)
        assert mt.has("sub")
        with pytest.raises(NotFound):
            mt.child_inode(8)

    def test_names_sorted_and_empty(self):
        mt = Metatable(dir_inode=dir_inode())
        assert mt.is_empty
        for n in ["c", "a", "b"]:
            mt.add(Dentry(n, hash(n) & 0xFFFF, FileType.REGULAR), None)
        assert mt.names() == ["a", "b", "c"]
        assert not mt.is_empty

    def test_dir_ino_property(self):
        mt = Metatable(dir_inode=dir_inode(123))
        assert mt.dir_ino == 123


class TestRemoteTable:
    def test_validity_window(self):
        rt = RemoteTable(5, "client3", expires_at=10.0)
        assert rt.valid(9.9)
        assert not rt.valid(10.0)
        assert rt.leader == "client3"


class TestLoadMetatable:
    def test_loads_dentries_and_file_inodes(self):
        sim = Simulator()
        prt = PRT(InMemoryObjectStore(sim), 1024)
        di = dir_inode(50)
        sim.run_process(prt.put_inode(di))
        sim.run_process(prt.put_dentry(50, Dentry("reg", 51, FileType.REGULAR)))
        sim.run_process(prt.put_inode(file_inode(51, size=9)))
        sim.run_process(prt.put_dentry(50, Dentry("sub", 52,
                                                  FileType.DIRECTORY)))
        sim.run_process(prt.put_inode(dir_inode(52)))
        link = Inode(ino=53, ftype=FileType.SYMLINK, mode=0o777, uid=0,
                     gid=0, symlink_target="/x")
        sim.run_process(prt.put_dentry(50, Dentry("ln", 53,
                                                  FileType.SYMLINK)))
        sim.run_process(prt.put_inode(link))

        mt = sim.run_process(load_metatable(prt, di, None,
                                            lease_expires=5.0, epoch=2))
        assert mt.names() == ["ln", "reg", "sub"]
        assert mt.child_inode(51).size == 9
        assert mt.child_inode(53).symlink_target == "/x"
        # Subdirectory inodes stay in their own metatables.
        with pytest.raises(NotFound):
            mt.child_inode(52)
        assert mt.lease_expires == 5.0
        assert mt.epoch == 2
        # The load copies the dir inode (mutations don't leak back).
        mt.dir_inode.mode = 0o000
        assert di.mode == 0o755

    def test_loads_empty_directory(self):
        sim = Simulator()
        prt = PRT(InMemoryObjectStore(sim), 1024)
        di = dir_inode(60)
        sim.run_process(prt.put_inode(di))
        mt = sim.run_process(load_metatable(prt, di, None, 1.0, 1))
        assert mt.is_empty
