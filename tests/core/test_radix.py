"""RadixTree: the cache index (unit + property tests)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RadixTree


def test_empty_tree():
    t = RadixTree()
    assert len(t) == 0
    assert not t
    assert t.get(0) is None
    assert 5 not in t
    assert list(t.items()) == []


def test_set_get_single():
    t = RadixTree()
    t.set(0, "a")
    assert t.get(0) == "a"
    assert len(t) == 1
    assert 0 in t


def test_overwrite_does_not_grow():
    t = RadixTree()
    t.set(3, "x")
    t.set(3, "y")
    assert t.get(3) == "y"
    assert len(t) == 1


def test_large_keys_grow_height():
    t = RadixTree()
    t.set(0, "small")
    assert t.height == 1
    t.set(1 << 18, "big")  # needs 4 levels of 6 bits
    assert t.height == 4
    assert t.get(0) == "small"
    assert t.get(1 << 18) == "big"


def test_shallow_depth_for_typical_file():
    """A 1 GiB file of 2 MiB objects has max index 511: 2 levels."""
    t = RadixTree()
    t.set(511, object())
    assert t.height <= 2


def test_delete():
    t = RadixTree()
    t.set(7, "v")
    assert t.delete(7) is True
    assert t.get(7) is None
    assert len(t) == 0
    assert t.delete(7) is False


def test_delete_prunes_to_empty():
    t = RadixTree()
    t.set(1 << 12, "v")
    t.delete(1 << 12)
    assert t.height == 0
    assert not t


def test_items_in_key_order():
    t = RadixTree()
    for k in [100, 3, 77, 0, 65]:
        t.set(k, k * 10)
    assert list(t.items()) == [(0, 0), (3, 30), (65, 650), (77, 770),
                               (100, 1000)]
    assert list(t.keys()) == [0, 3, 65, 77, 100]


def test_negative_key_rejected():
    t = RadixTree()
    with pytest.raises(ValueError):
        t.set(-1, "x")
    assert t.get(-1) is None
    assert t.delete(-1) is False


def test_none_value_rejected():
    t = RadixTree()
    with pytest.raises(ValueError):
        t.set(0, None)


def test_clear():
    t = RadixTree()
    for k in range(50):
        t.set(k, k)
    t.clear()
    assert len(t) == 0
    assert t.get(10) is None


def test_get_beyond_height_is_none():
    t = RadixTree()
    t.set(1, "x")
    assert t.get(1 << 30) is None


@settings(max_examples=60)
@given(st.lists(st.tuples(st.integers(0, 1 << 24),
                          st.sampled_from(["set", "del"])), max_size=200))
def test_matches_dict_reference(operations):
    """The radix tree behaves exactly like a dict under set/delete."""
    t = RadixTree()
    ref = {}
    for key, op in operations:
        if op == "set":
            t.set(key, key ^ 0xABC)
            ref[key] = key ^ 0xABC
        else:
            assert t.delete(key) == (key in ref)
            ref.pop(key, None)
    assert len(t) == len(ref)
    assert dict(t.items()) == ref
    assert list(t.keys()) == sorted(ref)


@given(st.sets(st.integers(0, 1 << 20), max_size=80))
def test_delete_everything_empties_tree(keys):
    t = RadixTree()
    for k in keys:
        t.set(k, "v")
    for k in keys:
        assert t.delete(k)
    assert len(t) == 0
    assert t.height == 0
