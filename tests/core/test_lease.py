"""Lease manager protocol: FCFS, extension, redirect, fencing, restart."""

import pytest

from repro.core.lease import LeaseGrant, LeaseManager, LeaseRedirect, LeaseWait
from repro.core.params import DEFAULT_PARAMS
from repro.sim import Network, Node, Simulator


@pytest.fixture
def env():
    sim = Simulator()
    net = Network(sim)
    mgr_node = Node(sim, "mgr", net=net)
    client_node = Node(sim, "c", net=net)
    mgr = LeaseManager(sim, mgr_node, DEFAULT_PARAMS)
    return sim, mgr, mgr_node, client_node


def call(sim, src, dst, method, *args):
    return sim.run_process(src.call(dst, method, *args))


class TestAcquire:
    def test_first_come_first_served(self, env):
        sim, mgr, mnode, cnode = env
        g = call(sim, cnode, mnode, "lease.acquire", 42, "alice")
        assert isinstance(g, LeaseGrant)
        assert g.fresh and not g.needs_recovery
        r = call(sim, cnode, mnode, "lease.acquire", 42, "bob")
        assert isinstance(r, LeaseRedirect)
        assert r.leader == "alice"

    def test_same_holder_extension_not_fresh(self, env):
        sim, mgr, mnode, cnode = env
        g1 = call(sim, cnode, mnode, "lease.acquire", 42, "alice")
        g2 = call(sim, cnode, mnode, "lease.acquire", 42, "alice")
        assert not g2.fresh
        assert g2.expires_at >= g1.expires_at
        assert g2.epoch == g1.epoch

    def test_lease_duration_matches_params(self, env):
        sim, mgr, mnode, cnode = env
        g = call(sim, cnode, mnode, "lease.acquire", 42, "alice")
        assert g.expires_at == pytest.approx(
            sim.now + DEFAULT_PARAMS.lease_period, abs=0.01)

    def test_expired_unclean_lease_requires_fencing(self, env):
        sim, mgr, mnode, cnode = env
        g = call(sim, cnode, mnode, "lease.acquire", 42, "alice")
        # alice never releases; lease expires.
        sim.run(until=g.expires_at + 0.1)
        w = call(sim, cnode, mnode, "lease.acquire", 42, "bob")
        assert isinstance(w, LeaseWait)
        assert "fencing" in w.reason
        # After the fence, bob gets it with recovery flagged.
        sim.run(until=w.retry_at + 0.1)
        g2 = call(sim, cnode, mnode, "lease.acquire", 42, "bob")
        assert isinstance(g2, LeaseGrant)
        assert g2.needs_recovery and g2.fresh
        assert g2.epoch == g.epoch + 1

    def test_clean_release_allows_immediate_regrant(self, env):
        sim, mgr, mnode, cnode = env
        call(sim, cnode, mnode, "lease.acquire", 42, "alice")
        assert call(sim, cnode, mnode, "lease.release", 42, "alice", True)
        g = call(sim, cnode, mnode, "lease.acquire", 42, "bob")
        assert isinstance(g, LeaseGrant)
        assert not g.needs_recovery

    def test_release_by_non_holder_rejected(self, env):
        sim, mgr, mnode, cnode = env
        call(sim, cnode, mnode, "lease.acquire", 42, "alice")
        assert not call(sim, cnode, mnode, "lease.release", 42, "bob", True)

    def test_regrant_to_same_client_after_lapse_is_fresh(self, env):
        """Even the previous leader must reload after its lease lapsed
        ("the metadata in memory might be out-of-date")."""
        sim, mgr, mnode, cnode = env
        g = call(sim, cnode, mnode, "lease.acquire", 42, "alice")
        sim.run(until=g.expires_at + DEFAULT_PARAMS.lease_period + 0.1)
        g2 = call(sim, cnode, mnode, "lease.acquire", 42, "alice")
        assert isinstance(g2, LeaseGrant)
        assert g2.fresh

    def test_independent_directories_independent_leases(self, env):
        sim, mgr, mnode, cnode = env
        call(sim, cnode, mnode, "lease.acquire", 1, "alice")
        g = call(sim, cnode, mnode, "lease.acquire", 2, "bob")
        assert isinstance(g, LeaseGrant)


class TestRecoveryProtocol:
    def _crash_and_fence(self, env):
        sim, mgr, mnode, cnode = env
        g = call(sim, cnode, mnode, "lease.acquire", 42, "alice")
        sim.run(until=g.expires_at + DEFAULT_PARAMS.lease_period + 0.1)
        g2 = call(sim, cnode, mnode, "lease.acquire", 42, "bob")
        assert g2.needs_recovery
        return sim, mgr, mnode, cnode

    def test_others_wait_during_recovery(self, env):
        sim, mgr, mnode, cnode = self._crash_and_fence(env)
        w = call(sim, cnode, mnode, "lease.acquire", 42, "carol")
        assert isinstance(w, LeaseWait)
        assert "recovery" in w.reason

    def test_recovering_leader_can_reextend(self, env):
        sim, mgr, mnode, cnode = self._crash_and_fence(env)
        g = call(sim, cnode, mnode, "lease.acquire", 42, "bob")
        assert isinstance(g, LeaseGrant)
        assert g.needs_recovery  # still recovering

    def test_recovered_renews_and_unblocks(self, env):
        sim, mgr, mnode, cnode = self._crash_and_fence(env)
        assert call(sim, cnode, mnode, "lease.recovered", 42, "bob")
        r = call(sim, cnode, mnode, "lease.acquire", 42, "carol")
        assert isinstance(r, LeaseRedirect)
        assert r.leader == "bob"

    def test_recovered_by_wrong_client_rejected(self, env):
        sim, mgr, mnode, cnode = self._crash_and_fence(env)
        assert not call(sim, cnode, mnode, "lease.recovered", 42, "carol")


class TestManagerRestart:
    def test_restart_gates_grants_for_one_period(self, env):
        sim, mgr, mnode, cnode = env
        call(sim, cnode, mnode, "lease.acquire", 42, "alice")
        sim.run(until=2.0)
        mgr.crash()
        mgr.restart()
        w = call(sim, cnode, mnode, "lease.acquire", 42, "bob")
        assert isinstance(w, LeaseWait)
        assert w.reason == "manager-restarted"
        sim.run(until=w.retry_at + 0.1)
        g = call(sim, cnode, mnode, "lease.acquire", 42, "bob")
        assert isinstance(g, LeaseGrant)

    def test_crashed_manager_unreachable(self, env):
        from repro.sim import NodeDown
        sim, mgr, mnode, cnode = env
        mgr.crash()
        with pytest.raises(NodeDown):
            call(sim, cnode, mnode, "lease.acquire", 42, "x")


class TestIntrospection:
    def test_holder_of(self, env):
        sim, mgr, mnode, cnode = env
        assert mgr.holder_of(42) is None
        g = call(sim, cnode, mnode, "lease.acquire", 42, "alice")
        assert mgr.holder_of(42) == "alice"
        sim.run(until=g.expires_at + 0.1)
        assert mgr.holder_of(42) is None

    def test_stats_counted(self, env):
        sim, mgr, mnode, cnode = env
        call(sim, cnode, mnode, "lease.acquire", 1, "a")
        call(sim, cnode, mnode, "lease.acquire", 1, "a")
        call(sim, cnode, mnode, "lease.acquire", 1, "b")
        assert mgr.stats["acquire"] == 1
        assert mgr.stats["extend"] == 1
        assert mgr.stats["redirect"] == 1
