"""Packed small-file containers: log-structured packing, extent index,
seal protocol, compaction, and the fsck checks that audit them.

The archiving workloads the paper targets (Table 2) create thousands of
files far below the 2 MB data-object size; the pack layer turns their
writebacks into appends on a shared container object so ingest pays one
large PUT per ``pack_target_size`` bytes instead of one small PUT per
file. These tests pin down the semantics: reads through every state of
the pipeline (open buffer, in-flight seal, sealed container), durability
(fsync survives a client crash), index maintenance on overwrite /
truncate / unlink, multi-client visibility across lease hand-off, and
the background reclaim/compaction machinery.
"""

import pytest

from repro.core import (
    DEFAULT_PARAMS,
    PRT,
    PackExtent,
    build_arkfs,
    fsck,
    ops_clear_extents,
    ops_del_extents,
    ops_set_extents,
)
from repro.core.journal import _coalesce
from repro.objectstore.memory import InMemoryObjectStore
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator

KiB = 1024


def _params(**kw):
    base = dict(pack_enabled=True, pack_threshold=128 * KiB,
                pack_target_size=512 * KiB, pack_seal_age=0.5,
                pack_compact_live_ratio=0.5)
    base.update(kw)
    return DEFAULT_PARAMS.with_(**base)


def _build(n_clients=1, params=None, functional=True):
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=n_clients,
                          params=params or _params(), functional=functional,
                          seed=0)
    return sim, cluster


def _keys(cluster, kind):
    store = cluster.store
    backing = getattr(store, "backing", store)
    return [k for k in backing.sync_list("") if k[0] == kind]


def _settle(sim, cluster, extra=2.0):
    for c in cluster.clients:
        sim.run_process(c.sync())
    sim.run(until=sim.now + extra)


# ---------------------------------------------------------------- packing


def test_small_files_pack_into_containers():
    """N sub-threshold files produce container + index objects and NO
    per-file data objects; far fewer PUT targets than files."""
    sim, cluster = _build()
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/a")
    payloads = {}
    for i in range(16):
        data = bytes([i + 1]) * (40_000 + 100 * i)
        payloads[f"/a/f{i}"] = data
        fs.write_file(f"/a/f{i}", data)
    _settle(sim, cluster)

    assert _keys(cluster, "d") == []
    packs, indices = _keys(cluster, "p"), _keys(cluster, "x")
    assert len(indices) == 16
    assert 0 < len(packs) < 16
    st = cluster.client(0).pack.stats
    assert st["chunks_packed"] == 16
    assert st["packs_sealed"] == len(packs)
    for path, data in payloads.items():
        assert fs.read_file(path) == data


def test_reads_through_every_pipeline_state():
    """Correct bytes whether the chunk sits in the open buffer (after an
    eviction writeback, before any seal), or in a durable container read
    via ranged GET."""
    # Tiny cache forces eviction writebacks; huge seal age keeps the
    # evicted chunks sitting in the open buffer.
    params = _params(cache_capacity_bytes=120_000, pack_seal_age=30.0,
                     pack_target_size=8 * 1024 * 1024)
    sim, cluster = _build(params=params)
    client = cluster.client(0)
    fs = SyncFS(client, ROOT_CREDS)
    fs.mkdir("/a")
    payloads = {}
    for i in range(8):
        data = bytes([i + 1]) * 50_000
        payloads[f"/a/f{i}"] = data
        fs.write_file(f"/a/f{i}", data)
    # f0..f5 were evicted into the open pack buffer; no container yet.
    assert _keys(cluster, "p") == []
    before = client.pack.stats["buffer_reads"]
    assert fs.read_file("/a/f0") == payloads["/a/f0"]
    assert client.pack.stats["buffer_reads"] > before
    # fsync seals; after dropping caches the reads are ranged GETs.
    _settle(sim, cluster)
    sim.run_process(client.drop_caches())
    assert _keys(cluster, "p")
    before = client.pack.stats["packed_reads"]
    for path, data in payloads.items():
        assert fs.read_file(path) == data
    assert client.pack.stats["packed_reads"] > before


def _ino(fs, path):
    return fs.stat(path).st_ino


def test_fsync_makes_packed_data_crash_durable():
    """fsync forces a seal + extent-index commit; the bytes survive the
    writing client's crash and are served to another client."""
    sim, cluster = _build(n_clients=2)
    c0, c1 = cluster.client(0), cluster.client(1)
    fs0 = SyncFS(c0, ROOT_CREDS)
    fs0.mkdir("/a")
    data = b"\x5a" * 60_000
    fs0.write_file("/a/f0", data, do_fsync=True)
    c0.crash()
    sim.run(until=sim.now + 2 * cluster.params.lease_period + 1)
    fs1 = SyncFS(c1, ROOT_CREDS)
    assert fs1.read_file("/a/f0") == data


def test_unfsynced_packed_data_dies_with_the_client():
    """Without fsync the bytes live only in the open buffer: a crash
    loses them (metadata-journaling semantics — name and size may
    survive via the journal, the content reads as zeros)."""
    sim, cluster = _build(n_clients=2)
    c0, c1 = cluster.client(0), cluster.client(1)
    fs0 = SyncFS(c0, ROOT_CREDS)
    fs0.mkdir("/a")
    fs0.write_file("/a/f0", b"\x11" * 50_000)
    sim.run(until=sim.now + 2.5)   # journal commits metadata; no seal yet?
    c0.crash()
    sim.run(until=sim.now + 2 * cluster.params.lease_period + 1)
    fs1 = SyncFS(c1, ROOT_CREDS)
    if fs1.exists("/a/f0"):
        got = fs1.read_file("/a/f0")
        assert got in (b"\x11" * 50_000, b"\x00" * len(got), b"")


def test_large_files_keep_plain_objects():
    """Chunks at/above the threshold bypass the pack layer entirely."""
    sim, cluster = _build()
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/a")
    big = b"\x42" * (4 * 1024 * 1024)   # two full 2 MB chunks
    fs.write_file("/a/big", big, do_fsync=True)
    _settle(sim, cluster)
    assert len(_keys(cluster, "d")) == 2
    assert cluster.client(0).pack.stats["chunks_packed"] == 0
    assert fs.read_file("/a/big") == big


def test_overwrite_with_large_data_removes_stale_extent():
    """A packed file rewritten past the threshold moves to a plain
    object and its extent-index entry disappears (extent-wins would
    otherwise serve the stale bytes)."""
    sim, cluster = _build()
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/a")
    fs.write_file("/a/f0", b"\x01" * 50_000, do_fsync=True)
    big = b"\x02" * 300_000             # above the 128 KiB threshold
    fs.write_file("/a/f0", big, do_fsync=True)
    _settle(sim, cluster)
    assert fs.read_file("/a/f0") == big
    prt = cluster.prt
    ino = _ino(fs, "/a/f0")
    extents = sim.run_process(prt.read_extent_index(ino))
    assert 0 not in extents
    report = sim.run_process(fsck(prt))
    assert report.clean, report.summary()


def test_overwrite_small_replaces_extent():
    """Rewriting a packed file with new small content updates the index;
    old container bytes are accounted dead."""
    sim, cluster = _build()
    client = cluster.client(0)
    fs = SyncFS(client, ROOT_CREDS)
    fs.mkdir("/a")
    fs.write_file("/a/f0", b"\x01" * 50_000, do_fsync=True)
    fs.write_file("/a/f0", b"\x02" * 50_000, do_fsync=True)
    _settle(sim, cluster)
    assert fs.read_file("/a/f0") == b"\x02" * 50_000
    assert client.pack.stats["dead_bytes"] >= 50_000
    sim.run_process(client.drop_caches())
    assert fs.read_file("/a/f0") == b"\x02" * 50_000


def test_unlink_purges_index_and_ticker_reclaims_containers():
    """Unlinking packed files deletes their extent indices; once every
    extent of a container is dead the ticker deletes the container."""
    sim, cluster = _build()
    client = cluster.client(0)
    fs = SyncFS(client, ROOT_CREDS)
    fs.mkdir("/a")
    for i in range(8):
        fs.write_file(f"/a/f{i}", bytes([i + 1]) * 50_000)
    _settle(sim, cluster)
    assert _keys(cluster, "p")
    for i in range(8):
        fs.unlink(f"/a/f{i}")
    _settle(sim, cluster, extra=4.0)
    assert _keys(cluster, "x") == []
    assert _keys(cluster, "p") == []
    st = client.pack.stats
    assert st["containers_purged"] > 0
    assert st["reclaimed_bytes"] > 0
    report = sim.run_process(fsck(cluster.prt))
    assert report.clean, report.summary()


def test_compaction_rewrites_mostly_dead_containers():
    """Deleting most files of a container drops its live ratio below the
    threshold; the compactor rewrites the survivors into a fresh
    container and purges the old one — reads stay correct throughout."""
    sim, cluster = _build(params=_params(pack_compact_live_ratio=0.8))
    client = cluster.client(0)
    fs = SyncFS(client, ROOT_CREDS)
    fs.mkdir("/a")
    payloads = {}
    for i in range(24):
        data = bytes([i + 1]) * 50_000
        payloads[f"/a/f{i}"] = data
        fs.write_file(f"/a/f{i}", data)
    _settle(sim, cluster)
    for i in range(24):
        if i % 3 != 0:
            fs.unlink(f"/a/f{i}")
            del payloads[f"/a/f{i}"]
    _settle(sim, cluster, extra=5.0)
    st = client.pack.stats
    assert st["compactions"] > 0
    assert st["compacted_bytes"] > 0
    sim.run_process(client.drop_caches())
    for path, data in payloads.items():
        assert fs.read_file(path) == data
    # Compaction restored the live ratio: fsck sees no compaction debt.
    report = sim.run_process(fsck(cluster.prt))
    assert report.clean, report.summary()
    assert not any("live ratio" in w for w in report.warnings), \
        report.summary()


def test_truncate_trims_extents():
    """Truncating a packed file updates the extent index (shrinking the
    boundary extent / deleting past-EOF ones) so fsck stays clean."""
    sim, cluster = _build()
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/a")
    data = b"\x33" * 100_000
    fs.write_file("/a/f0", data, do_fsync=True)
    _settle(sim, cluster)
    fs.truncate("/a/f0", 30_000)
    _settle(sim, cluster)
    assert fs.read_file("/a/f0") == data[:30_000]
    report = sim.run_process(fsck(cluster.prt))
    assert report.clean, report.summary()
    ino = _ino(fs, "/a/f0")
    extents = sim.run_process(cluster.prt.read_extent_index(ino))
    assert extents[0].length == 30_000


def test_cross_client_visibility_after_revocation():
    """A second client opening a packed file revokes the writer's lease:
    the publish path seals + checkpoints the extent deltas, and the
    reader resolves them from the store."""
    sim, cluster = _build(n_clients=2)
    c0, c1 = cluster.client(0), cluster.client(1)
    fs0, fs1 = SyncFS(c0, ROOT_CREDS), SyncFS(c1, ROOT_CREDS)
    fs0.mkdir("/a")
    data = b"\x77" * 70_000
    fs0.write_file("/a/f0", data)
    assert fs1.read_file("/a/f0") == data
    # And after the writer also crashes, the data is already durable.
    c0.crash()
    sim.run(until=sim.now + 2 * cluster.params.lease_period + 1)
    assert fs1.read_file("/a/f0") == data


def test_crash_restart_keeps_container_ids_unique():
    """A restarted client must not reuse container ids: pre-crash
    containers may still hold live extents a new PUT would clobber."""
    sim, cluster = _build()
    client = cluster.client(0)
    fs = SyncFS(client, ROOT_CREDS)
    fs.mkdir("/a")
    fs.write_file("/a/f0", b"\x01" * 50_000, do_fsync=True)
    seq_before = client.pack._seq
    assert seq_before > 0
    client.crash()
    sim.run(until=sim.now + 2 * cluster.params.lease_period + 1)
    client.restart()
    assert client.pack._seq == seq_before
    fs.write_file("/a/f1", b"\x02" * 50_000, do_fsync=True)
    _settle(sim, cluster)
    assert client.pack._seq > seq_before
    assert fs.read_file("/a/f0") == b"\x01" * 50_000
    assert fs.read_file("/a/f1") == b"\x02" * 50_000


def test_direct_io_reads_and_writes_extents():
    """The DIRECT (contended) data path bypasses the cache: PRT itself
    must resolve and maintain the extent index."""
    sim, cluster = _build()
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/a")
    data = b"\x66" * 50_000
    fs.write_file("/a/f0", data, do_fsync=True)
    _settle(sim, cluster)
    prt = cluster.prt
    ino = _ino(fs, "/a/f0")
    got = sim.run_process(prt.read_data(ino, 0, len(data), len(data)))
    assert got == data
    # A partial direct write RMWs the packed base and unpacks the chunk.
    sim.run_process(prt.write_data(ino, 1000, b"\xff" * 10))
    got = sim.run_process(prt.read_data(ino, 0, len(data), len(data)))
    assert got == data[:1000] + b"\xff" * 10 + data[1010:]
    extents = sim.run_process(prt.read_extent_index(ino))
    assert 0 not in extents


# ------------------------------------------------------------ journal ops


def test_extents_ops_coalesce():
    """Per-file extent deltas merge inside one compound transaction: set
    beats del, clear resets, later sets override earlier ones."""
    ops = [
        ops_set_extents(7, {0: PackExtent("p1", 0, 10),
                            1: PackExtent("p1", 10, 10)}),
        ops_del_extents(7, [1]),
        ops_set_extents(7, {2: PackExtent("p2", 0, 5)}),
    ]
    out = _coalesce(ops)
    assert len(out) == 1
    op = out[0]
    assert op["op"] == "extents" and not op.get("clear")
    assert set(op["set"]) == {"0", "2"}
    assert op["del"] == [1]

    out = _coalesce(ops + [ops_clear_extents(7)])
    assert len(out) == 1
    assert out[0]["clear"] and not out[0]["set"] and not out[0]["del"]

    # set after del revives the entry
    out = _coalesce([ops_del_extents(7, [3]),
                     ops_set_extents(7, {3: PackExtent("p3", 0, 4)})])
    assert out[0]["del"] == [] and set(out[0]["set"]) == {"3"}

    # different files never merge
    out = _coalesce([ops_set_extents(7, {0: PackExtent("p1", 0, 1)}),
                     ops_set_extents(8, {0: PackExtent("p1", 1, 1)})])
    assert len(out) == 2


def test_apply_extent_delta_is_idempotent():
    """Journal replay may apply the same delta twice; the index RMW must
    converge (and delete the index object when it empties)."""
    sim = Simulator()
    store = InMemoryObjectStore(sim)
    prt = PRT(store, 2 * 1024 * 1024, pack_enabled=True)
    ino = 0x1234

    def apply(**kw):
        return sim.run_process(prt.apply_extent_delta(ino, **kw))

    apply(set_map={0: PackExtent("p1", 0, 100), 1: PackExtent("p1", 100, 50)})
    apply(set_map={0: PackExtent("p1", 0, 100), 1: PackExtent("p1", 100, 50)})
    got = sim.run_process(prt.read_extent_index(ino))
    assert got == {0: PackExtent("p1", 0, 100), 1: PackExtent("p1", 100, 50)}
    apply(del_list=[0])
    apply(del_list=[0])
    got = sim.run_process(prt.read_extent_index(ino))
    assert got == {1: PackExtent("p1", 100, 50)}
    apply(clear=True)
    apply(clear=True)
    assert sim.run_process(prt.read_extent_index(ino)) == {}
    assert sim.run_process(store.list("x")) == []


def test_read_extent_clips_to_extent_bounds():
    sim = Simulator()
    store = InMemoryObjectStore(sim)
    prt = PRT(store, 2 * 1024 * 1024, pack_enabled=True)
    sim.run_process(store.put("pc-1", b"0123456789"))
    ext = PackExtent("c-1", 2, 6)   # bytes "234567"
    assert sim.run_process(prt.read_extent(ext)) == b"234567"
    assert sim.run_process(prt.read_extent(ext, off=2, length=2)) == b"45"
    assert sim.run_process(prt.read_extent(ext, off=4, length=100)) == b"67"
    assert sim.run_process(prt.read_extent(ext, off=6)) == b""


# ------------------------------------------------------------------- fsck


def _mini_fs(sim, store):
    """A store holding one valid packed file rooted at /f (built by hand
    so each fsck case can break exactly one invariant)."""
    from repro.core import Dentry, Inode, ROOT_INO, mkfs
    from repro.posix.types import FileType
    prt = PRT(store, 2 * 1024 * 1024, pack_enabled=True)
    mkfs(sim, store)
    ino = 0xabcd
    inode = Inode(ino=ino, ftype=FileType.REGULAR, mode=0o644, uid=0, gid=0,
                  size=100)
    sim.run_process(store.put(PRT.key_inode(ino), inode.to_bytes()))
    dentry = Dentry(name="f", ino=ino, ftype=FileType.REGULAR)
    sim.run_process(store.put(PRT.key_dentry(ROOT_INO, "f"),
                              dentry.to_bytes()))
    sim.run_process(store.put("pc-1", b"\x00" * 100))
    sim.run_process(prt.apply_extent_delta(
        ino, set_map={0: PackExtent("c-1", 0, 100)}))
    return prt, ino


def test_fsck_clean_on_valid_packed_layout():
    sim = Simulator()
    store = InMemoryObjectStore(sim)
    prt, _ino = _mini_fs(sim, store)
    report = sim.run_process(fsck(prt))
    assert report.clean, report.summary()
    assert report.n_containers == 1
    assert report.n_extents == 1


def test_fsck_detects_dangling_container():
    """A container nobody references: hard error normally, downgraded to
    a warning after a crash (a seal that died before its index commit)."""
    sim = Simulator()
    store = InMemoryObjectStore(sim)
    prt, _ino = _mini_fs(sim, store)
    sim.run_process(store.put("pc-orphan", b"\x00" * 64))
    report = sim.run_process(fsck(prt))
    assert not report.clean
    assert any("no referenced extents" in e for e in report.errors)
    report = sim.run_process(fsck(prt, after_crash=True))
    assert report.clean
    assert any("no referenced extents" in w for w in report.warnings)


def test_fsck_detects_dangling_extent():
    sim = Simulator()
    store = InMemoryObjectStore(sim)
    prt, ino = _mini_fs(sim, store)
    sim.run_process(store.delete("pc-1"))
    report = sim.run_process(fsck(prt))
    assert any("missing container" in e for e in report.errors)
    report = sim.run_process(fsck(prt, after_crash=True))
    assert report.clean
    assert any("missing container" in w for w in report.warnings)


def test_fsck_detects_extent_past_container_end():
    sim = Simulator()
    store = InMemoryObjectStore(sim)
    prt, ino = _mini_fs(sim, store)
    sim.run_process(prt.apply_extent_delta(
        ino, set_map={0: PackExtent("c-1", 50, 100)}))
    report = sim.run_process(fsck(prt, after_crash=True))
    assert not report.clean
    assert any("past the end of container" in e for e in report.errors)


def test_fsck_detects_extent_past_eof_and_double_copy():
    sim = Simulator()
    store = InMemoryObjectStore(sim)
    prt, ino = _mini_fs(sim, store)
    # extent for a chunk past EOF
    sim.run_process(prt.apply_extent_delta(
        ino, set_map={5: PackExtent("c-1", 0, 10)}))
    # plain object duplicating the packed chunk 0
    sim.run_process(store.put(PRT.key_data(ino, 0), b"\x01" * 100))
    report = sim.run_process(fsck(prt))
    text = "\n".join(report.errors)
    assert "past EOF" in text
    assert "both a packed extent and a plain data object" in text
    report = sim.run_process(fsck(prt, after_crash=True))
    assert report.clean, report.summary()


def test_fsck_detects_index_for_dead_inode_and_low_live_ratio():
    sim = Simulator()
    store = InMemoryObjectStore(sim)
    prt, ino = _mini_fs(sim, store)
    # Move the file's only extent into a big container where it covers
    # just 10%: compaction debt. The original container loses its last
    # reference. Also leave an index behind for an inode that's gone.
    sim.run_process(store.put("pc-2", b"\x00" * 1000))
    sim.run_process(prt.apply_extent_delta(
        ino, set_map={0: PackExtent("c-2", 0, 100)}))
    sim.run_process(prt.apply_extent_delta(
        0xdead, set_map={0: PackExtent("c-2", 900, 50)}))
    report = sim.run_process(fsck(prt))
    assert any("extent index for nonexistent inode" in e
               for e in report.errors)
    report = sim.run_process(fsck(prt, after_crash=True))
    assert report.clean
    assert any("live ratio" in w for w in report.warnings), report.summary()
    assert any("no referenced extents" in w for w in report.warnings)


def test_fsck_detects_unparseable_index():
    sim = Simulator()
    store = InMemoryObjectStore(sim)
    prt, ino = _mini_fs(sim, store)
    sim.run_process(store.put(PRT.key_extent_index(ino), b"not-json"))
    report = sim.run_process(fsck(prt, after_crash=True))
    assert any("unparseable extent index" in e for e in report.errors)


# --------------------------------------------------- stress + consistency


@pytest.mark.parametrize("seed", [0, 1])
def test_mixed_workload_settles_clean(seed):
    """A mixed small/large create/overwrite/unlink/truncate workload on
    the realistic store settles to a clean fsck with correct contents."""
    import random
    rng = random.Random(seed)
    sim, cluster = _build(n_clients=2, functional=False)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/w")
    expect = {}
    for step in range(40):
        op = rng.random()
        name = f"/w/f{rng.randrange(12)}"
        if op < 0.55 or name not in expect:
            n = rng.choice([500, 5_000, 60_000, 300_000])
            data = bytes([rng.randrange(1, 255)]) * n
            fs.write_file(name, data, do_fsync=(step % 5 == 0))
            expect[name] = data
        elif op < 0.75:
            fs.unlink(name)
            del expect[name]
        else:
            new_size = rng.randrange(0, len(expect[name]) + 1)
            fs.truncate(name, new_size)
            expect[name] = expect[name][:new_size]
    _settle(sim, cluster, extra=6.0)
    _settle(sim, cluster, extra=2.0)
    sim.run_process(cluster.client(0).drop_caches())
    for path, data in sorted(expect.items()):
        assert fs.read_file(path) == data, path
    report = sim.run_process(fsck(cluster.prt))
    assert report.clean, report.summary()
