"""Model-based property suite: ArkFS vs a trivial in-memory reference FS.

Random operation sequences (two clients, shared namespace) are applied
both to the full ArkFS stack and to a dict-based oracle, and
results/errors must agree. This is the strongest semantic check in the
suite: it exercises leases, forwarding, journaling and caching together.

Two generators feed the same checker:

* Hypothesis (``test_arkfs_agrees_with_oracle``) — shrinking finds the
  minimal counterexample; Hypothesis prints its own reproduction recipe
  (``@reproduce_failure`` / the falsifying example) on failure.
* A seeded ``random.Random`` stream (``test_seeded_random_sequences``)
  — longer sequences than Hypothesis can afford, parametrized over fixed
  seeds and overridable with ``REPRO_SEED=<int>``. Any failure message
  carries the seed, so a CI failure is replayable verbatim with
  ``REPRO_SEED=<seed> pytest tests/core/test_model_based.py -k seeded``.
"""

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import build_arkfs, fsck
from repro.core.params import DEFAULT_PARAMS
from repro.posix import FSError, OpenFlags, ROOT_CREDS, SyncFS
from repro.sim import Simulator


DIRS = ["/d0", "/d1", "/d0/sub"]
FILES = ["f0", "f1", "f2"]
PLACES = ["/"] + DIRS

# Sharded-directory mode: a threshold of 3 makes every directory that ever
# holds three dentries split into hash-ranged sub-shards, so the same op
# sequences span the split (creates/lookups/renames/readdirs route across
# shard ranges) while the flat oracle stays oblivious — sharding must be
# semantically invisible.
SHARD_PARAMS = DEFAULT_PARAMS.with_(shards_enabled=True,
                                    shard_split_threshold=3,
                                    shard_fanout=4)

# QoS mode: rates low enough that the op bucket actually throttles during
# a sequence (each fs op is several authority ops), proving the plane's
# delays and tenant-tagged queues change *when* ops run but never their
# semantics. In-flight stays loose: the SyncFS clients run one op at a
# time, so a tight cap would never fire here (admission is exercised by
# tests/core/test_qos_isolation.py) while a cap of 1 would make every
# EAGAIN an oracle divergence.
QOS_PARAMS = DEFAULT_PARAMS.with_(qos_enabled=True,
                                  qos_ops_rate=40.0,
                                  qos_ops_burst=4.0)


class Oracle:
    """Reference model: a dict of path -> bytes, set of dirs."""

    def __init__(self):
        self.dirs = {"/"}
        self.files = {}

    def parent_ok(self, path):
        parent = path.rsplit("/", 1)[0] or "/"
        return parent in self.dirs

    def mkdir(self, path):
        if path in self.dirs or path in self.files:
            return "EEXIST"
        if not self.parent_ok(path):
            return "ENOENT"
        self.dirs.add(path)
        return "ok"

    def rmdir(self, path):
        if path == "/":
            return "EINVAL"
        if path in self.files:
            return "ENOTDIR"
        if path not in self.dirs:
            return "ENOENT"
        if any(d != path and d.startswith(path + "/") for d in self.dirs) or \
           any(f.startswith(path + "/") for f in self.files):
            return "ENOTEMPTY"
        self.dirs.discard(path)
        return "ok"

    def create(self, path):
        """O_CREAT|O_EXCL: fails if anything is already at the path."""
        if path in self.dirs or path in self.files:
            return "EEXIST"
        if not self.parent_ok(path):
            return "ENOENT"
        self.files[path] = b""
        return "ok"

    def write(self, path, data):
        if path in self.dirs:
            return "EISDIR"
        if not self.parent_ok(path):
            return "ENOENT"
        self.files[path] = data
        return "ok"

    def read(self, path):
        if path in self.dirs:
            return "EISDIR"
        if path not in self.files:
            return "ENOENT"
        return self.files[path]

    def unlink(self, path):
        if path in self.dirs:
            return "EISDIR"
        if path not in self.files:
            return "ENOENT"
        del self.files[path]
        return "ok"

    def listdir(self, path):
        if path in self.files:
            return "ENOTDIR"
        if path not in self.dirs:
            return "ENOENT"
        prefix = path.rstrip("/") + "/"
        names = set()
        for p in list(self.dirs) + list(self.files):
            if p != path and p.startswith(prefix):
                names.add(p[len(prefix):].split("/")[0])
        return sorted(names)

    def rename(self, src, dst):
        if src == "/" or dst == "/" or dst.startswith(src + "/"):
            return "EINVAL"
        if src in self.files:
            if dst in self.dirs:
                return "EISDIR"
            if not self.parent_ok(dst):
                return "ENOENT"
            self.files[dst] = self.files.pop(src)
            return "ok"
        if src in self.dirs:
            if dst in self.files:
                return "ENOTDIR"
            if dst in self.dirs:
                if self.listdir(dst):
                    return "ENOTEMPTY"
                self.dirs.discard(dst)
            if not self.parent_ok(dst):
                return "ENOENT"
            # Move the whole subtree.
            self.dirs.discard(src)
            self.dirs.add(dst)
            for d in [d for d in self.dirs if d.startswith(src + "/")]:
                self.dirs.discard(d)
                self.dirs.add(dst + d[len(src):])
            for f in [f for f in self.files if f.startswith(src + "/")]:
                self.files[dst + f[len(src):]] = self.files.pop(f)
            return "ok"
        return "ENOENT"


op_st = st.one_of(
    st.tuples(st.just("mkdir"), st.sampled_from(DIRS)),
    st.tuples(st.just("rmdir"), st.sampled_from(DIRS)),
    st.tuples(st.just("create"),
              st.tuples(st.sampled_from(PLACES), st.sampled_from(FILES))),
    st.tuples(st.just("write"),
              st.tuples(st.sampled_from(PLACES), st.sampled_from(FILES),
                        st.binary(max_size=64))),
    st.tuples(st.just("read"),
              st.tuples(st.sampled_from(PLACES), st.sampled_from(FILES))),
    st.tuples(st.just("unlink"),
              st.tuples(st.sampled_from(PLACES), st.sampled_from(FILES))),
    st.tuples(st.just("listdir"), st.sampled_from(PLACES)),
    st.tuples(st.just("rename"),
              st.tuples(st.sampled_from(PLACES), st.sampled_from(FILES),
                        st.sampled_from(PLACES), st.sampled_from(FILES))),
    st.tuples(st.just("client"), st.integers(0, 1)),
)


def random_ops(rng, n):
    """The same op distribution as ``op_st``, drawn from a seeded PRNG."""
    ops = []
    for _ in range(n):
        kind = rng.choice(["mkdir", "rmdir", "create", "write", "write",
                           "read", "unlink", "listdir", "rename", "rename",
                           "client"])
        if kind in ("mkdir", "rmdir"):
            ops.append((kind, rng.choice(DIRS)))
        elif kind in ("create", "read", "unlink"):
            ops.append((kind, (rng.choice(PLACES), rng.choice(FILES))))
        elif kind == "write":
            data = bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
            ops.append((kind, (rng.choice(PLACES), rng.choice(FILES), data)))
        elif kind == "listdir":
            ops.append((kind, rng.choice(PLACES)))
        elif kind == "rename":
            ops.append((kind, (rng.choice(PLACES), rng.choice(FILES),
                               rng.choice(PLACES), rng.choice(FILES))))
        else:
            ops.append((kind, rng.randrange(2)))
    return ops


def path_join(d, f):
    return (d.rstrip("/") + "/" + f)


def fs_result(fn, *args):
    """Run and normalize to ('ok', value) or the errno name."""
    import errno as errmod

    try:
        value = fn(*args)
        return ("ok", value)
    except FSError as e:
        return (errmod.errorcode[e.errno], None)


def fs_create(fs, path):
    """O_CREAT|O_EXCL create-and-close through the SyncFS view."""
    fs.open(path, OpenFlags.O_CREAT | OpenFlags.O_EXCL
            | OpenFlags.O_WRONLY).close()


def run_sequence(ops, params=DEFAULT_PARAMS):
    """Apply ``ops`` to a fresh 2-client cluster and the oracle in
    lockstep, asserting agreement per-op, on the final namespace from
    both clients, and from fsck. Returns the cluster (settled) so mode-
    specific tests can inspect the on-storage layout."""
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, functional=True, params=params)
    views = [SyncFS(cluster.client(0), ROOT_CREDS),
             SyncFS(cluster.client(1), ROOT_CREDS)]
    fs = views[0]
    oracle = Oracle()

    for op, arg in ops:
        if op == "client":
            fs = views[arg]
            continue
        if op == "mkdir":
            expect = oracle.mkdir(arg)
            code, _ = fs_result(fs.mkdir, arg)
            assert code == ("ok" if expect == "ok" else expect), (op, arg)
        elif op == "rmdir":
            expect = oracle.rmdir(arg)
            code, _ = fs_result(fs.rmdir, arg)
            assert code == ("ok" if expect == "ok" else expect), (op, arg)
        elif op == "create":
            d, f = arg
            path = path_join(d, f)
            expect = oracle.create(path)
            code, _ = fs_result(fs_create, fs, path)
            assert code == ("ok" if expect == "ok" else expect), (op, path)
        elif op == "write":
            d, f, data = arg
            path = path_join(d, f)
            expect = oracle.write(path, data)
            code, _ = fs_result(fs.write_file, path, data)
            assert code == ("ok" if expect == "ok" else expect), (op, path)
        elif op == "read":
            d, f = arg
            path = path_join(d, f)
            expect = oracle.read(path)
            code, value = fs_result(fs.read_file, path)
            if isinstance(expect, bytes):
                assert code == "ok" and value == expect, (op, path)
            else:
                assert code == expect, (op, path, code)
        elif op == "unlink":
            d, f = arg
            path = path_join(d, f)
            expect = oracle.unlink(path)
            code, _ = fs_result(fs.unlink, path)
            assert code == ("ok" if expect == "ok" else expect), (op, path)
        elif op == "listdir":
            expect = oracle.listdir(arg)
            code, value = fs_result(fs.readdir, arg)
            if isinstance(expect, list):
                assert code == "ok" and value == expect, (op, arg)
            else:
                assert code == expect, (op, arg, code)
        elif op == "rename":
            sd, sf, dd, df = arg
            src, dst = path_join(sd, sf), path_join(dd, df)
            expect = oracle.rename(src, dst)
            code, _ = fs_result(fs.rename, src, dst)
            if expect == "ok":
                assert code == "ok", (op, src, dst, code)
            else:
                assert code != "ok", (op, src, dst)

    # Final state agreement from both clients' perspectives.
    for view in views:
        for d in sorted(oracle.dirs):
            assert view.stat(d).is_dir, d
            assert view.readdir(d) == oracle.listdir(d), d
        for f, data in oracle.files.items():
            assert view.read_file(f) == data, f

    # The on-storage layout must also be structurally consistent.
    for client in cluster.clients:
        sim.run_process(client.sync())
    sim.run(until=sim.now + 3)
    report = sim.run_process(fsck(cluster.prt))
    assert report.clean, report.summary()
    return cluster


def _split_happened(cluster) -> bool:
    """Did any directory actually split (a shard map exists on storage)?"""
    keys = cluster.sim.run_process(cluster.store.list("s"))
    return bool(keys)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(ops=st.lists(op_st, max_size=40))
def test_arkfs_agrees_with_oracle(ops):
    run_sequence(ops)


DEFAULT_SEEDS = [1, 7, 42, 1337, 271828]


def _seeds():
    env = os.environ.get("REPRO_SEED")
    return [int(env)] if env else DEFAULT_SEEDS


@pytest.mark.parametrize("seed", _seeds())
def test_seeded_random_sequences(seed):
    """Longer random sequences than Hypothesis can afford, from a fixed
    seed. On failure the seed is in the parametrize id AND the message:
    replay with ``REPRO_SEED=<seed> pytest -k seeded_random``."""
    print(f"model-based sequence seed: REPRO_SEED={seed}")
    ops = random_ops(random.Random(seed), 120)
    try:
        run_sequence(ops)
    except AssertionError as e:
        e.add_note(f"replay with REPRO_SEED={seed} "
                   f"pytest tests/core/test_model_based.py -k seeded_random")
        raise


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(ops=st.lists(op_st, max_size=40))
def test_arkfs_agrees_with_oracle_sharded(ops):
    """The same oracle agreement with directory sharding on and a split
    threshold low enough that any directory reaching three entries
    splits mid-sequence."""
    run_sequence(ops, params=SHARD_PARAMS)


@pytest.mark.parametrize("seed", _seeds())
def test_seeded_random_sequences_sharded(seed):
    """Seeded long sequences across directory splits: same flat oracle,
    sharding must be invisible. Replay any failure verbatim with
    ``REPRO_SEED=<seed> pytest -k seeded_random_sequences_sharded``."""
    print(f"model-based sharded sequence seed: REPRO_SEED={seed}")
    ops = random_ops(random.Random(seed), 120)
    try:
        cluster = run_sequence(ops, params=SHARD_PARAMS)
    except AssertionError as e:
        e.add_note(f"replay with REPRO_SEED={seed} pytest "
                   f"tests/core/test_model_based.py -k seeded_random_sequences_sharded")
        raise
    if not os.environ.get("REPRO_SEED"):
        # Every default seed's sequence is known to cross at least one
        # split — the mode must actually exercise sharded routing, not
        # vacuously pass below the threshold.
        assert _split_happened(cluster), \
            f"seed {seed} never split a directory"


def _qos_throttled(cluster) -> bool:
    """Did the op bucket actually delay anything during the sequence?"""
    from repro.obs import Observability

    snap = Observability.of(cluster.sim).metrics.to_dict()
    return snap["counters"].get("qos.throttle_ops", 0) > 0


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(ops=st.lists(op_st, max_size=40))
def test_arkfs_agrees_with_oracle_qos(ops):
    """The same oracle agreement with the QoS plane on and rates low
    enough to throttle mid-sequence: token-bucket sleeps and WFQ-ordered
    queues must be semantically invisible."""
    run_sequence(ops, params=QOS_PARAMS)


@pytest.mark.parametrize("seed", _seeds())
def test_seeded_random_sequences_qos(seed):
    """Seeded long sequences under active throttling: same flat oracle,
    QoS must be invisible. Replay any failure verbatim with
    ``REPRO_SEED=<seed> pytest -k seeded_random_sequences_qos``."""
    print(f"model-based qos sequence seed: REPRO_SEED={seed}")
    ops = random_ops(random.Random(seed), 120)
    try:
        cluster = run_sequence(ops, params=QOS_PARAMS)
    except AssertionError as e:
        e.add_note(f"replay with REPRO_SEED={seed} pytest "
                   f"tests/core/test_model_based.py -k seeded_random_sequences_qos")
        raise
    if not os.environ.get("REPRO_SEED"):
        # The mode must actually throttle, not vacuously pass under-rate.
        assert _qos_throttled(cluster), f"seed {seed} never throttled"
