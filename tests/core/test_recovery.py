"""Fault tolerance (Section III-E): client crashes, manager crashes,
journal replay, and 2PC rename atomicity under failures."""

import pytest

from repro.core import (
    Transaction,
    build_arkfs,
    ops_del_dentry,
    ops_put_dentry,
    ops_put_inode,
    recover_directory,
    scan_journal,
)
from repro.core.recovery import DECISION_COMMIT
from repro.core.types import Dentry, Inode
from repro.posix import FileType, NotFound, ROOT_CREDS, SyncFS
from repro.sim import Simulator


@pytest.fixture
def trio(sim):
    """Three-client functional cluster for coordinator/participant crashes."""
    return build_arkfs(sim, n_clients=3, functional=True)


def syncfs(cluster, i):
    return SyncFS(cluster.client(i), ROOT_CREDS)


def make_file_txn(cluster, dir_ino, name, content_ino, txid="tx-test"):
    """A committed-but-uncheckpointed CREATE transaction, as a crashed
    leader would leave behind."""
    inode = Inode(ino=content_ino, ftype=FileType.REGULAR, mode=0o644,
                  uid=0, gid=0, size=0)
    dentry = Dentry(name=name, ino=content_ino, ftype=FileType.REGULAR)
    return Transaction(txid, dir_ino, "update",
                       [ops_put_inode(inode), ops_put_dentry(dir_ino, dentry)])


class TestJournalReplay:
    def test_replay_applies_committed_txn(self, cluster, fs, sim):
        fs.mkdir("/d")
        dir_ino = fs.stat("/d").st_ino
        txn = make_file_txn(cluster, dir_ino, "ghostfile", 0xABCDEF)
        sim.run_process(cluster.store.put(
            cluster.prt.key_journal(dir_ino, 0), txn.to_bytes()))
        stats = sim.run_process(recover_directory(cluster.prt, dir_ino))
        assert stats["replayed"] == 1
        assert cluster.prt.key_inode(0xABCDEF) in cluster.store
        assert cluster.prt.key_dentry(dir_ino, "ghostfile") in cluster.store
        # Journal object consumed.
        assert sim.run_process(scan_journal(cluster.prt, dir_ino)) == []

    def test_replay_is_idempotent(self, cluster, fs, sim):
        fs.mkdir("/d")
        dir_ino = fs.stat("/d").st_ino
        txn = make_file_txn(cluster, dir_ino, "f", 0x1111)
        for _ in range(3):
            sim.run_process(cluster.store.put(
                cluster.prt.key_journal(dir_ino, 0), txn.to_bytes()))
            sim.run_process(recover_directory(cluster.prt, dir_ino))
        assert cluster.prt.key_inode(0x1111) in cluster.store

    def test_replay_applies_in_seq_order(self, cluster, fs, sim):
        """A later delete must win over an earlier create."""
        fs.mkdir("/d")
        dir_ino = fs.stat("/d").st_ino
        create = make_file_txn(cluster, dir_ino, "f", 0x2222, txid="t1")
        delete = Transaction("t2", dir_ino, "update",
                             [ops_del_dentry(dir_ino, "f")])
        sim.run_process(cluster.store.put(
            cluster.prt.key_journal(dir_ino, 0), create.to_bytes()))
        sim.run_process(cluster.store.put(
            cluster.prt.key_journal(dir_ino, 1), delete.to_bytes()))
        sim.run_process(recover_directory(cluster.prt, dir_ino))
        assert cluster.prt.key_dentry(dir_ino, "f") not in cluster.store

    def test_torn_journal_object_skipped(self, cluster, fs, sim):
        fs.mkdir("/d")
        dir_ino = fs.stat("/d").st_ino
        sim.run_process(cluster.store.put(
            cluster.prt.key_journal(dir_ino, 0), b"{corrupt json"))
        stats = sim.run_process(recover_directory(cluster.prt, dir_ino))
        assert stats["replayed"] == 0


class TestClientCrash:
    def test_new_leader_recovers_crashed_directory(self, cluster, sim):
        """End-to-end Section III-E scenario 1: leader crashes with a
        committed-but-uncheckpointed transaction; the next client to acquire
        the lease replays it."""
        fs0 = syncfs(cluster, 0)
        fs0.mkdir("/work")
        fs0.write_file("/work/seed", b"", do_fsync=True)  # client0 leads /work
        dir_ino = fs0.stat("/work").st_ino
        # Inject the unfinished txn a crashed leader would leave.
        txn = make_file_txn(cluster, dir_ino, "recovered.txt", 0x9999)
        sim.run_process(cluster.store.put(
            cluster.prt.key_journal(dir_ino, 42), txn.to_bytes()))
        cluster.client(0).crash()
        # Client1 acquires the lease: fencing + recovery happen inside.
        fs1 = syncfs(cluster, 1)
        names = fs1.readdir("/work")
        assert "recovered.txt" in names
        assert cluster.lease_manager.holder_of(dir_ino) == "client1"

    def test_fencing_delays_takeover_by_lease_period(self, cluster, sim):
        fs0 = syncfs(cluster, 0)
        fs0.mkdir("/w")
        fs0.write_file("/w/f", b"", do_fsync=True)
        dir_ino = fs0.stat("/w").st_ino
        sim.run_process(cluster.store.put(
            cluster.prt.key_journal(dir_ino, 0),
            make_file_txn(cluster, dir_ino, "g", 0x777).to_bytes()))
        crash_time = sim.now
        cluster.client(0).crash()
        fs1 = syncfs(cluster, 1)
        fs1.readdir("/w")
        # Takeover cannot complete before old lease expiry + one more period.
        assert sim.now >= crash_time + cluster.params.lease_period

    def test_unsynced_data_lost_but_fs_consistent(self, cluster, sim):
        """POSIX allows losing un-fsynced data; the namespace must stay
        consistent (no dangling dentries)."""
        fs0 = syncfs(cluster, 0)
        fs0.mkdir("/w")
        fs0.write_file("/w/durable", b"saved", do_fsync=True)
        sim.run(until=sim.now + 2)  # let journal commit+checkpoint
        h = fs0.create("/w/volatile")  # never committed
        h.write(b"lost")
        cluster.client(0).crash()
        fs1 = syncfs(cluster, 1)
        names = fs1.readdir("/w")
        assert "durable" in names
        assert "volatile" not in names
        assert fs1.read_file("/w/durable") == b"saved"

    def test_synced_data_survives_crash(self, cluster, sim):
        fs0 = syncfs(cluster, 0)
        fs0.mkdir("/w")
        fs0.write_file("/w/f", b"must survive", do_fsync=True)
        cluster.client(0).crash()
        fs1 = syncfs(cluster, 1)
        assert fs1.read_file("/w/f") == b"must survive"

    def test_unrelated_directories_unaffected_by_crash(self, trio, sim):
        """Clients working in other directories continue during recovery."""
        fs0, fs1, fs2 = (syncfs(trio, i) for i in range(3))
        fs0.mkdir("/crashed")
        fs0.write_file("/crashed/f", b"", do_fsync=True)
        fs1.mkdir("/healthy")
        fs1.write_file("/healthy/a", b"1")
        trio.client(0).crash()
        # fs1 keeps working immediately; no fencing for /healthy.
        t0 = sim.now
        fs1.write_file("/healthy/b", b"2")
        assert sim.now - t0 < trio.params.lease_period / 2
        assert sorted(fs1.readdir("/healthy")) == ["a", "b"]

    def test_restarted_client_rejoins(self, cluster, sim):
        fs0 = syncfs(cluster, 0)
        fs0.mkdir("/w")
        fs0.write_file("/w/f", b"x", do_fsync=True)
        cluster.client(0).crash()
        sim.run(until=sim.now + 2 * cluster.params.lease_period + 1)
        cluster.client(0).restart()
        fs0b = syncfs(cluster, 0)
        assert fs0b.read_file("/w/f") == b"x"
        fs0b.write_file("/w/new", b"post-restart")
        assert syncfs(cluster, 1).read_file("/w/new") == b"post-restart"


class TestLeaseManagerCrash:
    def test_restart_blocks_grants_for_lease_period(self, cluster, sim):
        fs0 = syncfs(cluster, 0)
        fs0.mkdir("/d")
        mgr = cluster.lease_manager
        mgr.crash()
        mgr.restart()
        restart_time = sim.now
        fs1 = syncfs(cluster, 1)
        fs1.readdir("/d")  # must wait out the startup gate
        assert sim.now >= restart_time + cluster.params.lease_period

    def test_holder_keeps_working_during_manager_outage(self, cluster, sim):
        """Section III-E scenario 2: lease holders continue until expiry."""
        fs0 = syncfs(cluster, 0)
        fs0.mkdir("/d")
        fs0.write_file("/d/a", b"1")  # client0 now leads /d
        cluster.lease_manager.crash()
        fs0.write_file("/d/b", b"2")  # still within the lease: local ops
        assert sorted(fs0.readdir("/d")) == ["a", "b"]
        cluster.lease_manager.restart()
        sim.run(until=sim.now + cluster.params.lease_period + 1)
        assert syncfs(cluster, 1).read_file("/d/b") == b"2"

    def test_no_data_lost_across_manager_restart(self, cluster, sim):
        fs0 = syncfs(cluster, 0)
        fs0.mkdir("/d")
        fs0.write_file("/d/f", b"before", do_fsync=True)
        cluster.lease_manager.crash()
        cluster.lease_manager.restart()
        sim.run(until=sim.now + cluster.params.lease_period + 1)
        assert syncfs(cluster, 1).read_file("/d/f") == b"before"


class TestTwoPhaseCommitRecovery:
    def _prepare_cross_rename(self, trio, sim):
        """Drive the two participants of a cross-dir rename up to PREPARE,
        as a crashed coordinator would leave them."""
        fs0, fs1 = syncfs(trio, 0), syncfs(trio, 1)
        fs0.mkdir("/src")
        fs1.mkdir("/dst")
        fs0.write_file("/src/f", b"payload", do_fsync=True)
        sp = fs0.stat("/src").st_ino   # client0 leads /src
        dp = fs1.stat("/dst").st_ino   # client1 claims /dst's lease
        c0, c1 = trio.client(0), trio.client(1)
        txid = "crash-rn-1"
        dkey = trio.prt.key_decision(txid)
        payload = sim.run_process(c0._op_rename_prepare_src(
            creds=None, dir_ino=sp, name="f", txid=txid, decision_key=dkey))
        sim.run_process(c1._op_rename_prepare_dst(
            creds=None, dir_ino=dp, name="f", payload=payload, txid=txid,
            decision_key=dkey))
        return sp, dp, txid, dkey

    def test_prepare_without_decision_aborts(self, trio, sim):
        """Coordinator crashed before writing the decision: recovery must
        abort — the file stays in the source directory."""
        sp, dp, txid, dkey = self._prepare_cross_rename(trio, sim)
        trio.client(0).crash()
        trio.client(1).crash()
        fs2 = syncfs(trio, 2)
        assert fs2.readdir("/src") == ["f"]
        assert fs2.readdir("/dst") == []
        assert fs2.read_file("/src/f") == b"payload"

    def test_prepare_with_commit_decision_redoes(self, trio, sim):
        """Coordinator crashed after the commit decision: recovery must
        apply both sides — the file appears only in the destination."""
        sp, dp, txid, dkey = self._prepare_cross_rename(trio, sim)
        sim.run_process(trio.store.put_if_absent(dkey, DECISION_COMMIT))
        trio.client(0).crash()
        trio.client(1).crash()
        fs2 = syncfs(trio, 2)
        assert fs2.readdir("/dst") == ["f"]
        assert fs2.readdir("/src") == []
        assert fs2.read_file("/dst/f") == b"payload"

    def test_one_participant_crashes_after_prepare(self, trio, sim):
        """Only the source leader dies; the destination leader and a live
        coordinator path still resolve consistently via the decision."""
        sp, dp, txid, dkey = self._prepare_cross_rename(trio, sim)
        trio.client(0).crash()  # src leader gone, dst leader alive
        fs2 = syncfs(trio, 2)
        src_names = fs2.readdir("/src")   # triggers src recovery
        # No decision was written: recovery wrote "abort"; src keeps f.
        assert src_names == ["f"]
        # dst side: its (live) leader eventually aborts too — via its own
        # recovery or pending-state timeout. Force by crashing and recovering.
        trio.client(1).crash()
        assert fs2.readdir("/dst") == []

    def test_atomicity_never_both_or_neither(self, trio, sim):
        """Whatever the crash point, the file exists in exactly one place."""
        for write_decision in (False, True):
            sim2 = Simulator()
            trio2 = build_arkfs(sim2, n_clients=3, functional=True)
            f0, f1 = syncfs(trio2, 0), syncfs(trio2, 1)
            f0.mkdir("/src")
            f1.mkdir("/dst")
            f0.write_file("/src/f", b"once", do_fsync=True)
            sp = f0.stat("/src").st_ino
            dp = f1.stat("/dst").st_ino
            txid, dkey = "rn-x", trio2.prt.key_decision("rn-x")
            payload = sim2.run_process(trio2.client(0)._op_rename_prepare_src(
                creds=None, dir_ino=sp, name="f", txid=txid,
                decision_key=dkey))
            sim2.run_process(trio2.client(1)._op_rename_prepare_dst(
                creds=None, dir_ino=dp, name="f", payload=payload, txid=txid,
                decision_key=dkey))
            if write_decision:
                sim2.run_process(trio2.store.put_if_absent(
                    dkey, DECISION_COMMIT))
            trio2.client(0).crash()
            trio2.client(1).crash()
            f2 = syncfs(trio2, 2)
            in_src = "f" in f2.readdir("/src")
            in_dst = "f" in f2.readdir("/dst")
            assert in_src != in_dst, (
                f"decision={write_decision}: src={in_src} dst={in_dst}")
