"""Concurrency stress: many clients hammering shared state concurrently.

These tests run interleaved coroutine workloads (not sequential SyncFS
calls), so lease hand-offs, forwarding, journal batching and cache
coherence all overlap — then assert global invariants on the final state.

Randomized tests draw every choice from one PRNG seeded by the
``REPRO_SEED`` env var (default a fixed constant, so CI is stable). The
seed is printed at the start of each randomized test — pytest shows it
with any failure, and ``REPRO_SEED=<seed> pytest ...`` replays the exact
schedule.
"""

import os
import random

import pytest

from repro.core import build_arkfs, fsck
from repro.posix import (
    AlreadyExists,
    FSError,
    NotFound,
    OpenFlags,
    ROOT_CREDS,
    SyncFS,
)
from repro.sim import Simulator
from repro.workloads import run_phase

SEED = int(os.environ.get("REPRO_SEED", "20260806"))


@pytest.fixture
def rng():
    """Seeded PRNG for randomized stress; logs the seed for replay."""
    print(f"concurrency stress seed: REPRO_SEED={SEED}")
    return random.Random(SEED)


def assert_fsck_clean(sim, cluster):
    """Quiesce the cluster and run the consistency checker as an oracle."""
    for client in cluster.clients:
        if client.alive:
            sim.run_process(client.sync())
    sim.run(until=sim.now + 3)
    report = sim.run_process(fsck(cluster.prt))
    assert report.clean, report.summary()


def test_concurrent_creates_in_one_directory_all_land():
    """4 clients x 30 unique names into one shared directory."""
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=4, functional=True)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/shared")

    def worker(c):
        client = cluster.client(c)
        for i in range(30):
            h = yield from client.create(ROOT_CREDS, f"/shared/c{c}-{i}")
            yield from client.close(h)

    run_phase(sim, [sim.process(worker(c)) for c in range(4)])
    names = fs.readdir("/shared")
    assert len(names) == 120
    assert len(set(names)) == 120
    assert_fsck_clean(sim, cluster)


def test_exclusive_create_race_exactly_one_winner():
    """All clients race O_CREAT|O_EXCL on the same name: one wins."""
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=4, functional=True)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/race")
    outcomes = []

    def worker(c):
        client = cluster.client(c)
        try:
            h = yield from client.open(
                ROOT_CREDS, "/race/flag",
                OpenFlags.O_CREAT | OpenFlags.O_EXCL | OpenFlags.O_WRONLY)
            yield from client.write(h, f"winner-{c}".encode())
            yield from client.close(h)
            outcomes.append(("won", c))
        except AlreadyExists:
            outcomes.append(("lost", c))

    run_phase(sim, [sim.process(worker(c)) for c in range(4)])
    wins = [c for tag, c in outcomes if tag == "won"]
    assert len(wins) == 1
    assert fs.read_file("/race/flag") == f"winner-{wins[0]}".encode()


def test_concurrent_mkdir_race_exactly_one_winner():
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=4, functional=True)
    results = []

    def worker(c):
        client = cluster.client(c)
        try:
            yield from client.mkdir(ROOT_CREDS, "/contested")
            results.append("won")
        except AlreadyExists:
            results.append("lost")

    run_phase(sim, [sim.process(worker(c)) for c in range(4)])
    assert results.count("won") == 1
    assert SyncFS(cluster.client(0), ROOT_CREDS).stat("/contested").is_dir


def test_create_delete_churn_converges_empty():
    """Each client creates then deletes its own files in a shared dir,
    interleaved with everyone else's churn."""
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=3, functional=True)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/churn")

    def worker(c):
        client = cluster.client(c)
        for i in range(20):
            h = yield from client.create(ROOT_CREDS, f"/churn/{c}-{i}")
            yield from client.close(h)
        for i in range(20):
            yield from client.unlink(ROOT_CREDS, f"/churn/{c}-{i}")

    run_phase(sim, [sim.process(worker(c)) for c in range(3)])
    assert fs.readdir("/churn") == []
    # And the object store holds no orphaned dentries for the dir.
    dir_ino = fs.stat("/churn").st_ino
    sim.run(until=sim.now + 3)  # checkpoints drain
    assert cluster.store.sync_list(
        cluster.prt.key_dentry_prefix(dir_ino)) == []


def test_interleaved_rename_chains_preserve_file_count():
    """Clients shuffle files between two directories concurrently; no file
    is lost or duplicated."""
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=3, functional=True)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/left")
    fs.mkdir("/right")
    for i in range(9):
        fs.write_file(f"/left/f{i}", bytes([i]))

    def mover(c):
        client = cluster.client(c)
        for i in range(c, 9, 3):  # disjoint files per client
            yield from client.rename(ROOT_CREDS, f"/left/f{i}",
                                     f"/right/f{i}")
            yield from client.rename(ROOT_CREDS, f"/right/f{i}",
                                     f"/left/g{i}")

    run_phase(sim, [sim.process(mover(c)) for c in range(3)])
    left = fs.readdir("/left")
    right = fs.readdir("/right")
    assert len(left) + len(right) == 9
    assert sorted(left) == [f"g{i}" for i in range(9)]
    for i in range(9):
        assert fs.read_file(f"/left/g{i}") == bytes([i])
    assert_fsck_clean(sim, cluster)


def test_mixed_readers_and_writers_on_one_file():
    """Writers append disjoint regions while readers poll; final content
    must contain every region exactly once."""
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=4, functional=True)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    region = 1000
    fs.write_file("/big", b"\x00" * (3 * region), do_fsync=True)

    def writer(c):
        client = cluster.client(c)
        h = yield from client.open(ROOT_CREDS, "/big", OpenFlags.O_WRONLY)
        yield from client.write(h, bytes([c + 1]) * region,
                                offset=c * region)
        yield from client.fsync(h)
        yield from client.close(h)

    def reader():
        client = cluster.client(3)
        for _ in range(5):
            h = yield from client.open(ROOT_CREDS, "/big",
                                       OpenFlags.O_RDONLY)
            data = yield from client.read(h, 3 * region)
            assert len(data) == 3 * region
            yield from client.close(h)
            yield sim.timeout(0.01)

    run_phase(sim, [sim.process(writer(c)) for c in range(3)]
              + [sim.process(reader())])
    final = fs.read_file("/big")
    for c in range(3):
        assert final[c * region:(c + 1) * region] == bytes([c + 1]) * region


def test_lease_handoff_under_continuous_load():
    """Work continues across natural lease expirations (leases extend or
    hand off without losing operations)."""
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, functional=True)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/longrun")

    def slow_worker(c):
        client = cluster.client(c)
        for i in range(12):
            h = yield from client.create(ROOT_CREDS, f"/longrun/{c}-{i}")
            yield from client.close(h)
            # Spread work across multiple lease periods.
            yield sim.timeout(1.2)

    run_phase(sim, [sim.process(slow_worker(c)) for c in range(2)])
    assert sim.now > 2 * cluster.params.lease_period
    assert len(fs.readdir("/longrun")) == 24
    assert_fsck_clean(sim, cluster)


def test_randomized_mixed_churn_replayable(rng):
    """Seeded random schedule: 3 clients each run a random op sequence
    (create/write/rename/unlink with random jitter) over disjoint names
    in one shared directory. The randomness varies the *interleaving*
    (lease hand-offs, journal batch boundaries, checkpoint timing) while
    each client's final state stays predictable, so any schedule the seed
    produces must converge to the tracked survivor set."""
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=3, functional=True)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/mix")
    survivors = {}  # name -> expected content

    def plan_for(c):
        """Pre-draw client c's whole random program (so the generator
        below never touches the shared rng mid-sim, keeping the draw
        order independent of the event interleaving)."""
        program, live = [], {}
        for i in range(25):
            name = f"c{c}-{i % 8}"
            op = rng.choice(["create", "write", "rename", "unlink"])
            jitter = rng.random() * 0.4
            if op == "create" and name not in live:
                live[name] = b""
                program.append(("create", name, None, jitter))
            elif op == "write" and name in live:
                data = bytes(rng.randrange(256) for _ in range(40))
                live[name] = data
                program.append(("write", name, data, jitter))
            elif op == "rename" and name in live:
                new = f"c{c}-r{i}"
                live[new] = live.pop(name)
                program.append(("rename", name, new, jitter))
            elif op == "unlink" and name in live:
                del live[name]
                program.append(("unlink", name, None, jitter))
        survivors.update({n: d for n, d in live.items()})
        return program

    def worker(c, program):
        client = cluster.client(c)
        for op, name, arg, jitter in program:
            if op == "create":
                h = yield from client.create(ROOT_CREDS, f"/mix/{name}")
                yield from client.close(h)
            elif op == "write":
                h = yield from client.open(ROOT_CREDS, f"/mix/{name}",
                                           OpenFlags.O_WRONLY)
                yield from client.write(h, arg)
                yield from client.close(h)
            elif op == "rename":
                yield from client.rename(ROOT_CREDS, f"/mix/{name}",
                                         f"/mix/{arg}")
            else:
                yield from client.unlink(ROOT_CREDS, f"/mix/{name}")
            yield sim.timeout(jitter)

    programs = [plan_for(c) for c in range(3)]
    run_phase(sim, [sim.process(worker(c, programs[c])) for c in range(3)])
    assert sorted(fs.readdir("/mix")) == sorted(survivors), \
        f"REPRO_SEED={SEED}"
    for name, data in survivors.items():
        assert fs.read_file(f"/mix/{name}") == data, \
            f"{name} (REPRO_SEED={SEED})"
    assert_fsck_clean(sim, cluster)
