"""Parallel scatter-gather I/O: demand-read fan-out, prefetch dedup and
admission, batched flush/invalidate, and crash safety of the parallel
checkpoint path."""

import pytest

from repro.core import (
    PRT,
    DataObjectCache,
    ReadAheadState,
    Transaction,
    build_arkfs,
    fsck,
    ops_put_dentry,
    ops_put_inode,
    recover_directory,
    scan_journal,
)
from repro.core.journal import apply_ops
from repro.core.types import Dentry, Inode
from repro.objectstore import ClusterObjectStore, InMemoryObjectStore, StoreProfile
from repro.posix import FileType, ROOT_CREDS, SyncFS
from repro.sim import Simulator


ESZ = 128  # tiny entries for tests

FAST = StoreProfile(
    name="fast8", n_osds=8, media_bw=1e9, osd_queue_depth=8,
    get_latency=0.010, put_latency=0.010, delete_latency=0.010,
    head_latency=0.001, list_latency=0.001, list_page=100,
    per_stream_bw=1e9, replication=1,
)


class CountingStore(InMemoryObjectStore):
    """Records every single-key GET so tests can assert no duplicates."""

    def __init__(self, sim):
        super().__init__(sim)
        self.get_keys = []

    def get(self, key, src=None):
        self.get_keys.append(key)
        return (yield from super().get(key, src=src))


def make_cache(sim, store, capacity_entries=16, max_readahead=8 * ESZ, **kw):
    prt = PRT(store, data_object_size=ESZ)
    cache = DataObjectCache(sim, prt, node=None, entry_size=ESZ,
                            capacity_bytes=capacity_entries * ESZ,
                            max_readahead=max_readahead, **kw)
    return prt, cache


def run(sim, gen):
    return sim.run_process(gen)


class TestDemandFanOut:
    def test_cold_multi_entry_read_fans_out(self):
        sim = Simulator()
        store = InMemoryObjectStore(sim)
        prt, cache = make_cache(sim, store)
        for i in range(6):
            store.sync_put(prt.key_data(1, i), bytes([i]) * ESZ)
        out = run(sim, cache.read(1, 0, 6 * ESZ))
        assert out == b"".join(bytes([i]) * ESZ for i in range(6))
        assert cache.stats["misses"] == 6
        assert cache.stats["batched_gets"] == 6
        assert cache.stats["fetch_batches"] == 1
        assert cache.stats["max_fetch_batch"] == 6
        assert cache.stats["max_inflight_gets"] > 1

    def test_fetch_parallel_1_is_the_serial_ablation(self):
        sim = Simulator()
        store = InMemoryObjectStore(sim)
        prt, cache = make_cache(sim, store, fetch_parallel=1)
        for i in range(6):
            store.sync_put(prt.key_data(1, i), bytes([i]) * ESZ)
        out = run(sim, cache.read(1, 0, 6 * ESZ))
        assert out == b"".join(bytes([i]) * ESZ for i in range(6))
        assert cache.stats["batched_gets"] == 0
        assert cache.stats["serial_gets"] == 6
        assert cache.stats["max_inflight_gets"] == 1

    def test_fanout_overlaps_store_latency(self):
        """A cold 8-entry read takes ~one object-store round trip with
        fan-out, ~eight without."""
        def cold_read_time(fetch_parallel):
            sim = Simulator()
            store = ClusterObjectStore(sim, FAST)
            prt, cache = make_cache(sim, store, max_readahead=0,
                                    fetch_parallel=fetch_parallel)
            for i in range(8):
                store.backing.sync_put(prt.key_data(1, i), bytes([i]) * ESZ)
            t0 = sim.now
            out = run(sim, cache.read(1, 0, 8 * ESZ))
            assert out == b"".join(bytes([i]) * ESZ for i in range(8))
            return sim.now - t0

        assert cold_read_time(16) < cold_read_time(1) / 2

    def test_request_larger_than_cache_still_correct(self):
        sim = Simulator()
        store = InMemoryObjectStore(sim)
        prt, cache = make_cache(sim, store, capacity_entries=4,
                                max_readahead=0)
        for i in range(12):
            store.sync_put(prt.key_data(1, i), bytes([i]) * ESZ)
        out = run(sim, cache.read(1, 0, 12 * ESZ))
        assert out == b"".join(bytes([i]) * ESZ for i in range(12))
        assert cache.total_entries <= cache.capacity


class TestPrefetchDedup:
    def test_concurrent_demand_and_prefetch_issue_one_get_per_object(self):
        """A demand read racing the read-ahead for the same entries must
        share the in-flight fetch, never duplicate the GET."""
        sim = Simulator()
        store = CountingStore(sim)
        prt, cache = make_cache(sim, store)
        for i in range(8):
            store.sync_put(prt.key_data(1, i), bytes([i]) * ESZ)
        ra = ReadAheadState()
        results = {}

        def seq_reader():
            # Reading from offset 0 opens the window: prefetches idx 1..8.
            results["a"] = yield from cache.read(1, 0, ESZ, ra=ra)

        def overlapping_reader():
            # Demands idx 2..3, racing the prefetches scheduled above.
            results["b"] = yield from cache.read(1, 2 * ESZ, 2 * ESZ)

        sim.process(seq_reader(), name="seq")
        sim.process(overlapping_reader(), name="overlap")
        sim.run()
        assert results["a"] == bytes([0]) * ESZ
        assert results["b"] == bytes([2]) * ESZ + bytes([3]) * ESZ
        assert len(store.get_keys) == len(set(store.get_keys)), \
            f"duplicate GETs: {store.get_keys}"

    def test_prefetch_admission_cannot_overshoot_capacity(self):
        sim = Simulator()
        store = InMemoryObjectStore(sim)
        prt, cache = make_cache(sim, store, capacity_entries=4,
                                max_readahead=16 * ESZ)
        for i in range(20):
            store.sync_put(prt.key_data(1, i), bytes([i]) * ESZ)
        ra = ReadAheadState()
        run(sim, cache.read(1, 0, ESZ, ra=ra))
        sim.run()  # drain the prefetch processes
        assert cache.total_entries <= cache.capacity
        assert cache._reserved == 0  # every reserved slot was returned
        assert cache.stats["prefetches"] <= cache.capacity

    def test_reservations_returned_when_prefetch_drops(self):
        """Prefetches that find their slot claimed give the reservation
        back, so later reads can schedule read-ahead again."""
        sim = Simulator()
        store = InMemoryObjectStore(sim)
        prt, cache = make_cache(sim, store, capacity_entries=4,
                                max_readahead=16 * ESZ)
        for i in range(30):
            store.sync_put(prt.key_data(1, i), bytes([i]) * ESZ)
        ra = ReadAheadState()
        for step in range(4):
            run(sim, cache.read(1, step * ESZ, ESZ, ra=ra))
            sim.run()
        assert cache._reserved == 0
        assert cache.total_entries <= cache.capacity


class TestBatchedFlush:
    def _dirty_cache(self, writeback_parallel, n_files):
        sim = Simulator()
        store = ClusterObjectStore(sim, FAST)
        prt, cache = make_cache(sim, store, capacity_entries=64,
                                max_readahead=0,
                                writeback_parallel=writeback_parallel)
        for ino in range(1, n_files + 1):
            run(sim, cache.write(ino, 0, bytes([ino]) * ESZ, old_size=0))
        return sim, store, prt, cache

    def test_flush_all_takes_one_batch_of_time(self):
        n = 6
        sim, store, prt, cache = self._dirty_cache(writeback_parallel=8,
                                                   n_files=n)
        t0 = sim.now
        run(sim, cache.flush_all())
        parallel = sim.now - t0

        sim2, store2, prt2, cache2 = self._dirty_cache(writeback_parallel=1,
                                                       n_files=n)
        t0 = sim2.now
        run(sim2, cache2.flush_all())
        serial = sim2.now - t0

        assert parallel < serial / 2
        # ~one flusher-pool round: a single PUT latency plus slack, not n.
        assert parallel < 3 * FAST.put_latency
        for ino in range(1, n + 1):
            assert store.backing.sync_get(prt.key_data(ino, 0)) \
                == bytes([ino]) * ESZ
        assert cache.stats["wb_batches"] >= 1
        assert cache.stats["max_wb_batch"] == n
        assert cache.stats["max_inflight_puts"] > 1

    def test_invalidate_uses_batched_writeback(self):
        sim = Simulator()
        store = InMemoryObjectStore(sim)
        prt, cache = make_cache(sim, store, capacity_entries=16,
                                max_readahead=0)
        run(sim, cache.write(1, 0, b"z" * (6 * ESZ), old_size=0))
        run(sim, cache.invalidate(1, flush_dirty=True))
        assert cache.cached_entries(1) == 0
        for i in range(6):
            assert store.sync_get(prt.key_data(1, i)) == b"z" * ESZ
        assert cache.stats["wb_batches"] >= 1
        assert cache.stats["max_wb_batch"] > 1

    def test_drop_all_fans_out_across_files(self):
        sim = Simulator()
        store = InMemoryObjectStore(sim)
        prt, cache = make_cache(sim, store, capacity_entries=16,
                                max_readahead=0)
        for ino in (1, 2, 3):
            run(sim, cache.write(ino, 0, bytes([ino]) * ESZ, old_size=0))
        run(sim, cache.drop_all())
        assert cache.total_entries == 0
        for ino in (1, 2, 3):
            assert store.sync_get(prt.key_data(ino, 0)) == bytes([ino]) * ESZ
        assert cache.stats["max_wb_batch"] == 3


class TestParallelCheckpoint:
    def _many_op_txn(self, dir_ino, n_files, txid="tx-par"):
        ops = []
        for i in range(n_files):
            ino = 0xA000 + i
            inode = Inode(ino=ino, ftype=FileType.REGULAR, mode=0o644,
                          uid=0, gid=0, size=0)
            ops.append(ops_put_inode(inode))
            ops.append(ops_put_dentry(
                dir_ino, Dentry(name=f"f{i}", ino=ino,
                                ftype=FileType.REGULAR)))
        return Transaction(txid, dir_ino, "update", ops)

    def test_partially_applied_parallel_checkpoint_is_replayable(
            self, cluster, fs, sim):
        """Crash mid-fan-out: some of a txn's base PUTs landed, the journal
        object survives. Replay must converge to the full state and fsck
        must come back clean."""
        fs.mkdir("/d")
        dir_ino = fs.stat("/d").st_ino
        txn = self._many_op_txn(dir_ino, n_files=4)
        sim.run_process(cluster.store.put(
            cluster.prt.key_journal(dir_ino, 0), txn.to_bytes()))
        # Apply only half the ops — the state a crash mid-checkpoint leaves.
        sim.run_process(apply_ops(cluster.prt, txn.ops[:4]))
        stats = sim.run_process(recover_directory(cluster.prt, dir_ino))
        assert stats["replayed"] == 1
        for i in range(4):
            assert cluster.prt.key_dentry(dir_ino, f"f{i}") in cluster.store
        assert sim.run_process(scan_journal(cluster.prt, dir_ino)) == []
        report = sim.run_process(fsck(cluster.prt))
        assert report.clean, report.summary()

    def test_crash_mid_background_checkpoint_recovers_clean(self):
        """End-to-end on the latency backend: client crashes right after
        fsync (journal durable, parallel checkpoint possibly in flight);
        the next leader replays and the layout passes fsck."""
        sim = Simulator()
        ark = build_arkfs(sim, n_clients=2)  # RADOS-profile timing
        fs0 = SyncFS(ark.client(0), ROOT_CREDS)
        fs0.mkdir("/w")
        for i in range(6):
            fs0.write_file(f"/w/f{i}", b"payload", do_fsync=True)
        ark.client(0).crash()
        fs1 = SyncFS(ark.client(1), ROOT_CREDS)
        names = fs1.readdir("/w")
        assert set(names) >= {f"f{i}" for i in range(6)}
        for i in range(6):
            assert fs1.read_file(f"/w/f{i}") == b"payload"
        report = sim.run_process(fsck(ark.prt))
        assert report.clean, report.summary()

    def test_apply_ops_parallel_and_serial_agree(self, cluster, fs, sim):
        fs.mkdir("/a")
        fs.mkdir("/b")
        ia = fs.stat("/a").st_ino
        ib = fs.stat("/b").st_ino
        txa = self._many_op_txn(ia, n_files=3, txid="t-a")
        n = sim.run_process(apply_ops(cluster.prt, txa.ops, parallel=True))
        assert n == 6
        txb = self._many_op_txn(ib, n_files=3, txid="t-b")
        n = sim.run_process(apply_ops(cluster.prt, txb.ops, parallel=False))
        assert n == 6
        for i in range(3):
            assert cluster.prt.key_dentry(ia, f"f{i}") in cluster.store
            assert cluster.prt.key_dentry(ib, f"f{i}") in cluster.store


class TestJournalFanOutCounters:
    def test_checkpoint_counters_record_batches(self, cluster, fs, sim):
        fs.mkdir("/d")
        for i in range(5):
            fs.write_file(f"/d/f{i}", b"")
        client = cluster.client(0)
        sim.run_process(client.journal.flush_all(full=True))
        fanout = client.journal.fanout
        assert fanout["ckpt_batches"] >= 1
        assert fanout["ckpt_max_batch"] > 1

    def test_commit_loop_counts_rounds(self, cluster, fs, sim):
        for d in ("/x", "/y", "/z"):
            fs.mkdir(d)
            fs.write_file(f"{d}/f", b"1")
        sim.run(until=sim.now + 1.6)  # past one commit interval
        assert cluster.client(0).journal.fanout["commit_rounds"] >= 1
