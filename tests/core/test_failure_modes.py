"""Failure injection beyond the recovery basics: crashes during data I/O,
RPC to dead leaders, repeated crashes, crash during 2PC coordination."""

import pytest

from repro.core import build_arkfs
from repro.posix import NotFound, OpenFlags, ROOT_CREDS, SyncFS
from repro.sim import Simulator


@pytest.fixture
def trio():
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=3, functional=True)
    return sim, cluster


def fs_of(cluster, i):
    return SyncFS(cluster.client(i), ROOT_CREDS)


class TestCrashDuringDataIO:
    def test_dirty_cache_lost_on_crash_but_fsynced_data_safe(self, trio):
        sim, cluster = trio
        fs0 = fs_of(cluster, 0)
        fs0.mkdir("/w")
        h = fs0.create("/w/partial")
        h.write(b"A" * 100)
        h.fsync()                 # durable point
        h.write(b"B" * 100)       # dirty, never flushed
        cluster.client(0).crash()
        fs1 = fs_of(cluster, 1)
        data = fs1.read_file("/w/partial")
        assert data[:100] == b"A" * 100
        assert b"B" not in data

    def test_reader_of_crashed_writers_file_gets_consistent_bytes(self, trio):
        sim, cluster = trio
        fs0, fs1 = fs_of(cluster, 0), fs_of(cluster, 1)
        fs0.mkdir("/shared")
        fs0.write_file("/shared/f", b"stable content", do_fsync=True)
        # client1 opens and caches.
        assert fs1.read_file("/shared/f") == b"stable content"
        cluster.client(0).crash()
        # After fencing, client1 re-resolves and still reads good bytes.
        assert fs1.read_file("/shared/f") == b"stable content"

    def test_forwarded_op_to_dead_leader_retries_to_new_leader(self, trio):
        sim, cluster = trio
        fs0, fs1 = fs_of(cluster, 0), fs_of(cluster, 1)
        fs0.mkdir("/led")
        fs0.write_file("/led/seed", b"", do_fsync=True)  # client0 leads
        fs1.readdir("/led")  # client1 learns the remote pointer
        cluster.client(0).crash()
        # client1's next create must survive the dead pointer: NodeDown ->
        # drop hint -> wait out fencing -> become leader -> recover -> apply.
        fs1.write_file("/led/after-crash", b"ok")
        assert sorted(fs1.readdir("/led")) == ["after-crash", "seed"]


class TestRepeatedFailures:
    def test_double_crash_successive_leaders(self, trio):
        sim, cluster = trio
        fs0 = fs_of(cluster, 0)
        fs0.mkdir("/d")
        fs0.write_file("/d/v1", b"1", do_fsync=True)
        cluster.client(0).crash()
        fs1 = fs_of(cluster, 1)
        fs1.write_file("/d/v2", b"2", do_fsync=True)  # fenced + recovered
        cluster.client(1).crash()
        fs2 = fs_of(cluster, 2)
        assert sorted(fs2.readdir("/d")) == ["v1", "v2"]
        assert fs2.read_file("/d/v1") == b"1"
        assert fs2.read_file("/d/v2") == b"2"

    def test_crash_then_restart_then_crash_again(self, trio):
        sim, cluster = trio
        fs0 = fs_of(cluster, 0)
        fs0.mkdir("/d")
        fs0.write_file("/d/a", b"a", do_fsync=True)
        cluster.client(0).crash()
        sim.run(until=sim.now + 2 * cluster.params.lease_period + 1)
        cluster.client(0).restart()
        fs0b = fs_of(cluster, 0)
        fs0b.write_file("/d/b", b"b", do_fsync=True)
        cluster.client(0).crash()
        fs1 = fs_of(cluster, 1)
        assert sorted(fs1.readdir("/d")) == ["a", "b"]

    def test_manager_and_client_crash_together(self, trio):
        sim, cluster = trio
        fs0 = fs_of(cluster, 0)
        fs0.mkdir("/d")
        fs0.write_file("/d/f", b"both-crash", do_fsync=True)
        cluster.client(0).crash()
        cluster.lease_manager.crash()
        cluster.lease_manager.restart()
        fs1 = fs_of(cluster, 1)
        assert fs1.read_file("/d/f") == b"both-crash"


class TestCoordinatorCrashMidRename:
    def test_crash_between_prepares_and_decision(self, trio):
        """The coordinator prepares both sides then dies before writing the
        decision record: recovery must abort — source keeps the file."""
        sim, cluster = trio
        fs0, fs1 = fs_of(cluster, 0), fs_of(cluster, 1)
        fs0.mkdir("/src")
        fs0.write_file("/src/f", b"stay", do_fsync=True)
        dst_ino_holder = fs_of(cluster, 1)
        fs1.mkdir("/dst")
        fs1.write_file("/dst/seed", b"", do_fsync=True)  # client1 leads /dst
        sp = fs0.stat("/src").st_ino
        dp = fs1.stat("/dst").st_ino
        c2 = cluster.client(2)  # coordinator: a third party
        txid = "c2-rn-000001"
        dkey = cluster.prt.key_decision(txid)
        payload = sim.run_process(c2._authority_op(
            sp, "rename_prepare_src", None, name="f", txid=txid,
            decision_key=dkey))
        sim.run_process(c2._authority_op(
            dp, "rename_prepare_dst", None, name="f", payload=payload,
            txid=txid, decision_key=dkey))
        # Coordinator dies; participants die too (their pending state is
        # only resolvable through the journals + decision record).
        c2.crash()
        cluster.client(0).crash()
        cluster.client(1).crash()
        sim.run(until=sim.now + 2 * cluster.params.lease_period + 1)
        cluster.client(2).restart()
        fs2 = fs_of(cluster, 2)
        assert fs2.readdir("/src") == ["f"]
        assert "f" not in fs2.readdir("/dst")
        assert fs2.read_file("/src/f") == b"stay"
        del dst_ino_holder
