"""Permission-caching mode (Section III-C): what gets cached, for how long,
and what the relaxation costs."""

import pytest

from repro.core import DEFAULT_PARAMS, build_arkfs
from repro.posix import Credentials, PermissionDenied, ROOT_CREDS, SyncFS
from repro.sim import Simulator

USER = Credentials(1000, 1000)


def build(pcache: bool, n_clients=2):
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=n_clients, functional=True,
                          params=DEFAULT_PARAMS.with_(
                              permission_cache=pcache))
    return sim, cluster


class TestCachingBehaviour:
    def test_remote_lookup_populates_pcache(self):
        sim, cluster = build(True)
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs0.makedirs("/a/b")
        fs0.write_file("/a/b/f", b"x")
        fs1.read_file("/a/b/f")  # resolves through client0's leases
        c1 = cluster.client(1)
        assert c1.pcache, "ancestor permission info should be cached"
        assert c1.pcache_dentries, "dentry mappings should be cached"

    def test_no_pcache_mode_keeps_nothing(self):
        sim, cluster = build(False)
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs0.makedirs("/a/b")
        fs0.write_file("/a/b/f", b"x")
        fs1.read_file("/a/b/f")
        assert not cluster.client(1).pcache

    def test_pcache_entries_expire_with_lease_period(self):
        sim, cluster = build(True)
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs0.makedirs("/a/b")
        fs0.write_file("/a/b/f", b"x")
        fs1.read_file("/a/b/f")  # /a is traversed -> its perms are cached
        c1 = cluster.client(1)
        dir_ino = fs0.stat("/a").st_ino
        _inode, expiry = c1.pcache[dir_ino]
        assert expiry == pytest.approx(
            sim.now + cluster.params.lease_period, abs=0.5)

    def test_final_parent_check_stays_strict(self):
        """pcache relaxes *traversal* checks only: the operation itself is
        always permission-checked at the directory's leader."""
        sim, cluster = build(True)
        root0 = SyncFS(cluster.client(0), ROOT_CREDS)
        root0.makedirs("/data")
        root0.chmod("/data", 0o755)
        root0.write_file("/data/f", b"v", mode=0o644)
        user1 = SyncFS(cluster.client(1), USER)
        assert user1.read_file("/data/f") == b"v"
        root0.chmod("/data", 0o700)
        # /data is the *parent* of the target: checked at the leader, so
        # the change is visible immediately even with pcache on.
        with pytest.raises(PermissionDenied):
            user1.read_file("/data/f")

    def test_cached_lookups_skip_rpc(self):
        """Second resolution through a cached ancestor makes no extra calls
        to the remote leader."""
        sim, cluster = build(True)
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs0.makedirs("/hot")
        for i in range(3):
            fs0.write_file(f"/hot/f{i}", b"")
        fs1.stat("/hot/f0")
        msgs_before = cluster.net.messages_sent
        fs1.stat("/hot/f0")  # ancestors + dentry all cached
        fs1.stat("/hot/f0")
        # Only the final getattr goes remote, not the per-component lookups.
        per_stat = (cluster.net.messages_sent - msgs_before) / 2
        assert per_stat <= 2.5

    def test_own_leadership_bypasses_pcache(self):
        """A client never consults its pcache for directories it leads."""
        sim, cluster = build(True)
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs0.mkdir("/mine")
        fs0.write_file("/mine/f", b"fresh")
        c0 = cluster.client(0)
        dir_ino = fs0.stat("/mine").st_ino
        assert dir_ino in c0.metatables
        assert dir_ino not in c0.pcache


class TestConsistencyRelaxation:
    def test_permission_change_visible_after_lease_period(self):
        """Ancestor permissions are the relaxed ones: a chmod on a
        *traversed* directory becomes visible only at lease expiry."""
        sim, cluster = build(True)
        root0 = SyncFS(cluster.client(0), ROOT_CREDS)
        root0.makedirs("/data/proj")
        root0.chmod("/data", 0o755)
        root0.chmod("/data/proj", 0o755)
        root0.write_file("/data/proj/f", b"v", mode=0o644)
        user1 = SyncFS(cluster.client(1), USER)
        assert user1.read_file("/data/proj/f") == b"v"  # warms the cache
        root0.chmod("/data", 0o700)
        # Stale during the lease period (the paper's documented relaxation):
        assert user1.read_file("/data/proj/f") == b"v"
        # Enforced after the synchronization point:
        sim.run(until=sim.now + cluster.params.lease_period + 1)
        with pytest.raises(PermissionDenied):
            user1.read_file("/data/proj/f")

    def test_no_pcache_mode_is_strictly_consistent(self):
        sim, cluster = build(False)
        root0 = SyncFS(cluster.client(0), ROOT_CREDS)
        root0.makedirs("/data")
        root0.chmod("/data", 0o755)
        root0.write_file("/data/f", b"v", mode=0o644)
        user1 = SyncFS(cluster.client(1), USER)
        assert user1.read_file("/data/f") == b"v"
        root0.chmod("/data", 0o700)
        with pytest.raises(PermissionDenied):
            user1.read_file("/data/f")  # immediate, no caching window

    def test_setattr_invalidates_own_pcache(self):
        """The client that issues the chmod must see it at once even if it
        had the directory cached."""
        sim, cluster = build(True)
        root0 = SyncFS(cluster.client(0), ROOT_CREDS)
        root1 = SyncFS(cluster.client(1), ROOT_CREDS)
        root0.makedirs("/d")
        root1.readdir("/d")  # client1 caches /d's perms (led by client0)
        user1 = SyncFS(cluster.client(1), USER)
        root1.chmod("/d", 0o700)
        with pytest.raises(PermissionDenied):
            user1.readdir("/d")
