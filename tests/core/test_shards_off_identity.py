"""Acceptance criterion: sharding disabled ⇒ bit-identical results.

``shards_enabled=False`` (the default) must keep ArkFS structurally
identical to a build that predates the elastic metadata plane — the same
pattern ``test_pack_off_identity.py`` pins for the pack subsystem. With
sharding off no split gate dict is allocated (``client._split_busy is
None``), ``_maybe_split`` is a single attribute test on every create, no
shard-map GETs ever hit the store, and no splitter process is spawned —
zero extra simulation events. These tests pin that down from three
angles: the default is off and builds nothing, repeated shards-off runs
are bit-identical on the realistic store (same sim clock, same network
traffic, same store bytes), and a shards-off run leaves no shard-map
(``s``) objects behind even when a directory grows far past what the
split threshold would be. A final control shows the same workload with
sharding ON does split — proving the off-run's silence is the subsystem
staying out of the way, not the workload being too small.
"""

from repro.core import DEFAULT_PARAMS, build_arkfs
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator

#: Wide-directory workload: 12 files in one directory (over any plausible
#: test threshold), plus the rename/unlink/readdir traffic whose routing
#: the shard layer intercepts when enabled.
N_FILES = 12


def _workload(cluster, sim):
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/wide")
    for i in range(N_FILES):
        fs.write_file(f"/wide/f{i}", bytes([i + 1]) * (200 + 13 * i),
                      do_fsync=(i % 3 == 0))
    fs.rename("/wide/f0", "/wide/renamed")
    fs.unlink("/wide/f1")
    fs.readdir("/wide")
    for client in cluster.clients:
        sim.run_process(client.sync())
    sim.run(until=sim.now + 3)


def _fingerprint(sim, cluster):
    store = cluster.store
    backing = getattr(store, "backing", store)
    content = {k: bytes(backing.sync_get(k)) for k in backing.sync_list("")}
    return {
        "now": sim.now,
        "messages": cluster.net.messages_sent,
        "bytes": cluster.net.bytes_sent,
        "store_ops": dict(backing.op_counts),
        "content": content,
    }


def test_default_is_off_and_builds_no_shard_machinery():
    assert DEFAULT_PARAMS.shards_enabled is False, \
        "sharding must stay opt-in: the default run is the paper baseline"
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, seed=0)
    for client in cluster.clients:
        assert client._split_busy is None
        assert not client._splitters
        assert not client._shard_maps


def test_shards_off_runs_bit_identical_on_realistic_store():
    """Two independent shards-off builds replay to identical clocks,
    network totals, store op counts, and store *bytes* — the property that
    keeps every BENCH figure unchanged by this subsystem."""
    prints = []
    for _ in range(2):
        sim = Simulator()
        cluster = build_arkfs(sim, n_clients=2, seed=0)
        _workload(cluster, sim)
        prints.append(_fingerprint(sim, cluster))
    assert prints[0] == prints[1]


def test_shards_off_leaves_no_shard_artifacts():
    """No shard-map (``s``) objects in the store and no splitter processes:
    the subsystem is absent, not merely idle — even though the directory
    grew far past what a test-scale split threshold would be."""
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, functional=True, seed=0)
    _workload(cluster, sim)
    backing = getattr(cluster.store, "backing", cluster.store)
    assert not [k for k in backing.sync_list("s")]
    for client in cluster.clients:
        assert not client._shard_maps
        assert not client._splitters


def test_shards_on_changes_layout_but_not_contents():
    """Control for the identity tests: the same workload with sharding ON
    (threshold below the directory's size) does publish a shard map and
    does route dentries into shard ranges — while every file still reads
    back identically from the other client."""
    results = {}
    for enabled in (False, True):
        sim = Simulator()
        params = DEFAULT_PARAMS.with_(
            shards_enabled=enabled, shard_split_threshold=6, shard_fanout=4)
        cluster = build_arkfs(sim, n_clients=2, params=params,
                              functional=True, seed=0)
        _workload(cluster, sim)
        fs = SyncFS(cluster.client(1), ROOT_CREDS)
        contents = {"/wide/renamed": fs.read_file("/wide/renamed")}
        for i in range(2, N_FILES):
            contents[f"/wide/f{i}"] = fs.read_file(f"/wide/f{i}")
        listing = fs.readdir("/wide")
        backing = getattr(cluster.store, "backing", cluster.store)
        results[enabled] = (contents, listing,
                            sorted(backing.sync_list("s")))
    assert results[False][0] == results[True][0]
    assert results[False][1] == results[True][1]
    assert results[False][2] == []
    assert results[True][2] != [], \
        "the ON control must actually split, or the identity tests prove " \
        "nothing"
