"""ArkFS namespace semantics: mkdir/rmdir/create/unlink/readdir/stat/symlink.

All tests run through the full client stack (lease manager, metatables,
journals) on the zero-latency functional store.
"""

import pytest

from repro.posix import (
    AlreadyExists,
    DirectoryNotEmpty,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    NotFound,
    OpenFlags,
    TooManySymlinks,
)


class TestMkdir:
    def test_mkdir_and_stat(self, fs):
        fs.mkdir("/a", 0o750)
        st = fs.stat("/a")
        assert st.is_dir
        assert st.perm_bits & 0o777 == 0o750

    def test_nested(self, fs):
        fs.makedirs("/a/b/c")
        assert fs.stat("/a/b/c").is_dir

    def test_mkdir_existing_fails(self, fs):
        fs.mkdir("/a")
        with pytest.raises(AlreadyExists):
            fs.mkdir("/a")

    def test_mkdir_root_fails(self, fs):
        with pytest.raises(AlreadyExists):
            fs.mkdir("/")

    def test_mkdir_missing_parent_fails(self, fs):
        with pytest.raises(NotFound):
            fs.mkdir("/no/such/parent")

    def test_mkdir_under_file_fails(self, fs):
        fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):
            fs.mkdir("/f/sub")

    def test_parent_nlink_tracks_subdirs(self, fs):
        fs.mkdir("/a")
        base = fs.stat("/a").st_nlink
        fs.mkdir("/a/x")
        fs.mkdir("/a/y")
        assert fs.stat("/a").st_nlink == base + 2

    def test_parent_mtime_updated(self, fs, sim):
        fs.mkdir("/a")
        t0 = fs.stat("/a").st_mtime
        sim.run(until=sim.now + 10)
        fs.mkdir("/a/b")
        assert fs.stat("/a").st_mtime > t0


class TestRmdir:
    def test_rmdir_empty(self, fs):
        fs.mkdir("/a")
        fs.rmdir("/a")
        assert not fs.exists("/a")

    def test_rmdir_nonempty_fails(self, fs):
        fs.makedirs("/a/b")
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/a")

    def test_rmdir_nonempty_with_file_fails(self, fs):
        fs.mkdir("/a")
        fs.write_file("/a/f", b"x")
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/a")

    def test_rmdir_file_fails(self, fs):
        fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):
            fs.rmdir("/f")

    def test_rmdir_root_fails(self, fs):
        with pytest.raises(InvalidArgument):
            fs.rmdir("/")

    def test_rmdir_missing_fails(self, fs):
        with pytest.raises(NotFound):
            fs.rmdir("/ghost")

    def test_rmdir_dir_led_by_other_client(self, fs, fs2):
        """The child's leader must verify emptiness and surrender its lease."""
        fs.mkdir("/shared")
        fs2.readdir("/shared")  # fs2 becomes /shared's leader
        fs.rmdir("/shared")
        assert not fs.exists("/shared")

    def test_rmdir_nonempty_led_by_other_client(self, fs, fs2):
        fs.mkdir("/shared")
        fs2.write_file("/shared/f", b"x")  # fs2 leads /shared, non-empty
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/shared")

    def test_recreate_after_rmdir(self, fs):
        fs.mkdir("/a")
        fs.rmdir("/a")
        fs.mkdir("/a")
        assert fs.stat("/a").is_dir


class TestCreateUnlink:
    def test_create_excl(self, fs):
        fs.create("/f").close()
        with pytest.raises(AlreadyExists):
            fs.create("/f")

    def test_open_missing_without_creat(self, fs):
        with pytest.raises(NotFound):
            fs.open("/ghost", OpenFlags.O_RDONLY)

    def test_open_creat_on_existing_ok(self, fs):
        fs.write_file("/f", b"data")
        h = fs.open("/f", OpenFlags.O_CREAT | OpenFlags.O_RDWR)
        assert h.read(10) == b"data"
        h.close()

    def test_open_trunc_clears(self, fs):
        fs.write_file("/f", b"old content")
        fs.open("/f", OpenFlags.O_WRONLY | OpenFlags.O_TRUNC).close()
        assert fs.stat("/f").st_size == 0
        assert fs.read_file("/f") == b""

    def test_open_directory_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.open("/d", OpenFlags.O_RDONLY)

    def test_unlink(self, fs):
        fs.write_file("/f", b"x")
        fs.unlink("/f")
        assert not fs.exists("/f")
        with pytest.raises(NotFound):
            fs.unlink("/f")

    def test_unlink_directory_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.unlink("/d")

    def test_unlink_removes_data_objects(self, fs, cluster, sim):
        fs.write_file("/big", b"z" * (3 * cluster.params.data_object_size),
                      do_fsync=True)
        ino = fs.stat("/big").st_ino
        fs.unlink("/big")
        sim.run(until=sim.now + 1)  # asynchronous purge drains
        assert cluster.store.sync_list(cluster.prt.key_data_prefix(ino)) == []

    def test_file_times_set_on_create(self, fs, sim):
        sim.run(until=5.0)
        fs.create("/f").close()
        st = fs.stat("/f")
        assert st.st_ctime >= 5.0
        assert st.st_mtime >= 5.0


class TestReaddirStat:
    def test_readdir_sorted(self, fs):
        fs.mkdir("/d")
        for n in ["zz", "aa", "mm"]:
            fs.write_file(f"/d/{n}", b"")
        assert fs.readdir("/d") == ["aa", "mm", "zz"]

    def test_readdir_root(self, fs):
        fs.mkdir("/x")
        assert "x" in fs.readdir("/")

    def test_readdir_empty(self, fs):
        fs.mkdir("/d")
        assert fs.readdir("/d") == []

    def test_readdir_of_file_fails(self, fs):
        fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):
            fs.readdir("/f")

    def test_stat_root(self, fs):
        st = fs.stat("/")
        assert st.is_dir
        assert st.st_ino == 1

    def test_stat_missing(self, fs):
        with pytest.raises(NotFound):
            fs.stat("/ghost")

    def test_stat_through_file_component_fails(self, fs):
        fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):
            fs.stat("/f/deeper")

    def test_stat_reflects_size_after_close(self, fs):
        h = fs.create("/f")
        h.write(b"12345")
        h.close()
        assert fs.stat("/f").st_size == 5

    def test_unique_inode_numbers(self, fs):
        fs.write_file("/a", b"")
        fs.write_file("/b", b"")
        assert fs.stat("/a").st_ino != fs.stat("/b").st_ino


class TestSymlinks:
    def test_create_and_readlink(self, fs):
        fs.mkdir("/target")
        fs.symlink("/target", "/link")
        assert fs.readlink("/link") == "/target"

    def test_lstat_vs_stat(self, fs):
        fs.mkdir("/target")
        fs.symlink("/target", "/link")
        assert fs.lstat("/link").is_symlink
        assert fs.stat("/link").is_dir

    def test_traversal_through_symlink(self, fs):
        fs.makedirs("/real/sub")
        fs.write_file("/real/sub/f", b"via-link")
        fs.symlink("/real", "/alias")
        assert fs.read_file("/alias/sub/f") == b"via-link"

    def test_relative_symlink(self, fs):
        fs.makedirs("/d/sub")
        fs.write_file("/d/sub/f", b"rel")
        fs.symlink("sub/f", "/d/lnk")
        assert fs.read_file("/d/lnk") == b"rel"

    def test_dangling_symlink(self, fs):
        fs.symlink("/nowhere", "/dangle")
        assert fs.lstat("/dangle").is_symlink
        with pytest.raises(NotFound):
            fs.stat("/dangle")

    def test_symlink_loop_detected(self, fs):
        fs.symlink("/b", "/a")
        fs.symlink("/a", "/b")
        with pytest.raises(TooManySymlinks):
            fs.stat("/a")

    def test_open_follows_symlink(self, fs):
        fs.write_file("/real.txt", b"real data")
        fs.symlink("/real.txt", "/ln.txt")
        assert fs.read_file("/ln.txt") == b"real data"

    def test_unlink_symlink_keeps_target(self, fs):
        fs.write_file("/real.txt", b"keep")
        fs.symlink("/real.txt", "/ln")
        fs.unlink("/ln")
        assert fs.read_file("/real.txt") == b"keep"

    def test_symlink_size_is_target_length(self, fs):
        fs.symlink("/four", "/l")
        assert fs.lstat("/l").st_size == 5


class TestMultiClient:
    def test_cross_client_visibility(self, fs, fs2):
        fs.mkdir("/shared")
        fs.write_file("/shared/f", b"from-c0")
        assert fs2.read_file("/shared/f") == b"from-c0"

    def test_create_in_remote_led_directory(self, fs, fs2):
        """Fig. 3(b): a non-leader forwards CREATE to the leader."""
        fs.mkdir("/led")
        fs.write_file("/led/by0", b"")  # fs (client0) leads /led
        fs2.write_file("/led/by1", b"two")  # forwarded to client0
        assert sorted(fs.readdir("/led")) == ["by0", "by1"]
        assert fs.read_file("/led/by1") == b"two"

    def test_both_clients_see_consistent_listing(self, fs, fs2):
        fs.mkdir("/d")
        fs.write_file("/d/a", b"")
        fs2.write_file("/d/b", b"")
        assert fs.readdir("/d") == fs2.readdir("/d") == ["a", "b"]

    def test_leader_is_recorded_at_manager(self, fs, cluster):
        fs.mkdir("/mine")
        fs.write_file("/mine/f", b"")
        dir_ino = fs.stat("/mine").st_ino
        assert cluster.lease_manager.holder_of(dir_ino) == "client0"

    def test_unlink_by_non_leader(self, fs, fs2):
        fs.mkdir("/d")
        fs.write_file("/d/f", b"x")
        fs2.unlink("/d/f")
        assert not fs.exists("/d/f")


class TestStatFS:
    def test_statfs_reports_usage(self, fs, cluster):
        fs.write_file("/payload", b"q" * 10_000, do_fsync=True)
        st = fs.statfs()
        assert st.f_files >= 3          # root inode + file inode + dentry
        assert st.used_bytes >= 10_000
        assert st.free_bytes < st.total_bytes
        assert st.f_bsize == 4096

    def test_statfs_usage_shrinks_after_unlink(self, fs, cluster, sim):
        fs.write_file("/big", b"z" * 50_000, do_fsync=True)
        used_before = fs.statfs().used_bytes
        fs.unlink("/big")
        sim.run(until=sim.now + 3)  # purge + checkpoints drain
        assert fs.statfs().used_bytes < used_before

    def test_statfs_through_fuse_mount(self, cluster):
        from repro.posix import ROOT_CREDS

        st = cluster.sim.run_process(cluster.mount(0).statfs(ROOT_CREDS))
        assert st.total_bytes > 0
