"""Crash-point enumeration via ``repro.faults.crashcheck``.

Tier-1 runs a *bounded* sweep (strided crash points) over every
workload — fast, but still crossing every phase of each one. The
exhaustive rename sweep (every one of the ~220 store-op crash indices,
the headline acceptance criterion) is gated behind ``REPRO_SLOW=1``.

Two tests seed deliberate recovery bugs and assert the checker CATCHES
them — a checker that can't fail is not a checker.
"""

import os

import pytest

from repro.faults.crashcheck import (
    SEEDED_BUGS,
    WORKLOADS,
    check_point,
    main as crashcheck_main,
    profile,
    sweep,
)

SLOW = bool(os.environ.get("REPRO_SLOW"))

# Strides chosen so each tier-1 sweep checks ~7 points spread across the
# whole workload (including the recovery-heavy tail).
BOUNDED = [("mkdir", 9), ("rename", 37), ("checkpoint", 5), ("pack", 11),
           ("shard_split", 16), ("epoch_handoff", 5), ("tier_drain", 16),
           ("qos_backlog", 13)]


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_fault_free_profile_is_clean(name):
    """Profiling (armed plan, crash never fires) must complete every step
    and count a stable, nonzero number of victim store ops."""
    total, milestones, failure = profile(WORKLOADS[name]())
    assert failure is None, failure
    assert total > 0
    assert milestones == sorted(milestones)
    assert milestones[-1] <= total
    # Determinism: a second profile counts the identical op stream.
    total2, milestones2, _ = profile(WORKLOADS[name]())
    assert (total2, milestones2) == (total, milestones)


def test_rename_workload_has_hundreds_of_crash_points():
    total, _, failure = profile(WORKLOADS["rename"]())
    assert failure is None
    assert total >= 200, total


@pytest.mark.parametrize("name,stride", BOUNDED)
def test_bounded_sweep_no_violations(name, stride):
    report = sweep(name, stride=stride)
    assert report.ok, report.summary()
    assert report.points, "sweep checked no crash points"
    assert all(r.fired for r in report.points), \
        "some crash points never fired"


@pytest.mark.skipif(not SLOW, reason="exhaustive sweep; set REPRO_SLOW=1")
def test_full_rename_sweep_every_store_op():
    """Acceptance criterion: enumerate EVERY store-op crash index of the
    rename-heavy (cross-directory 2PC) workload with zero violations."""
    report = sweep("rename", stride=1)
    assert report.ok, report.summary()
    assert len(report.points) >= 200, len(report.points)
    assert all(r.fired for r in report.points)


@pytest.mark.skipif(not SLOW, reason="exhaustive sweep; set REPRO_SLOW=1")
@pytest.mark.parametrize("name", ["mkdir", "checkpoint", "pack",
                                  "shard_split", "epoch_handoff",
                                  "tier_drain"])
def test_full_sweep_other_workloads(name):
    report = sweep(name, stride=1)
    assert report.ok, report.summary()


def test_seeded_lost_commit_bug_is_caught():
    """A journal manager that marks ops committed without writing the
    journal object breaks mkdir durability — caught in the *fault-free*
    profiling run (the strongest possible finding)."""
    assert "lost-commit" in SEEDED_BUGS
    report = sweep("mkdir", stride=9, bug="lost-commit")
    assert not report.ok
    assert report.profile_failure is not None


def test_seeded_pretend_fsync_bug_is_caught():
    """A cache that reports writeback done without the PUT survives the
    fault-free run (data still served from cache) but loses fsync'd file
    content across a crash — caught by the durability milestones and the
    rename workload's content invariants."""
    assert "pretend-fsync" in SEEDED_BUGS
    report = sweep("rename", stride=37, bug="pretend-fsync")
    assert not report.ok
    assert report.profile_failure is None, \
        "bug should survive the fault-free run and only bite post-crash"
    assert report.violations
    text = "\n".join(v for _, v in report.violations)
    assert "durability" in text or "invariant" in text or "holds" in text


def test_seeded_fence_blind_bug_is_caught():
    """A zombie leader — fencing enforcement off plus an inflated lease
    belief — keeps committing under a deposed authority's epoch after the
    epoch_handoff workload fails every manager range over. The
    FencingRegistry audit (independent of the disabled in-path check)
    must flag the stale-epoch commits already in the fault-free run."""
    assert "fence-blind" in SEEDED_BUGS
    report = sweep("epoch_handoff", stride=16, bug="fence-blind")
    assert not report.ok
    assert report.profile_failure is not None
    assert "stale-epoch commit" in report.profile_failure


def test_seeded_tier_drain_reorder_bug_is_caught():
    """A drain that reports durability one batch ahead of the cold PUTs
    survives the fault-free run (reads still hit the hot tier) but loses
    fsync'd data when a crash wipes the hot tier with the held batch not
    yet in cold — caught by the tier_drain durability milestones."""
    assert "tier-drain-reorder" in SEEDED_BUGS
    report = sweep("tier_drain", stride=7, bug="tier-drain-reorder")
    assert not report.ok
    assert report.profile_failure is None, \
        "bug should survive the fault-free run and only bite post-crash"
    assert report.violations


def test_cli_exit_codes():
    """The module CLI returns 0 on a clean sweep and 1 when the checker
    finds violations (here: under a seeded bug)."""
    assert crashcheck_main(["--workload", "checkpoint", "--stride", "5"]) == 0
    assert crashcheck_main(["--workload", "rename", "--stride", "37",
                            "--bug", "pretend-fsync"]) == 1
