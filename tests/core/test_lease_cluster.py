"""LeaseManagerCluster (the paper's future-work extension)."""

import pytest

from repro.core import build_arkfs
from repro.core.lease import LeaseManagerCluster
from repro.core.params import DEFAULT_PARAMS
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Network, Node, Simulator


@pytest.fixture
def clustered():
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, functional=True,
                          n_lease_managers=4)
    return sim, cluster


class TestSharding:
    def test_deterministic_shard_assignment(self):
        sim = Simulator()
        net = Network(sim)
        nodes = [Node(sim, f"m{i}", net=net) for i in range(4)]
        svc = LeaseManagerCluster(sim, nodes, DEFAULT_PARAMS)
        assert svc.shard_of(42) is svc.shard_of(42)
        assert svc.node_for(42) is svc.shard_of(42).node

    def test_directories_spread_over_managers(self):
        sim = Simulator()
        net = Network(sim)
        nodes = [Node(sim, f"m{i}", net=net) for i in range(4)]
        svc = LeaseManagerCluster(sim, nodes, DEFAULT_PARAMS)
        used = {id(svc.shard_of(i)) for i in range(200)}
        assert len(used) == 4

    def test_empty_cluster_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LeaseManagerCluster(sim, [], DEFAULT_PARAMS)


class TestFileSystemOnCluster:
    def test_full_semantics_still_hold(self, clustered):
        sim, cluster = clustered
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs0.makedirs("/a/b")
        fs0.write_file("/a/b/f", b"sharded leases", do_fsync=True)
        assert fs1.read_file("/a/b/f") == b"sharded leases"
        fs1.rename("/a/b/f", "/a/f2")
        assert fs0.readdir("/a") == ["b", "f2"]

    def test_leases_tracked_at_the_right_shard(self, clustered):
        sim, cluster = clustered
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs0.mkdir("/d")
        fs0.write_file("/d/f", b"")
        ino = fs0.stat("/d").st_ino
        svc = cluster.lease_service
        assert svc.holder_of(ino) == "client0"
        # Exactly one shard knows about it.
        knowing = [m for m in svc.managers if m.holder_of(ino)]
        assert len(knowing) == 1

    def test_shard_crash_only_blocks_its_directories(self, clustered):
        """Crashing one manager leaves directories on other shards usable."""
        sim, cluster = clustered
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        svc = cluster.lease_service
        fs0.mkdir("/x")
        ino = fs0.stat("/x").st_ino
        victim = svc.shard_of(ino)
        # Find a directory landing on a DIFFERENT shard.
        other_name = None
        for i in range(50):
            fs0.mkdir(f"/probe{i}")
            if svc.shard_of(fs0.stat(f"/probe{i}").st_ino) is not victim:
                other_name = f"/probe{i}"
                break
        assert other_name is not None
        victim.crash()
        # Directories on surviving shards keep working for new clients.
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs1.write_file(f"{other_name}/ok", b"alive")
        assert fs0.read_file(f"{other_name}/ok") == b"alive"

    def test_aggregate_stats(self, clustered):
        sim, cluster = clustered
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs0.mkdir("/s")
        fs0.write_file("/s/f", b"")
        stats = cluster.lease_service.stats
        assert stats["acquire"] >= 2  # / and /s at least


class TestManagerScalability:
    def test_cluster_relieves_manager_bottleneck(self):
        """With many clients churning leases, 4 shards beat 1 manager.

        Lease churn is forced with a tiny lease period so acquisition
        traffic dominates.
        """
        def run(n_mgrs):
            sim = Simulator()
            params = DEFAULT_PARAMS.with_(lease_period=0.05,
                                          lease_renew_margin=0.01,
                                          lease_op_cpu=3e-3)
            cluster = build_arkfs(sim, n_clients=16, functional=True,
                                  params=params, n_lease_managers=n_mgrs)
            from repro.workloads import mdtest_easy

            r = mdtest_easy(sim, cluster.mounts, n_procs=16,
                            files_per_proc=30, phases=("CREATE",))
            return r.phases["CREATE"]

        one = run(1)
        four = run(4)
        assert four > one * 1.3, (one, four)
