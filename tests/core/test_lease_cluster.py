"""LeaseManagerCluster (the paper's future-work extension)."""

import pytest

from repro.core import build_arkfs
from repro.core.lease import (LeaseGrant, LeaseManager, LeaseManagerCluster,
                              LeaseWait)
from repro.core.params import DEFAULT_PARAMS
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Network, Node, Simulator


@pytest.fixture
def clustered():
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, functional=True,
                          n_lease_managers=4)
    return sim, cluster


class TestSharding:
    def test_deterministic_shard_assignment(self):
        sim = Simulator()
        net = Network(sim)
        nodes = [Node(sim, f"m{i}", net=net) for i in range(4)]
        svc = LeaseManagerCluster(sim, nodes, DEFAULT_PARAMS)
        assert svc.shard_of(42) is svc.shard_of(42)
        assert svc.node_for(42) is svc.shard_of(42).node

    def test_directories_spread_over_managers(self):
        sim = Simulator()
        net = Network(sim)
        nodes = [Node(sim, f"m{i}", net=net) for i in range(4)]
        svc = LeaseManagerCluster(sim, nodes, DEFAULT_PARAMS)
        used = {id(svc.shard_of(i)) for i in range(200)}
        assert len(used) == 4

    def test_empty_cluster_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LeaseManagerCluster(sim, [], DEFAULT_PARAMS)


class TestFileSystemOnCluster:
    def test_full_semantics_still_hold(self, clustered):
        sim, cluster = clustered
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs0.makedirs("/a/b")
        fs0.write_file("/a/b/f", b"sharded leases", do_fsync=True)
        assert fs1.read_file("/a/b/f") == b"sharded leases"
        fs1.rename("/a/b/f", "/a/f2")
        assert fs0.readdir("/a") == ["b", "f2"]

    def test_leases_tracked_at_the_right_shard(self, clustered):
        sim, cluster = clustered
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs0.mkdir("/d")
        fs0.write_file("/d/f", b"")
        ino = fs0.stat("/d").st_ino
        svc = cluster.lease_service
        assert svc.holder_of(ino) == "client0"
        # Exactly one shard knows about it.
        knowing = [m for m in svc.managers if m.holder_of(ino)]
        assert len(knowing) == 1

    def test_shard_crash_only_blocks_its_directories(self, clustered):
        """Crashing one manager leaves directories on other shards usable."""
        sim, cluster = clustered
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        svc = cluster.lease_service
        fs0.mkdir("/x")
        ino = fs0.stat("/x").st_ino
        victim = svc.shard_of(ino)
        # Find a directory landing on a DIFFERENT shard.
        other_name = None
        for i in range(50):
            fs0.mkdir(f"/probe{i}")
            if svc.shard_of(fs0.stat(f"/probe{i}").st_ino) is not victim:
                other_name = f"/probe{i}"
                break
        assert other_name is not None
        victim.crash()
        # Directories on surviving shards keep working for new clients.
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs1.write_file(f"{other_name}/ok", b"alive")
        assert fs0.read_file(f"{other_name}/ok") == b"alive"

    def test_aggregate_stats(self, clustered):
        sim, cluster = clustered
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs0.mkdir("/s")
        fs0.write_file("/s/f", b"")
        stats = cluster.lease_service.stats
        assert stats["acquire"] >= 2  # / and /s at least


class TestPerRangeRestartFence:
    """Regression for the stale-lease edge where a restarted manager
    refused ALL grants for one lease period. In cluster mode the refusal
    is scoped to the recovered range: directories on the restarted
    manager's OTHER serving ranges — and on every other manager — grant
    immediately."""

    @staticmethod
    def _svc(n=4):
        sim = Simulator()
        net = Network(sim)
        nodes = [Node(sim, f"m{i}", net=net) for i in range(n)]
        return sim, LeaseManagerCluster(sim, nodes, DEFAULT_PARAMS)

    @staticmethod
    def _ino_on_range(svc, idx, avoid=None):
        for i in range(10_000):
            ino = 0xBEEF00 + i
            if svc.range_index(ino) == idx and ino != avoid:
                return ino
        raise AssertionError("no ino found for range")

    def test_restart_fences_only_the_recovered_range(self):
        sim, svc = self._svc()
        fenced_ino = self._ino_on_range(svc, 0)
        other_ino = self._ino_on_range(svc, 1)
        svc.restart_manager(0)
        resp = sim.run_process(svc.managers[0]._h_acquire(fenced_ino, "c"))
        assert isinstance(resp, LeaseWait)
        assert resp.reason == "range-fenced"
        assert resp.retry_at == svc.ranges[0].fence_until
        # A directory on a different range grants with zero wait.
        resp = sim.run_process(svc.shard_of(other_ino)
                               ._h_acquire(other_ino, "c"))
        assert isinstance(resp, LeaseGrant), resp

    def test_restarted_manager_serves_its_unrecovered_ranges(self):
        """After a crash, the restarted home manager's range is fenced but
        a range it took over earlier (and still owns) keeps serving."""
        sim, svc = self._svc(2)
        svc.crash_manager(0)          # m1 now owns ranges 0 and 1
        taken = self._ino_on_range(svc, 0)
        home = self._ino_on_range(svc, 1)

        def _sleep(dt):
            yield sim.timeout(dt)
        sim.run_process(_sleep(svc.ranges[0].fence_until - sim.now + 1e-9))
        svc.restart_manager(1)        # re-fences range 1 only
        resp = sim.run_process(svc.managers[1]._h_acquire(home, "c"))
        assert isinstance(resp, LeaseWait)
        assert resp.reason == "range-fenced"
        resp = sim.run_process(svc.managers[1]._h_acquire(taken, "c"))
        assert isinstance(resp, LeaseGrant), resp

    def test_standalone_restart_still_gates_globally(self):
        """The single-manager build keeps the conservative global gate —
        the per-range scoping is a cluster-mode property."""
        sim = Simulator()
        net = Network(sim)
        mgr = LeaseManager(sim, Node(sim, "m0", net=net), DEFAULT_PARAMS)
        grant = sim.run_process(mgr._h_acquire(0x1, "c"))
        assert isinstance(grant, LeaseGrant)
        mgr.restart()
        resp = sim.run_process(mgr._h_acquire(0x2, "c"))
        assert isinstance(resp, LeaseWait)
        assert resp.reason == "manager-restarted"


class TestManagerScalability:
    def test_cluster_relieves_manager_bottleneck(self):
        """With many clients churning leases, 4 shards beat 1 manager.

        Lease churn is forced with a tiny lease period so acquisition
        traffic dominates.
        """
        def run(n_mgrs):
            sim = Simulator()
            params = DEFAULT_PARAMS.with_(lease_period=0.05,
                                          lease_renew_margin=0.01,
                                          lease_op_cpu=3e-3)
            cluster = build_arkfs(sim, n_clients=16, functional=True,
                                  params=params, n_lease_managers=n_mgrs)
            from repro.workloads import mdtest_easy

            r = mdtest_easy(sim, cluster.mounts, n_procs=16,
                            files_per_proc=30, phases=("CREATE",))
            return r.phases["CREATE"]

        one = run(1)
        four = run(4)
        assert four > one * 1.3, (one, four)
