"""Acceptance criterion: QoS disabled ⇒ bit-identical results.

``qos_enabled=False`` (the default) must keep ArkFS structurally
identical to a build that predates the QoS plane — the same pin the
pack/shard/tier/fault layers carry. With QoS off no
:class:`~repro.core.qos.QosManager` is constructed at all: the OSD
queues are plain FIFO :class:`~repro.sim.resources.Resource`\\ s, the
lease-manager CPU is untouched, and every client/store hook is a single
``self.qos is None`` check that adds zero simulation events. Pinned here
on the three paper workload shapes the BENCH figures regenerate — fig4
(mdtest-easy metadata), fig6a (fio streaming), table2 (tar small-file
archiving) — by fingerprinting the sim clock, network totals, store op
counts, and store bytes across repeated runs.
"""

import pytest

from repro.core import DEFAULT_PARAMS, QosManager, WFQResource, build_arkfs
from repro.obs import Observability
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator
from repro.sim.resources import Resource


def _fig4_mdtest(cluster, sim):
    """mdtest-easy shape: per-client flat dirs, create/stat/delete."""
    fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
    fs0.mkdir("/md")
    for c in range(2):
        fs = SyncFS(cluster.client(c), ROOT_CREDS)
        fs.mkdir(f"/md/c{c}")
        for i in range(12):
            fs.write_file(f"/md/c{c}/f{i}", b"", do_fsync=True)
        for i in range(12):
            fs.stat(f"/md/c{c}/f{i}")
        for i in range(0, 12, 2):
            fs.unlink(f"/md/c{c}/f{i}")


def _fig6a_fio(cluster, sim):
    """fio shape: one streaming file at the data-object size, read back."""
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/fio")
    fs.write_file("/fio/f", b"\x5a" * (6 * 1024 * 1024))
    sim.run_process(cluster.client(0).sync())
    sim.run_process(cluster.client(0).drop_caches())
    fs.read_file("/fio/f")


def _table2_tar(cluster, sim):
    """tar archiving shape: many small files, fsync'd, then a drain."""
    fs = SyncFS(cluster.client(1), ROOT_CREDS)
    fs.mkdir("/tar")
    for i in range(10):
        fs.write_file(f"/tar/img{i}", bytes([i + 1]) * (20_000 + 331 * i),
                      do_fsync=(i % 3 == 0))
    for client in cluster.clients:
        sim.run_process(client.sync())
    sim.run(until=sim.now + 3)


WORKLOADS = {
    "fig4": _fig4_mdtest,
    "fig6a": _fig6a_fio,
    "table2": _table2_tar,
}


def _fingerprint(sim, cluster):
    store = cluster.store
    backing = getattr(store, "backing", store)
    content = {k: bytes(backing.sync_get(k)) for k in backing.sync_list("")}
    return {
        "now": sim.now,
        "messages": cluster.net.messages_sent,
        "bytes": cluster.net.bytes_sent,
        "store_ops": dict(backing.op_counts),
        "content": content,
    }


def test_default_is_off_and_builds_no_qos():
    assert DEFAULT_PARAMS.qos_enabled is False, \
        "QoS must stay opt-in: the default run is the paper baseline"
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, seed=0)
    assert cluster.qos is None
    assert cluster.store.qos is None
    for client in cluster.clients:
        assert client.qos is None and client.tenant is None
    # FIFO queues everywhere: plain Resources, never the WFQ subclass.
    mgr_cpu = cluster.lease_manager.node.cpu
    assert type(mgr_cpu) is Resource and not isinstance(mgr_cpu, WFQResource)
    assert cluster.lease_manager.qos is None
    for osd in cluster.store.osds:
        assert type(osd.queue) is Resource
    snap = Observability.of(sim).metrics.to_dict()
    assert not [k for k in snap["counters"] if k.startswith("qos.")]


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_qos_off_runs_bit_identical(workload):
    """Two independent qos-off builds replay each paper workload shape to
    identical clocks, network totals, store op counts, and store bytes —
    what keeps the regenerated BENCH figures unchanged by this PR."""
    prints = []
    for _ in range(2):
        sim = Simulator()
        cluster = build_arkfs(sim, n_clients=2, seed=0)
        WORKLOADS[workload](cluster, sim)
        prints.append(_fingerprint(sim, cluster))
    assert prints[0] == prints[1]


def test_qos_off_leaves_no_qos_metrics():
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, functional=True, seed=0)
    _table2_tar(cluster, sim)
    snap = Observability.of(sim).metrics.to_dict()
    assert not [k for k in snap["counters"] if k.startswith("qos.")]
    assert not [k for k in snap["histograms"] if k.startswith("tenant.")]


def test_qos_on_changes_plumbing_but_not_contents():
    """Control for the identity tests: the same archiving workload with
    QoS ON admits every op through the plane and tags the queues by
    tenant — proving the off-run's silence is the subsystem staying out
    of the way — while every file still reads back identically."""
    results = {}
    for enabled in (False, True):
        sim = Simulator()
        params = DEFAULT_PARAMS.with_(qos_enabled=enabled)
        cluster = build_arkfs(sim, n_clients=2, params=params,
                              functional=True, seed=0)
        _table2_tar(cluster, sim)
        fs = SyncFS(cluster.client(0), ROOT_CREDS)
        contents = {f"/tar/img{i}": fs.read_file(f"/tar/img{i}")
                    for i in range(10)}
        results[enabled] = (contents, cluster, sim)
    assert results[False][0] == results[True][0]
    on_cluster, on_sim = results[True][1], results[True][2]
    assert isinstance(on_cluster.qos, QosManager)
    assert isinstance(on_cluster.lease_manager.node.cpu, WFQResource)
    snap = Observability.of(on_sim).metrics.to_dict()
    assert snap["counters"]["qos.admitted"] > 0
    assert results[False][1].qos is None
