"""The fsck consistency checker: clean layouts pass, each corruption class
is detected, and it serves as an oracle after churn."""

import pytest

from repro.core import (
    Dentry,
    Inode,
    PRT,
    ROOT_INO,
    Transaction,
    build_arkfs,
    fsck,
)
from repro.posix import FileType, ROOT_CREDS, SyncFS
from repro.sim import Simulator


def quiesce(sim, cluster):
    """Flush everything and let background checkpoints drain."""
    for client in cluster.clients:
        if client.alive:
            sim.run_process(client.sync())
    sim.run(until=sim.now + 3)


def run_fsck(sim, cluster):
    return sim.run_process(fsck(cluster.prt))


@pytest.fixture
def populated(sim, cluster, fs):
    fs.makedirs("/proj/data")
    fs.write_file("/proj/data/a.bin", b"a" * 3000, do_fsync=True)
    fs.write_file("/proj/data/b.bin", b"b" * 10, do_fsync=True)
    fs.symlink("/proj/data", "/shortcut")
    quiesce(sim, cluster)
    return sim, cluster, fs


class TestCleanLayouts:
    def test_fresh_fs_is_clean(self, sim, cluster):
        quiesce(sim, cluster)
        r = run_fsck(sim, cluster)
        assert r.clean
        assert r.n_inodes == 1  # just the root

    def test_populated_fs_is_clean(self, populated):
        sim, cluster, fs = populated
        r = run_fsck(sim, cluster)
        assert r.clean, r.summary()
        assert r.n_inodes == 6   # root, proj, data, a, b, symlink
        assert r.n_dentries == 5
        assert r.n_data_objects == 2

    def test_clean_after_heavy_churn(self, populated):
        sim, cluster, fs = populated
        for i in range(15):
            fs.write_file(f"/proj/f{i}", bytes([i]) * 100)
        for i in range(0, 15, 2):
            fs.unlink(f"/proj/f{i}")
        fs.rename("/proj/f1", "/proj/data/moved")
        fs.mkdir("/proj/sub")
        fs.rmdir("/proj/sub")
        quiesce(sim, cluster)
        r = run_fsck(sim, cluster)
        assert r.clean, r.summary()

    def test_clean_after_crash_recovery(self, populated):
        sim, cluster, fs = populated
        cluster.client(0).crash()
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs1.write_file("/proj/data/post-crash", b"x", do_fsync=True)
        quiesce(sim, cluster)
        r = run_fsck(sim, cluster)
        assert r.clean, r.summary()

    def test_summary_format(self, populated):
        sim, cluster, fs = populated
        out = run_fsck(sim, cluster).summary()
        assert out.startswith("fsck: CLEAN")


class TestCorruptionDetection:
    def _store(self, cluster):
        return cluster.store

    def test_missing_root(self, sim, cluster):
        quiesce(sim, cluster)
        cluster.store.sync_delete(PRT.key_inode(ROOT_INO))
        r = run_fsck(sim, cluster)
        assert any("root inode missing" in e for e in r.errors)

    def test_dangling_dentry(self, populated):
        sim, cluster, fs = populated
        ghost = Dentry("ghost", 0xBEEF, FileType.REGULAR)
        root_ino = fs.stat("/proj").st_ino
        cluster.store.sync_put(PRT.key_dentry(root_ino, "ghost"),
                               ghost.to_bytes())
        r = run_fsck(sim, cluster)
        assert any("missing inode" in e for e in r.errors)

    def test_orphan_inode(self, populated):
        sim, cluster, fs = populated
        orphan = Inode(ino=0xDAD, ftype=FileType.REGULAR, mode=0o644,
                       uid=0, gid=0)
        cluster.store.sync_put(PRT.key_inode(0xDAD), orphan.to_bytes())
        r = run_fsck(sim, cluster)
        assert any("orphan inode" in e for e in r.errors)

    def test_type_mismatch(self, populated):
        sim, cluster, fs = populated
        ino = fs.stat("/proj/data/a.bin").st_ino
        dir_ino = fs.stat("/proj/data").st_ino
        bad = Dentry("a.bin", ino, FileType.DIRECTORY)
        cluster.store.sync_put(PRT.key_dentry(dir_ino, "a.bin"),
                               bad.to_bytes())
        r = run_fsck(sim, cluster)
        assert any("type" in e for e in r.errors)

    def test_double_link_detected(self, populated):
        sim, cluster, fs = populated
        ino = fs.stat("/proj/data/a.bin").st_ino
        root = ROOT_INO
        dup = Dentry("hardlink", ino, FileType.REGULAR)
        cluster.store.sync_put(PRT.key_dentry(root, "hardlink"),
                               dup.to_bytes())
        r = run_fsck(sim, cluster)
        assert any("hard links" in e for e in r.errors)

    def test_wrong_dir_nlink(self, populated):
        sim, cluster, fs = populated
        ino = fs.stat("/proj").st_ino
        raw = cluster.store.sync_get(PRT.key_inode(ino))
        inode = Inode.from_bytes(raw)
        inode.nlink = 99
        cluster.store.sync_put(PRT.key_inode(ino), inode.to_bytes())
        r = run_fsck(sim, cluster)
        assert any("nlink" in e for e in r.errors)

    def test_data_past_eof(self, populated):
        sim, cluster, fs = populated
        ino = fs.stat("/proj/data/b.bin").st_ino  # size 10
        cluster.store.sync_put(PRT.key_data(ino, 5), b"zzz")
        r = run_fsck(sim, cluster)
        assert any("past EOF" in e for e in r.errors)

    def test_data_for_missing_inode(self, populated):
        sim, cluster, fs = populated
        cluster.store.sync_put(PRT.key_data(0xF00D, 0), b"junk")
        r = run_fsck(sim, cluster)
        assert any("nonexistent inode" in e for e in r.errors)

    def test_leftover_journal_is_error(self, populated):
        sim, cluster, fs = populated
        dir_ino = fs.stat("/proj").st_ino
        txn = Transaction("zombie", dir_ino, "update", [])
        cluster.store.sync_put(PRT.key_journal(dir_ino, 7), txn.to_bytes())
        r = run_fsck(sim, cluster)
        assert any("journal transaction left behind" in e for e in r.errors)

    def test_stale_decision_is_warning_only(self, populated):
        sim, cluster, fs = populated
        cluster.store.sync_put(PRT.key_decision("oldtx"), b"commit")
        r = run_fsck(sim, cluster)
        assert r.clean
        assert any("decision" in w for w in r.warnings)

    def test_corrupt_inode_object(self, populated):
        sim, cluster, fs = populated
        ino = fs.stat("/proj/data/a.bin").st_ino
        cluster.store.sync_put(PRT.key_inode(ino), b"{not json")
        r = run_fsck(sim, cluster)
        assert any("unparseable inode" in e for e in r.errors)
