"""Per-directory journaling: compound transactions, coalescing, threads."""

import pytest

from repro.core import (
    PRT,
    Transaction,
    apply_ops,
    ops_del_dentry,
    ops_del_inode,
    ops_put_dentry,
    ops_put_inode,
)
from repro.core.journal import JournalManager, _coalesce
from repro.core.params import DEFAULT_PARAMS
from repro.core.types import Dentry, Inode
from repro.objectstore import InMemoryObjectStore
from repro.posix import FileType
from repro.sim import Network, Node, Simulator


def make_env(params=DEFAULT_PARAMS):
    sim = Simulator()
    net = Network(sim)
    node = Node(sim, "jnode", cores=4, net=net)
    prt = PRT(InMemoryObjectStore(sim), params.data_object_size)
    jm = JournalManager(sim, prt, params, node, "jnode")
    return sim, prt, jm


def inode(ino, size=0):
    return Inode(ino=ino, ftype=FileType.REGULAR, mode=0o644, uid=0, gid=0,
                 size=size)


class TestCoalescing:
    def test_last_inode_state_wins(self):
        ops = [ops_put_inode(inode(5, size=1)), ops_put_inode(inode(5, size=9))]
        out = _coalesce(ops)
        assert len(out) == 1
        assert out[0]["inode"]["size"] == 9

    def test_delete_supersedes_put(self):
        ops = [ops_put_inode(inode(5)), ops_del_inode(5)]
        out = _coalesce(ops)
        assert len(out) == 1
        assert out[0]["op"] == "del_inode"

    def test_different_objects_kept(self):
        d = Dentry("a", 5, FileType.REGULAR)
        ops = [ops_put_inode(inode(5)), ops_put_dentry(7, d),
               ops_del_dentry(7, "b")]
        assert len(_coalesce(ops)) == 3

    def test_dentry_keyed_by_dir_and_name(self):
        d = Dentry("a", 5, FileType.REGULAR)
        ops = [ops_put_dentry(1, d), ops_put_dentry(2, d)]
        assert len(_coalesce(ops)) == 2


class TestTransactionSerialization:
    def test_roundtrip(self):
        txn = Transaction("tx1", 99, "update",
                          [ops_put_inode(inode(5)), ops_del_dentry(99, "x")])
        back = Transaction.from_bytes(txn.to_bytes(), seq=3)
        assert back.txid == "tx1"
        assert back.dir_ino == 99
        assert back.kind == "update"
        assert back.ops == txn.ops
        assert back.seq == 3

    def test_prepare_carries_decision_key(self):
        txn = Transaction("tx2", 1, "prepare", [], decision_key="tabc")
        back = Transaction.from_bytes(txn.to_bytes())
        assert back.decision_key == "tabc"


class TestApplyOps:
    def test_apply_put_and_delete(self):
        sim, prt, _ = make_env()
        sim.run_process(apply_ops(prt, [
            ops_put_inode(inode(5)),
            ops_put_dentry(1, Dentry("f", 5, FileType.REGULAR)),
        ]))
        assert prt.key_inode(5) in prt.store
        sim.run_process(apply_ops(prt, [ops_del_inode(5),
                                        ops_del_dentry(1, "f")]))
        assert prt.key_inode(5) not in prt.store

    def test_apply_is_idempotent(self):
        sim, prt, _ = make_env()
        ops = [ops_put_inode(inode(5, size=3)), ops_del_dentry(1, "gone")]
        sim.run_process(apply_ops(prt, ops))
        sim.run_process(apply_ops(prt, ops))
        got = Inode.from_bytes(prt.store.sync_get(prt.key_inode(5)))
        assert got.size == 3

    def test_unknown_op_rejected(self):
        sim, prt, _ = make_env()
        with pytest.raises(ValueError):
            sim.run_process(apply_ops(prt, [{"op": "mystery"}]))


class TestJournalManager:
    def test_record_then_flush_checkpoints(self):
        sim, prt, jm = make_env()
        jm.record(7, ops_put_inode(inode(5)))
        assert jm.is_dirty(7)
        sim.run_process(jm.flush(7, full=True))
        assert not jm.is_dirty(7)
        assert prt.key_inode(5) in prt.store
        # Journal object invalidated after checkpoint.
        assert prt.store.sync_list(prt.key_journal_prefix(7)) == []
        assert jm.commits == 1 and jm.checkpoints == 1

    def test_commit_thread_flushes_on_interval(self):
        sim, prt, jm = make_env()
        jm.start_threads()
        jm.record(7, ops_put_inode(inode(5)))
        assert prt.key_inode(5) not in prt.store
        sim.run(until=DEFAULT_PARAMS.journal_commit_interval * 2 + 0.1)
        assert prt.key_inode(5) in prt.store
        jm.stop()

    def test_compound_transaction_batches_many_ops(self):
        """100 creates inside one interval -> one journal commit."""
        sim, prt, jm = make_env()
        for i in range(100):
            jm.record(7, ops_put_inode(inode(1000 + i)))
        sim.run_process(jm.flush(7, full=True))
        assert jm.commits == 1
        assert prt.store.op_counts["put"] >= 100  # checkpoint wrote each

    def test_independent_directories_have_independent_journals(self):
        sim, prt, jm = make_env()
        jm.record(1, ops_put_inode(inode(10)))
        jm.record(2, ops_put_inode(inode(20)))
        sim.run_process(jm.flush(1, full=True))
        assert not jm.is_dirty(1)
        assert jm.is_dirty(2)

    def test_stop_loses_running_txn(self):
        sim, prt, jm = make_env()
        jm.start_threads()
        jm.record(7, ops_put_inode(inode(5)))
        jm.stop()
        sim.run(until=5)
        assert prt.key_inode(5) not in prt.store  # never committed

    def test_record_after_stop_is_ignored(self):
        sim, prt, jm = make_env()
        jm.stop()
        jm.record(7, ops_put_inode(inode(5)))
        assert not jm.is_dirty(7)

    def test_drop_dirty_journal_rejected(self):
        sim, prt, jm = make_env()
        jm.record(7, ops_put_inode(inode(5)))
        with pytest.raises(RuntimeError):
            jm.drop(7)
        sim.run_process(jm.flush(7, full=True))
        jm.drop(7)  # clean now

    def test_flush_unknown_dir_is_noop(self):
        sim, prt, jm = make_env()
        sim.run_process(jm.flush(999))


class TestPrepare2PC:
    def test_prepare_writes_journal_without_applying(self):
        sim, prt, jm = make_env()
        ops = [ops_put_inode(inode(5))]
        seq = sim.run_process(jm.prepare(7, "tx9", ops, "t-tx9"))
        keys = prt.store.sync_list(prt.key_journal_prefix(7))
        assert len(keys) == 1
        txn = Transaction.from_bytes(prt.store.sync_get(keys[0]))
        assert txn.kind == "prepare"
        assert prt.key_inode(5) not in prt.store  # not applied yet

    def test_finish_commit_applies_and_cleans(self):
        sim, prt, jm = make_env()
        ops = [ops_put_inode(inode(5))]
        seq = sim.run_process(jm.prepare(7, "tx9", ops, "t-tx9"))
        sim.run_process(jm.finish_prepared(7, seq, ops, commit=True))
        assert prt.key_inode(5) in prt.store
        assert prt.store.sync_list(prt.key_journal_prefix(7)) == []

    def test_finish_abort_discards(self):
        sim, prt, jm = make_env()
        ops = [ops_put_inode(inode(5))]
        seq = sim.run_process(jm.prepare(7, "tx9", ops, "t-tx9"))
        sim.run_process(jm.finish_prepared(7, seq, ops, commit=False))
        assert prt.key_inode(5) not in prt.store
        assert prt.store.sync_list(prt.key_journal_prefix(7)) == []

    def test_prepare_drains_older_running_ops_first(self):
        """Ordering: buffered ops must commit before the prepare record."""
        sim, prt, jm = make_env()
        jm.record(7, ops_put_inode(inode(1)))
        sim.run_process(jm.prepare(7, "tx", [ops_put_inode(inode(2))], "t-tx"))
        assert prt.key_inode(1) in prt.store  # older op checkpointed
        assert prt.key_inode(2) not in prt.store


    def test_plain_flush_commits_but_defers_checkpoint(self):
        """fsync durability = commit; checkpointing happens in background."""
        sim, prt, jm = make_env()
        jm.record(7, ops_put_inode(inode(5)))
        sim.run_process(jm.flush(7))
        # Committed: the journal object exists; base object not yet written.
        assert len(prt.store.sync_list(prt.key_journal_prefix(7))) == 1
        sim.run()  # background checkpoint drains
        assert prt.key_inode(5) in prt.store
        assert prt.store.sync_list(prt.key_journal_prefix(7)) == []

# -- property tests -----------------------------------------------------------

from hypothesis import given, settings, strategies as st


def _op_strategy():
    ino = st.integers(1, 6)
    name = st.sampled_from(["a", "b", "c"])
    return st.one_of(
        st.builds(lambda i: ops_put_inode(inode(i, size=i * 7)), ino),
        st.builds(ops_del_inode, ino),
        st.builds(lambda d, n: ops_put_dentry(
            d, Dentry(n, d * 100, FileType.REGULAR)), ino, name),
        st.builds(ops_del_dentry, ino, name),
    )


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(_op_strategy(), max_size=30))
def test_coalescing_preserves_final_state(ops):
    """Applying the coalesced transaction must leave the store in exactly
    the same state as applying every op in sequence."""
    sim_a, prt_a, _ = make_env()
    sim_b, prt_b, _ = make_env()
    for op in ops:
        sim_a.run_process(apply_ops(prt_a, [op]))
    sim_b.run_process(apply_ops(prt_b, _coalesce(list(ops))))
    keys_a = prt_a.store.sync_list("")
    keys_b = prt_b.store.sync_list("")
    assert keys_a == keys_b
    for k in keys_a:
        assert prt_a.store.sync_get(k) == prt_b.store.sync_get(k)


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(_op_strategy(), min_size=1, max_size=20),
       replays=st.integers(1, 3))
def test_transaction_replay_idempotent_property(ops, replays):
    """Recovery may replay a committed transaction any number of times."""
    sim, prt, _ = make_env()
    for _ in range(replays):
        sim.run_process(apply_ops(prt, list(ops)))
    snapshot = {k: prt.store.sync_get(k) for k in prt.store.sync_list("")}
    sim.run_process(apply_ops(prt, list(ops)))
    again = {k: prt.store.sync_get(k) for k in prt.store.sync_list("")}
    assert snapshot == again
