"""Slow-tenant isolation regression (ROADMAP item 2, ablation A11's gate).

One abusive tenant offers ~two orders of magnitude more load than any
victim — concurrent zero-think-time streams of store-object-sized writes
against the victims' occasional small-file ingest. With the QoS plane on,
every victim tenant's p99 must stay within 1.5x of its solo p99. The
latencies are asserted from the obs metrics registry (the per-tenant
``tenant.<tid>.lat`` histograms every BENCH json exports), not from
workload-private bookkeeping — the same numbers an operator would read.
"""

import pytest

from repro.core import DEFAULT_PARAMS, build_arkfs
from repro.obs import Observability
from repro.objectstore.profiles import MiB, RADOS_PROFILE
from repro.sim import Simulator
from repro.sim.network import NetParams
from repro.workloads.tenants import ABUSER, archive_service

NET = NetParams(latency_s=50e-6, bandwidth_bps=50e9 / 8)

QOS_PARAMS = DEFAULT_PARAMS.with_(
    qos_enabled=True,
    qos_ops_rate=1000.0,
    qos_ops_burst=32.0,
    qos_bytes_rate=8 * MiB,
    qos_bytes_burst=1 * MiB,
    qos_max_inflight=4,
)

#: Small tenant population so the Zipf-hot tenants collect enough
#: observations for a stable per-tenant histogram p99.
N_TENANTS = 12
OPS_PER_STREAM = 40
ISOLATION_BOUND = 1.5
#: Histogram p99 of a tenant with very few ops is just its max — one
#: unlucky head-of-line collision would dominate. Per-tenant bounds are
#: asserted for tenants with at least this many ops (identical op
#: sequences in both runs make the cut symmetric); the pooled p99 over
#: *all* victim ops is asserted unconditionally.
MIN_OPS = 10


def _run(params, abusive_procs):
    sim = Simulator()
    n_clients = 3 + (1 if abusive_procs else 0)
    cluster = build_arkfs(sim, n_clients=n_clients, params=params,
                          store_profile=RADOS_PROFILE, net_params=NET)
    result = archive_service(sim, cluster, n_tenants=N_TENANTS,
                             ops_per_stream=OPS_PER_STREAM,
                             abusive_procs=abusive_procs,
                             payload=16 * 1024,
                             abusive_payload=1 * MiB)
    metrics = Observability.of(sim).metrics.to_dict()
    hists = {name: h for name, h in
             Observability.of(sim).metrics.items()
             if name.startswith("tenant.") and name.endswith(".lat")}
    return result, metrics, hists


def _victim_p99s(hists):
    out = {}
    for name, h in hists.items():
        tid = name.split(".")[1]
        if tid != ABUSER and not tid.startswith("client"):
            out[tid] = (h.quantile(0.99), h.count)
    return out


def test_victims_isolated_from_abusive_tenant():
    solo, _, solo_h = _run(QOS_PARAMS, abusive_procs=0)
    under, m, under_h = _run(QOS_PARAMS, abusive_procs=6)

    solo_p99 = _victim_p99s(solo_h)
    under_p99 = _victim_p99s(under_h)
    assert set(solo_p99) == set(under_p99), \
        "same seed must sample the same tenants in both runs"

    # Every sufficiently-sampled victim tenant individually in bound.
    checked = 0
    for tid, (p99, count) in under_p99.items():
        s_p99, s_count = solo_p99[tid]
        assert count == s_count, f"{tid}: op counts diverged"
        if count < MIN_OPS:
            continue
        checked += 1
        assert p99 <= s_p99 * ISOLATION_BOUND, (
            f"tenant {tid}: p99 {p99 * 1e3:.2f}ms under attack vs "
            f"{s_p99 * 1e3:.2f}ms solo (> {ISOLATION_BOUND}x)")
    assert checked >= 2, "Zipf head too thin; nothing meaningful asserted"

    # Pooled victim p99 (exact, over every op) in bound too.
    assert under.victim_p99() <= solo.victim_p99() * ISOLATION_BOUND

    # The abuser was actually offering load and the plane was throttling.
    assert under.abusive_ops > 0
    assert m["counters"]["qos.throttle_bytes"] > 0
    assert m["counters"]["qos.admitted"] > 0


def test_admission_backpressure_caps_concurrency():
    """A tenant flooding concurrent metadata ops hits the in-flight cap:
    TenantBusy (EAGAIN) is raised, retried through the client's policy,
    and the flood still completes — capped, not failed."""
    params = QOS_PARAMS.with_(qos_max_inflight=2)
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=4, params=params,
                          store_profile=RADOS_PROFILE, net_params=NET)
    result = archive_service(sim, cluster, n_tenants=N_TENANTS,
                             ops_per_stream=20, abusive_procs=8,
                             payload=1024, abusive_payload=1024)
    m = Observability.of(sim).metrics.to_dict()
    assert m["counters"]["qos.busy"] > 0, \
        "8 concurrent streams over a cap of 2 never hit admission"
    # Backpressure, not denial: the abuser still makes progress.
    assert result.abusive_ops > 0
    # Victims never see the abuser's EAGAINs (separate tenants).
    assert result.victim_ops == 3 * 20


def test_abuser_throughput_capped_vs_unprotected():
    """The abuser's achieved throughput drops by >= 10x with QoS on."""
    off, _, _ = _run(DEFAULT_PARAMS, abusive_procs=6)
    on, _, _ = _run(QOS_PARAMS, abusive_procs=6)
    rate_off = off.abusive_ops / off.elapsed
    rate_on = on.abusive_ops / on.elapsed
    assert rate_on * 10 <= rate_off, (
        f"abuser barely capped: {rate_on:.0f}/s with QoS vs "
        f"{rate_off:.0f}/s without")
