"""Property tests for the QoS plane's mechanisms (hypothesis).

Three contracts, each stated in the module docstrings of
``repro.core.qos`` and proven here over randomized schedules:

* **Token bucket window bound** — for costs ≤ burst, the work a bucket
  lets proceed inside any window ``(t0, t1]`` never exceeds
  ``rate × (t1 - t0) + burst``.
* **WFQ per-tenant FIFO** — whatever the tenant/cost interleaving, a
  WFQResource never reorders two requests of the same tenant.
* **WFQ weight shares** — continuously-backlogged tenants receive service
  in proportion to their configured weights.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.qos import TokenBucket, WFQResource
from repro.sim.engine import SimulationError, Simulator

# ---------------------------------------------------------------------------
# Token bucket: service over any window ≤ rate × window + burst
# ---------------------------------------------------------------------------

bucket_st = st.tuples(
    st.floats(min_value=0.5, max_value=1000.0),   # rate
    st.floats(min_value=1.0, max_value=64.0),     # burst
)

# (cost fraction of burst, inter-arrival gap) per request. Costs are drawn
# ≤ burst: the windowed bound only holds for requests the bucket can ever
# cover at once (a single cost > burst borrows past the bound by design).
arrivals_st = st.lists(
    st.tuples(st.floats(min_value=0.01, max_value=1.0),
              st.floats(min_value=0.0, max_value=2.0)),
    min_size=1, max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(params=bucket_st, arrivals=arrivals_st)
def test_token_bucket_window_bound(params, arrivals):
    rate, burst = params
    bucket = TokenBucket(rate, burst)
    # Simulate the caller contract: charge at `now`, then actually proceed
    # (consume) after the returned delay.
    now = 0.0
    events = []  # (proceed_time, cost)
    for frac, gap in arrivals:
        now += gap
        cost = frac * burst
        wait = bucket.delay_for(cost, now)
        assert wait >= 0.0
        events.append((now + wait, cost))
        # Closed loop: the next request is only issued once this one
        # proceeded (the client generators block on the throttle sleep).
        now += wait

    # The bound must hold over *every* window, not just the full run.
    events.sort()
    times = [t for t, _ in events]
    eps = 1e-9
    for i, t0 in enumerate(times):
        served = 0.0
        for t1, cost in events[i:]:
            served += cost
            window = t1 - t0
            assert served <= rate * window + burst + eps, (
                f"window ({t0}, {t1}]: served {served} > "
                f"{rate} * {window} + {burst}")


def test_token_bucket_rejects_bad_config():
    with pytest.raises(SimulationError):
        TokenBucket(0.0, 1.0)
    with pytest.raises(SimulationError):
        TokenBucket(1.0, -2.0)


def test_token_bucket_refill_caps_at_burst():
    b = TokenBucket(rate=10.0, burst=5.0)
    assert b.delay_for(5.0, 0.0) == 0.0       # drain the full burst
    assert b.delay_for(5.0, 100.0) == 0.0     # long idle refills to burst…
    assert b.delay_for(1.0, 100.0) > 0.0      # …but never beyond it


# ---------------------------------------------------------------------------
# WFQ: per-tenant FIFO and weighted shares
# ---------------------------------------------------------------------------

schedule_st = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4),        # tenant index
              st.floats(min_value=0.001, max_value=2.0)),   # cost/hold
    min_size=2, max_size=80,
)


@settings(max_examples=150, deadline=None)
@given(schedule=schedule_st, capacity=st.integers(min_value=1, max_value=3))
def test_wfq_never_reorders_within_a_tenant(schedule, capacity):
    """Grant order within one tenant == issue order, for any schedule.

    The contract is about *grants* (when a request reaches the server),
    not completions — with capacity > 1, concurrent holds finish in
    hold-time order by construction.
    """
    sim = Simulator()
    res = WFQResource(sim, capacity=capacity, name="q")
    granted = []

    def holder(i, tenant, cost):
        req = res.request_wfq(tenant, cost)
        yield req
        granted.append((tenant, i))
        yield sim.timeout(cost)
        res.release(req)

    def driver():
        for i, (t, cost) in enumerate(schedule):
            sim.process(holder(i, f"t{t}", cost))
            # Tiny stagger so issue order is well-defined even under
            # capacity: all requests still pile up queued.
            yield sim.timeout(1e-6)

    sim.process(driver())
    sim.run()

    per_tenant = {}
    for tenant, i in granted:
        per_tenant.setdefault(tenant, []).append(i)
    for tenant, order in per_tenant.items():
        assert order == sorted(order), \
            f"tenant {tenant} completed out of issue order: {order}"
    assert len(granted) == len(schedule)
    assert res.queue_length == 0 and res.in_use == 0


@settings(max_examples=40, deadline=None)
@given(weights=st.lists(st.sampled_from([1.0, 2.0, 4.0, 8.0]),
                        min_size=2, max_size=4))
def test_wfq_share_converges_to_weights(weights):
    """Continuously-backlogged tenants split service ∝ their weights."""
    sim = Simulator()
    wmap = {f"t{i}": w for i, w in enumerate(weights)}
    res = WFQResource(sim, capacity=1, name="cpu",
                      weight_of=lambda t: wmap.get(t, 1.0))
    HOLD = 0.01
    HORIZON = 40.0
    served = {t: 0.0 for t in wmap}

    def backlog(tenant):
        while sim.now < HORIZON:
            yield from res.use_wfq(HOLD, tenant, HOLD)
            served[tenant] += HOLD

    # Two closed-loop streams per tenant: with a single outstanding
    # request, release() always finds exactly one waiter and any queue
    # discipline degenerates to round-robin. Weighted shares are a
    # statement about *backlogged* tenants — at least one request must be
    # queued whenever one is granted.
    for t in wmap:
        for _ in range(2):
            sim.process(backlog(t))
    sim.run(until=HORIZON)

    total_w = sum(wmap.values())
    total_served = sum(served.values())
    assert total_served > 0
    for t, w in wmap.items():
        share = served[t] / total_served
        expect = w / total_w
        # One HOLD quantum of slack on either side of the ideal share.
        slack = 2 * HOLD / HORIZON + 0.02
        assert abs(share - expect) <= expect * 0.1 + slack, (
            f"tenant {t} (weight {w}) got share {share:.3f}, "
            f"expected ~{expect:.3f}")


def test_wfq_untagged_requests_still_work():
    """Tenant-unaware code (plain request/use) runs against a WFQResource."""
    sim = Simulator()
    res = WFQResource(sim, capacity=1, name="q")
    done = []

    def user(i):
        yield from res.use(0.01)
        done.append(i)

    for i in range(5):
        sim.process(user(i))
    sim.run()
    assert done == [0, 1, 2, 3, 4]
