"""POSIX.1e ACL semantics: classic bits, extended entries, mask, chmod."""

import pytest
from hypothesis import given, strategies as st

from repro.posix import Acl, Credentials, R_OK, W_OK, X_OK, check_perm, perm_str
from repro.posix.errors import InvalidArgument


OWNER = Credentials(uid=100, gid=100)
GROUPMATE = Credentials(uid=101, gid=100)
STRANGER = Credentials(uid=200, gid=200)
ROOT = Credentials(uid=0, gid=0)


class TestMinimalAcl:
    def test_from_mode_roundtrip(self):
        acl = Acl.from_mode(0o754)
        assert acl.user_obj == 7
        assert acl.group_obj == 5
        assert acl.other == 4
        assert acl.to_mode_bits() == 0o754

    def test_owner_uses_user_obj(self):
        acl = Acl.from_mode(0o400)
        assert acl.check(OWNER, R_OK, 100, 100)
        assert not acl.check(OWNER, W_OK, 100, 100)

    def test_owner_denied_even_if_group_grants(self):
        # POSIX: the first matching class decides; owner never falls through.
        acl = Acl.from_mode(0o070)
        assert not acl.check(OWNER, R_OK, 100, 100)
        assert acl.check(GROUPMATE, R_OK, 100, 100)

    def test_group_member_uses_group_obj(self):
        acl = Acl.from_mode(0o740)
        assert acl.check(GROUPMATE, R_OK, 100, 100)
        assert not acl.check(GROUPMATE, W_OK, 100, 100)

    def test_supplementary_groups_count(self):
        creds = Credentials(uid=300, gid=300, groups=(100,))
        acl = Acl.from_mode(0o040)
        assert acl.check(creds, R_OK, 100, 100)

    def test_other_for_strangers(self):
        acl = Acl.from_mode(0o664)
        assert acl.check(STRANGER, R_OK, 100, 100)
        assert not acl.check(STRANGER, W_OK, 100, 100)

    def test_group_denial_does_not_fall_to_other(self):
        acl = Acl.from_mode(0o707)
        assert not acl.check(GROUPMATE, R_OK, 100, 100)


class TestRoot:
    def test_root_reads_writes_anything(self):
        acl = Acl.from_mode(0o000)
        assert acl.check(ROOT, R_OK | W_OK, 100, 100)

    def test_root_exec_needs_some_x_bit(self):
        assert not Acl.from_mode(0o600).check(ROOT, X_OK, 100, 100)
        assert Acl.from_mode(0o601).check(ROOT, X_OK, 100, 100)
        ext = Acl.from_mode(0o600)
        ext.set_user(42, X_OK)
        assert ext.check(ROOT, X_OK, 100, 100)


class TestExtendedEntries:
    def test_named_user_entry(self):
        acl = Acl.from_mode(0o700)
        acl.set_user(200, R_OK | W_OK)
        assert acl.check(STRANGER, R_OK | W_OK, 100, 100)

    def test_named_user_capped_by_mask(self):
        acl = Acl.from_mode(0o700)
        acl.set_user(200, R_OK | W_OK)
        acl.mask = R_OK
        assert acl.check(STRANGER, R_OK, 100, 100)
        assert not acl.check(STRANGER, W_OK, 100, 100)

    def test_mask_does_not_cap_owner(self):
        acl = Acl.from_mode(0o700)
        acl.set_user(200, R_OK)
        acl.mask = 0
        assert acl.check(OWNER, R_OK | W_OK | X_OK, 100, 100)

    def test_mask_does_not_cap_other(self):
        acl = Acl.from_mode(0o007)
        acl.set_user(300, 0)
        acl.mask = 0
        assert acl.check(STRANGER, R_OK | W_OK | X_OK, 100, 100)

    def test_named_group_entry(self):
        acl = Acl.from_mode(0o700)
        acl.set_group(200, R_OK)
        assert acl.check(STRANGER, R_OK, 100, 100)
        assert not acl.check(STRANGER, W_OK, 100, 100)

    def test_any_matching_group_entry_grants(self):
        creds = Credentials(uid=500, gid=10, groups=(20,))
        acl = Acl.from_mode(0o700)
        acl.set_group(10, R_OK)
        acl.set_group(20, W_OK)
        assert acl.check(creds, R_OK, 100, 100)
        assert acl.check(creds, W_OK, 100, 100)
        # But no single entry grants both at once: POSIX denies.
        assert not acl.check(creds, R_OK | W_OK, 100, 100)

    def test_named_user_wins_over_groups(self):
        acl = Acl.from_mode(0o770)
        acl.set_user(101, 0)  # explicitly deny groupmate by uid
        assert not acl.check(GROUPMATE, R_OK, 100, 100)

    def test_default_mask_is_union(self):
        acl = Acl.from_mode(0o740)
        acl.set_user(200, W_OK)
        assert acl.mask == (4 | 2)  # group_obj r + named w

    def test_extended_acl_mode_bits_show_mask(self):
        acl = Acl.from_mode(0o740)
        acl.set_user(200, 7)
        acl.mask = R_OK
        assert (acl.to_mode_bits() >> 3) & 7 == R_OK


class TestChmod:
    def test_chmod_minimal(self):
        acl = Acl.from_mode(0o777)
        acl.apply_chmod(0o640)
        assert acl.to_mode_bits() == 0o640
        assert acl.group_obj == 4

    def test_chmod_extended_touches_mask_not_group_obj(self):
        acl = Acl.from_mode(0o770)
        acl.set_user(200, 7)
        acl.apply_chmod(0o700)
        assert acl.mask == 0
        assert acl.group_obj == 7  # preserved under the mask
        assert not acl.check(STRANGER, R_OK, 100, 100)


class TestSerialization:
    def test_json_roundtrip(self):
        acl = Acl.from_mode(0o754)
        acl.set_user(42, R_OK | X_OK)
        acl.set_group(7, W_OK)
        acl.mask = 6
        back = Acl.from_json(acl.to_json())
        assert back == acl

    def test_text_form(self):
        acl = Acl.from_mode(0o754)
        acl.set_user(42, 5)
        text = acl.to_text()
        assert "user::rwx" in text
        assert "user:42:r-x" in text
        assert "group::r-x" in text
        assert "mask::" in text
        assert "other::r--" in text

    def test_minimal_text_has_no_mask(self):
        assert "mask" not in Acl.from_mode(0o644).to_text()

    def test_copy_is_independent(self):
        acl = Acl.from_mode(0o777)
        c = acl.copy()
        c.set_user(1, 7)
        assert not acl.named_users


class TestValidation:
    def test_bad_perm_rejected(self):
        with pytest.raises(InvalidArgument):
            Acl(user_obj=8, group_obj=0, other=0)
        acl = Acl.from_mode(0o777)
        with pytest.raises(InvalidArgument):
            acl.set_user(1, -1)


def test_check_perm_helper_uses_mode_when_no_acl():
    assert check_perm(None, 0o600, 100, 100, OWNER, R_OK)
    assert not check_perm(None, 0o600, 100, 100, STRANGER, R_OK)


def test_perm_str():
    assert perm_str(7) == "rwx"
    assert perm_str(5) == "r-x"
    assert perm_str(0) == "---"


# -- properties: the ACL algorithm agrees with classic mode-bit checks ---------

perm = st.integers(min_value=0, max_value=7)


@given(u=perm, g=perm, o=perm, want=st.integers(min_value=1, max_value=7))
def test_minimal_acl_matches_mode_bit_semantics(u, g, o, want):
    acl = Acl(user_obj=u, group_obj=g, other=o)
    assert acl.check(OWNER, want, 100, 100) == ((u & want) == want)
    assert acl.check(GROUPMATE, want, 100, 100) == ((g & want) == want)
    assert acl.check(STRANGER, want, 100, 100) == ((o & want) == want)


@given(u=perm, g=perm, o=perm,
       named=st.dictionaries(st.integers(200, 210), perm, max_size=4),
       mask=perm, want=st.integers(min_value=1, max_value=7))
def test_named_user_always_capped_by_mask(u, g, o, named, mask, want):
    acl = Acl(user_obj=u, group_obj=g, other=o, named_users=dict(named),
              mask=mask)
    for uid, p in named.items():
        creds = Credentials(uid=uid, gid=9999)
        assert acl.check(creds, want, 100, 100) == ((p & mask & want) == want)


@given(u=perm, g=perm, o=perm, want=st.integers(min_value=1, max_value=7))
def test_json_roundtrip_preserves_checks(u, g, o, want):
    acl = Acl(user_obj=u, group_obj=g, other=o)
    back = Acl.from_json(acl.to_json())
    for creds in (OWNER, GROUPMATE, STRANGER):
        assert back.check(creds, want, 100, 100) == acl.check(creds, want, 100, 100)
