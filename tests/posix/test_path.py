"""Path utilities: normalization, splitting, validation."""

import pytest
from hypothesis import given, strategies as st

from repro.posix import InvalidArgument, NameTooLong
from repro.posix.path import (
    is_ancestor,
    join,
    normalize,
    parent_and_name,
    split_path,
    validate_name,
)


class TestSplitPath:
    def test_basic(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]

    def test_root(self):
        assert split_path("/") == []

    def test_collapses_slashes(self):
        assert split_path("//a///b/") == ["a", "b"]

    def test_resolves_dot(self):
        assert split_path("/a/./b/.") == ["a", "b"]

    def test_resolves_dotdot(self):
        assert split_path("/a/b/../c") == ["a", "c"]

    def test_dotdot_above_root_clamps(self):
        assert split_path("/../../a") == ["a"]

    def test_relative_rejected(self):
        with pytest.raises(InvalidArgument):
            split_path("a/b")

    def test_empty_rejected(self):
        with pytest.raises(InvalidArgument):
            split_path("")

    def test_nul_rejected(self):
        with pytest.raises(InvalidArgument):
            split_path("/a\x00b")

    def test_long_component_rejected(self):
        with pytest.raises(NameTooLong):
            split_path("/" + "x" * 256)

    def test_255_byte_component_ok(self):
        assert split_path("/" + "x" * 255) == ["x" * 255]

    def test_multibyte_length_counted_in_bytes(self):
        # 86 three-byte chars = 258 bytes > 255
        with pytest.raises(NameTooLong):
            split_path("/" + "あ" * 86)


class TestNormalize:
    def test_examples(self):
        assert normalize("/a//b/./c/") == "/a/b/c"
        assert normalize("/") == "/"
        assert normalize("/a/../b") == "/b"


class TestParentAndName:
    def test_basic(self):
        assert parent_and_name("/a/b/c") == ("/a/b", "c")

    def test_top_level(self):
        assert parent_and_name("/a") == ("/", "a")

    def test_root_rejected(self):
        with pytest.raises(InvalidArgument):
            parent_and_name("/")


class TestJoin:
    def test_basic(self):
        assert join("/a", "b", "c") == "/a/b/c"

    def test_root_base(self):
        assert join("/", "x") == "/x"

    def test_invalid_component(self):
        with pytest.raises(InvalidArgument):
            join("/a", "b/c")
        with pytest.raises(InvalidArgument):
            join("/a", "..")


class TestValidateName:
    @pytest.mark.parametrize("bad", ["", ".", "..", "a/b", "a\x00b"])
    def test_rejects(self, bad):
        with pytest.raises(InvalidArgument):
            validate_name(bad)

    def test_accepts_normal(self):
        assert validate_name("file.txt") == "file.txt"


class TestIsAncestor:
    def test_proper_ancestor(self):
        assert is_ancestor("/a", "/a/b")
        assert is_ancestor("/a", "/a/b/c")
        assert is_ancestor("/", "/a")

    def test_not_self(self):
        assert not is_ancestor("/a/b", "/a/b")

    def test_not_sibling(self):
        assert not is_ancestor("/a/b", "/a/bc")

    def test_not_reversed(self):
        assert not is_ancestor("/a/b", "/a")


# -- properties -----------------------------------------------------------

name_st = st.text(
    alphabet=st.characters(blacklist_characters="/\x00", blacklist_categories=("Cs",)),
    min_size=1, max_size=40,
).filter(lambda s: s not in (".", ".."))


@given(st.lists(name_st, min_size=0, max_size=6))
def test_normalize_is_idempotent(parts):
    p = "/" + "/".join(parts)
    n = normalize(p)
    assert normalize(n) == n


@given(st.lists(name_st, min_size=1, max_size=6))
def test_split_join_roundtrip(parts):
    p = join("/", *parts)
    assert split_path(p) == parts


@given(st.lists(name_st, min_size=1, max_size=6))
def test_parent_name_recompose(parts):
    p = "/" + "/".join(parts)
    parent, name = parent_and_name(p)
    assert join(parent, name) == normalize(p)
