"""The FUSE/kernel mount model: LOOKUP decomposition, dcache, locks."""

import pytest

from repro.core import build_arkfs
from repro.posix import (
    FUSE_DEFAULTS,
    FuseMount,
    KernelMount,
    MountParams,
    NotFound,
    OpenFlags,
    ROOT_CREDS,
)
from repro.sim import Simulator
from repro.workloads import run_phase


@pytest.fixture
def mounted():
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=1, functional=True)
    return sim, cluster, cluster.mounts[0]


def run(sim, gen):
    return sim.run_process(gen)


class TestLookupDecomposition:
    def test_deep_path_issues_per_component_lookups(self, mounted):
        sim, cluster, mount = mounted

        def setup():
            yield from mount.mkdir(ROOT_CREDS, "/a")
            yield from mount.mkdir(ROOT_CREDS, "/a/b")
            yield from mount.mkdir(ROOT_CREDS, "/a/b/c")

        run(sim, setup())
        mount.invalidate_dcache()
        before = mount.request_count
        run(sim, mount.stat(ROOT_CREDS, "/a/b/c"))
        # Three LOOKUPs (a, b, c) plus the GETATTR request itself.
        assert mount.request_count - before == 4

    def test_dcache_absorbs_repeat_lookups(self, mounted):
        sim, cluster, mount = mounted
        run(sim, mount.mkdir(ROOT_CREDS, "/d"))

        def touch(i):
            h = yield from mount.open(
                ROOT_CREDS, f"/d/f{i}",
                OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
            yield from mount.close(h)

        run(sim, touch(0))
        count_first = mount.request_count
        run(sim, touch(1))
        delta = mount.request_count - count_first
        # Second create resolves /d from the dcache: fewer requests.
        assert delta <= 3

    def test_dcache_expires_after_ttl(self, mounted):
        sim, cluster, mount = mounted
        run(sim, mount.mkdir(ROOT_CREDS, "/d"))
        run(sim, mount.stat(ROOT_CREDS, "/d"))
        before = mount.request_count
        sim.run(until=sim.now + mount.params.entry_ttl + 0.1)
        run(sim, mount.stat(ROOT_CREDS, "/d"))
        assert mount.request_count - before >= 2  # LOOKUP again + GETATTR

    def test_negative_lookup_propagates_enoent(self, mounted):
        sim, cluster, mount = mounted
        with pytest.raises(NotFound):
            run(sim, mount.stat(ROOT_CREDS, "/nope"))

    def test_unlink_drops_dentry(self, mounted):
        sim, cluster, mount = mounted
        run(sim, mount.write_file(ROOT_CREDS, "/f", b"x"))
        run(sim, mount.stat(ROOT_CREDS, "/f"))
        run(sim, mount.unlink(ROOT_CREDS, "/f"))
        with pytest.raises(NotFound):
            run(sim, mount.stat(ROOT_CREDS, "/f"))

    def test_rename_invalidates_subtree(self, mounted):
        sim, cluster, mount = mounted

        def setup():
            yield from mount.mkdir(ROOT_CREDS, "/old")
            yield from mount.write_file(ROOT_CREDS, "/old/f", b"v")
            st = yield from mount.stat(ROOT_CREDS, "/old/f")  # warm dcache
            yield from mount.rename(ROOT_CREDS, "/old", "/new")
            return st

        run(sim, setup())
        with pytest.raises(NotFound):
            run(sim, mount.stat(ROOT_CREDS, "/old/f"))
        assert run(sim, mount.read_file(ROOT_CREDS, "/new/f")) == b"v"


class TestLockingModel:
    def test_fuse_lookup_lock_serializes_same_directory(self):
        """Concurrent LOOKUPs in one directory serialize on a FUSE mount
        (the paper's STAT-phase effect), but not on a kernel mount."""

        def run_stats(mount_cls, params):
            sim = Simulator()
            cluster = build_arkfs(sim, n_clients=1, functional=True)
            inner = cluster.clients[0]
            mount = mount_cls(inner, inner.node, params)

            def setup():
                yield from mount.mkdir(ROOT_CREDS, "/shared")
                for i in range(4):
                    yield from mount.write_file(ROOT_CREDS,
                                                f"/shared/f{i}", b"")

            run_phase(sim, [sim.process(setup())])
            mount.invalidate_dcache()

            def stat_worker(i):
                for _ in range(50):
                    mount.invalidate_dcache()
                    yield from mount.stat(ROOT_CREDS, f"/shared/f{i}")

            t0 = sim.now
            run_phase(sim, [sim.process(stat_worker(i)) for i in range(4)])
            return sim.now - t0

        slow_params = MountParams(crossing_latency=100e-6,
                                  lookup_locked=True)
        fuse_time = run_stats(FuseMount, slow_params)
        nolock = MountParams(crossing_latency=100e-6, lookup_locked=False)
        free_time = run_stats(FuseMount, nolock)
        assert fuse_time > free_time  # exclusive lookup lock costs

    def test_global_lock_serializes_the_whole_mount(self):
        def run_creates(params):
            sim = Simulator()
            cluster = build_arkfs(sim, n_clients=1, functional=True)
            inner = cluster.clients[0]
            mount = FuseMount(inner, inner.node, params)

            def setup():
                for i in range(4):
                    yield from mount.mkdir(ROOT_CREDS, f"/w{i}")

            run_phase(sim, [sim.process(setup())])

            def worker(i):
                for j in range(40):
                    h = yield from mount.open(
                        ROOT_CREDS, f"/w{i}/f{j}",
                        OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
                    yield from mount.close(h)

            t0 = sim.now
            run_phase(sim, [sim.process(worker(i)) for i in range(4)])
            return sim.now - t0

        unlocked = run_creates(FUSE_DEFAULTS)
        locked = run_creates(MountParams(global_lock_service=200e-6))
        assert locked > 2 * unlocked

    def test_kernel_mount_cheaper_than_fuse(self, mounted):
        def one_create(mount_cls, params):
            sim = Simulator()
            cluster = build_arkfs(sim, n_clients=1, functional=True)
            inner = cluster.clients[0]
            mount = mount_cls(inner, inner.node, params)

            def work():
                for i in range(100):
                    h = yield from mount.open(
                        ROOT_CREDS, f"/f{i}",
                        OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
                    yield from mount.close(h)

            t0 = sim.now
            run_phase(sim, [sim.process(work())])
            return sim.now - t0

        from repro.posix import KERNEL_DEFAULTS

        fuse_t = one_create(FuseMount, FUSE_DEFAULTS)
        kernel_t = one_create(KernelMount, KERNEL_DEFAULTS)
        assert kernel_t < fuse_t


class TestDataRequests:
    def test_large_io_split_into_max_request_chunks(self, mounted):
        sim, cluster, mount = mounted
        run(sim, mount.write_file(ROOT_CREDS, "/f", b"z" * (512 * 1024)))

        def read_big():
            h = yield from mount.open(ROOT_CREDS, "/f", OpenFlags.O_RDONLY)
            before = mount.request_count
            yield from mount.read(h, 512 * 1024)
            yield from mount.close(h)
            return mount.request_count - before

        # 512 KiB at 128 KiB max_request = 4 data requests (+1 for close).
        delta = run(sim, read_big())
        assert delta >= 4
