"""The TracingClient wrapper: transparent, accurate, composable."""

import pytest

from repro.core import build_arkfs
from repro.posix import (
    NotFound,
    OpenFlags,
    ROOT_CREDS,
    SyncFS,
    TracingClient,
)
from repro.sim import Simulator


@pytest.fixture
def traced():
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=1)  # timed store: latencies real
    tracer = TracingClient(cluster.mount(0))
    return sim, cluster, tracer, SyncFS(tracer, ROOT_CREDS)


class TestTransparency:
    def test_results_pass_through(self, traced):
        sim, cluster, tracer, fs = traced
        fs.mkdir("/d")
        fs.write_file("/d/f", b"traced bytes", do_fsync=True)
        assert fs.read_file("/d/f") == b"traced bytes"
        assert fs.readdir("/d") == ["f"]
        assert fs.stat("/d/f").st_size == 12

    def test_errors_pass_through_and_are_counted(self, traced):
        sim, cluster, tracer, fs = traced
        with pytest.raises(NotFound):
            fs.stat("/ghost")
        assert tracer.traces["stat"].errors == 1


class TestAccounting:
    def test_counts_per_operation(self, traced):
        sim, cluster, tracer, fs = traced
        fs.mkdir("/d")
        for i in range(5):
            fs.write_file(f"/d/f{i}", b"x")
        assert tracer.traces["mkdir"].count == 1
        assert tracer.traces["open"].count == 5
        assert tracer.traces["write"].count == 5
        assert tracer.traces["close"].count == 5

    def test_latencies_are_simulated_time(self, traced):
        sim, cluster, tracer, fs = traced
        fs.mkdir("/d")  # checkpoints eagerly: costs real simulated ms
        t = tracer.traces["mkdir"]
        assert t.mean > 1e-4
        assert t.percentile(50) <= t.percentile(99)

    def test_percentiles_ordering(self, traced):
        sim, cluster, tracer, fs = traced
        fs.mkdir("/d")
        for i in range(20):
            fs.write_file(f"/d/f{i}", b"y" * 100)
        t = tracer.traces["open"]
        assert t.percentile(50) <= t.percentile(95) <= t.percentile(99)
        assert t.total >= t.mean * t.count * 0.99

    def test_empty_trace_is_zero(self):
        from repro.posix.trace import OpTrace

        t = OpTrace()
        assert t.mean == 0.0
        assert t.percentile(99) == 0.0

    def test_report_renders(self, traced):
        sim, cluster, tracer, fs = traced
        fs.mkdir("/d")
        fs.write_file("/d/f", b"")
        out = tracer.report()
        assert "mkdir" in out and "p99" in out
        tracer.reset()
        assert tracer.traces == {}


class TestComposability:
    def test_wraps_raw_client_too(self):
        """Tracing below the mount sees the inner client's view."""
        sim = Simulator()
        cluster = build_arkfs(sim, n_clients=1, functional=True)
        tracer = TracingClient(cluster.client(0))
        fs = SyncFS(tracer, ROOT_CREDS)
        fs.mkdir("/x")
        assert tracer.traces["mkdir"].count == 1
