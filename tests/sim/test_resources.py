"""Tests for Resource/Mutex/Store/BandwidthPipe queueing semantics."""

import pytest

from repro.sim import BandwidthPipe, Mutex, Resource, SimulationError, Simulator, Store, serve


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    sim.run()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.in_use == 2 and res.queue_length == 1


def test_resource_fifo_handoff():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, res, tag, hold):
        yield from res.use(hold)
        order.append((tag, sim.now))

    sim.process(worker(sim, res, "a", 2.0))
    sim.process(worker(sim, res, "b", 1.0))
    sim.process(worker(sim, res, "c", 1.0))
    sim.run()
    assert order == [("a", 2.0), ("b", 3.0), ("c", 4.0)]


def test_resource_release_ungranted_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    queued = res.request()
    sim.run()
    res.release(queued)  # cancel while still queued
    assert res.queue_length == 0
    res.release(held)
    assert res.in_use == 0


def test_resource_release_unknown_request_errors():
    sim = Simulator()
    a = Resource(sim, capacity=1)
    b = Resource(sim, capacity=1)
    req = a.request()
    sim.run()
    req.granted = False  # simulate misuse
    with pytest.raises(SimulationError):
        b.release(req)


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_serve_models_queueing_delay():
    """Two clients on a capacity-1 server: second waits for the first."""
    sim = Simulator()
    cpu = Resource(sim, capacity=1)
    finish = {}

    def client(sim, cpu, tag):
        yield from serve(cpu, 1.0)
        finish[tag] = sim.now

    sim.process(client(sim, cpu, "x"))
    sim.process(client(sim, cpu, "y"))
    sim.run()
    assert finish == {"x": 1.0, "y": 2.0}


def test_mutex_is_exclusive():
    sim = Simulator()
    m = Mutex(sim)
    assert m.capacity == 1


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((item, sim.now))

    def producer(sim, store):
        yield sim.timeout(3)
        store.put("msg")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [("msg", 3)]


def test_store_buffers_items_fifo():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)

    def consumer(sim, store):
        a = yield store.get()
        b = yield store.get()
        return (a, b)

    assert sim.run_process(consumer(sim, store)) == (1, 2)


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    assert len(store) == 1
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_bandwidth_pipe_transfer_time():
    sim = Simulator()
    pipe = BandwidthPipe(sim, bytes_per_sec=100)

    def mover(sim, pipe):
        yield from pipe.transfer(250)

    sim.run_process(mover(sim, pipe))
    assert sim.now == pytest.approx(2.5)
    assert pipe.bytes_moved == 250


def test_bandwidth_pipe_saturates_under_contention():
    """Aggregate throughput caps at the pipe rate: two 100-byte transfers
    through a 100 B/s pipe take 2 s total."""
    sim = Simulator()
    pipe = BandwidthPipe(sim, bytes_per_sec=100)
    done = []

    def mover(sim, pipe, tag):
        yield from pipe.transfer(100)
        done.append((tag, sim.now))

    sim.process(mover(sim, pipe, "a"))
    sim.process(mover(sim, pipe, "b"))
    sim.run()
    assert done == [("a", 1.0), ("b", 2.0)]


def test_bandwidth_pipe_lanes_share_rate():
    """With 2 lanes, two concurrent transfers each run at half rate and
    finish together; aggregate rate is unchanged."""
    sim = Simulator()
    pipe = BandwidthPipe(sim, bytes_per_sec=100, lanes=2)
    done = []

    def mover(sim, pipe, tag):
        yield from pipe.transfer(100)
        done.append((tag, sim.now))

    sim.process(mover(sim, pipe, "a"))
    sim.process(mover(sim, pipe, "b"))
    sim.run()
    assert done[0][1] == pytest.approx(2.0)
    assert done[1][1] == pytest.approx(2.0)


def test_bandwidth_pipe_rejects_bad_args():
    sim = Simulator()
    with pytest.raises(SimulationError):
        BandwidthPipe(sim, bytes_per_sec=0)
    pipe = BandwidthPipe(sim, bytes_per_sec=10)

    def bad(sim, pipe):
        yield from pipe.transfer(-1)

    with pytest.raises(SimulationError):
        sim.run_process(bad(sim, pipe))


def test_zero_byte_transfer_is_instant():
    sim = Simulator()
    pipe = BandwidthPipe(sim, bytes_per_sec=10)

    def mover(sim, pipe):
        yield from pipe.transfer(0)

    sim.run_process(mover(sim, pipe))
    assert sim.now == 0.0


def test_release_of_queued_request_is_lazy_cancel():
    """Releasing a never-granted request cancels it: queue_length drops
    immediately and the grant loop skips it when capacity frees up."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    queued_a = res.request()
    queued_b = res.request()
    assert res.queue_length == 2
    res.release(queued_a)          # cancel while still queued
    assert res.queue_length == 1
    res.release(holder)            # grant must skip the cancelled entry
    sim.run()
    assert not queued_a.triggered
    assert queued_b.triggered and queued_b.granted
    assert res.in_use == 1


def test_double_cancel_of_queued_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    queued = res.request()
    res.release(queued)
    with pytest.raises(SimulationError):
        res.release(queued)


def test_cancelled_queue_head_popped_eagerly():
    """Cancelling the request at the head of the FIFO pops it (and any
    cancelled run behind it) right away, so the queue never accumulates a
    dead prefix."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    q1, q2, q3 = res.request(), res.request(), res.request()
    res.release(q2)                # interior: stays parked, flagged
    assert len(res._queue) == 3 and res.queue_length == 2
    res.release(q1)                # head: pops itself AND the dead q2 run
    assert len(res._queue) == 1 and res.queue_length == 1
    assert res._queue[0] is q3
