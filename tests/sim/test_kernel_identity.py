"""Ordering and bit-identity pins: fast two-queue scheduler vs heap-only.

The fast kernel (ready deque + immediate-resume + event elision,
DESIGN.md §10) must execute every workload in the exact event order of the
reference ``(time, seq)`` heap scheduler. These tests pin that equivalence
three ways: a same-timestamp FIFO property, randomized mixed workloads
traced under both kernels, and the small-scale paper figures compared
output-for-output.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

import repro.sim.engine as engine
from repro.sim import Resource, Simulator, Store


def _fifo_trace(fast, n_procs, n_rounds):
    sim = Simulator(fast=fast)
    order = []

    def proc(k):
        for i in range(n_rounds):
            yield sim.timeout(0)
            order.append((sim.now, k, i))

    for k in range(n_procs):
        sim.process(proc(k))
    sim.run()
    return order


def test_same_timestamp_events_run_in_fifo_order():
    """Zero-delay events at one timestamp run in scheduling order, and the
    fast ready deque reproduces the heap scheduler's order exactly."""
    fast = _fifo_trace(True, n_procs=5, n_rounds=4)
    heap = _fifo_trace(False, n_procs=5, n_rounds=4)
    assert fast == heap
    # Round-robin in spawn order at every round: FIFO within a timestamp.
    assert fast == [(0.0, k, i) for i in range(4) for k in range(5)]


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.sampled_from([0.0, 1e-3, 2e-3, 5e-3])),
    min_size=1, max_size=24))
def test_fast_and_heap_schedulers_produce_identical_traces(plan):
    """Property: arbitrary mixes of zero-delay chains and timed waits
    execute in the same order, at the same times, under both kernels."""

    def run(fast):
        sim = Simulator(fast=fast)
        trace = []

        def proc(k, zeros, delay):
            yield sim.timeout(delay)
            trace.append(("t", sim.now, k))
            for i in range(zeros):
                yield sim.timeout(0)
                trace.append(("z", sim.now, k, i))

        for k, (zeros, delay) in enumerate(plan):
            sim.process(proc(k, zeros, delay))
        sim.run()
        return trace

    assert run(True) == run(False)


def test_mixed_resource_store_workload_identical():
    """Resources (timed + zero holds, contention), stores, and process
    awaits produce identical traces under both kernels — covering the
    grant/release, short-circuit, and immediate-resume paths."""

    def run(fast):
        sim = Simulator(fast=fast)
        trace = []
        res = Resource(sim, capacity=2, name="cpu")
        store = Store(sim)

        def worker(k):
            for i in range(6):
                yield from res.use(((k + i) % 3) * 1e-3)
                trace.append(("w", sim.now, k, i))

        def producer():
            for i in range(10):
                store.put(i)
                yield sim.timeout(0.4e-3)
                trace.append(("p", sim.now, i))

        def consumer():
            for _ in range(10):
                v = yield store.get()
                trace.append(("c", sim.now, v))

        def parent():
            child = sim.process(worker(99))
            trace.append(("spawned", sim.now))
            got = yield child
            trace.append(("joined", sim.now, got))

        for k in range(4):
            sim.process(worker(k))
        sim.process(producer())
        sim.process(consumer())
        sim.process(parent())
        sim.run()
        return trace

    assert run(True) == run(False)


def test_immediate_resume_fires_and_matches_reference():
    """Yielding an already-granted request takes the inline fast path
    (no run-loop round trip) with results identical to the heap kernel."""

    def run(fast):
        sim = Simulator(fast=fast)
        res = Resource(sim, capacity=1)
        order = []

        def w():
            for i in range(50):
                req = res.request()
                yield req
                order.append((sim.now, i))
                res.release(req)

        sim.run_process(w())
        return order, sim._n_inline

    fast_order, fast_inline = run(True)
    heap_order, heap_inline = run(False)
    assert fast_order == heap_order
    assert fast_inline == 50      # every wait consumed inline
    assert heap_inline == 0       # reference kernel never inlines


_FIGURES = ["fig4", "fig6a", "table2"]


@pytest.mark.parametrize("figure", _FIGURES)
def test_small_scale_figures_bit_identical_fast_vs_heap(figure, monkeypatch):
    """The paper figures at small scale are byte-identical (as sorted JSON)
    whether the fast or the heap-only scheduler runs them — the BENCH
    output pin demanded by ROADMAP item 3."""
    from repro.bench import SMALL
    from repro.bench.figures import (
        fig4_mdtest_easy,
        fig6a_fio_rados,
        table2_archiving,
    )

    fn = {"fig4": fig4_mdtest_easy, "fig6a": fig6a_fio_rados,
          "table2": table2_archiving}[figure]
    fast = json.dumps(fn(SMALL), sort_keys=True)
    monkeypatch.setattr(engine, "DEFAULT_FAST", False)
    heap = json.dumps(fn(SMALL), sort_keys=True)
    assert fast == heap
