"""Unit tests for the DES kernel: events, processes, time ordering."""

import pytest

from repro.sim import (
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)
        return "done"

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "done"
    assert sim.now == 2.5


def test_timeout_value_delivered():
    sim = Simulator()

    def proc(sim):
        got = yield sim.timeout(1.0, value="payload")
        return got

    assert sim.run_process(proc(sim)) == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_zero_timeout_runs_in_fifo_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(0)
        order.append(tag)

    for tag in "abc":
        sim.process(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield sim.timeout(delay)
        order.append((sim.now, tag))

    sim.process(proc(sim, 3.0, "late"))
    sim.process(proc(sim, 1.0, "early"))
    sim.process(proc(sim, 2.0, "mid"))
    sim.run()
    assert order == [(1.0, "early"), (2.0, "mid"), (3.0, "late")]


def test_process_is_awaitable_and_returns_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        return 42

    def parent(sim):
        result = yield sim.process(child(sim))
        return result + 1

    assert sim.run_process(parent(sim)) == 43
    assert sim.now == 1


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as e:
            return f"caught {e}"

    assert sim.run_process(parent(sim)) == "caught boom"


def test_uncaught_process_exception_raises_from_run_process():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        raise KeyError("k")

    with pytest.raises(KeyError):
        sim.run_process(proc(sim))


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    results = []

    def waiter(sim, ev):
        val = yield ev
        results.append(val)

    def firer(sim, ev):
        yield sim.timeout(5)
        ev.succeed("fired")

    sim.process(waiter(sim, ev))
    sim.process(firer(sim, ev))
    sim.run()
    assert results == ["fired"]
    assert sim.now == 5


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()

    def waiter(sim, ev):
        try:
            yield ev
        except RuntimeError:
            return "failed"

    p = sim.process(waiter(sim, ev))
    ev.fail(RuntimeError("x"))
    sim.run()
    assert p.value == "failed"


def test_timeout_not_triggered_before_due():
    sim = Simulator()
    t = sim.timeout(10)
    assert not t.triggered
    sim.run(until=5)
    assert not t.triggered
    sim.run()
    assert t.triggered and t.ok


def test_all_of_waits_for_everything():
    sim = Simulator()

    def proc(sim):
        vals = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(3, "b"),
                                 sim.timeout(2, "c")])
        return vals

    assert sim.run_process(proc(sim)) == ["a", "b", "c"]
    assert sim.now == 3


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc(sim):
        vals = yield sim.all_of([])
        return vals

    assert sim.run_process(proc(sim)) == []
    assert sim.now == 0


def test_any_of_returns_first():
    sim = Simulator()

    def proc(sim):
        idx, val = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(1, "fast")])
        return idx, val

    assert sim.run_process(proc(sim)) == (1, "fast")
    assert sim.now == 1


def test_interrupt_wakes_waiting_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100)
            log.append("slept")
        except Interrupt as i:
            log.append(f"interrupted:{i.cause}@{sim.now}")
            return "int"

    def killer(sim, target):
        yield sim.timeout(2)
        target.interrupt("crash")

    p = sim.process(sleeper(sim))
    sim.process(killer(sim, p))
    sim.run()
    assert log == ["interrupted:crash@2.0"]
    assert p.value == "int"
    # The abandoned 100 s timeout still drains off the heap harmlessly.
    assert sim.now == 100


def test_stale_event_does_not_resume_interrupted_process():
    """After an interrupt, the originally awaited event firing later must not
    wake the process a second time."""
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(10)
            log.append("original-wake")
        except Interrupt:
            yield sim.timeout(50)  # now waiting on something else
            log.append("post-interrupt-wake")

    def killer(sim, target):
        yield sim.timeout(1)
        target.interrupt()

    p = sim.process(sleeper(sim))
    sim.process(killer(sim, p))
    sim.run()
    assert log == ["post-interrupt-wake"]
    assert sim.now == 51


def test_interrupt_on_finished_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)
        return "ok"

    p = sim.process(quick(sim))
    sim.run()
    p.interrupt("too late")
    sim.run()
    assert p.value == "ok"


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield "not an event"

    p = sim.process(bad(sim))
    sim.run()
    assert not p.ok
    assert isinstance(p.value, SimulationError)


def test_run_until_stops_at_time():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10)

    sim.process(proc(sim))
    sim.run(until=4)
    assert sim.now == 4
    sim.run()
    assert sim.now == 10


def test_run_until_past_is_error():
    sim = Simulator()
    sim.run(until=5)
    with pytest.raises(SimulationError):
        sim.run(until=1)


def test_run_process_detects_deadlock():
    sim = Simulator()

    def stuck(sim):
        yield sim.event()  # nobody will ever trigger this

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(stuck(sim))


def test_nested_yield_from_composition():
    sim = Simulator()

    def inner(sim):
        yield sim.timeout(1)
        return 10

    def middle(sim):
        v = yield from inner(sim)
        yield sim.timeout(1)
        return v + 5

    def outer(sim):
        v = yield from middle(sim)
        return v * 2

    assert sim.run_process(outer(sim)) == 30
    assert sim.now == 2


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7)
    assert sim.peek() == 7
