"""Tests for the node/network/RPC model."""

import pytest

from repro.sim import NetParams, Network, Node, NodeDown, RpcError, Simulator


def make_pair(latency=0.001, bw=1e6):
    sim = Simulator()
    net = Network(sim, NetParams(latency_s=latency, bandwidth_bps=bw,
                                 rpc_timeout_s=0.5))
    a = Node(sim, "a", net=net)
    b = Node(sim, "b", net=net)
    return sim, net, a, b


def test_send_pays_latency_and_serialization():
    sim, net, a, b = make_pair(latency=0.01, bw=1000)

    def mover(net, a, b):
        yield from net.send(a, b, 100)

    sim.run_process(mover(net, a, b))
    # 100B at 1000 B/s through both NICs + 10ms latency
    assert sim.now == pytest.approx(0.1 + 0.01 + 0.1)
    assert net.messages_sent == 1
    assert net.bytes_sent == 100


def test_rpc_round_trip_returns_handler_value():
    sim, net, a, b = make_pair()

    def handler(x, y):
        yield b.sim.timeout(0.05)
        return x + y

    b.register("add", handler)

    def caller(a, b):
        result = yield from a.call(b, "add", 3, 4)
        return result

    assert sim.run_process(caller(a, b)) == 7
    assert sim.now > 0.05  # handler time + network


def test_rpc_handler_exception_propagates():
    sim, net, a, b = make_pair()

    def handler():
        yield b.sim.timeout(0.01)
        raise FileNotFoundError("no such file")

    b.register("fail", handler)

    def caller(a, b):
        yield from a.call(b, "fail")

    with pytest.raises(FileNotFoundError):
        sim.run_process(caller(a, b))


def test_rpc_to_dead_node_raises_nodedown_after_timeout():
    sim, net, a, b = make_pair()
    b.crash()

    def caller(a, b):
        yield from a.call(b, "anything")

    with pytest.raises(NodeDown):
        sim.run_process(caller(a, b))
    assert sim.now >= 0.5  # burned the rpc timeout


def test_rpc_unknown_method():
    sim, net, a, b = make_pair()

    def caller(a, b):
        yield from a.call(b, "missing")

    with pytest.raises(RpcError):
        sim.run_process(caller(a, b))


def test_local_rpc_skips_network():
    sim, net, a, b = make_pair()

    def handler(v):
        yield a.sim.timeout(0.001)
        return v * 2

    a.register("double", handler)

    def caller(a):
        return (yield from a.call(a, "double", 21))

    assert sim.run_process(caller(a)) == 42
    assert net.messages_sent == 0


def test_node_restart_allows_rpc_again():
    sim, net, a, b = make_pair()

    def handler():
        yield b.sim.timeout(0)
        return "ok"

    b.register("ping", handler)
    b.crash()
    b.restart()

    def caller(a, b):
        return (yield from a.call(b, "ping"))

    assert sim.run_process(caller(a, b)) == "ok"


def test_duplicate_node_name_rejected():
    sim = Simulator()
    net = Network(sim)
    Node(sim, "n1", net=net)
    with pytest.raises(ValueError):
        Node(sim, "n1", net=net)


def test_node_work_consumes_cpu_with_contention():
    sim = Simulator()
    net = Network(sim)
    n = Node(sim, "n", cores=1, net=net)
    done = []

    def job(n, tag):
        yield from n.work(1.0)
        done.append((tag, n.sim.now))

    sim.process(job(n, "p"))
    sim.process(job(n, "q"))
    sim.run()
    assert done == [("p", 1.0), ("q", 2.0)]


def test_multicore_node_runs_jobs_in_parallel():
    sim = Simulator()
    net = Network(sim)
    n = Node(sim, "n", cores=2, net=net)
    done = []

    def job(n, tag):
        yield from n.work(1.0)
        done.append((tag, n.sim.now))

    sim.process(job(n, "p"))
    sim.process(job(n, "q"))
    sim.run()
    assert [t for _, t in done] == [1.0, 1.0]
