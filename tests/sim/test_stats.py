"""PhaseRecorder / OpStats / BandwidthMeter accounting."""

import pytest

from repro.sim import BandwidthMeter, OpStats, PhaseRecorder, Simulator


def test_op_stats_accumulate():
    s = OpStats()
    s.record(1.0)
    s.record(3.0)
    assert s.count == 2
    assert s.total_time == 4.0
    assert s.mean_time == 2.0
    assert s.max_time == 3.0


def test_op_stats_empty_mean():
    assert OpStats().mean_time == 0.0


def test_phase_recorder_basic():
    sim = Simulator()
    rec = PhaseRecorder(sim)
    rec.begin("CREATE")
    sim.run(until=2.0)
    rec.count(100)
    r = rec.end()
    assert r.name == "CREATE"
    assert r.elapsed == 2.0
    assert r.ops_per_sec == 50.0
    assert rec.phase("CREATE") is r
    assert rec.phase("missing") is None


def test_phase_recorder_bandwidth():
    sim = Simulator()
    rec = PhaseRecorder(sim)
    rec.begin("WRITE")
    sim.run(until=1.0)
    rec.count(1, nbytes=50_000_000)
    r = rec.end()
    assert r.bandwidth_mbps == pytest.approx(50.0)


def test_zero_elapsed_phase_is_finite():
    # A phase that opens and closes at the same sim time must report 0.0
    # rates (not inf/nan) so BENCH_*.json stays strict-JSON serializable.
    import json

    sim = Simulator()
    rec = PhaseRecorder(sim)
    rec.begin("EMPTY")
    rec.count(5, nbytes=1000)
    r = rec.end()
    assert r.elapsed == 0.0
    assert r.ops_per_sec == 0.0
    assert r.bandwidth_mbps == 0.0
    json.dumps({"ops_per_sec": r.ops_per_sec,
                "bandwidth_mbps": r.bandwidth_mbps}, allow_nan=False)


def test_phase_recorder_errors():
    sim = Simulator()
    rec = PhaseRecorder(sim)
    rec.begin("READ")
    rec.error(3)
    r = rec.end()
    assert r.errors == 3


def test_nested_phase_rejected():
    sim = Simulator()
    rec = PhaseRecorder(sim)
    rec.begin("a")
    with pytest.raises(RuntimeError):
        rec.begin("b")


def test_bandwidth_meter():
    sim = Simulator()
    m = BandwidthMeter(sim)
    m.add(10_000_000)
    sim.run(until=2.0)
    assert m.mbps == pytest.approx(5.0)


def test_bandwidth_meter_zero_time():
    sim = Simulator()
    m = BandwidthMeter(sim)
    m.add(100)
    assert m.mbps == 0.0
