"""Cluster object store: functional parity with the memory store plus
timing/queueing behaviour."""

import pytest

from repro.objectstore import (
    ClusterObjectStore,
    LocalDisk,
    NoSuchKey,
    RADOS_PROFILE,
    S3_PROFILE,
    EBS_GP_1GBS,
    StoreProfile,
)
from repro.sim import NetParams, Network, Node, Simulator


SMALL = StoreProfile(
    name="tiny", n_osds=4, media_bw=1e6, osd_queue_depth=2,
    get_latency=0.001, put_latency=0.002, delete_latency=0.001,
    head_latency=0.0005, list_latency=0.001, list_page=10,
    per_stream_bw=1e9, replication=2,
)


@pytest.fixture
def cluster():
    sim = Simulator()
    return sim, ClusterObjectStore(sim, SMALL)


def run(sim, gen):
    return sim.run_process(gen)


def test_roundtrip(cluster):
    sim, s = cluster
    run(sim, s.put("k", b"data"))
    assert run(sim, s.get("k")) == b"data"
    assert run(sim, s.head("k")) == 4
    run(sim, s.delete("k"))
    with pytest.raises(NoSuchKey):
        run(sim, s.get("k"))


def test_operations_cost_time(cluster):
    sim, s = cluster
    t0 = sim.now
    run(sim, s.put("k", b"x" * 1000))
    t1 = sim.now
    # put latency + 1000 bytes through 1 MB/s media
    assert t1 - t0 >= 0.002 + 0.001
    run(sim, s.get("k"))
    assert sim.now - t1 >= 0.001 + 0.001


def test_get_missing_costs_nothing(cluster):
    sim, s = cluster
    with pytest.raises(NoSuchKey):
        run(sim, s.get("ghost"))
    assert sim.now == 0


def test_get_range(cluster):
    sim, s = cluster
    run(sim, s.put("k", b"0123456789"))
    assert run(sim, s.get_range("k", 3, 4)) == b"3456"


def test_list_pagination_costs_scale(cluster):
    sim, s = cluster
    for i in range(25):
        run(sim, s.put(f"p/{i:03d}", b""))
    t0 = sim.now
    keys = run(sim, s.list("p/"))
    # 25 keys at 10/page = 3 pages
    assert len(keys) == 25
    assert sim.now - t0 == pytest.approx(3 * 0.001)


def test_placement_is_deterministic(cluster):
    sim, s = cluster
    assert s.osd_for("some/key") is s.osd_for("some/key")


def test_replicas_distinct(cluster):
    sim, s = cluster
    reps = s.replicas_for("k")
    assert len(reps) == 2
    assert reps[0] is not reps[1]


def test_replication_writes_parallel(cluster):
    """Replication should not double the write time (parallel fan-out)."""
    sim, s = cluster
    run(sim, s.put("k", b"x" * 10_000))
    t_repl = sim.now

    sim2 = Simulator()
    prof1 = StoreProfile(**{**SMALL.__dict__, "replication": 1})
    s2 = ClusterObjectStore(sim2, prof1)
    sim2.run_process(s2.put("k", b"x" * 10_000))
    # Same media/latency, so replication adds little (replicas may share an
    # OSD's media pipe; allow 2.5x headroom, not 2x strictly serial).
    assert t_repl < sim2.now * 2.5
    assert t_repl >= sim2.now


def test_osd_queueing_creates_contention():
    """Keys on the same OSD contend; spread keys do not."""
    sim = Simulator()
    prof = StoreProfile(**{**SMALL.__dict__, "n_osds": 1, "replication": 1,
                           "osd_queue_depth": 1})
    s = ClusterObjectStore(sim, prof)

    done = []

    def writer(tag):
        yield from s.put(f"key-{tag}", b"y" * 1000)
        done.append((tag, sim.now))

    sim.process(writer("a"))
    sim.process(writer("b"))
    sim.run()
    # Serial: second write finishes roughly twice as late.
    assert done[1][1] > done[0][1] * 1.5


def test_client_leg_charges_nic():
    sim = Simulator()
    net = Network(sim, NetParams(latency_s=0.01, bandwidth_bps=1e6))
    client = Node(sim, "client", net=net)
    s = ClusterObjectStore(sim, SMALL, net=net)
    run(sim, s.put("k", b"z" * 10_000, src=client))
    # NIC at 1 MB/s: 10 ms serialization + 10 ms latency at minimum
    assert sim.now >= 0.02
    assert client.nic.bytes_moved == 10_000


def test_per_stream_cap_limits_single_get():
    sim = Simulator()
    prof = StoreProfile(**{**S3_PROFILE.__dict__, "per_stream_bw": 1e6})
    s = ClusterObjectStore(sim, prof)
    run(sim, s.put("k", b"x" * 1_000_000))
    t0 = sim.now
    run(sim, s.get("k"))
    assert sim.now - t0 >= 1.0  # 1 MB at 1 MB/s stream cap


def test_rados_and_s3_profiles_load():
    sim = Simulator()
    ClusterObjectStore(sim, RADOS_PROFILE)
    ClusterObjectStore(sim, S3_PROFILE)
    assert S3_PROFILE.get_latency > RADOS_PROFILE.get_latency * 5


def test_bytes_accounting(cluster):
    sim, s = cluster
    run(sim, s.put("k", b"x" * 100))
    run(sim, s.get("k"))
    run(sim, s.get_range("k", 0, 10))
    assert s.bytes_written == 100
    assert s.bytes_read == 110


def test_contains_and_len(cluster):
    sim, s = cluster
    run(sim, s.put("k", b"v"))
    assert "k" in s
    assert len(s) == 1


def test_local_disk_read_write_cost():
    sim = Simulator()
    disk = LocalDisk(sim, EBS_GP_1GBS)
    sim.run_process(disk.write(1_000_000_000))
    # 1 GB at 1 GB/s plus latency
    assert sim.now == pytest.approx(1.0, rel=0.01)
    sim2 = Simulator()
    disk2 = LocalDisk(sim2, EBS_GP_1GBS)
    sim2.run_process(disk2.read(500_000_000))
    assert sim2.now == pytest.approx(0.5, rel=0.01)
    assert disk2.bytes_read == 500_000_000


class TestErasureCoding:
    def _make(self, erasure, media=1e6):
        from repro.objectstore import RADOS_EC_PROFILE, StoreProfile
        sim = Simulator()
        prof = StoreProfile(**{**SMALL.__dict__, "n_osds": 8,
                               "replication": 1, "erasure": erasure})
        return sim, ClusterObjectStore(sim, prof)

    def test_roundtrip_with_ec(self):
        sim, s = self._make((4, 2))
        run(sim, s.put("k", b"stripe me" * 100))
        assert run(sim, s.get("k")) == b"stripe me" * 100

    def test_shards_span_k_plus_m_osds(self):
        sim, s = self._make((4, 2))
        shards = s.shards_for("key")
        assert len(shards) == 6
        assert len({sh.index for sh in shards}) == 6

    def test_ec_write_cheaper_than_3x_replication(self):
        """4+2 moves 1.5x the bytes; 3x replication moves 3x — at equal
        media bandwidth the EC write should finish faster."""
        from repro.objectstore import StoreProfile

        def write_time(profile):
            sim = Simulator()
            store = ClusterObjectStore(sim, profile)
            sim.run_process(store.put("k", b"z" * 500_000))
            return sim.now

        base = {**SMALL.__dict__, "n_osds": 8}
        t_repl = write_time(StoreProfile(**{**base, "replication": 3}))
        t_ec = write_time(StoreProfile(**{**base, "replication": 1,
                                          "erasure": (4, 2)}))
        assert t_ec < t_repl

    def test_storage_overhead_property(self):
        from repro.objectstore import RADOS_EC_PROFILE, RADOS_PROFILE
        assert RADOS_PROFILE.storage_overhead == 3.0
        assert RADOS_EC_PROFILE.storage_overhead == pytest.approx(1.5)

    def test_ec_profile_preset_works_end_to_end(self):
        from repro.core import build_arkfs
        from repro.objectstore import RADOS_EC_PROFILE
        from repro.posix import ROOT_CREDS, SyncFS

        sim = Simulator()
        cluster = build_arkfs(sim, n_clients=1,
                              store_profile=RADOS_EC_PROFILE)
        fs = SyncFS(cluster.client(0), ROOT_CREDS)
        fs.mkdir("/ec")
        fs.write_file("/ec/f", b"erasure coded" * 1000, do_fsync=True)
        assert fs.read_file("/ec/f") == b"erasure coded" * 1000
