"""Batched (scatter-gather) store verbs: get_many / put_many / delete_many
across the memory, cluster, and REST backends.

A batch pays one client-side enqueue but the per-key work still lands on
each key's OSD queue — so a batch of N small requests costs ~one fixed
latency, not N of them, while saturation behaviour stays realistic.
"""

import pytest

from repro.objectstore import (
    ClusterObjectStore,
    InMemoryObjectStore,
    NoSuchKey,
    RestAPIRegistry,
    RestObjectStore,
    StoreProfile,
)
from repro.sim import Simulator


FAST = StoreProfile(
    name="fast8", n_osds=8, media_bw=1e9, osd_queue_depth=8,
    get_latency=0.010, put_latency=0.010, delete_latency=0.010,
    head_latency=0.001, list_latency=0.001, list_page=100,
    per_stream_bw=1e9, replication=1,
)


def run(sim, gen):
    return sim.run_process(gen)


class TestMemoryBatch:
    @pytest.fixture
    def store(self):
        sim = Simulator()
        return sim, InMemoryObjectStore(sim)

    def test_get_many_aligns_with_keys(self, store):
        sim, s = store
        run(sim, s.put("a", b"1"))
        run(sim, s.put("b", b"22"))
        assert run(sim, s.get_many(["a", "ghost", "b"])) == [b"1", None, b"22"]

    def test_get_many_empty(self, store):
        sim, s = store
        assert run(sim, s.get_many([])) == []

    def test_put_many_stores_all(self, store):
        sim, s = store
        run(sim, s.put_many([("a", b"x"), ("b", b"y")]))
        assert run(sim, s.get("a")) == b"x"
        assert run(sim, s.get("b")) == b"y"

    def test_delete_many_counts_and_tolerates_missing(self, store):
        sim, s = store
        run(sim, s.put("a", b"x"))
        run(sim, s.put("b", b"y"))
        assert run(sim, s.delete_many(["a", "ghost", "b"])) == 2
        assert "a" not in s and "b" not in s


class TestClusterBatch:
    @pytest.fixture
    def store(self):
        sim = Simulator()
        return sim, ClusterObjectStore(sim, FAST)

    def test_get_many_matches_serial_results(self, store):
        sim, s = store
        for i in range(6):
            run(sim, s.put(f"k{i}", bytes([i]) * 100))
        keys = [f"k{i}" for i in range(6)] + ["ghost"]
        out = run(sim, s.get_many(keys))
        assert out[:6] == [bytes([i]) * 100 for i in range(6)]
        assert out[6] is None

    def test_get_many_overlaps_fixed_latencies(self, store):
        sim, s = store
        keys = [f"k{i}" for i in range(8)]
        for k in keys:
            run(sim, s.put(k, b"v" * 1024))
        t0 = sim.now
        for k in keys:
            run(sim, s.get(k))
        serial = sim.now - t0
        t1 = sim.now
        run(sim, s.get_many(keys))
        batched = sim.now - t1
        assert batched < serial / 2

    def test_put_many_overlaps_fixed_latencies(self, store):
        sim, s = store
        items = [(f"p{i}", b"v" * 1024) for i in range(8)]
        t0 = sim.now
        for k, d in items:
            run(sim, s.put(k, d))
        serial = sim.now - t0
        t1 = sim.now
        run(sim, s.put_many([(f"q{i}", d) for i, (_k, d) in enumerate(items)]))
        batched = sim.now - t1
        assert batched < serial / 2
        for i in range(8):
            assert run(sim, s.get(f"q{i}")) == b"v" * 1024

    def test_delete_many_returns_removed(self, store):
        sim, s = store
        for i in range(4):
            run(sim, s.put(f"k{i}", b"x"))
        assert run(sim, s.delete_many(["k0", "k1", "nope", "k3"])) == 3
        assert "k2" in s and "k0" not in s

    def test_batches_still_pay_osd_cost(self, store):
        """A batch is not free: it still takes at least one fixed latency."""
        sim, s = store
        for i in range(4):
            run(sim, s.put(f"k{i}", b"x"))
        t0 = sim.now
        run(sim, s.get_many([f"k{i}" for i in range(4)]))
        assert sim.now - t0 >= FAST.get_latency


class TestRestBatch:
    def _backend(self, sim, with_batch=False):
        data = {}
        calls = {"get_many": 0}

        def h_get(key):
            yield sim.timeout(0.01)
            if key not in data:
                raise NoSuchKey(key)
            return data[key]

        def h_put(key, value):
            yield sim.timeout(0.01)
            data[key] = value

        def h_delete(key):
            yield sim.timeout(0.01)
            data.pop(key, None)

        def h_list(prefix):
            yield sim.timeout(0.01)
            return [k for k in data if k.startswith(prefix)]

        reg = (RestAPIRegistry()
               .register("get", h_get).register("put", h_put)
               .register("delete", h_delete).register("list", h_list))
        if with_batch:
            def h_get_many(keys):
                calls["get_many"] += 1
                yield sim.timeout(0.01)
                return [data.get(k) for k in keys]
            reg.register("get_many", h_get_many)
        return RestObjectStore(sim, reg), data, calls

    def test_fallback_emulates_batch(self):
        sim = Simulator()
        s, data, _calls = self._backend(sim)
        data["a"], data["b"] = b"1", b"2"
        assert run(sim, s.get_many(["a", "x", "b"])) == [b"1", None, b"2"]

    def test_fallback_overlaps_single_gets(self):
        """Without a native batch verb the emulation runs the single GETs
        concurrently: 4 keys at 10 ms each finish in ~10 ms, not 40."""
        sim = Simulator()
        s, data, _calls = self._backend(sim)
        for i in range(4):
            data[f"k{i}"] = b"v"
        t0 = sim.now
        run(sim, s.get_many([f"k{i}" for i in range(4)]))
        assert sim.now - t0 < 0.025

    def test_registered_batch_handler_preferred(self):
        sim = Simulator()
        s, data, calls = self._backend(sim, with_batch=True)
        data["a"] = b"1"
        assert run(sim, s.get_many(["a", "b"])) == [b"1", None]
        assert calls["get_many"] == 1

    def test_unknown_batch_verb_rejected(self):
        with pytest.raises(ValueError):
            RestAPIRegistry().register("get_lots", lambda: None)
