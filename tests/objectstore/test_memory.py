"""Functional semantics of the in-memory object store."""

import pytest

from repro.objectstore import InMemoryObjectStore, NoSuchKey
from repro.sim import Simulator


@pytest.fixture
def store():
    sim = Simulator()
    return sim, InMemoryObjectStore(sim)


def run(sim, gen):
    return sim.run_process(gen)


def test_put_get_roundtrip(store):
    sim, s = store
    run(sim, s.put("k1", b"hello"))
    assert run(sim, s.get("k1")) == b"hello"


def test_get_missing_raises(store):
    sim, s = store
    with pytest.raises(NoSuchKey):
        run(sim, s.get("missing"))


def test_put_overwrites(store):
    sim, s = store
    run(sim, s.put("k", b"v1"))
    run(sim, s.put("k", b"v2"))
    assert run(sim, s.get("k")) == b"v2"
    assert len(s) == 1


def test_delete_removes(store):
    sim, s = store
    run(sim, s.put("k", b"v"))
    run(sim, s.delete("k"))
    assert "k" not in s
    with pytest.raises(NoSuchKey):
        run(sim, s.get("k"))


def test_delete_missing_raises(store):
    sim, s = store
    with pytest.raises(NoSuchKey):
        run(sim, s.delete("nope"))


def test_head_returns_size(store):
    sim, s = store
    run(sim, s.put("k", b"12345"))
    assert run(sim, s.head("k")) == 5


def test_head_missing_raises(store):
    sim, s = store
    with pytest.raises(NoSuchKey):
        run(sim, s.head("k"))


def test_get_range(store):
    sim, s = store
    run(sim, s.put("k", b"0123456789"))
    assert run(sim, s.get_range("k", 2, 4)) == b"2345"
    assert run(sim, s.get_range("k", 8, 100)) == b"89"
    assert run(sim, s.get_range("k", 20, 5)) == b""


def test_list_prefix_sorted(store):
    sim, s = store
    for k in ["b/2", "a/1", "b/1", "b/10", "c"]:
        run(sim, s.put(k, b"x"))
    assert run(sim, s.list("b/")) == ["b/1", "b/10", "b/2"]
    assert run(sim, s.list("")) == ["a/1", "b/1", "b/10", "b/2", "c"]
    assert run(sim, s.list("zz")) == []


def test_list_prefix_excludes_siblings(store):
    sim, s = store
    run(sim, s.put("ab", b"x"))
    run(sim, s.put("ac", b"x"))
    assert run(sim, s.list("ab")) == ["ab"]


def test_exists_helper(store):
    sim, s = store
    run(sim, s.put("k", b"v"))
    assert run(sim, s.exists("k")) is True
    assert run(sim, s.exists("nope")) is False


def test_delete_prefix(store):
    sim, s = store
    for k in ["j/1", "j/2", "j/3", "i/1"]:
        run(sim, s.put(k, b"x"))
    assert run(sim, s.delete_prefix("j/")) == 3
    assert run(sim, s.list("")) == ["i/1"]


def test_value_must_be_bytes(store):
    sim, s = store
    with pytest.raises(TypeError):
        run(sim, s.put("k", "a string"))


def test_values_are_copied(store):
    sim, s = store
    buf = bytearray(b"abc")
    run(sim, s.put("k", buf))
    buf[0] = ord("z")
    assert run(sim, s.get("k")) == b"abc"


def test_op_counts_track_usage(store):
    sim, s = store
    run(sim, s.put("k", b"v"))
    run(sim, s.get("k"))
    run(sim, s.get("k"))
    run(sim, s.list(""))
    assert s.op_counts["put"] == 1
    assert s.op_counts["get"] == 2
    assert s.op_counts["list"] == 1


def test_unicode_keys(store):
    sim, s = store
    run(sim, s.put("dir/ファイル.txt", b"data"))
    assert run(sim, s.list("dir/")) == ["dir/ファイル.txt"]
