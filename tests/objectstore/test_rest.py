"""The pluggable REST backend adapter."""

import pytest

from repro.objectstore import NoSuchKey, RestAPIRegistry, RestObjectStore
from repro.sim import Simulator


def make_backend(sim, with_optional=False):
    blobs = {}

    def rest_get(key):
        yield sim.timeout(0.001)
        if key not in blobs:
            raise NoSuchKey(key)
        return blobs[key]

    def rest_put(key, data):
        yield sim.timeout(0.001)
        blobs[key] = bytes(data)

    def rest_delete(key):
        yield sim.timeout(0.001)
        if key not in blobs:
            raise NoSuchKey(key)
        del blobs[key]

    def rest_list(prefix):
        yield sim.timeout(0.001)
        return [k for k in blobs if k.startswith(prefix)]

    reg = (RestAPIRegistry()
           .register("get", rest_get)
           .register("put", rest_put)
           .register("delete", rest_delete)
           .register("list", rest_list))

    if with_optional:
        def rest_head(key):
            yield sim.timeout(0.0005)
            if key not in blobs:
                raise NoSuchKey(key)
            return len(blobs[key])

        def rest_range(key, offset, length):
            yield sim.timeout(0.0005)
            return blobs[key][offset:offset + length]

        def rest_cas(key, data):
            yield sim.timeout(0.001)
            if key in blobs:
                return False
            blobs[key] = bytes(data)
            return True

        reg.register("head", rest_head)
        reg.register("get_range", rest_range)
        reg.register("put_if_absent", rest_cas)
    return RestObjectStore(sim, reg), blobs


class TestRegistry:
    def test_missing_required_verbs_rejected(self):
        reg = RestAPIRegistry().register("get", lambda k: iter(()))
        with pytest.raises(ValueError, match="missing required"):
            reg.validate()

    def test_unknown_verb_rejected(self):
        with pytest.raises(ValueError, match="unknown REST verb"):
            RestAPIRegistry().register("patch", lambda: None)


class TestAdapter:
    def test_roundtrip(self):
        sim = Simulator()
        store, blobs = make_backend(sim)
        sim.run_process(store.put("k", b"value"))
        assert sim.run_process(store.get("k")) == b"value"
        assert sim.run_process(store.list("")) == ["k"]
        sim.run_process(store.delete("k"))
        with pytest.raises(NoSuchKey):
            sim.run_process(store.get("k"))

    def test_list_sorted_even_if_backend_unsorted(self):
        sim = Simulator()
        store, blobs = make_backend(sim)
        for k in ("b", "a", "c"):
            blobs[k] = b""
        assert sim.run_process(store.list("")) == ["a", "b", "c"]

    def test_head_falls_back_to_get(self):
        sim = Simulator()
        store, _b = make_backend(sim)
        sim.run_process(store.put("k", b"12345"))
        assert sim.run_process(store.head("k")) == 5

    def test_range_falls_back_to_get_and_slice(self):
        sim = Simulator()
        store, _b = make_backend(sim)
        sim.run_process(store.put("k", b"0123456789"))
        assert sim.run_process(store.get_range("k", 2, 3)) == b"234"

    def test_emulated_conditional_put(self):
        sim = Simulator()
        store, _b = make_backend(sim)
        assert store.emulated_conditional_put
        assert sim.run_process(store.put_if_absent("k", b"1")) is True
        assert sim.run_process(store.put_if_absent("k", b"2")) is False
        assert sim.run_process(store.get("k")) == b"1"

    def test_native_optional_handlers_used(self):
        sim = Simulator()
        store, _b = make_backend(sim, with_optional=True)
        assert not store.emulated_conditional_put
        sim.run_process(store.put("k", b"abcdef"))
        assert sim.run_process(store.head("k")) == 6
        assert sim.run_process(store.get_range("k", 1, 2)) == b"bc"
        assert sim.run_process(store.put_if_absent("k", b"x")) is False


class TestArkFSOnRestBackend:
    def test_full_filesystem_on_registered_apis(self):
        """The paper's design goal end to end: ArkFS over registered APIs."""
        from repro.core import (
            ArkFSClient,
            DEFAULT_PARAMS,
            InoAllocator,
            PRT,
            mkfs,
        )
        from repro.core.lease import LeaseManager
        from repro.posix import ROOT_CREDS, SyncFS
        from repro.sim import Network, Node

        sim = Simulator()
        store, _b = make_backend(sim, with_optional=True)
        net = Network(sim)
        prt = PRT(store, DEFAULT_PARAMS.data_object_size)
        mkfs(sim, store)
        mgr = LeaseManager(sim, Node(sim, "mgr", net=net), DEFAULT_PARAMS)
        client = ArkFSClient(sim, Node(sim, "c0", net=net), prt,
                             DEFAULT_PARAMS, mgr, InoAllocator(seed=1))
        fs = SyncFS(client, ROOT_CREDS)
        fs.makedirs("/x/y")
        fs.write_file("/x/y/f", b"portable", do_fsync=True)
        assert fs.read_file("/x/y/f") == b"portable"
        fs.rename("/x/y/f", "/x/g")  # cross-dir: exercises 2PC decisions
        assert fs.read_file("/x/g") == b"portable"
