"""TieredObjectStore: write-back staging, demand promotion, lifecycle
demotion, batched verbs, and the retry / partial-batch interplay.

All tests run the tier over two InMemoryObjectStores (zero-latency) with
``drain_interval=0`` so nothing drains unless the test says so — the
background machinery is driven explicitly via ``tier_maintain`` /
``tier_drain_all`` or the dirty-bound kick.
"""

import pytest

from repro.core.retry import RetryPolicy
from repro.objectstore import (
    InMemoryObjectStore,
    NoSuchKey,
    TieredObjectStore,
)
from repro.objectstore.base import ObjectStore
from repro.objectstore.errors import TransientError
from repro.sim import Simulator

KiB = 1024


def make_tier(sim=None, **kw):
    sim = sim or Simulator()
    hot = InMemoryObjectStore(sim)
    cold = InMemoryObjectStore(sim)
    kw.setdefault("drain_interval", 0)
    tier = TieredObjectStore(sim, hot, cold, **kw)
    return sim, hot, cold, tier


def run(sim, gen):
    return sim.run_process(gen)


def settle(sim, dt=1.0):
    """Let background processes (promotions, kicked drains) finish."""
    sim.run(until=sim.now + dt)


class TestStaging:
    def test_staged_put_lands_hot_only(self):
        sim, hot, cold, tier = make_tier()
        run(sim, tier.put("d0001/0000000000", b"x" * 100))
        assert "d0001/0000000000" in hot
        assert "d0001/0000000000" not in cold
        assert tier.tier_dirty_keys() == ["d0001/0000000000"]
        assert tier.staged_dirty_bytes == 100
        assert run(sim, tier.get("d0001/0000000000")) == b"x" * 100
        assert tier.stats["hits"] == 1 and tier.stats["staged_puts"] == 1

    def test_metadata_writes_through_to_cold(self):
        sim, hot, cold, tier = make_tier()
        for key in ("i0001", "e0001/name", "j/0001", "t/ren1", "s/map",
                    "x0001"):
            run(sim, tier.put(key, b"m"))
            assert key in cold, key
            assert key in hot, key
        assert tier.tier_dirty_keys() == []
        assert tier.stats["writethrough_puts"] == 6

    def test_maintain_drains_to_cold(self):
        sim, hot, cold, tier = make_tier()
        run(sim, tier.put("d0001/0000000000", b"a" * 50))
        run(sim, tier.put("d0001/0000000001", b"b" * 60))
        run(sim, tier.tier_maintain())
        assert cold.sync_get("d0001/0000000000") == b"a" * 50
        assert cold.sync_get("d0001/0000000001") == b"b" * 60
        assert tier.tier_dirty_keys() == []
        assert tier.staged_dirty_bytes == 0
        assert tier.stats["drained_objects"] == 2
        assert tier.stats["drained_bytes"] == 110
        # Drained objects stay hot (clean) until demotion needs the space.
        assert tier.stats["hits"] == 0
        run(sim, tier.get("d0001/0000000000"))
        assert tier.stats["hits"] == 1

    def test_drain_all_is_a_barrier(self):
        sim, hot, cold, tier = make_tier(drain_batch=2)
        for i in range(7):
            run(sim, tier.put(f"d0001/{i:010d}", bytes([i + 1]) * 10))
        run(sim, tier.tier_drain_all())
        assert tier.tier_dirty_keys() == []
        assert len(cold) == 7

    def test_rewrite_while_dirty_replaces_pending_bytes(self):
        sim, hot, cold, tier = make_tier()
        run(sim, tier.put("d0001/0000000000", b"x" * 100))
        run(sim, tier.put("d0001/0000000000", b"y" * 40))
        assert tier.staged_dirty_bytes == 40
        run(sim, tier.tier_drain_all())
        assert cold.sync_get("d0001/0000000000") == b"y" * 40

    def test_dirty_bound_stalls_writer_and_kicks_drain(self):
        sim, hot, cold, tier = make_tier(dirty_max=150)
        run(sim, tier.put("d0001/0000000000", b"a" * 100))
        # Second staged put would exceed the bound: it must wait for the
        # kicked drain (never for demotion), then land.
        run(sim, tier.put("d0001/0000000001", b"b" * 100))
        assert tier.stats["stage_stalls"] >= 1
        assert "d0001/0000000000" in cold  # the kicked drain pushed it
        assert run(sim, tier.get("d0001/0000000001")) == b"b" * 100

    def test_disabled_ticker_builds_no_process(self):
        sim, _hot, _cold, tier = make_tier(drain_interval=0)
        assert tier._ticker is None


class TestPromotion:
    def test_miss_promotes_in_background(self):
        sim, hot, cold, tier = make_tier()
        cold.sync_put("d0002/0000000000", b"c" * 80)
        data = run(sim, tier.get("d0002/0000000000"))
        assert data == b"c" * 80
        assert tier.stats["misses"] == 1
        assert tier.stats["cold_get_bytes"] == 80
        settle(sim)
        assert tier.stats["promotions"] == 1
        assert "d0002/0000000000" in hot
        run(sim, tier.get("d0002/0000000000"))
        assert tier.stats["hits"] == 1  # second read is a hot hit

    def test_oversized_object_not_promoted(self):
        sim, hot, cold, tier = make_tier(promote_max=64)
        cold.sync_put("d0002/0000000000", b"c" * 100)
        run(sim, tier.get("d0002/0000000000"))
        settle(sim)
        assert tier.stats["promotions"] == 0
        assert "d0002/0000000000" not in hot

    def test_range_get_never_promotes(self):
        sim, hot, cold, tier = make_tier()
        cold.sync_put("p/pack1", b"0123456789" * 10)
        out = run(sim, tier.get_range("p/pack1", 10, 5))
        assert out == b"01234"
        settle(sim)
        assert tier.stats["promotions"] == 0
        assert tier.stats["cold_get_bytes"] == 5
        assert "p/pack1" not in hot

    def test_promoted_copy_is_clean_not_dirty(self):
        sim, hot, cold, tier = make_tier()
        cold.sync_put("d0002/0000000000", b"c" * 80)
        run(sim, tier.get("d0002/0000000000"))
        settle(sim)
        assert tier.tier_dirty_keys() == []


class TestDemotion:
    def test_watermarks_evict_lru_clean(self):
        sim, hot, cold, tier = make_tier(
            hot_capacity=1000, high_watermark=0.9, low_watermark=0.5)
        for i in range(10):
            run(sim, tier.put(f"d0001/{i:010d}", bytes([i + 1]) * 100))
        run(sim, tier.tier_drain_all())
        # Touch the two oldest so LRU eviction must skip past them.
        run(sim, tier.get("d0001/0000000000"))
        run(sim, tier.get("d0001/0000000001"))
        run(sim, tier.tier_maintain())
        assert tier.stats["demotions"] > 0
        assert tier.hot_bytes <= 500
        assert "d0001/0000000000" in hot and "d0001/0000000001" in hot
        # Every demoted object still reads correctly (from cold).
        for i in range(10):
            assert run(sim, tier.get(f"d0001/{i:010d}")) == \
                bytes([i + 1]) * 100

    def test_dirty_objects_never_evicted(self):
        sim, hot, cold, tier = make_tier(
            hot_capacity=300, high_watermark=0.5, low_watermark=0.2,
            dirty_max=10_000, drain_batch=0x7fffffff)
        # Fill over the high watermark with dirty-only objects and run the
        # demoter *without* draining: nothing is evictable.
        for i in range(5):
            run(sim, tier._hot_put(f"d0001/{i:010d}", b"z" * 100, None))
            tier._note_staged(f"d0001/{i:010d}", 100)
        run(sim, tier._demote())
        assert tier.stats["demotions"] == 0
        assert tier.hot_bytes == 500

    def test_under_watermark_is_a_noop(self):
        sim, hot, cold, tier = make_tier(hot_capacity=100_000)
        run(sim, tier.put("d0001/0000000000", b"a" * 100))
        run(sim, tier.tier_maintain())
        assert tier.stats["demotions"] == 0
        assert "d0001/0000000000" in hot


class TestBatchedVerbs:
    def test_put_many_splits_staged_and_through(self):
        sim, hot, cold, tier = make_tier()
        run(sim, tier.put_many([
            ("d0001/0000000000", b"a" * 10),
            ("i0001", b"meta"),
            ("p/pack1", b"b" * 20),
        ]))
        assert tier.tier_dirty_keys() == ["d0001/0000000000", "p/pack1"]
        assert "i0001" in cold and "d0001/0000000000" not in cold
        assert tier.stats["staged_puts"] == 2
        assert tier.stats["writethrough_puts"] == 1

    def test_get_many_aligns_and_promotes(self):
        sim, hot, cold, tier = make_tier()
        run(sim, tier.put("d0001/0000000000", b"hot!"))
        cold.sync_put("d0002/0000000000", b"cold")
        out = run(sim, tier.get_many(
            ["d0001/0000000000", "ghost", "d0002/0000000000"]))
        assert out == [b"hot!", None, b"cold"]
        assert tier.stats["hits"] == 1 and tier.stats["misses"] == 2
        settle(sim)
        assert "d0002/0000000000" in hot

    def test_delete_many_counts_union_once(self):
        sim, hot, cold, tier = make_tier()
        run(sim, tier.put("d0001/0000000000", b"dirty"))  # hot-only
        run(sim, tier.put("i0001", b"both"))              # hot + cold
        cold.sync_put("d0009/0000000000", b"cold-only")
        removed = run(sim, tier.delete_many(
        ["d0001/0000000000", "i0001", "d0009/0000000000", "ghost",
         "ghost"]))
        assert removed == 3
        for s in (hot, cold):
            for k in ("d0001/0000000000", "i0001", "d0009/0000000000"):
                assert k not in s
        assert tier.tier_dirty_keys() == []

    def test_empty_batches(self):
        sim, _hot, _cold, tier = make_tier()
        assert run(sim, tier.get_many([])) == []
        assert run(sim, tier.delete_many([])) == 0
        run(sim, tier.put_many([]))


class TestDeleteAndCreate:
    def test_delete_dirty_only_key_tolerates_cold_absence(self):
        sim, hot, cold, tier = make_tier()
        run(sim, tier.put("d0001/0000000000", b"x"))
        run(sim, tier.delete("d0001/0000000000"))
        assert "d0001/0000000000" not in hot
        assert tier.staged_dirty_bytes == 0

    def test_delete_missing_raises(self):
        sim, _hot, _cold, tier = make_tier()
        with pytest.raises(NoSuchKey):
            run(sim, tier.delete("d0001/0000000000"))

    def test_put_if_absent_cold_is_authority(self):
        sim, hot, cold, tier = make_tier()
        assert run(sim, tier.put_if_absent("t/ren1", b"A")) is True
        assert cold.sync_get("t/ren1") == b"A"
        assert run(sim, tier.put_if_absent("t/ren1", b"B")) is False
        assert cold.sync_get("t/ren1") == b"A"

    def test_put_if_absent_loses_to_staged_resident(self):
        sim, hot, cold, tier = make_tier()
        run(sim, tier.put("d0001/0000000000", b"staged"))
        assert run(sim, tier.put_if_absent(
            "d0001/0000000000", b"late")) is False
        assert run(sim, tier.get("d0001/0000000000")) == b"staged"

    def test_list_is_cold_union_dirty(self):
        sim, hot, cold, tier = make_tier()
        run(sim, tier.put("d0001/0000000000", b"x"))   # dirty, hot-only
        run(sim, tier.put("i0001", b"m"))              # write-through
        cold.sync_put("d0002/0000000000", b"c")
        out = run(sim, tier.list(""))
        assert out == ["d0001/0000000000", "d0002/0000000000", "i0001"]


class TestCrashModel:
    def test_lose_hot_drops_staged_keeps_drained(self):
        sim, hot, cold, tier = make_tier()
        run(sim, tier.put("d0001/0000000000", b"durable"))
        run(sim, tier.tier_drain_all())
        run(sim, tier.put("d0001/0000000001", b"volatile"))
        tier.lose_hot()
        assert len(hot) == 0
        assert tier.staged_dirty_bytes == 0 and tier.hot_bytes == 0
        assert run(sim, tier.get("d0001/0000000000")) == b"durable"
        with pytest.raises(NoSuchKey):
            run(sim, tier.get("d0001/0000000001"))

    def test_usage_counts_staged_dirty(self):
        sim, _hot, _cold, tier = make_tier()
        run(sim, tier.put("d0001/0000000000", b"x" * 100))
        n, used = tier.usage()
        assert n == 1 and used == 100
        run(sim, tier.tier_drain_all())
        n, used = tier.usage()
        assert n == 1 and used == 100


class TestRetryInterplay:
    def test_drain_retries_transient_cold_failure(self):
        sim = Simulator()
        hot = InMemoryObjectStore(sim)
        cold = InMemoryObjectStore(sim)
        fail = {"left": 2}
        real_put_many = cold.put_many

        def flaky_put_many(items, src=None):
            if fail["left"] > 0:
                fail["left"] -= 1
                yield sim.timeout(0)
                raise TransientError("SlowDown")
            return (yield from real_put_many(items, src=src))

        cold.put_many = flaky_put_many
        retry = RetryPolicy(sim, limit=4, base=1e-3, cap=8e-3)
        tier = TieredObjectStore(sim, hot, cold, drain_interval=0,
                                 retry=retry)
        sim.run_process(tier.put("d0001/0000000000", b"x" * 10))
        sim.run_process(tier.tier_drain_all())
        assert fail["left"] == 0
        assert cold.sync_get("d0001/0000000000") == b"x" * 10
        assert tier.tier_dirty_keys() == []
        assert retry._c_attempts.value == 2

    def test_drain_gives_up_after_limit_and_stays_dirty(self):
        sim = Simulator()
        hot = InMemoryObjectStore(sim)
        cold = InMemoryObjectStore(sim)

        def always_fail(items, src=None):
            yield sim.timeout(0)
            raise TransientError("SlowDown")

        cold.put_many = always_fail
        retry = RetryPolicy(sim, limit=1, base=1e-3, cap=2e-3)
        tier = TieredObjectStore(sim, hot, cold, drain_interval=0,
                                 retry=retry)
        sim.run_process(tier.put("d0001/0000000000", b"x"))
        with pytest.raises(TransientError):
            sim.run_process(tier.tier_drain_all())
        # The object is still staged — nothing was marked clean.
        assert tier.tier_dirty_keys() == ["d0001/0000000000"]


class _SettlingStore(ObjectStore):
    """Minimal store exercising the base-class batched fallbacks, with a
    poisoned key to test the settle-everything partial-batch contract."""

    def __init__(self, sim, poison=None):
        self.sim = sim
        self.data = {}
        self.poison = poison

    def _maybe_poison(self, key):
        if key == self.poison:
            raise TransientError(f"poisoned: {key}")

    def get(self, key, src=None):
        yield self.sim.timeout(0)
        self._maybe_poison(key)
        if key not in self.data:
            raise NoSuchKey(key)
        return self.data[key]

    def get_range(self, key, offset, length, src=None):
        data = yield from self.get(key, src=src)
        return data[offset:offset + length]

    def put(self, key, data, src=None):
        yield self.sim.timeout(0)
        self._maybe_poison(key)
        self.data[key] = data

    def delete(self, key, src=None):
        yield self.sim.timeout(0)
        self._maybe_poison(key)
        if key not in self.data:
            raise NoSuchKey(key)
        del self.data[key]

    def head(self, key, src=None):
        data = yield from self.get(key, src=src)
        return len(data)

    def list(self, prefix, src=None):
        yield self.sim.timeout(0)
        return sorted(k for k in self.data if k.startswith(prefix))

    def put_if_absent(self, key, data, src=None):
        yield self.sim.timeout(0)
        if key in self.data:
            return False
        self.data[key] = data
        return True


class TestPartialBatchContract:
    def test_put_many_applies_siblings_then_raises_first_error(self):
        sim = Simulator()
        s = _SettlingStore(sim, poison="k1")
        with pytest.raises(TransientError, match="k1"):
            sim.run_process(s.put_many(
                [("k0", b"a"), ("k1", b"b"), ("k2", b"c")]))
        # Every non-failing PUT applied: a whole-batch retry converges.
        assert s.data == {"k0": b"a", "k2": b"c"}
        s.poison = None
        sim.run_process(s.put_many(
            [("k0", b"a"), ("k1", b"b"), ("k2", b"c")]))
        assert sorted(s.data) == ["k0", "k1", "k2"]

    def test_get_many_raises_real_errors_but_tolerates_absence(self):
        sim = Simulator()
        s = _SettlingStore(sim, poison="bad")
        s.data["k0"] = b"a"
        assert sim.run_process(s.get_many(["k0", "ghost"])) == [b"a", None]
        with pytest.raises(TransientError):
            sim.run_process(s.get_many(["k0", "bad"]))

    def test_delete_many_settles_all_before_raising(self):
        sim = Simulator()
        s = _SettlingStore(sim, poison="bad")
        s.data.update({"k0": b"a", "k1": b"b"})
        with pytest.raises(TransientError):
            sim.run_process(s.delete_many(["k0", "bad", "k1"]))
        assert s.data == {}  # both siblings settled (deleted)

    def test_single_item_fast_path_error_propagates(self):
        sim = Simulator()
        s = _SettlingStore(sim, poison="bad")
        with pytest.raises(TransientError):
            sim.run_process(s.put_many([("bad", b"x")]))
