"""CephFS/MarFS baseline: semantics + the MDS timing model."""

import pytest

from repro.baselines import (
    CEPH_MDS,
    CephClientParams,
    MDSParams,
    build_cephfs,
    build_marfs,
)
from repro.posix import (
    NotFound,
    OpenFlags,
    PermissionDenied,
    ROOT_CREDS,
    SyncFS,
    UnsupportedOperation,
    Credentials,
)
from repro.sim import Simulator


def run_all(sim, procs):
    """Advance the simulation until every process in ``procs`` completes
    (backgrounds like the MDS rebalancer run forever, so sim.run() alone
    would never return / would distort elapsed-time measurements)."""
    done = sim.all_of(procs)
    while not done.triggered:
        sim.step()


@pytest.fixture
def ceph():
    sim = Simulator()
    cluster = build_cephfs(sim, n_clients=2, functional=True)
    return sim, cluster


def fs_of(cluster, i=0, creds=ROOT_CREDS):
    return SyncFS(cluster.client(i), creds)


class TestSemantics:
    def test_roundtrip(self, ceph):
        sim, cluster = ceph
        fs = fs_of(cluster)
        fs.makedirs("/a/b")
        fs.write_file("/a/b/f", b"hello ceph", do_fsync=True)
        assert fs.read_file("/a/b/f") == b"hello ceph"
        assert fs.stat("/a/b/f").st_size == 10

    def test_cross_client_visibility(self, ceph):
        sim, cluster = ceph
        fs0, fs1 = fs_of(cluster, 0), fs_of(cluster, 1)
        fs0.mkdir("/shared")
        fs0.write_file("/shared/f", b"from zero", do_fsync=True)
        assert fs1.read_file("/shared/f") == b"from zero"

    def test_writeback_flushed_on_conflicting_reader(self, ceph):
        """Cap revocation: client1's read must see client0's cached write."""
        sim, cluster = ceph
        fs0, fs1 = fs_of(cluster, 0), fs_of(cluster, 1)
        h = fs0.create("/wb")
        h.write(b"cached bytes")
        h.close()
        assert fs1.read_file("/wb") == b"cached bytes"

    def test_permissions(self, ceph):
        sim, cluster = ceph
        root = fs_of(cluster)
        root.mkdir("/secure", 0o700)
        root.write_file("/secure/f", b"top")
        user = fs_of(cluster, 0, Credentials(1000, 1000))
        with pytest.raises(PermissionDenied):
            user.read_file("/secure/f")

    def test_rename_and_unlink(self, ceph):
        sim, cluster = ceph
        fs = fs_of(cluster)
        fs.mkdir("/d1")
        fs.mkdir("/d2")
        fs.write_file("/d1/f", b"x", do_fsync=True)
        fs.rename("/d1/f", "/d2/g")
        assert fs.readdir("/d2") == ["g"]
        fs.unlink("/d2/g")
        with pytest.raises(NotFound):
            fs.stat("/d2/g")

    def test_truncate(self, ceph):
        sim, cluster = ceph
        fs = fs_of(cluster)
        fs.write_file("/f", b"0123456789", do_fsync=True)
        fs.truncate("/f", 3)
        assert fs.read_file("/f") == b"012"

    def test_symlinks(self, ceph):
        sim, cluster = ceph
        fs = fs_of(cluster)
        fs.mkdir("/real")
        fs.write_file("/real/f", b"via", do_fsync=True)
        fs.symlink("/real", "/ln")
        assert fs.read_file("/ln/f") == b"via"
        assert fs.readlink("/ln") == "/real"


class TestMDSModel:
    def test_every_metadata_op_visits_mds(self):
        sim = Simulator()
        cluster = build_cephfs(sim, n_clients=1, functional=True)
        fs = fs_of(cluster)
        before = cluster.mds.total_ops
        fs.mkdir("/x")
        fs.stat("/x")
        fs.readdir("/x")
        assert cluster.mds.total_ops >= before + 3

    def test_single_mds_saturates(self):
        """Aggregate create throughput caps near 1/service_time."""
        sim = Simulator()
        params = MDSParams(n_mds=1, base_service=100e-6,
                           contention_alpha=0.0)
        cluster = build_cephfs(sim, n_clients=4, functional=False,
                               mds_params=params)
        n_creates = 200

        def worker(i):
            client = cluster.client(i)
            from repro.posix import ROOT_CREDS

            yield from client.mkdir(ROOT_CREDS, f"/w{i}")
            for j in range(n_creates):
                h = yield from client.create(ROOT_CREDS, f"/w{i}/f{j}")
                yield from client.close(h)

        t0 = sim.now
        procs = [sim.process(worker(i)) for i in range(4)]
        run_all(sim, procs)
        elapsed = sim.now - t0
        total_ops = 4 * n_creates
        rate = total_ops / elapsed
        assert rate <= 1.05 / 100e-6  # cannot exceed the MDS service rate

    def test_contention_degrades_service(self):
        """With contention_alpha, more concurrent sessions -> lower
        aggregate throughput (the Fig. 1 collapse mechanism)."""
        def run(n_clients, alpha):
            sim = Simulator()
            params = MDSParams(n_mds=1, base_service=50e-6,
                               contention_alpha=alpha, contention_knee=2)
            cluster = build_cephfs(sim, n_clients=n_clients, functional=False,
                                   mds_params=params)

            def worker(i):
                client = cluster.client(i)
                yield from client.mkdir(ROOT_CREDS, f"/w{i}")
                for j in range(50):
                    h = yield from client.create(ROOT_CREDS, f"/w{i}/f{j}")
                    yield from client.close(h)

            t0 = sim.now
            procs = [sim.process(worker(i)) for i in range(n_clients)]
            run_all(sim, procs)
            return n_clients * 51 / (sim.now - t0)

        few = run(2, alpha=0.3)
        many = run(16, alpha=0.3)
        assert many < few  # throughput collapses, not just saturates

    def test_multi_mds_improves_but_sublinearly(self):
        def run(n_mds):
            sim = Simulator()
            params = MDSParams(n_mds=n_mds, base_service=80e-6,
                               contention_alpha=0.02, forward_prob=0.4,
                               rebalance_interval=0.5, rebalance_pause=0.01)
            cluster = build_cephfs(sim, n_clients=8, functional=False,
                                   mds_params=params)

            def worker(i):
                client = cluster.client(i)
                yield from client.mkdir(ROOT_CREDS, f"/w{i}")
                for j in range(100):
                    h = yield from client.create(ROOT_CREDS, f"/w{i}/f{j}")
                    yield from client.close(h)

            t0 = sim.now
            procs = [sim.process(worker(i)) for i in range(8)]
            run_all(sim, procs)
            return 8 * 101 / (sim.now - t0)

        one = run(1)
        four = run(4)
        assert four > one            # more MDSs do help...
        assert four < one * 4        # ...but far from linearly


class TestMarFS:
    def test_functional_namespace(self):
        sim = Simulator()
        cluster = build_marfs(sim, n_clients=1, functional=True)
        fs = fs_of(cluster)
        fs.mkdir("/archive")
        fs.write_file("/archive/f", b"x", do_fsync=True)
        assert fs.readdir("/archive") == ["f"]
        assert fs.stat("/archive/f").st_size == 1

    def test_reads_fail_like_the_paper(self):
        sim = Simulator()
        cluster = build_marfs(sim, n_clients=1, functional=True)
        fs = fs_of(cluster)
        fs.write_file("/f", b"data", do_fsync=True)
        with pytest.raises(UnsupportedOperation):
            fs.read_file("/f")

    def test_reads_work_with_flag_disabled(self):
        from repro.baselines.marfs import MARFS_CLIENT
        from dataclasses import replace

        sim = Simulator()
        cluster = build_marfs(sim, n_clients=1, functional=True,
                              client_params=replace(MARFS_CLIENT,
                                                    fail_reads=False))
        fs = fs_of(cluster)
        fs.write_file("/f", b"data", do_fsync=True)
        assert fs.read_file("/f") == b"data"

    def test_marfs_slower_than_cephfs_kernel(self):
        """MarFS's interactive mount + heavy MDS should be slower."""
        def run(builder, **kw):
            sim = Simulator()
            cluster = builder(sim, n_clients=1, functional=False, **kw)
            mount = cluster.mount(0)

            def worker():
                yield from mount.mkdir(ROOT_CREDS, "/w")
                for j in range(100):
                    h = yield from mount.create(ROOT_CREDS, f"/w/f{j}")
                    yield from mount.close(h)

            t0 = sim.now
            procs = [sim.process(worker())]
            run_all(sim, procs)
            return sim.now - t0

        t_ceph = run(build_cephfs, mount="kernel")
        t_marfs = run(build_marfs)
        assert t_marfs > t_ceph
