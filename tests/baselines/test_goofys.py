"""goofys baseline: streaming uploads, pipelined reads, relaxed POSIX."""

import pytest

from repro.baselines import GoofysParams, build_goofys
from repro.posix import (
    AlreadyExists,
    NotFound,
    OpenFlags,
    ROOT_CREDS,
    SyncFS,
    UnsupportedOperation,
)
from repro.sim import Simulator

MiB = 1024 * 1024


@pytest.fixture
def goofys():
    sim = Simulator()
    cluster = build_goofys(sim, n_clients=1, functional=True,
                           params=GoofysParams(part_size=64 * 1024,
                                               chunk_size=32 * 1024,
                                               readahead=256 * 1024))
    return sim, cluster


def fs_of(cluster, i=0):
    return SyncFS(cluster.client(i), ROOT_CREDS)


class TestWrites:
    def test_streaming_roundtrip(self, goofys):
        sim, cluster = goofys
        fs = fs_of(cluster)
        payload = bytes(i % 251 for i in range(300_000))
        fs.write_file("/stream", payload, do_fsync=True)
        assert fs.read_file("/stream") == payload
        assert fs.stat("/stream").st_size == len(payload)

    def test_parts_uploaded_during_write_not_at_close(self, goofys):
        """Bytes ship while the application writes (no disk staging)."""
        sim, cluster = goofys
        fs = fs_of(cluster)
        h = fs.create("/f")
        h.write(b"x" * 200_000)  # > 3 parts of 64 KiB
        sim.run()  # let in-flight part uploads land
        part_keys = [k for k in cluster.bucket.sync_list("")
                     if ".goofys-part." in k]
        assert len(part_keys) >= 3
        h.close()
        # After completion the parts are assembled into the final object.
        assert "f" in cluster.store
        assert not [k for k in cluster.bucket.sync_list("")
                    if ".goofys-part." in k]

    def test_no_in_place_modification(self, goofys):
        sim, cluster = goofys
        fs = fs_of(cluster)
        fs.write_file("/f", b"immutable", do_fsync=True)
        with pytest.raises(UnsupportedOperation):
            fs.open("/f", OpenFlags.O_WRONLY)  # no O_TRUNC: would modify

    def test_trunc_overwrite_allowed(self, goofys):
        sim, cluster = goofys
        fs = fs_of(cluster)
        fs.write_file("/f", b"old", do_fsync=True)
        fs.write_file("/f", b"new!", do_fsync=True)
        assert fs.read_file("/f") == b"new!"

    def test_random_write_rejected(self, goofys):
        sim, cluster = goofys
        fs = fs_of(cluster)
        h = fs.create("/f")
        h.write(b"seq")
        with pytest.raises(UnsupportedOperation):
            h.write(b"jump", offset=100)

    def test_empty_file_create(self, goofys):
        sim, cluster = goofys
        fs = fs_of(cluster)
        fs.create("/empty").close()
        assert fs.stat("/empty").st_size == 0


class TestReads:
    def test_pipelined_sequential_read(self, goofys):
        sim, cluster = goofys
        fs = fs_of(cluster)
        payload = bytes(i % 256 for i in range(256 * 1024))
        fs.write_file("/f", payload, do_fsync=True)
        h = fs.open("/f", OpenFlags.O_RDONLY)
        out = b""
        while True:
            chunk = h.read(20_000)
            if not chunk:
                break
            out += chunk
        h.close()
        assert out == payload

    def test_read_past_eof(self, goofys):
        sim, cluster = goofys
        fs = fs_of(cluster)
        fs.write_file("/f", b"short", do_fsync=True)
        h = fs.open("/f", OpenFlags.O_RDONLY)
        assert h.read(100, offset=50) == b""
        h.close()


class TestRelaxedPosix:
    def test_chmod_silently_ignored(self, goofys):
        sim, cluster = goofys
        fs = fs_of(cluster)
        fs.write_file("/f", b"", do_fsync=True)
        fs.chmod("/f", 0o000)  # accepted, no effect
        assert fs.read_file("/f") == b""

    def test_symlinks_unsupported(self, goofys):
        sim, cluster = goofys
        fs = fs_of(cluster)
        with pytest.raises(UnsupportedOperation):
            fs.symlink("/a", "/b")

    def test_dir_rename_unsupported(self, goofys):
        sim, cluster = goofys
        fs = fs_of(cluster)
        fs.mkdir("/d")
        with pytest.raises(UnsupportedOperation):
            fs.rename("/d", "/e")

    def test_file_rename_works(self, goofys):
        sim, cluster = goofys
        fs = fs_of(cluster)
        fs.write_file("/a", b"move me", do_fsync=True)
        fs.rename("/a", "/b")
        assert fs.read_file("/b") == b"move me"
        with pytest.raises(NotFound):
            fs.stat("/a")

    def test_namespace_basics(self, goofys):
        sim, cluster = goofys
        fs = fs_of(cluster)
        fs.mkdir("/d")
        with pytest.raises(AlreadyExists):
            fs.mkdir("/d")
        fs.write_file("/d/f", b"", do_fsync=True)
        assert fs.readdir("/d") == ["f"]
        fs.unlink("/d/f")
        fs.rmdir("/d")


class TestReadAheadAdvantage:
    def test_bigger_window_reads_faster_on_s3(self):
        """goofys's huge window hides S3 latency: the Fig. 6(b) effect."""
        def run(readahead):
            sim = Simulator()
            cluster = build_goofys(
                sim, n_clients=1, functional=False,
                params=GoofysParams(readahead=readahead,
                                    chunk_size=2 * MiB, part_size=5 * MiB))
            fs = fs_of(cluster)
            payload = bytes(64) * (16 * MiB // 64)
            fs.write_file("/big", payload, do_fsync=True)
            t0 = cluster.sim.now
            got = fs.read_file("/big")
            assert got == payload
            return cluster.sim.now - t0

        slow = run(2 * MiB)       # barely any pipelining (8 chunks, 1 ahead)
        fast = run(64 * MiB)      # deep pipeline (all chunks in flight)
        assert fast < slow * 0.7
