"""S3FS baseline: path-keyed objects, whole-object rewrites, disk staging."""

import pytest

from repro.baselines import build_s3fs
from repro.posix import (
    AlreadyExists,
    DirectoryNotEmpty,
    NotADirectory,
    NotFound,
    OpenFlags,
    ROOT_CREDS,
    SyncFS,
    UnsupportedOperation,
)
from repro.sim import Simulator


@pytest.fixture
def s3():
    sim = Simulator()
    cluster = build_s3fs(sim, n_clients=2, functional=True)
    return sim, cluster


def fs_of(cluster, i=0):
    return SyncFS(cluster.client(i), ROOT_CREDS)


class TestSemantics:
    def test_roundtrip(self, s3):
        sim, cluster = s3
        fs = fs_of(cluster)
        fs.mkdir("/b")
        fs.write_file("/b/f", b"s3 object", do_fsync=True)
        assert fs.read_file("/b/f") == b"s3 object"
        assert fs.stat("/b/f").st_size == 9

    def test_keys_are_full_paths(self, s3):
        sim, cluster = s3
        fs = fs_of(cluster)
        fs.mkdir("/deep")
        fs.write_file("/deep/file.txt", b"x", do_fsync=True)
        assert "deep/file.txt" in cluster.store
        assert "deep/" in cluster.store  # directory marker object

    def test_readdir_collapses_delimiter(self, s3):
        sim, cluster = s3
        fs = fs_of(cluster)
        fs.mkdir("/d")
        fs.mkdir("/d/sub")
        fs.write_file("/d/a", b"", do_fsync=True)
        fs.write_file("/d/sub/deep", b"", do_fsync=True)
        assert fs.readdir("/d") == ["a", "sub"]

    def test_mkdir_duplicate(self, s3):
        sim, cluster = s3
        fs = fs_of(cluster)
        fs.mkdir("/d")
        with pytest.raises(AlreadyExists):
            fs.mkdir("/d")

    def test_rmdir_rules(self, s3):
        sim, cluster = s3
        fs = fs_of(cluster)
        fs.mkdir("/d")
        fs.write_file("/d/f", b"", do_fsync=True)
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/d")
        fs.unlink("/d/f")
        fs.rmdir("/d")
        with pytest.raises(NotFound):
            fs.stat("/d")

    def test_dir_rename_rewrites_every_object(self, s3):
        """The paper: "renaming of a directory leads to a situation where
        all the files under the directory are rewritten"."""
        sim, cluster = s3
        fs = fs_of(cluster)
        fs.mkdir("/old")
        for i in range(5):
            fs.write_file(f"/old/f{i}", bytes([i]) * 10, do_fsync=True)
        puts_before = cluster.store.op_counts["put"]
        fs.rename("/old", "/new")
        # 5 files + 1 marker copied: at least 6 PUTs.
        assert cluster.store.op_counts["put"] - puts_before >= 6
        assert fs.readdir("/new") == [f"f{i}" for i in range(5)]
        with pytest.raises(NotFound):
            fs.stat("/old")

    def test_append_rewrites_whole_object(self, s3):
        sim, cluster = s3
        fs = fs_of(cluster)
        fs.write_file("/f", b"A" * 100, do_fsync=True)
        sim.run_process(cluster.client(0).drop_caches())  # discard staging
        reads_before = cluster.store.op_counts["get"]
        h = fs.open("/f", OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
        h.write(b"B")
        h.close()
        # The append forced a whole-object download before the rewrite.
        assert cluster.store.op_counts["get"] > reads_before
        assert fs.read_file("/f") == b"A" * 100 + b"B"

    def test_no_rigorous_permission_checks(self, s3):
        """The paper: "permission check is not done rigorously"."""
        from repro.posix import Credentials

        sim, cluster = s3
        root = fs_of(cluster)
        root.mkdir("/locked")
        root.chmod("/locked", 0o700)
        stranger = SyncFS(cluster.client(0), Credentials(999, 999))
        stranger.write_file("/locked/intruder", b"oops", do_fsync=True)
        assert root.read_file("/locked/intruder") == b"oops"

    def test_no_coordination_between_clients(self, s3):
        """Two mounts of one bucket see S3 state, not each other's caches:
        an unflushed write on client0 is invisible to client1."""
        sim, cluster = s3
        fs0, fs1 = fs_of(cluster, 0), fs_of(cluster, 1)
        fs0.write_file("/shared", b"v1", do_fsync=True)
        h = fs0.open("/shared", OpenFlags.O_WRONLY | OpenFlags.O_TRUNC)
        h.write(b"v2-staged")  # staged on client0's disk, not yet PUT
        assert fs1.read_file("/shared") == b"v1"
        h.close()  # flush happens here
        # client1 still serves its stale staged copy — no invalidation.
        assert fs1.read_file("/shared") == b"v1"

    def test_acls_unsupported(self, s3):
        sim, cluster = s3
        fs = fs_of(cluster)
        fs.write_file("/f", b"", do_fsync=True)
        with pytest.raises(UnsupportedOperation):
            fs.getfacl("/f")

    def test_symlink_roundtrip(self, s3):
        sim, cluster = s3
        fs = fs_of(cluster)
        fs.write_file("/target", b"pointed-at", do_fsync=True)
        fs.symlink("/target", "/ln")
        assert fs.readlink("/ln") == "/target"
        assert fs.read_file("/ln") == b"pointed-at"

    def test_truncate(self, s3):
        sim, cluster = s3
        fs = fs_of(cluster)
        fs.write_file("/f", b"0123456789", do_fsync=True)
        fs.truncate("/f", 4)
        assert fs.read_file("/f") == b"0123"


class TestDiskStagingCosts:
    def test_write_path_goes_through_disk(self):
        """Writes must pay disk-cache bandwidth (the 5.95x gap source)."""
        sim = Simulator()
        cluster = build_s3fs(sim, n_clients=1, functional=True)
        fs = fs_of(cluster)
        payload = b"z" * 1_000_000
        t0 = sim.now
        fs.write_file("/big", payload, do_fsync=True)
        elapsed = sim.now - t0
        # 1 MB staged to disk (~160 MB/s) and read back for upload:
        # at least 2 * 1MB / 160MB/s of disk time.
        assert elapsed >= 2 * 1_000_000 / 160e6 * 0.9
        assert cluster.client(0).disk.bytes_written >= 1_000_000

    def test_read_path_goes_through_disk(self):
        sim = Simulator()
        cluster = build_s3fs(sim, n_clients=1, functional=True)
        fs = fs_of(cluster)
        fs.write_file("/big", b"y" * 500_000, do_fsync=True)
        disk_reads_before = cluster.client(0).disk.bytes_read
        # New client instance state: drop staged copy to force download.
        sim.run_process(cluster.client(0).drop_caches())
        fs.read_file("/big")
        assert cluster.client(0).disk.bytes_written >= 500_000
