"""Shared S3 plumbing: key mapping, delimiter listing, the bucket sidecar."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines import Bucket, key_of, list_names
from repro.baselines.s3common import dir_key_of
from repro.objectstore import InMemoryObjectStore
from repro.sim import Simulator


class TestKeyMapping:
    def test_key_of(self):
        assert key_of("/a/b/c") == "a/b/c"
        assert key_of("/a") == "a"
        assert key_of("/") == ""
        assert key_of("/a//b/") == "a/b"

    def test_dir_key_of(self):
        assert dir_key_of("/a/b") == "a/b/"
        assert dir_key_of("/") == ""

    @given(st.lists(st.text(st.characters(min_codepoint=97,
                                          max_codepoint=122),
                            min_size=1, max_size=8),
                    min_size=1, max_size=5))
    def test_key_roundtrips_through_path(self, parts):
        path = "/" + "/".join(parts)
        assert key_of(path) == "/".join(parts)


class TestDelimiterListing:
    def test_immediate_children_only(self):
        keys = ["d/", "d/a", "d/b", "d/sub/", "d/sub/deep", "d/sub/deeper/x"]
        assert list_names(keys, "d/") == ["a", "b", "sub"]

    def test_marker_of_listed_dir_excluded(self):
        assert list_names(["d/"], "d/") == []

    def test_bucket_root(self):
        keys = ["a", "b/", "b/inner", "c"]
        assert list_names(keys, "") == ["a", "b", "c"]

    def test_duplicates_collapse(self):
        keys = ["p/x/", "p/x/1", "p/x/2"]
        assert list_names(keys, "p/") == ["x"]


class TestBucket:
    def test_functional_access_on_memory_store(self):
        sim = Simulator()
        bucket = Bucket(InMemoryObjectStore(sim))
        bucket.functional_put("k", b"v")
        assert bucket.sync_list("") == ["k"]
        bucket.functional_delete("k")
        assert bucket.sync_list("") == []
        bucket.functional_delete("k")  # idempotent

    def test_functional_access_on_cluster_store(self):
        from repro.objectstore import ClusterObjectStore, S3_PROFILE

        sim = Simulator()
        bucket = Bucket(ClusterObjectStore(sim, S3_PROFILE))
        bucket.functional_put("k", b"v")
        assert "k" in bucket.store
        assert bucket.sync_list("") == ["k"]
        # Crucially: no simulated time was consumed.
        assert sim.now == 0.0

    def test_attrs_shared_between_clients_of_one_bucket(self):
        from repro.baselines import build_s3fs
        from repro.posix import ROOT_CREDS, SyncFS

        sim = Simulator()
        cluster = build_s3fs(sim, n_clients=2, functional=True)
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs0.write_file("/f", b"", do_fsync=True)
        fs0.chmod("/f", 0o600)
        # Headers live in S3: the second mount sees them.
        assert fs1.stat("/f").perm_bits & 0o777 == 0o600
