"""The centralized namespace (MDS state) behaves POSIX-ly."""

import pytest

from repro.baselines import Namespace
from repro.core import InoAllocator, ROOT_INO
from repro.posix import (
    AlreadyExists,
    Credentials,
    DirectoryNotEmpty,
    FileType,
    IsADirectory,
    NotADirectory,
    NotFound,
    OpenFlags,
    PermissionDenied,
    TooManySymlinks,
)

ROOT = Credentials(0, 0)
USER = Credentials(1000, 1000)


@pytest.fixture
def ns():
    return Namespace(InoAllocator(seed=7))


class TestTree:
    def test_mkdir_resolve(self, ns):
        d = ns.mkdir(ROOT, ROOT_INO, "a", 0o755, 1.0)
        assert ns.resolve(ROOT, ["a"]) == d.ino
        sub = ns.mkdir(ROOT, d.ino, "b", 0o755, 2.0)
        assert ns.resolve(ROOT, ["a", "b"]) == sub.ino

    def test_duplicate_mkdir(self, ns):
        ns.mkdir(ROOT, ROOT_INO, "a", 0o755, 0)
        with pytest.raises(AlreadyExists):
            ns.mkdir(ROOT, ROOT_INO, "a", 0o755, 0)

    def test_create_and_lookup(self, ns):
        inode, created = ns.create(ROOT, ROOT_INO, "f",
                                   OpenFlags.O_CREAT | OpenFlags.O_WRONLY,
                                   0o644, 0)
        assert created
        assert ns.lookup(ROOT, ROOT_INO, "f").ino == inode.ino
        _same, created2 = ns.create(ROOT, ROOT_INO, "f",
                                    OpenFlags.O_CREAT | OpenFlags.O_RDWR,
                                    0o644, 0)
        assert not created2

    def test_create_excl_conflict(self, ns):
        ns.create(ROOT, ROOT_INO, "f", OpenFlags.O_CREAT, 0o644, 0)
        with pytest.raises(AlreadyExists):
            ns.create(ROOT, ROOT_INO, "f",
                      OpenFlags.O_CREAT | OpenFlags.O_EXCL, 0o644, 0)

    def test_unlink_and_rmdir_rules(self, ns):
        d = ns.mkdir(ROOT, ROOT_INO, "d", 0o755, 0)
        ns.create(ROOT, d.ino, "f", OpenFlags.O_CREAT, 0o644, 0)
        with pytest.raises(DirectoryNotEmpty):
            ns.rmdir(ROOT, ROOT_INO, "d", 0)
        with pytest.raises(IsADirectory):
            ns.unlink(ROOT, ROOT_INO, "d", 0)
        ns.unlink(ROOT, d.ino, "f", 0)
        ns.rmdir(ROOT, ROOT_INO, "d", 0)
        with pytest.raises(NotFound):
            ns.resolve(ROOT, ["d"])

    def test_readdir_sorted(self, ns):
        for n in ["c", "a", "b"]:
            ns.create(ROOT, ROOT_INO, n, OpenFlags.O_CREAT, 0o644, 0)
        assert ns.readdir(ROOT, ROOT_INO) == ["a", "b", "c"]

    def test_permission_enforced_on_traversal(self, ns):
        d = ns.mkdir(ROOT, ROOT_INO, "locked", 0o700, 0)
        ns.mkdir(ROOT, d.ino, "inner", 0o755, 0)
        with pytest.raises(PermissionDenied):
            ns.resolve(USER, ["locked", "inner"])

    def test_symlink_follow(self, ns):
        d = ns.mkdir(ROOT, ROOT_INO, "real", 0o755, 0)
        ns.symlink(ROOT, ROOT_INO, "link", "/real", 0)
        assert ns.resolve(ROOT, ["link"]) == d.ino
        # lstat-style: no follow on final
        ino = ns.resolve(ROOT, ["link"], follow_final=False)
        assert ns.node(ino).inode.is_symlink

    def test_symlink_loop(self, ns):
        ns.symlink(ROOT, ROOT_INO, "x", "/y", 0)
        ns.symlink(ROOT, ROOT_INO, "y", "/x", 0)
        with pytest.raises(TooManySymlinks):
            ns.resolve(ROOT, ["x"])

    def test_relative_symlink(self, ns):
        d = ns.mkdir(ROOT, ROOT_INO, "d", 0o755, 0)
        t = ns.mkdir(ROOT, d.ino, "target", 0o755, 0)
        ns.symlink(ROOT, d.ino, "ln", "target", 0)
        assert ns.resolve(ROOT, ["d", "ln"]) == t.ino

    def test_rename_moves_subtree(self, ns):
        a = ns.mkdir(ROOT, ROOT_INO, "a", 0o755, 0)
        b = ns.mkdir(ROOT, ROOT_INO, "b", 0o755, 0)
        deep = ns.mkdir(ROOT, a.ino, "deep", 0o755, 0)
        ns.rename(ROOT, ROOT_INO, "a", b.ino, "moved", 1.0)
        assert ns.resolve(ROOT, ["b", "moved", "deep"]) == deep.ino

    def test_rename_overwrite_returns_victim(self, ns):
        f1, _ = ns.create(ROOT, ROOT_INO, "f1", OpenFlags.O_CREAT, 0o644, 0)
        f2, _ = ns.create(ROOT, ROOT_INO, "f2", OpenFlags.O_CREAT, 0o644, 0)
        removed = ns.rename(ROOT, ROOT_INO, "f1", ROOT_INO, "f2", 0)
        assert removed.ino == f2.ino

    def test_rename_dir_over_nonempty(self, ns):
        ns.mkdir(ROOT, ROOT_INO, "a", 0o755, 0)
        b = ns.mkdir(ROOT, ROOT_INO, "b", 0o755, 0)
        ns.create(ROOT, b.ino, "keep", OpenFlags.O_CREAT, 0o644, 0)
        with pytest.raises(DirectoryNotEmpty):
            ns.rename(ROOT, ROOT_INO, "a", ROOT_INO, "b", 0)

    def test_nlink_accounting(self, ns):
        base = ns.node(ROOT_INO).inode.nlink
        ns.mkdir(ROOT, ROOT_INO, "a", 0o755, 0)
        assert ns.node(ROOT_INO).inode.nlink == base + 1
        ns.rmdir(ROOT, ROOT_INO, "a", 0)
        assert ns.node(ROOT_INO).inode.nlink == base

    def test_setattr_chmod_owner_only(self, ns):
        f, _ = ns.create(ROOT, ROOT_INO, "f", OpenFlags.O_CREAT, 0o644, 0)
        from repro.posix import NotPermitted

        with pytest.raises(NotPermitted):
            ns.setattr(USER, f.ino, {"mode": 0o777}, 0)
        ns.setattr(ROOT, f.ino, {"mode": 0o600}, 0)
        assert ns.node(f.ino).inode.mode == 0o600
