"""End-to-end integration on the *timed* substrates.

Most semantic tests use the zero-latency functional store; these run the
whole stack — FUSE mounts, RADOS-profile OSD cluster, network, journaling —
with real timing, asserting both semantics and coarse timing sanity.
"""

import pytest

from repro.bench.harness import NET_50G, build
from repro.posix import OpenFlags, ROOT_CREDS, SyncFS
from repro.sim import Simulator
from repro.workloads import mdtest_easy, run_phase


class TestArkFSOnRados:
    @pytest.fixture
    def arkfs(self):
        sim = Simulator()
        cluster, mounts = build("arkfs", sim, n_clients=2, net=NET_50G)
        return sim, cluster, mounts

    def test_semantics_survive_the_timing_layer(self, arkfs):
        sim, cluster, mounts = arkfs
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        fs0.makedirs("/a/b/c")
        payload = bytes(range(256)) * 1024  # 256 KiB
        fs0.write_file("/a/b/c/data", payload, do_fsync=True)
        assert fs1.read_file("/a/b/c/data") == payload
        fs1.rename("/a/b/c/data", "/a/moved")
        assert fs0.read_file("/a/moved") == payload
        assert sim.now > 0  # time actually passed

    def test_operations_cost_simulated_time(self, arkfs):
        sim, cluster, mounts = arkfs
        fs = SyncFS(cluster.client(0), ROOT_CREDS)
        t0 = sim.now
        fs.mkdir("/d")
        mkdir_cost = sim.now - t0
        # mkdir checkpoints eagerly: at least one storage round trip (~ms).
        assert mkdir_cost > 1e-4

    def test_fsync_is_much_cheaper_than_checkpoint(self, arkfs):
        """fsync commits one compound journal object, not per-file state."""
        sim, cluster, mounts = arkfs
        client = cluster.client(0)
        mount = mounts[0]

        def burst():
            yield from mount.mkdir(ROOT_CREDS, "/burst")
            handles = []
            for i in range(50):
                h = yield from mount.open(
                    ROOT_CREDS, f"/burst/f{i}",
                    OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
                yield from mount.close(h)
                handles.append(h)
            t0 = sim.now
            yield from client.sync()
            return sim.now - t0

        sync_cost = sim.run_process(burst())
        # One commit PUT (~1 ms), not 50 inode PUTs (~50 ms serial).
        assert sync_cost < 0.02, sync_cost

    def test_crash_recovery_with_real_timing(self, arkfs):
        sim, cluster, mounts = arkfs
        fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
        fs0.mkdir("/w")
        fs0.write_file("/w/f", b"survives", do_fsync=True)
        cluster.client(0).crash()
        fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
        assert fs1.read_file("/w/f") == b"survives"


class TestCrossSystemOrderings:
    """Tiny versions of the headline comparisons, as fast regression tests
    (full-size versions live in benchmarks/)."""

    def _create_rate(self, kind):
        sim = Simulator()
        _cluster, mounts = build(kind, sim, n_clients=2, net=NET_50G)
        r = mdtest_easy(sim, mounts, n_procs=4, files_per_proc=40,
                        phases=("CREATE",))
        return r.phases["CREATE"]

    def test_arkfs_beats_cephfs_on_metadata(self):
        assert self._create_rate("arkfs") > 2 * self._create_rate("cephfs-k")

    def test_cephfs_kernel_beats_fuse(self):
        assert self._create_rate("cephfs-k") > self._create_rate("marfs")


class TestBaselinesOnTimedStores:
    def test_s3fs_full_cycle_on_s3_profile(self):
        sim = Simulator()
        cluster, mounts = build("s3fs", sim, n_clients=1, net=NET_50G)
        fs = SyncFS(cluster.client(0), ROOT_CREDS)
        fs.mkdir("/b")
        fs.write_file("/b/o", b"s3 bytes", do_fsync=True)
        assert fs.read_file("/b/o") == b"s3 bytes"
        assert sim.now > 0.02  # S3 latencies are tens of ms

    def test_goofys_streaming_on_s3_profile(self):
        sim = Simulator()
        cluster, mounts = build("goofys", sim, n_clients=1, net=NET_50G)
        fs = SyncFS(cluster.client(0), ROOT_CREDS)
        payload = b"g" * (6 * 1024 * 1024)
        fs.write_file("/stream", payload, do_fsync=True)
        assert fs.stat("/stream").st_size == len(payload)
        assert fs.read_file("/stream") == payload
