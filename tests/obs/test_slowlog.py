"""Slow-op log: trigger rules, bounded retention, waterfalls, JSON dump."""

import json

import pytest

from repro.obs import SLOWLOG_SCHEMA, Observability, SlowOpLog
from repro.sim import Simulator


class _FakeSim:
    def __init__(self):
        self.now = 0.0


def _feed(log, op, durs, start=0.0):
    t = start
    for d in durs:
        log.observe(op, t, t + d, True, None)
        t += d


class TestTriggers:
    def test_static_threshold_always_logs(self):
        log = SlowOpLog(_FakeSim(), default_threshold=0.010)
        _feed(log, "vfs.read", [0.001, 0.002, 0.050])
        doc = log.to_dict()
        slow = doc["ops"]["vfs.read"]["slow"]
        assert len(slow) == 1
        assert slow[0]["why"] == "threshold"
        assert slow[0]["dur_s"] == pytest.approx(0.050)

    def test_per_op_threshold_override(self):
        log = SlowOpLog(_FakeSim(), default_threshold=1.0,
                        thresholds={"vfs.fsync": 0.001})
        _feed(log, "vfs.fsync", [0.002])
        _feed(log, "vfs.read", [0.002])
        doc = log.to_dict()
        assert len(doc["ops"]["vfs.fsync"]["slow"]) == 1
        assert doc["ops"]["vfs.read"]["slow"] == []

    def test_p99_triggers_only_after_min_count(self):
        log = SlowOpLog(_FakeSim(), default_threshold=10.0, min_count=64)
        # 63 uniform ops: below min_count, nothing triggers.
        _feed(log, "op", [0.001] * 63)
        assert log.n_slow == 0
        # From op 64 on, only genuine outliers (strictly above p99) log.
        _feed(log, "op", [0.001] * 10)
        assert log.n_slow == 0, "uniform latency must not self-log"
        _feed(log, "op", [0.009])
        assert log.n_slow == 1
        entry = log.to_dict()["ops"]["op"]["slow"][0]
        assert entry["why"] == "p99"

    def test_retention_keeps_slowest_k(self):
        log = SlowOpLog(_FakeSim(), default_threshold=0.0, keep=4)
        _feed(log, "op", [0.001 * (i + 1) for i in range(10)])
        doc = log.to_dict()
        kept = [e["dur_s"] for e in doc["ops"]["op"]["slow"]]
        assert len(kept) == 4
        assert kept == sorted(kept, reverse=True)
        assert kept[0] == pytest.approx(0.010)
        assert log.n_slow == 10  # total observed, including evicted
        assert doc["ops"]["op"]["count"] == 10

    def test_max_entries_caps_dump(self):
        log = SlowOpLog(_FakeSim(), default_threshold=0.0, keep=8)
        _feed(log, "op", [0.001] * 8)
        doc = log.to_dict(max_entries=3)
        assert len(doc["ops"]["op"]["slow"]) == 3


class TestWaterfalls:
    def test_sampled_slow_op_carries_waterfall(self):
        sim = Simulator()
        obs = Observability.of(sim)
        tracer = obs.enable_tracing(pid_name="t")
        log = obs.enable_slowlog(default_threshold=0.0)

        root = tracer.span("vfs.read", "vfs")

        def op():
            with tracer.span("disk", "media"):
                yield sim.timeout(0.004)
            with tracer.span("wire", "net"):
                yield sim.timeout(0.001)

        sim.run_process(op())
        root.close()
        log.observe("vfs.read", 0.0, sim.now, True, root)

        doc = log.to_dict()
        entry = doc["ops"]["vfs.read"]["slow"][0]
        assert entry["sampled"] is True
        wf = entry["waterfall_s"]
        assert wf["media"] == pytest.approx(0.004)
        assert wf["net"] == pytest.approx(0.001)

    def test_unsampled_entry_has_no_waterfall(self):
        log = SlowOpLog(_FakeSim(), default_threshold=0.0)
        _feed(log, "op", [0.001])
        entry = log.to_dict()["ops"]["op"]["slow"][0]
        assert entry["sampled"] is False
        assert "waterfall_s" not in entry


class TestDump:
    def test_dump_is_strict_json_with_schema(self, tmp_path):
        log = SlowOpLog(_FakeSim(), default_threshold=0.0)
        _feed(log, "vfs.write", [0.002, 0.003])
        path = tmp_path / "slow.json"
        n = log.dump(str(path))
        doc = json.loads(path.read_text())
        assert doc["schema"] == SLOWLOG_SCHEMA
        assert n == 2
        assert doc["n_slow"] == 2
        row = doc["ops"]["vfs.write"]
        assert row["count"] == 2
        assert row["p99_s"] >= row["p50_s"] >= 0
