"""scripts/check_chrome_trace.py validates what the exporter and the
flight recorder actually emit — counters, flows, and recorder dumps."""

import importlib.util
import json
import os

import pytest

from repro.obs import FlightRecorder, Observability, Series, \
    write_chrome_trace
from repro.sim import Simulator

_SCRIPT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                       "scripts", "check_chrome_trace.py")


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_chrome_trace",
                                                  _SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _trace_with_everything(path):
    sim = Simulator()
    tracer = Observability.of(sim).enable_tracing(pid_name="t")

    def child():
        with tracer.span("io", "net"):
            yield sim.timeout(1e-3)

    def root():
        with tracer.span("op", "vfs"):
            sim.process(child(), name="fanout")
            yield sim.timeout(2e-3)

    sim.run_process(root())
    sim.run()
    s = Series("qdepth")
    s.add(0.0, 1.0)
    s.add(1e-3, 2.0)
    write_chrome_trace(path, [tracer], counters=[(1, "qdepth", s)])


class TestTraceMode:
    def test_real_export_passes(self, checker, tmp_path):
        path = str(tmp_path / "trace.json")
        _trace_with_everything(path)
        doc = json.loads(open(path).read())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"C", "s", "f"} <= phases, "fixture lost its new event types"
        assert checker.check(path) == []
        assert checker.main([path]) == 0

    def test_counter_without_value_rejected(self, checker, tmp_path):
        path = str(tmp_path / "bad.json")
        _trace_with_everything(path)
        doc = json.loads(open(path).read())
        next(e for e in doc["traceEvents"] if e["ph"] == "C")["args"] = {}
        open(path, "w").write(json.dumps(doc))
        assert any("args.value" in e for e in checker.check(path))

    def test_unpaired_and_misordered_flows_rejected(self, checker, tmp_path):
        path = str(tmp_path / "bad.json")
        _trace_with_everything(path)
        doc = json.loads(open(path).read())
        events = doc["traceEvents"]
        f_ev = next(e for e in events if e["ph"] == "f")
        s_ev = next(e for e in events if e["ph"] == "s"
                    and e["id"] == f_ev["id"])
        # Misorder: start after finish.
        s_ev["ts"] = f_ev["ts"] + 10.0
        # Unpair: a second finish with no start, missing bp.
        events.append({**f_ev, "id": 999_999})
        events[-1].pop("bp")
        open(path, "w").write(json.dumps(doc))
        errors = checker.check(path)
        assert any("after finish" in e for e in errors)
        assert any("finish but no start" in e for e in errors)
        assert any("bp='e'" in e for e in errors)


class TestRecorderMode:
    def _dump(self, tmp_path):
        sim = Simulator()
        rec = FlightRecorder(sim, capacity=8)
        for i in range(12):
            rec.record("ev", i=i)
        path = str(tmp_path / "flight.json")
        rec.dump(path)
        return path

    def test_real_dump_passes(self, checker, tmp_path):
        path = self._dump(tmp_path)
        assert checker.check_recorder(path) == []
        assert checker.main(["--recorder", path]) == 0

    def test_crashcheck_wrapper_accepted(self, checker, tmp_path):
        inner = json.loads(open(self._dump(tmp_path)).read())
        path = str(tmp_path / "wrapped.json")
        open(path, "w").write(json.dumps(
            {"workload": "w", "points": [{"crash_at_op": 3,
                                          "flight": inner}]}))
        assert checker.check_recorder(path) == []

    def test_bench_cli_per_kind_mapping_accepted(self, checker, tmp_path):
        inner = json.loads(open(self._dump(tmp_path)).read())
        path = str(tmp_path / "perkind.json")
        open(path, "w").write(json.dumps({"arkfs": inner, "cephfs": inner}))
        assert checker.check_recorder(path) == []
        bad = dict(inner, schema="nope")
        open(path, "w").write(json.dumps({"arkfs": bad}))
        assert any("arkfs" in e and "schema" in e
                   for e in checker.check_recorder(path))

    def test_schema_and_accounting_rejected(self, checker, tmp_path):
        path = self._dump(tmp_path)
        doc = json.loads(open(path).read())
        doc["schema"] = "wrong"
        doc["recorded"] = 1  # fewer than the retained events
        doc["events"][1]["t"] = -5.0  # time goes backwards
        del doc["events"][2]["kind"]
        open(path, "w").write(json.dumps(doc))
        errors = checker.check_recorder(path)
        assert any("schema" in e for e in errors)
        assert any("recorded" in e for e in errors)
        assert any("decreases" in e for e in errors)
        assert any("'kind'" in e for e in errors)
