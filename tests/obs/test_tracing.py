"""Span tracing on the full timed stack: coverage, fan-out, zero-cost off.

These run real clusters (RADOS-profile object store, FUSE mounts) because
the guarantees under test are cross-layer ones: root spans must cover the
operation end to end, primitive child spans must account for (nearly) all
of that time even across scatter-gather fan-outs, and a tracing-disabled
run must not allocate a single Span.
"""

import json

import pytest

from repro.bench.harness import BENCH_OBS, NET_50G, build
from repro.obs import (
    Observability,
    attribute_latency,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs import trace as trace_mod
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator

MiB = 1024 * 1024


def _ancestors(span):
    cur = span.parent
    while cur is not None:
        yield cur
        cur = cur.parent


@pytest.fixture
def traced_arkfs(monkeypatch):
    monkeypatch.setattr(BENCH_OBS, "tracing", False)
    sim = Simulator()
    tracer = Observability.of(sim).enable_tracing(pid_name="arkfs")
    cluster, mounts = build("arkfs", sim, n_clients=2, net=NET_50G)
    return sim, cluster, mounts, tracer


class TestSpanCoverage:
    def test_cache_miss_read_spans_cover_latency(self, traced_arkfs):
        sim, cluster, mounts, tracer = traced_arkfs
        fs0 = SyncFS(mounts[0], ROOT_CREDS)
        fs1 = SyncFS(mounts[1], ROOT_CREDS)
        payload = bytes(range(256)) * (6 * MiB // 256)  # 3 data objects
        fs0.write_file("/big", payload, do_fsync=True)
        n_before = len(tracer.spans)
        # One read spanning all three objects: the cache fans the misses
        # out as a single scatter-gather batch (PR 1's get_many path).
        from repro.posix import OpenFlags

        with fs1.open("/big", OpenFlags.O_RDONLY) as f:
            assert f.read(len(payload)) == payload

        new = tracer.spans[n_before:]
        roots = [s for s in new if s.name == "vfs.read" and s.parent is None]
        assert roots, "mount layer did not open a vfs.read root span"

        # Client 1 never saw the data: the read must have fetched from the
        # store, and the scatter-gather batch spawns one fetch process per
        # object whose GET spans re-parent onto the read's root span.
        gets = [s for s in new if s.name == "store.get"]
        assert len(gets) >= 3
        for g in gets:
            names = {a.name for a in _ancestors(g)}
            assert "vfs.read" in names
        assert any(s.name == "cache.fetch" for s in new)
        fetch_batches = cluster.client(1).cache.stats["fetch_batches"]
        assert fetch_batches >= 1, "read did not take the batched-fetch path"

        # Span-sum tolerance: primitive descendants must cover >=95% of the
        # end-to-end latency of every traced op (fan-out included).
        attrib = attribute_latency(tracer)
        for phase, row in attrib.items():
            assert row["total_s"] > 0
            covered = row["attributed_s"] / row["total_s"]
            assert covered >= 0.95, (phase, covered)

    def test_get_many_fanout_per_item_spans(self):
        """Each item of a batched GET gets its own span, parented (through
        the spawned per-key process) under the caller's root span."""
        from repro.objectstore.cluster import ClusterObjectStore
        from repro.objectstore.profiles import RADOS_PROFILE

        sim = Simulator()
        tracer = Observability.of(sim).enable_tracing(pid_name="store")
        store = ClusterObjectStore(sim, RADOS_PROFILE)
        keys = [f"k{i}" for i in range(4)]

        def root():
            for k in keys:
                yield from store.put(k, b"x" * 4096)
            return (yield from store.get_many(keys))

        values = sim.run_process(tracer.wrap("vfs.op", root(), "vfs"))
        assert values == [b"x" * 4096] * 4
        gets = [s for s in tracer.spans if s.name == "store.get"]
        assert len(gets) == 4
        for g in gets:
            names = {a.name for a in _ancestors(g)}
            assert "store.get_many" in names
            assert any(a.cat == "vfs" for a in _ancestors(g))

    def test_metadata_ops_attributed(self, traced_arkfs):
        sim, cluster, mounts, tracer = traced_arkfs
        fs = SyncFS(mounts[0], ROOT_CREDS)
        fs.mkdir("/d")
        fs.write_file("/d/f", b"x" * 4096, do_fsync=True)
        fs.stat("/d/f")
        assert fs.readdir("/d") == ["f"]
        names = {s.name for s in tracer.spans}
        for expected in ("vfs.mkdir", "vfs.stat", "vfs.readdir",
                         "lease.acquire", "journal.commit", "store.put"):
            assert expected in names
        attrib = attribute_latency(tracer)
        total = sum(r["total_s"] for r in attrib.values())
        covered = sum(r["attributed_s"] for r in attrib.values())
        assert covered >= 0.95 * total


class TestChromeExport:
    def test_exported_trace_is_loadable(self, traced_arkfs, tmp_path):
        sim, cluster, mounts, tracer = traced_arkfs
        fs = SyncFS(mounts[0], ROOT_CREDS)
        fs.mkdir("/x")
        fs.write_file("/x/f", b"y" * MiB, do_fsync=True)
        out = tmp_path / "trace.json"
        n = write_chrome_trace(str(out), [tracer])
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == n > 0
        metas = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in metas}
        for e in events:
            if e["ph"] != "X":
                continue
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            assert e["name"] and e["cat"]

    def test_open_spans_are_skipped(self):
        sim = Simulator()
        tracer = Observability.of(sim).enable_tracing(pid_name="t")
        sp = tracer.span("never.closed", "svc")
        closed = tracer.span("closed", "svc")
        closed.close()
        events = chrome_trace_events([tracer])
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert names == {"closed"}
        sp.close()


class TestDisabledTracing:
    def test_no_span_allocations_when_disabled(self, monkeypatch):
        calls = []
        orig_init = trace_mod.Span.__init__

        def spy(self, *args, **kwargs):
            calls.append(self)
            orig_init(self, *args, **kwargs)

        monkeypatch.setattr(trace_mod.Span, "__init__", spy)
        monkeypatch.setattr(BENCH_OBS, "tracing", False)
        # This test pins the *fully disabled* path; default-on sampling
        # would trace a deterministic subset (op id 0 always samples).
        monkeypatch.setattr(BENCH_OBS, "sample_rate", 0.0)
        sim = Simulator()
        cluster, mounts = build("arkfs", sim, n_clients=1, net=NET_50G)
        fs = SyncFS(mounts[0], ROOT_CREDS)
        fs.mkdir("/q")
        fs.write_file("/q/f", b"z" * MiB, do_fsync=True)
        assert fs.read_file("/q/f") == b"z" * MiB
        assert sim._tracer is None
        assert calls == []
