"""Flight recorder: bounded ring, subsystem hooks, honest dumps."""

import json

import pytest

from repro.bench.harness import BENCH_OBS, NET_50G, build
from repro.obs import RECORDER_SCHEMA, FlightRecorder, Observability
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator

MiB = 1024 * 1024


class _FakeSim:
    def __init__(self):
        self.now = 0.0


class TestRing:
    def test_bounded_and_counts_drops(self):
        rec = FlightRecorder(_FakeSim(), capacity=4)
        for i in range(10):
            rec.record("ev", i=i)
        assert len(rec.events) == 4
        assert rec.recorded == 10
        assert rec.dropped == 6
        doc = rec.to_dict()
        assert doc["schema"] == RECORDER_SCHEMA
        assert doc["dropped"] == 6
        assert [e["i"] for e in doc["events"]] == [6, 7, 8, 9]

    def test_to_dict_last_n(self):
        rec = FlightRecorder(_FakeSim(), capacity=8)
        for i in range(5):
            rec.record("ev", i=i)
        doc = rec.to_dict(last=2)
        assert [e["i"] for e in doc["events"]] == [3, 4]
        assert doc["recorded"] == 5

    def test_dump_strict_json(self, tmp_path):
        sim = _FakeSim()
        rec = FlightRecorder(sim, capacity=8)
        rec.record("a")
        sim.now = 1.5
        rec.record("b", key="k", n=3)
        path = tmp_path / "flight.json"
        assert rec.dump(str(path)) == 2
        doc = json.loads(path.read_text())
        assert doc["events"][0] == {"t": 0.0, "kind": "a"}
        assert doc["events"][1] == {"t": 1.5, "kind": "b", "key": "k", "n": 3}
        ts = [e["t"] for e in doc["events"]]
        assert ts == sorted(ts)


class TestSubsystemFeeds:
    @pytest.fixture
    def recorded_arkfs(self, monkeypatch):
        monkeypatch.setattr(BENCH_OBS, "tracing", False)
        monkeypatch.setattr(BENCH_OBS, "sample_rate", 0.0)
        monkeypatch.setattr(BENCH_OBS, "slowlog", False)
        monkeypatch.setattr(BENCH_OBS, "recorder", True)
        sim = Simulator()
        cluster, mounts = build("arkfs", sim, n_clients=1, net=NET_50G)
        return sim, cluster, mounts, Observability.of(sim).recorder

    def test_root_ops_journal_and_writeback_recorded(self, recorded_arkfs):
        sim, cluster, mounts, rec = recorded_arkfs
        fs = SyncFS(mounts[0], ROOT_CREDS)
        fs.mkdir("/d")
        fs.write_file("/d/f", b"x" * MiB, do_fsync=True)
        assert fs.read_file("/d/f") == b"x" * MiB
        kinds = {e["kind"] for e in rec.to_dict()["events"]}
        assert "op.start" in kinds and "op.end" in kinds
        assert "cache.writeback" in kinds
        ends = [e for e in rec.to_dict()["events"] if e["kind"] == "op.end"]
        assert all(e["ok"] for e in ends)
        assert all(e["dur"] >= 0 for e in ends)
        # With sampling off, every op records sampled=False.
        starts = [e for e in rec.to_dict()["events"]
                  if e["kind"] == "op.start"]
        assert starts and not any(e["sampled"] for e in starts)

    def test_retries_and_faults_recorded(self, monkeypatch):
        monkeypatch.setattr(BENCH_OBS, "tracing", False)
        monkeypatch.setattr(BENCH_OBS, "sample_rate", 0.0)
        monkeypatch.setattr(BENCH_OBS, "slowlog", False)
        monkeypatch.setattr(BENCH_OBS, "recorder", True)
        monkeypatch.setattr(BENCH_OBS, "fault_mode", "transient")
        monkeypatch.setattr(BENCH_OBS, "transient_every", 20)
        sim = Simulator()
        cluster, mounts = build("arkfs", sim, n_clients=1, net=NET_50G)
        rec = Observability.of(sim).recorder
        fs = SyncFS(mounts[0], ROOT_CREDS)
        fs.mkdir("/d")
        for i in range(6):
            fs.write_file(f"/d/f{i}", b"y" * (64 * 1024), do_fsync=True)
        kinds = [e["kind"] for e in rec.to_dict()["events"]]
        assert "fault.transient" in kinds
        assert "store.retry" in kinds
