"""Chrome-trace export edge cases: empty traces, open spans, fan-outs
whose parent closed first, counter tracks, and flow arrows."""

import json

import pytest

from repro.obs import (
    Observability,
    Series,
    chrome_trace_events,
    root_waterfalls,
    write_chrome_trace,
)
from repro.sim import Simulator


def _tracer(name="t"):
    sim = Simulator()
    return sim, Observability.of(sim).enable_tracing(pid_name=name)


class TestEdgeCases:
    def test_empty_trace_exports_metadata_only(self, tmp_path):
        _sim, tracer = _tracer()
        events = chrome_trace_events([tracer])
        assert all(e["ph"] == "M" for e in events)
        out = tmp_path / "empty.json"
        n = write_chrome_trace(str(out), [tracer])
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == n
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []

    def test_no_tracers_at_all(self, tmp_path):
        out = tmp_path / "none.json"
        assert write_chrome_trace(str(out), []) == 0
        assert json.loads(out.read_text())["traceEvents"] == []

    def test_spans_open_at_sim_end_are_omitted(self):
        sim, tracer = _tracer()

        def proc():
            tracer.span("never.closed", "svc")  # still open at sim end
            with tracer.span("closed", "cpu"):
                yield sim.timeout(1e-3)

        sim.run_process(proc())
        x = [e for e in chrome_trace_events([tracer]) if e["ph"] == "X"]
        assert [e["name"] for e in x] == ["closed"]
        # The closed child of the still-open span exports without a flow
        # arrow (no parent-side end to anchor it), and never a fake end.
        assert [e for e in chrome_trace_events([tracer])
                if e["ph"] in ("s", "f")] == []

    def test_fanout_child_outliving_parent_gets_clamped_flow(self):
        """A fan-out child can open spans after its (spawn-)parent span
        already closed; the flow arrow must clamp into the parent's
        interval and stay well-ordered (s.ts <= f.ts)."""
        sim, tracer = _tracer()

        def child():
            # First span while the parent is still open: this is when the
            # spawn-parent edge is resolved (and cached for later spans).
            with tracer.span("early", "net"):
                yield sim.timeout(5e-4)
            yield sim.timeout(5e-3)
            with tracer.span("late.child", "net"):
                yield sim.timeout(1e-3)

        def root():
            with tracer.span("root", "vfs"):
                sim.process(child(), name="fanout")
                yield sim.timeout(1e-3)  # root closes long before late.child

        sim.run_process(root())
        sim.run()
        events = chrome_trace_events([tracer])
        flows = [e for e in events if e["ph"] in ("s", "f")]
        assert {e["name"] for e in flows} == {"early", "late.child"}
        s_ev = next(e for e in flows
                    if e["ph"] == "s" and e["name"] == "late.child")
        f_ev = next(e for e in flows
                    if e["ph"] == "f" and e["name"] == "late.child")
        assert s_ev["id"] == f_ev["id"]
        assert f_ev["bp"] == "e"
        assert s_ev["ts"] <= f_ev["ts"]
        root_x = next(e for e in events
                      if e["ph"] == "X" and e["name"] == "root")
        # Parent-side anchor clamped inside the root span's interval even
        # though the child started after the root ended.
        assert root_x["ts"] <= s_ev["ts"] <= root_x["ts"] + root_x["dur"]
        assert f_ev["ts"] > root_x["ts"] + root_x["dur"]

    def test_same_thread_children_have_no_flow(self):
        sim, tracer = _tracer()

        def proc():
            with tracer.span("outer", "vfs"):
                with tracer.span("inner", "cpu"):
                    yield sim.timeout(1e-3)

        sim.run_process(proc())
        assert [e for e in chrome_trace_events([tracer])
                if e["ph"] in ("s", "f")] == []

    def test_counter_events_from_series(self, tmp_path):
        _sim, tracer = _tracer()
        s = Series("osd0.q")
        for i in range(4):
            s.add(i * 1e-3, float(i))
        events = chrome_trace_events([tracer], counters=[(1, "osd0.q", s)])
        c = [e for e in events if e["ph"] == "C"]
        assert len(c) == 4
        for ev, i in zip(c, range(4)):
            assert ev["name"] == "osd0.q"
            assert ev["pid"] == 1
            assert ev["args"]["value"] == float(i)
            assert ev["ts"] == pytest.approx(i * 1e3)
        out = tmp_path / "counters.json"
        n = write_chrome_trace(str(out), [tracer],
                               counters=[(1, "osd0.q", s)])
        assert len(json.loads(out.read_text())["traceEvents"]) == n


class TestRootWaterfalls:
    def test_only_requested_roots_and_clipping(self):
        sim, tracer = _tracer()

        def op(name, hold):
            with tracer.span(name, "vfs") as root:
                with tracer.span("work", "cpu"):
                    yield sim.timeout(hold)
            return root

        r1 = sim.run_process(op("op1", 2e-3))
        r2 = sim.run_process(op("op2", 3e-3))
        wf = root_waterfalls(tracer, [r1])
        assert set(wf) == {id(r1)}
        assert wf[id(r1)]["cpu"] == pytest.approx(2e-3)
        both = root_waterfalls(tracer, [r1, r2])
        assert both[id(r2)]["cpu"] == pytest.approx(3e-3)

    def test_root_without_primitives_absent(self):
        sim, tracer = _tracer()

        def op():
            with tracer.span("noop", "vfs") as root:
                yield sim.timeout(1e-3)
            return root

        root = sim.run_process(op())
        assert root_waterfalls(tracer, [root]) == {}
