"""Unit tests for the unified metrics layer."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, Series


class TestCounter:
    def test_inc(self):
        c = Counter("ops")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.to_dict() == 5


class TestGauge:
    def test_set_add_tracks_high_water(self):
        g = Gauge("depth")
        g.set(3)
        g.add(2)
        g.add(-4)
        assert g.value == 1
        assert g.max_value == 5

    def test_track_only_updates_max(self):
        g = Gauge("batch")
        g.track(7)
        g.track(2)
        assert g.value == 0
        assert g.max_value == 7


class TestHistogram:
    def test_exact_count_sum_min_max(self):
        h = Histogram("lat")
        for v in (1e-6, 5e-3, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(2.005001)
        assert h.min == 1e-6
        assert h.max == 2.0
        assert h.mean == pytest.approx(h.sum / 3)

    def test_percentiles_monotone_and_clamped(self):
        h = Histogram("lat")
        for i in range(1, 1001):
            h.observe(i * 1e-5)
        prev = 0.0
        for q in (1, 10, 25, 50, 75, 90, 95, 99, 100):
            p = h.percentile(q)
            assert p >= prev
            assert h.min <= p <= h.max
            prev = p
        # log-spaced buckets: p50 within one bucket width of the true median
        assert h.percentile(50) == pytest.approx(5e-3, rel=0.15)

    def test_empty_percentile_is_zero(self):
        assert Histogram("lat").percentile(99) == 0.0

    def test_out_of_range_observations_clamp(self):
        h = Histogram("lat")
        h.observe(1e-12)   # below LO
        h.observe(1e6)     # above HI
        assert h.count == 2
        assert h.percentile(100) == 1e6

    def test_to_dict_json_safe(self):
        h = Histogram("lat")
        h.observe(1e-3)
        json.dumps(h.to_dict(), allow_nan=False)
        json.dumps(Histogram("empty").to_dict(), allow_nan=False)

    def test_quantile_unit_range_and_delegation(self):
        h = Histogram("lat")
        for i in range(1, 101):
            h.observe(i * 1e-4)
        assert h.quantile(0.0) == h.min
        assert h.quantile(1.0) == h.max
        assert h.quantile(-0.5) == h.min      # clamped below
        assert h.quantile(2.0) == h.max       # clamped above
        prev = 0.0
        for q in (0.01, 0.1, 0.5, 0.9, 0.99, 1.0):
            v = h.quantile(q)
            assert h.min <= v <= h.max
            assert v >= prev
            prev = v
            # percentile() is the same computation on a 0..100 scale.
            assert h.percentile(q * 100) == v
        assert Histogram("empty").quantile(0.99) == 0.0

    def test_quantile_upper_bounds_same_bucket_values(self):
        """quantile_upper gives a bucket boundary with slack above the
        rank's bucket, so a strict ``>`` against it never fires for
        float-jittered uniform values — even ones that straddle a bucket
        edge — while distant outliers still exceed it."""
        h = Histogram("lat")
        durs, t = [], 0.0
        for _ in range(100):  # accumulated-time jitter straddles a boundary
            durs.append((t + 0.001) - t)
            t += 0.001
        for d in durs:
            h.observe(d)
        qu = h.quantile_upper(0.99)
        assert not any(d > qu for d in durs)
        assert 0.009 > qu
        assert qu >= h.quantile(0.99)
        assert Histogram("empty").quantile_upper(0.99) == 0.0
        assert h.quantile_upper(0.0) == h.min

    def test_bucketing_never_drops_the_max_bucket(self):
        """Every observation lands in some bucket — including ones that
        clamp into the edge buckets — so no decimation of the value range
        can lose the max: top-tail quantiles converge on the exact max."""
        h = Histogram("lat")
        for _ in range(999):
            h.observe(1e-4)
        h.observe(1e6)  # clamps into the top bucket, beyond HI
        assert sum(h._counts) == h.count == 1000
        assert h._counts[-1] == 1, "clamped max lost its bucket"
        assert h.quantile(1.0) == 1e6
        # The p99.95 rank falls inside the top bucket: the result reflects
        # that bucket (not the 1e-4 mass) and clamps at the tracked max.
        v = h.quantile(0.9995)
        assert Histogram.BOUNDS[-2] <= v <= h.max


class TestSeries:
    def test_decimation_bounds_memory(self):
        s = Series("qdepth")
        n = 10 * Series.MAX_POINTS
        for i in range(n):
            s.add(i * 1e-3, float(i))
        assert len(s.times) < Series.MAX_POINTS
        # The sketch still spans the whole run.
        assert s.times[0] <= 1e-2 * n * 1e-3
        assert s.times[-1] >= 0.9 * n * 1e-3

    def test_small_series_keeps_every_point(self):
        s = Series("util")
        for i in range(10):
            s.add(float(i), 0.5)
        assert len(s.times) == 10
        assert s.to_dict() == {"t": s.times, "v": s.values}


class TestRegistry:
    def test_scoped_names_and_reuse(self):
        reg = MetricsRegistry()
        scope = reg.scope("client0.cache")
        c = scope.counter("hits")
        c.inc()
        assert reg.counter("client0.cache.hits") is c
        assert "client0.cache.hits" in reg
        assert reg.get("missing") is None

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_to_dict_groups_by_type(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(1)
        reg.histogram("c").observe(0.5)
        reg.series("d").add(0.0, 1.0)
        snap = reg.to_dict()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"]["b"] == {"value": 1, "max": 1}
        assert snap["histograms"]["c"]["count"] == 1
        assert snap["series"]["d"] == {"t": [0.0], "v": [1.0]}
        json.dumps(snap, allow_nan=False)
