"""scripts/perf_trend.py: extraction, gating filters, baseline check."""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                       "scripts", "perf_trend.py")


@pytest.fixture(scope="module")
def trend():
    spec = importlib.util.spec_from_file_location("perf_trend", _SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _bench_json(path, name="test_x", extra_info=None, mean=1.5):
    doc = {"benchmarks": [{
        "name": name,
        "stats": {"mean": mean},
        "extra_info": extra_info or {},
    }]}
    path.write_text(json.dumps(doc))
    return str(path)


EXTRA = {
    "workload": "fio",
    "write_mbps": 812.5,
    "wall_s": 3.2,
    "obs": {"kernel_mode": "fast", "sample_rate": 0.01},
    "metrics": [
        {"kind": "arkfs", "metrics": {"counters": {
            "journal.commits": 17,
            "cache.flushes": 4,
            "client0.journal.commits": 9,
            "ceph-client7.cache.flushes": 2,
            "obs.root_ops": 2069,
        }}},
    ],
}


class TestExtract:
    def test_flattens_scalars_and_metric_counters(self, trend, tmp_path):
        out = trend.extract(_bench_json(tmp_path / "b.json",
                                        extra_info=dict(EXTRA)))
        b = out["test_x"]
        assert b["wall_s"] == 1.5
        assert b["obs"] == {"kernel_mode": "fast", "sample_rate": 0.01}
        s = b["scalars"]
        assert s["write_mbps"] == 812.5
        assert s["metrics.arkfs.journal.commits"] == 17
        assert s["metrics.arkfs.client0.journal.commits"] == 9
        assert "obs" not in s  # header popped, not flattened


class TestGating:
    def test_gated_keeps_counters_drops_nondet_and_per_instance(self, trend):
        scalars = {
            "metrics.arkfs.journal.commits": 17,
            "metrics.arkfs.cache.flushes": 4,
            "metrics.arkfs.obs.root_ops": 2069,
            "metrics.arkfs.client0.journal.commits": 9,
            "metrics.marfs.ceph-client7.cache.flushes": 2,
            "write_mbps": 812.5,      # not a gated pattern
            "wall_s": 3.2,            # nondeterministic
            "speedup": 4.4,           # nondeterministic
        }
        gated = trend._gated(scalars)
        assert gated == {
            "metrics.arkfs.journal.commits": 17,
            "metrics.arkfs.cache.flushes": 4,
            "metrics.arkfs.obs.root_ops": 2069,
        }


class TestCheck:
    def test_update_then_check_roundtrip(self, trend, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        res = _bench_json(tmp_path / "b.json", extra_info=dict(EXTRA))
        base = str(tmp_path / "baseline.json")
        assert trend.update([res], base) == 0
        doc = json.loads(open(base).read())
        assert doc["scale"] == "small"
        exact = doc["benchmarks"]["test_x"]["exact"]
        assert "metrics.arkfs.journal.commits" in exact
        assert not any("client0" in k for k in exact)
        assert trend.check([res], base, strict_wall=True) == 0

    def test_counter_mismatch_fails(self, trend, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        res = _bench_json(tmp_path / "b.json", extra_info=dict(EXTRA))
        base = str(tmp_path / "baseline.json")
        trend.update([res], base)
        info = dict(EXTRA)
        info["metrics"] = [{"kind": "arkfs", "metrics": {"counters": {
            "journal.commits": 18}}}]
        res2 = _bench_json(tmp_path / "b2.json", extra_info=info)
        assert trend.check([res2], base, strict_wall=False) == 1

    def test_scale_mismatch_skips_exact_gates(self, trend, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        res = _bench_json(tmp_path / "b.json", extra_info=dict(EXTRA))
        base = str(tmp_path / "baseline.json")
        trend.update([res], base)
        monkeypatch.setenv("REPRO_SCALE", "default")
        info = dict(EXTRA)
        info["metrics"] = [{"kind": "arkfs", "metrics": {"counters": {
            "journal.commits": 999}}}]
        res2 = _bench_json(tmp_path / "b2.json", extra_info=info)
        assert trend.check([res2], base, strict_wall=False) == 0

    def test_wall_drift_advisory_unless_strict(self, trend, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        res = _bench_json(tmp_path / "b.json", extra_info=dict(EXTRA),
                          mean=1.0)
        base = str(tmp_path / "baseline.json")
        trend.update([res], base)
        res2 = _bench_json(tmp_path / "b2.json", extra_info=dict(EXTRA),
                           mean=3.0)  # 3x the reference wall
        assert trend.check([res2], base, strict_wall=False) == 0
        assert trend.check([res2], base, strict_wall=True) == 1


class TestAppend:
    def test_append_writes_jsonl_without_per_instance(self, trend, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        res = _bench_json(tmp_path / "b.json", extra_info=dict(EXTRA))
        out = str(tmp_path / "trend.jsonl")
        assert trend.append([res], out, "unit@test") == 0
        rows = [json.loads(l) for l in open(out)]
        assert len(rows) == 1
        row = rows[0]
        assert row["label"] == "unit@test"
        assert row["scale"] == "small"
        b = row["benchmarks"]["test_x"]
        assert b["obs"]["sample_rate"] == 0.01
        assert "metrics.arkfs.journal.commits" in b["scalars"]
        assert not any("client0" in k or "ceph-client7" in k
                       for k in b["scalars"])
