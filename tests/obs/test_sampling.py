"""Sampled tracing: determinism, bit-identity, and the context-local tracer.

The contract under test (DESIGN.md §7): a deterministic hash of the
sequential root-op id decides which ops trace; sampled ops get full spans
(and real, elision-free events below them) while unsampled ops keep the
untraced fast path; and simulated results are bit-identical with sampling
on, off, or at any rate.
"""

import pytest

from repro.bench.harness import BENCH_OBS, NET_50G, build
from repro.obs import (
    PRIMITIVE_CATS,
    Observability,
    is_sampled,
    sample_threshold,
)
from repro.obs import trace as trace_mod
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator

MiB = 1024 * 1024


@pytest.fixture
def obs_off(monkeypatch):
    """Pin the harness's always-on tier to a known configuration."""
    monkeypatch.setattr(BENCH_OBS, "tracing", False)
    monkeypatch.setattr(BENCH_OBS, "sample_rate", 0.0)
    monkeypatch.setattr(BENCH_OBS, "slowlog", False)
    monkeypatch.setattr(BENCH_OBS, "recorder", False)
    return monkeypatch


def _workload(fs):
    fs.mkdir("/d")
    for i in range(8):
        fs.write_file(f"/d/f{i}", bytes([i]) * (256 * 1024), do_fsync=True)
    out = []
    for i in range(8):
        out.append(fs.read_file(f"/d/f{i}"))
    out.append(tuple(sorted(fs.readdir("/d"))))
    return out


def _run(obs_off, rate, slowlog=False, recorder=False):
    sim = Simulator()
    obs = Observability.of(sim)
    if rate:
        obs.enable_tracing(pid_name="arkfs", sample_rate=rate)
    if slowlog:
        obs.enable_slowlog()
    if recorder:
        obs.enable_recorder()
    _cluster, mounts = build("arkfs", sim, n_clients=1, net=NET_50G)
    result = _workload(SyncFS(mounts[0], ROOT_CREDS))
    return sim, obs, result


class TestSamplingHash:
    def test_deterministic_and_monotone_in_rate(self):
        t_lo, t_hi = sample_threshold(0.01), sample_threshold(0.25)
        assert t_lo < t_hi <= sample_threshold(1.0) == 1 << 32
        picked_lo = {i for i in range(10_000) if is_sampled(i, t_lo)}
        picked_hi = {i for i in range(10_000) if is_sampled(i, t_hi)}
        # Same decision on a second evaluation, and raising the rate only
        # ever adds ops to the sampled set.
        assert picked_lo == {i for i in range(10_000) if is_sampled(i, t_lo)}
        assert picked_lo <= picked_hi

    def test_rate_hits_expected_fraction(self):
        t = sample_threshold(0.01)
        n = sum(1 for i in range(100_000) if is_sampled(i, t))
        # The multiplicative hash is low-discrepancy: the realized rate
        # sits tight around 1%.
        assert 800 <= n <= 1200

    def test_op_zero_always_sampled(self):
        assert is_sampled(0, sample_threshold(1e-9))
        assert not is_sampled(0, sample_threshold(0.0))


class TestSampledRuns:
    def test_bit_identical_results_across_rates(self, obs_off):
        base = None
        for rate, slowlog, recorder in [(0.0, False, False),
                                        (0.05, True, True),
                                        (1.0, False, False)]:
            _sim, _obs, result = _run(obs_off, rate, slowlog, recorder)
            if base is None:
                base = result
            else:
                assert result == base, f"rate={rate} changed sim results"

    def test_sampled_fraction_exact_and_exported(self, obs_off):
        sim, obs, _ = _run(obs_off, 0.05, slowlog=True)
        ob = obs._op_observer
        assert ob.n_root > 0
        assert 1 <= ob.n_sampled < ob.n_root
        assert ob.n_sampled == ob.expected_sampled()
        roots = [s for s in obs.tracer.spans
                 if s.cat == trace_mod.ROOT_CAT and s.args
                 and "op" in s.args]
        assert len(roots) == ob.n_sampled
        # Each sampled root got primitive children: its events ran in
        # full (elision off inside the op), so attribution works.
        child_cats = {s.cat for s in obs.tracer.spans if s.parent is not None}
        assert child_cats & set(PRIMITIVE_CATS)

    def test_tracer_context_local_outside_sampled_ops(self, obs_off):
        sim, obs, _ = _run(obs_off, 0.05)
        # After the run the main context must be untraced again.
        assert sim._tracer is None
        assert sim._sample_tracer is obs.tracer

    def test_zero_span_allocations_when_rate_zero(self, obs_off, monkeypatch):
        calls = []
        orig = trace_mod.Span.__init__

        def spy(self, *args, **kwargs):
            calls.append(self)
            orig(self, *args, **kwargs)

        monkeypatch.setattr(trace_mod.Span, "__init__", spy)
        # Slowlog + recorder on, sampling off: the observer runs but must
        # not allocate a single span.
        _sim, obs, _ = _run(obs_off, 0.0, slowlog=True, recorder=True)
        assert calls == []
        assert obs._op_observer.n_root > 0
        assert obs._op_observer.n_sampled == 0

    def test_full_tracer_not_downgraded_by_sampled_enable(self, obs_off):
        sim = Simulator()
        obs = Observability.of(sim)
        tr = obs.enable_tracing(pid_name="full")          # full tracing
        assert obs.enable_tracing(sample_rate=0.01) is tr  # no downgrade
        assert sim._tracer is tr
        assert obs.sample_rate == 1.0
