"""The experiment harness: every configuration builds and serves basic ops,
and the report renderers produce sane text."""

import pytest

from repro.bench import FS_KINDS, NET_50G, SMALL, build
from repro.bench.report import format_series, format_speedups, format_table
from repro.posix import OpenFlags, ROOT_CREDS
from repro.sim import Simulator
from repro.workloads import run_phase


@pytest.mark.parametrize("kind", FS_KINDS)
def test_every_configuration_builds_and_works(kind):
    """Smoke: mkdir + create + write + read + stat + unlink on each kind."""
    sim = Simulator()
    _cluster, mounts = build(kind, sim, n_clients=2, net=NET_50G)
    mount = mounts[0]

    def scenario():
        yield from mount.mkdir(ROOT_CREDS, "/smoke")
        h = yield from mount.open(
            ROOT_CREDS, "/smoke/f",
            OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_TRUNC)
        yield from mount.write(h, b"smoke test payload")
        yield from mount.fsync(h)
        yield from mount.close(h)
        st = yield from mount.stat(ROOT_CREDS, "/smoke/f")
        assert st.st_size == 18
        names = yield from mount.readdir(ROOT_CREDS, "/smoke")
        assert names == ["f"]
        if kind != "marfs":  # MarFS reads fail by design (paper)
            h = yield from mount.open(ROOT_CREDS, "/smoke/f",
                                      OpenFlags.O_RDONLY)
            data = yield from mount.read(h, 100)
            assert data == b"smoke test payload"
            yield from mount.close(h)
        yield from mount.unlink(ROOT_CREDS, "/smoke/f")

    run_phase(sim, [sim.process(scenario())])


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        build("zfs", Simulator(), n_clients=1)


def test_s3_kinds_use_s3_profile():
    sim = Simulator()
    cluster, _m = build("s3fs", sim, n_clients=1)
    assert cluster.store.profile.name == "s3"
    sim2 = Simulator()
    cluster2, _m = build("arkfs", sim2, n_clients=1)
    assert cluster2.store.profile.name == "rados"


def test_ra400_configuration_widens_window():
    sim = Simulator()
    cluster, _m = build("arkfs-s3-ra400", sim, n_clients=1)
    assert cluster.params.max_readahead == 400 * 1024 * 1024


def test_no_pcache_configuration():
    sim = Simulator()
    cluster, _m = build("arkfs-no-pcache", sim, n_clients=1)
    assert not cluster.params.permission_cache


def test_cephfs_k16_has_16_mds():
    sim = Simulator()
    cluster, _m = build("cephfs-k16", sim, n_clients=1)
    assert len(cluster.mds.mds) == 16


class TestReport:
    ROWS = {"arkfs": {"CREATE": 100.0, "STAT": 200.0},
            "cephfs-k": {"CREATE": 10.0, "STAT": 40.0}}

    def test_format_table(self):
        out = format_table("T", self.ROWS, unit="ops/s", fmt="{:>10.1f}")
        assert "ArkFS" in out
        assert "CephFS-K (1 MDS)" in out
        assert "CREATE" in out and "STAT" in out
        assert "100.0" in out

    def test_format_table_handles_missing_columns(self):
        rows = {"arkfs": {"A": 1.0}, "s3fs": {"B": 2.0}}
        out = format_table("T", rows)
        assert "A" in out and "B" in out

    def test_format_series(self):
        out = format_series("S", {"arkfs": {1: 1.0, 4: 3.9}})
        assert "(clients)" in out
        assert "3.90" in out

    def test_format_speedups(self):
        out = format_speedups("ratios", self.ROWS, "arkfs", ["cephfs-k"])
        assert "10.00x" in out
        assert "5.00x" in out

    def test_format_speedups_inverted_for_times(self):
        rows = {"arkfs": {"Archiving": 100.0},
                "cephfs-f": {"Archiving": 300.0}}
        out = format_speedups("t", rows, "arkfs", ["cephfs-f"], invert=True)
        assert "3.00x" in out

    def test_scales_have_consistent_structure(self):
        from repro.bench import DEFAULT

        assert SMALL.mdtest_procs / SMALL.mdtest_nodes == \
            DEFAULT.mdtest_procs / DEFAULT.mdtest_nodes
        assert SMALL.scal_clients[0] == 1
        assert list(SMALL.scal_clients) == sorted(SMALL.scal_clients)
