"""Every example script must run to completion (they are executable docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}")
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_bench_cli_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench", "table2", "--small"],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Table II" in result.stdout
