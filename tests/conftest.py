"""Shared fixtures: functional (zero-latency) ArkFS clusters and helpers."""

import pytest

from repro.core import build_arkfs
from repro.posix import Credentials, ROOT_CREDS, SyncFS
from repro.sim import Simulator


USER = Credentials(uid=1000, gid=1000)
OTHER = Credentials(uid=2000, gid=2000)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cluster(sim):
    """A 2-client functional ArkFS cluster on the in-memory store."""
    return build_arkfs(sim, n_clients=2, functional=True)


@pytest.fixture
def fs(cluster):
    """SyncFS facade for client 0, as root."""
    return SyncFS(cluster.client(0), ROOT_CREDS)


@pytest.fixture
def fs2(cluster):
    """SyncFS facade for client 1, as root."""
    return SyncFS(cluster.client(1), ROOT_CREDS)


@pytest.fixture
def user_fs(cluster):
    """Client 0 as an unprivileged user."""
    return SyncFS(cluster.client(0), USER)
