"""Unit tests for the FaultPlan schedule logic (no cluster involved)."""

from types import SimpleNamespace

import pytest

from repro.faults import FaultPlan, InjectedCrash, MessageRule
from repro.objectstore.errors import TransientError


def node(name="client0", alive=True):
    return SimpleNamespace(name=name, alive=alive)


def test_op_counting_and_disarm():
    plan = FaultPlan()
    src = node()
    plan.before_op("put", "iabc", src)
    plan.before_op("get", "iabc", src)
    assert plan.ops_seen == 2
    plan.disarm()
    plan.before_op("put", "iabc", src)
    assert plan.ops_seen == 2, "disarmed plan must not count or inject"


def test_crash_fires_at_exact_victim_op():
    fired = []
    plan = FaultPlan().crash_at("client0", 3, handler=lambda: fired.append(1))
    victim, other = node("client0"), node("client1")
    plan.before_op("put", "k", victim)
    plan.before_op("put", "k", other)   # other nodes don't advance the count
    plan.before_op("put", "k", victim)
    assert not plan.crashed
    with pytest.raises(InjectedCrash):
        plan.before_op("put", "k", victim)
    assert plan.crashed and fired == [1]
    assert plan.victim_ops == 3


def test_dead_node_store_ops_rejected():
    """In-flight coroutines of a crashed client die at their next store op
    instead of mutating state post-mortem."""
    plan = FaultPlan()
    with pytest.raises(InjectedCrash):
        plan.before_op("put", "k", node(alive=False))


def test_transient_window_and_every():
    plan = FaultPlan().fail_ops(1, 3)   # global op indices 1 and 2
    src = node()
    plan.before_op("put", "a", src)               # idx 0: fine
    for _ in range(2):
        with pytest.raises(TransientError):
            plan.before_op("put", "a", src)       # idx 1, 2: fail
    plan.before_op("put", "a", src)               # idx 3: fine

    plan = FaultPlan()
    plan.transient_every = 3
    seen = []
    for i in range(9):
        try:
            plan.before_op("get", "k", src)
            seen.append("ok")
        except TransientError:
            seen.append("fail")
    # idx 0 is exempt (i % n == 0 but i == 0), then every 3rd fails.
    assert seen == ["ok", "ok", "ok", "fail", "ok", "ok", "fail", "ok", "ok"]


def test_flaky_key_budget_decrements():
    plan = FaultPlan().flaky_key("e42/", 2)
    src = node()
    for _ in range(2):
        with pytest.raises(TransientError):
            plan.before_op("put", "e42/name", src)
    plan.before_op("put", "e42/name", src)      # budget exhausted
    plan.before_op("put", "e9/other", src)      # never matched


def test_batch_put_partial_application():
    plan = FaultPlan().fail_batch_put(2, apply_items=3)
    assert plan.before_batch_put(10, node()) is None        # batch 1 clean
    assert plan.before_batch_put(10, node()) == 3           # batch 2 partial
    assert plan.before_batch_put(10, node()) is None        # batch 3 clean
    # apply_items is clamped to the batch size.
    plan2 = FaultPlan().fail_batch_put(1, apply_items=99)
    assert plan2.before_batch_put(4, node()) == 4


def test_message_rule_window_and_patterns():
    rule = MessageRule(src="client*", dst="lease-mgr", start=1, count=2,
                       action="drop")
    assert rule.matches("osd0", "lease-mgr") is None        # src mismatch
    assert rule.matches("client0", "lease-mgr") is None     # occurrence 0
    assert rule.matches("client1", "lease-mgr") == ("drop", 0.0)
    assert rule.matches("client0", "lease-mgr") == ("drop", 0.0)
    assert rule.matches("client0", "lease-mgr") is None     # window passed


def test_on_message_respects_arming():
    plan = FaultPlan().drop_messages(src="a", dst="b", count=None)
    assert plan.on_message("a", "b", 100) == ("drop", 0.0)
    plan.disarm()
    assert plan.on_message("a", "b", 100) is None


def test_delay_rule():
    plan = FaultPlan().delay_messages(0.25, src="*", dst="osd*", count=1)
    assert plan.on_message("client0", "osd3", 10) == ("delay", 0.25)
    assert plan.on_message("client0", "osd3", 10) is None


def test_decision_record_audit():
    plan = FaultPlan()
    plan.note_put("tTX1", b"commit", created=True)
    plan.note_put("tTX1", b"commit", created=True)     # same value: fine
    assert plan.violations == []
    plan.note_put("tTX1", b"abort", created=True)      # flip: violation
    assert len(plan.violations) == 1
    # Lost put_if_absent races never mutate, so they are ignored.
    plan.note_put("tTX2", b"abort", created=False)
    assert len(plan.violations) == 1
    # Re-creating a retired decision is a violation too.
    plan.note_put("tTX3", b"commit", created=True)
    plan.note_delete("tTX3")
    plan.note_put("tTX3", b"commit", created=True)
    assert len(plan.violations) == 2
    # Non-decision keys are out of scope.
    plan.note_put("iabc", b"x", created=True)
    plan.note_delete("iabc")
    assert len(plan.violations) == 2
