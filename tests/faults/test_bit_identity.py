"""Acceptance criterion: fault injection disabled ⇒ bit-identical results.

``build_arkfs(faults=None)`` (the default, and what the bench harness does
unless ``BENCH_OBS.fault_mode`` is set) installs *no* wrapper anywhere —
so a no-fault run is structurally guaranteed to execute the exact same
code as a build that predates the faults subsystem. These tests pin that
down from three angles: no shim is installed, repeated no-fault runs are
bit-identical (same sim clock, same network traffic, same store bytes —
which is what keeps BENCH_fig6.json unchanged), and the transient fault
mode surfaces its retry metrics in the bench output path.
"""

from repro.bench.harness import BENCH_OBS, build as bench_build
from repro.core import build_arkfs
from repro.faults import FaultPlan
from repro.faults.store import FaultyObjectStore
from repro.obs import Observability
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator


def _workload(cluster, sim):
    """A small but layer-crossing workload: dirs, fsync'd files, renames,
    a checkpoint drain."""
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/w")
    fs.mkdir("/w/sub")
    for i in range(8):
        fs.write_file(f"/w/f{i}", bytes([i]) * (200 + i), do_fsync=True)
    fs.rename("/w/f0", "/w/sub/moved")
    fs.unlink("/w/f1")
    for client in cluster.clients:
        sim.run_process(client.sync())
    sim.run(until=sim.now + 3)


def _fingerprint(sim, cluster):
    # The realistic ClusterObjectStore keeps its bytes (and sync_* helpers)
    # on an in-memory backing store; the functional build IS that store.
    store = cluster.store
    backing = getattr(store, "backing", store)
    content = {k: bytes(backing.sync_get(k)) for k in backing.sync_list("")}
    return {
        "now": sim.now,
        "messages": cluster.net.messages_sent,
        "bytes": cluster.net.bytes_sent,
        "store_ops": dict(backing.op_counts),
        "content": content,
    }


def test_harness_installs_no_shim_when_faults_disabled():
    assert BENCH_OBS.fault_mode is None, "default must be no faults"
    sim = Simulator()
    cluster, _mounts = bench_build("arkfs", sim, n_clients=2)
    assert not isinstance(cluster.store, FaultyObjectStore)
    assert cluster.net.faults is None


def test_no_fault_runs_bit_identical_on_realistic_store():
    """Two independent no-fault builds replay to identical clocks, network
    totals, store op counts, and store *bytes* — the property that keeps
    regenerated BENCH figures unchanged by this subsystem."""
    prints = []
    for _ in range(2):
        sim = Simulator()
        cluster = build_arkfs(sim, n_clients=2, seed=0)
        _workload(cluster, sim)
        prints.append(_fingerprint(sim, cluster))
    assert prints[0] == prints[1]


def test_empty_armed_plan_changes_nothing_observable():
    """An installed-but-empty plan must not change semantics or the final
    stored bytes (it may not even cost sim time on the functional store)."""
    prints = []
    for faults in (None, FaultPlan()):
        sim = Simulator()
        cluster = build_arkfs(sim, n_clients=2, functional=True,
                              faults=faults)
        _workload(cluster, sim)
        prints.append(_fingerprint(sim, cluster))
    assert prints[0] == prints[1]


def test_transient_fault_mode_metrics_reach_bench_output():
    """With ``--faults transient`` the harness-built cluster carries a
    plan, and the retry counters + backoff histogram land in the metrics
    snapshot that benchmarks attach to BENCH_*.json."""
    BENCH_OBS.fault_mode = "transient"
    BENCH_OBS.transient_every = 13
    try:
        sim = Simulator()
        cluster, _mounts = bench_build("arkfs", sim, n_clients=2)
        assert isinstance(cluster.store, FaultyObjectStore)
        _workload(cluster, sim)
    finally:
        BENCH_OBS.fault_mode = None
        BENCH_OBS.transient_every = 101
    snap = Observability.of(sim).metrics.to_dict()
    assert snap["counters"]["faults.transient"] > 0
    assert snap["counters"]["store.retry.attempts"] > 0
    assert snap["counters"].get("store.retry.giveups", 0) == 0
    assert snap["histograms"]["store.retry.backoff"]["count"] > 0
