"""Integration tests: FaultPlan injected beneath a live ArkFS cluster.

Each test builds a functional cluster with ``build_arkfs(faults=plan)``
and shows one fault class being absorbed by the layer that owns it:
transient store errors by bounded-backoff retries, partial batch PUTs by
idempotent re-puts, dropped lease RPCs by the client's message-retry
loop, and a full control-plane partition by lease expiry + takeover.
"""

import pytest

from repro.core import build_arkfs, fsck
from repro.faults import FaultPlan
from repro.obs import Observability
from repro.objectstore.errors import TransientError
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator


def metrics(sim):
    return Observability.of(sim).metrics.to_dict()


def test_transient_errors_absorbed_with_bounded_backoff():
    """A window of injected store failures costs retries and backoff time
    — never correctness, never a giveup."""
    sim = Simulator()
    plan = FaultPlan().fail_ops(30, 40)
    cluster = build_arkfs(sim, n_clients=2, functional=True, faults=plan)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/t")
    for i in range(6):
        fs.write_file(f"/t/f{i}", bytes([i]) * 50, do_fsync=True)
    sim.run_process(cluster.client(0).sync())
    sim.run(until=sim.now + 3)

    snap = metrics(sim)
    assert snap["counters"]["faults.transient"] > 0
    assert snap["counters"]["store.retry.attempts"] > 0
    assert snap["counters"].get("store.retry.giveups", 0) == 0
    hist = snap["histograms"]["store.retry.backoff"]
    assert hist["count"] > 0
    assert hist["max"] <= cluster.params.store_retry_cap

    for i in range(6):
        assert fs.read_file(f"/t/f{i}") == bytes([i]) * 50
    report = sim.run_process(fsck(cluster.prt))
    assert report.clean, report.summary()


def test_persistently_flaky_key_exhausts_retries():
    """A key that never stops failing must surface as an error after the
    bounded retry budget — not hang the client in an infinite loop."""
    sim = Simulator()
    plan = FaultPlan()
    cluster = build_arkfs(sim, n_clients=1, functional=True, faults=plan)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/g")
    plan.flaky_key("d", 10_000)  # every data-object op fails, forever
    with pytest.raises(TransientError):
        fs.write_file("/g/x", b"y" * 100, do_fsync=True)
    assert metrics(sim)["counters"]["store.retry.giveups"] >= 1


def test_partial_batch_put_converges_on_retry():
    """A batch PUT that applies a prefix then fails is repaired by simply
    re-putting the whole batch (ArkFS store writes are idempotent)."""
    sim = Simulator()
    plan = FaultPlan().fail_batch_put(1, apply_items=2)
    cluster = build_arkfs(sim, n_clients=1, functional=True, faults=plan)
    store = cluster.store
    src = cluster.client(0).node
    items = [(f"zz/{i}", bytes([i])) for i in range(5)]

    with pytest.raises(TransientError):
        sim.run_process(store.put_many(items, src=src))
    assert store.sync_list("zz/") == ["zz/0", "zz/1"], \
        "exactly the configured prefix must have landed"
    sim.run_process(store.put_many(items, src=src))
    assert sorted(store.sync_list("zz/")) == [k for k, _ in items]
    assert metrics(sim)["counters"]["faults.batch_partial"] == 1


def test_dropped_lease_rpc_retried_not_fatal():
    """One lost client->manager message costs an RPC timeout + retry; the
    operation still succeeds."""
    sim = Simulator()
    plan = FaultPlan().drop_messages(src="client0", dst="lease-mgr", count=1)
    cluster = build_arkfs(sim, n_clients=2, functional=True, faults=plan)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    t0 = sim.now
    fs.mkdir("/d")
    assert fs.exists("/d")
    assert sim.now - t0 >= cluster.net.params.rpc_timeout_s, \
        "the drop must cost the sender its RPC timeout"
    assert metrics(sim)["counters"]["faults.msg_dropped"] == 1


def test_delayed_message_slows_but_succeeds():
    sim = Simulator()
    plan = FaultPlan().delay_messages(0.5, src="client0", dst="lease-mgr",
                                      count=1)
    cluster = build_arkfs(sim, n_clients=1, functional=True, faults=plan)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    t0 = sim.now
    fs.mkdir("/d")
    assert fs.exists("/d")
    assert sim.now - t0 >= 0.5
    assert metrics(sim)["counters"]["faults.msg_delayed"] == 1


def test_partition_forces_lease_expiry_and_takeover():
    """Dropping every message between the lease holder and the manager
    partitions the holder's control plane: its lease runs out and another
    client takes over the directory — with the journaled state intact."""
    sim = Simulator()
    plan = FaultPlan()
    cluster = build_arkfs(sim, n_clients=2, functional=True, faults=plan)
    fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
    fs1 = SyncFS(cluster.client(1), ROOT_CREDS)
    fs0.mkdir("/p")
    fs0.write_file("/p/owned", b"v1", do_fsync=True)

    plan.drop_messages(src="client0", dst="lease-mgr", count=None)
    plan.drop_messages(src="lease-mgr", dst="client0", count=None)
    sim.run(until=sim.now + 2 * cluster.params.lease_period + 1)

    fs1.write_file("/p/taken", b"v2", do_fsync=True)
    assert fs1.read_file("/p/owned") == b"v1"
    assert sorted(fs1.readdir("/p")) == ["owned", "taken"]
    sim.run_process(cluster.client(1).sync())
    sim.run(until=sim.now + 3)
    report = sim.run_process(fsck(cluster.prt, src=cluster.client(1).node))
    assert report.clean, report.summary()


def test_decision_audit_clean_on_healthy_renames():
    """Cross-directory renames write 2PC decision records; a healthy run
    must never trip the immutability audit."""
    sim = Simulator()
    plan = FaultPlan()
    cluster = build_arkfs(sim, n_clients=2, functional=True, faults=plan)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/a")
    fs.mkdir("/b")
    for i in range(5):
        fs.write_file(f"/a/f{i}", bytes([i]))
        fs.rename(f"/a/f{i}", f"/b/g{i}")
    sim.run_process(cluster.client(0).sync())
    sim.run(until=sim.now + 3)
    assert plan.violations == []


def test_decision_audit_catches_overwrite():
    """Flipping a decision record (commit -> abort) is exactly the protocol
    violation the audit exists to surface."""
    sim = Simulator()
    plan = FaultPlan()
    cluster = build_arkfs(sim, n_clients=1, functional=True, faults=plan)
    src = cluster.client(0).node
    sim.run_process(cluster.store.put("tTX-audit", b"commit", src=src))
    assert plan.violations == []
    sim.run_process(cluster.store.put("tTX-audit", b"abort", src=src))
    assert any("overwritten" in v for v in plan.violations)
