"""The ustar implementation: header format, round trips, pipelines."""

import io
import tarfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import build_arkfs
from repro.objectstore import EBS_GP_1GBS, LocalDisk
from repro.posix import OpenFlags, ROOT_CREDS, SyncFS
from repro.sim import Simulator
from repro.workloads import (
    BLOCK,
    TarReader,
    TarWriter,
    archive_from_disk,
    archive_to_disk,
    extract_in_fs,
    make_header,
    mscoco_like,
    parse_header,
)


class TestHeaderFormat:
    def test_roundtrip(self):
        h = make_header("dir/file.bin", 12345)
        name, size, typeflag = parse_header(h)
        assert name == "dir/file.bin"
        assert size == 12345
        assert typeflag == b"0"

    def test_directory_typeflag(self):
        h = make_header("somedir/", 0, typeflag=b"5")
        _name, size, typeflag = parse_header(h)
        assert typeflag == b"5"
        assert size == 0

    def test_zero_block_is_terminator(self):
        assert parse_header(b"\x00" * BLOCK) is None

    def test_corrupt_checksum_detected(self):
        h = bytearray(make_header("f", 10))
        h[0] ^= 0xFF
        with pytest.raises(ValueError):
            parse_header(bytes(h))

    def test_long_name_via_prefix(self):
        name = "/".join(["very-long-directory-name"] * 5) + "/leaf.bin"
        assert len(name) > 100
        h = make_header(name, 1)
        parsed, _size, _t = parse_header(h)
        assert parsed == name

    def test_stdlib_tarfile_can_read_our_headers(self):
        """Interoperability: Python's tarfile parses our output."""
        payload = b"interop payload"
        blob = make_header("a/b.txt", len(payload)) + payload
        blob += b"\x00" * (BLOCK - len(payload) % BLOCK)
        blob += b"\x00" * (2 * BLOCK)
        tf = tarfile.open(fileobj=io.BytesIO(blob))
        member = tf.getmember("a/b.txt")
        assert member.size == len(payload)
        assert tf.extractfile(member).read() == payload

    def test_we_can_read_stdlib_tarfile_output(self):
        buf = io.BytesIO()
        with tarfile.open(fileobj=buf, mode="w", format=tarfile.USTAR_FORMAT) as tf:
            data = b"from stdlib"
            info = tarfile.TarInfo("x/y.dat")
            info.size = len(data)
            tf.addfile(info, io.BytesIO(data))
        raw = buf.getvalue()
        name, size, typeflag = parse_header(raw[:BLOCK])
        assert name == "x/y.dat"
        assert size == len(data)
        assert raw[BLOCK:BLOCK + size] == data

    @given(name=st.text(st.characters(min_codepoint=97, max_codepoint=122),
                        min_size=1, max_size=40),
           size=st.integers(0, 8 ** 11 - 1))
    def test_header_roundtrip_property(self, name, size):
        parsed, psize, _t = parse_header(make_header(name, size))
        assert parsed == name and psize == size

    def test_oversized_file_rejected(self):
        with pytest.raises(ValueError):
            make_header("big", 8 ** 11)


@pytest.fixture
def arkfs():
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=1, functional=True)
    return sim, cluster


class TestStreamRoundTrip:
    def test_writer_reader_roundtrip(self, arkfs):
        sim, cluster = arkfs
        mount = cluster.mounts[0]
        files = {f"d/file{i}": bytes([i]) * (100 + 37 * i) for i in range(8)}

        def write():
            h = yield from mount.open(
                ROOT_CREDS, "/a.tar",
                OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
            w = TarWriter(mount, h)
            yield from w.add_dir("d")
            for name, data in files.items():
                yield from w.add_file(name, data)
            yield from w.finish()
            yield from mount.close(h)

        sim.run_process(write())

        def read():
            h = yield from mount.open(ROOT_CREDS, "/a.tar",
                                      OpenFlags.O_RDONLY)
            r = TarReader(mount, h)
            entries = yield from r.entries()
            yield from mount.close(h)
            return entries

        entries = sim.run_process(read())
        got = {n: d for n, t, d in entries if t == b"0"}
        assert got == files
        dirs = [n for n, t, _d in entries if t == b"5"]
        assert dirs == ["d/"]


class TestPipelines:
    def test_archive_extract_restore(self, arkfs):
        sim, cluster = arkfs
        mount = cluster.mounts[0]
        fs = SyncFS(cluster.client(0), ROOT_CREDS)
        disk = LocalDisk(sim, EBS_GP_1GBS)
        ds = mscoco_like(40, seed=3)

        tar_bytes = sim.run_process(
            archive_from_disk(mount, ROOT_CREDS, disk, ds, "/ds.tar"))
        assert tar_bytes > ds.total_bytes  # headers + padding
        assert fs.stat("/ds.tar").st_size == tar_bytes

        n = sim.run_process(extract_in_fs(mount, ROOT_CREDS, "/ds.tar",
                                          "/out"))
        assert n == 40
        # Every image landed in its category directory, bit-exact.
        for img in ds:
            assert fs.read_file(f"/out/{img.category}/{img.name}") == \
                img.content()

        restored = sim.run_process(
            archive_to_disk(mount, ROOT_CREDS, "/out", disk))
        assert restored >= ds.total_bytes
        assert disk.bytes_written >= ds.total_bytes

    def test_extract_costs_ebs_reads(self, arkfs):
        sim, cluster = arkfs
        mount = cluster.mounts[0]
        disk = LocalDisk(sim, EBS_GP_1GBS)
        ds = mscoco_like(10, seed=1)
        sim.run_process(archive_from_disk(mount, ROOT_CREDS, disk, ds,
                                          "/t.tar"))
        assert disk.bytes_read == ds.total_bytes
