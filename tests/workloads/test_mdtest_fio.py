"""mdtest/fio workload generators: functional correctness and accounting."""

import pytest

from repro.core import build_arkfs
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator
from repro.workloads import (
    HARD_FILE_SIZE,
    fio_seq,
    mdtest_easy,
    mdtest_hard,
    mscoco_like,
)


@pytest.fixture
def cluster2():
    sim = Simulator()
    return sim, build_arkfs(sim, n_clients=2, functional=True)


class TestMdtestEasy:
    def test_phases_report_positive_rates(self, cluster2):
        sim, cluster = cluster2
        r = mdtest_easy(sim, cluster.mounts, n_procs=4, files_per_proc=10)
        assert set(r.phases) == {"CREATE", "STAT", "DELETE"}
        assert all(v > 0 for v in r.phases.values())
        assert r.total_files == 40

    def test_files_exist_after_create_and_gone_after_delete(self, cluster2):
        sim, cluster = cluster2
        fs = SyncFS(cluster.client(0), ROOT_CREDS)
        mdtest_easy(sim, cluster.mounts, n_procs=2, files_per_proc=5,
                    phases=("CREATE",))
        assert len(fs.readdir("/mdtest-easy/dir.0")) == 5
        mdtest_easy(sim, cluster.mounts, n_procs=2, files_per_proc=5,
                    base="/mdtest-easy", phases=("DELETE",))
        assert fs.readdir("/mdtest-easy/dir.0") == []

    def test_processes_use_private_leaf_dirs(self, cluster2):
        sim, cluster = cluster2
        fs = SyncFS(cluster.client(0), ROOT_CREDS)
        mdtest_easy(sim, cluster.mounts, n_procs=3, files_per_proc=2,
                    phases=("CREATE",))
        assert fs.readdir("/mdtest-easy") == ["dir.0", "dir.1", "dir.2"]


class TestMdtestHard:
    def test_full_run_consistent(self, cluster2):
        sim, cluster = cluster2
        r = mdtest_hard(sim, cluster.mounts, n_procs=4, files_per_proc=6,
                        n_dirs=3)
        assert set(r.phases) == {"WRITE", "STAT", "READ", "DELETE"}
        assert all(v > 0 for v in r.phases.values())
        assert r.errors["READ"] == 0
        fs = SyncFS(cluster.client(0), ROOT_CREDS)
        for d in range(3):
            assert fs.readdir(f"/mdtest-hard/shared.{d}") == []

    def test_files_have_io500_size(self, cluster2):
        sim, cluster = cluster2
        mdtest_hard(sim, cluster.mounts, n_procs=2, files_per_proc=3,
                    n_dirs=2, phases=("WRITE",))
        fs = SyncFS(cluster.client(0), ROOT_CREDS)
        found = 0
        for d in range(2):
            for name in fs.readdir(f"/mdtest-hard/shared.{d}"):
                st = fs.stat(f"/mdtest-hard/shared.{d}/{name}")
                assert st.st_size == HARD_FILE_SIZE
                found += 1
        assert found == 6

    def test_files_spread_across_shared_dirs(self, cluster2):
        sim, cluster = cluster2
        mdtest_hard(sim, cluster.mounts, n_procs=4, files_per_proc=8,
                    n_dirs=4, phases=("WRITE",))
        fs = SyncFS(cluster.client(0), ROOT_CREDS)
        sizes = [len(fs.readdir(f"/mdtest-hard/shared.{d}"))
                 for d in range(4)]
        assert sum(sizes) == 32
        assert all(s > 0 for s in sizes)  # every dir got traffic


class TestFio:
    def test_write_then_read_bandwidth(self, cluster2):
        sim, cluster = cluster2
        r = fio_seq(sim, cluster.mounts, n_procs=2, file_size=1 << 20)
        assert r.write_mbps > 0 and r.read_mbps > 0
        assert r.total_bytes == 2 << 20

    def test_data_integrity(self, cluster2):
        sim, cluster = cluster2
        fio_seq(sim, cluster.mounts, n_procs=1, file_size=300_000,
                block_size=64 * 1024)
        fs = SyncFS(cluster.client(0), ROOT_CREDS)
        data = fs.read_file("/fio/job0.dat")
        assert len(data) == 300_000
        assert set(data) == {0x5A}


class TestDataset:
    def test_deterministic(self):
        a, b = mscoco_like(50, seed=9), mscoco_like(50, seed=9)
        assert [(i.name, i.size) for i in a] == [(i.name, i.size) for i in b]

    def test_size_distribution(self):
        ds = mscoco_like(2000, seed=0, mean_kb=170)
        sizes = [im.size for im in ds]
        assert min(sizes) >= 10 * 1024
        assert max(sizes) <= 600 * 1024
        mean = sum(sizes) / len(sizes)
        # "tens to hundreds of KB", mean near MS-COCO's ~170 KB
        assert 120 * 1024 < mean < 260 * 1024

    def test_total_matches_paper_shape(self):
        """41K images should land in the ~7 GB ballpark."""
        ds = mscoco_like(4_100, seed=0, mean_kb=170)  # 10% sample
        assert 0.5e9 < ds.total_bytes * 10 < 10e9

    def test_content_is_stable(self):
        img = mscoco_like(1, seed=0).images[0]
        assert img.content() == img.content()
        assert len(img.content()) == img.size

    def test_categories_assigned(self):
        ds = mscoco_like(9, seed=0)
        assert {im.category for im in ds} == {"train", "val", "test"}
