"""The N-N checkpoint/restart workload generator."""

import pytest

from repro.core import build_arkfs, fsck
from repro.posix import NotFound, ROOT_CREDS, SyncFS
from repro.sim import Simulator
from repro.workloads import checkpoint_restart


@pytest.fixture
def cluster4():
    sim = Simulator()
    return sim, build_arkfs(sim, n_clients=4, functional=True)


def test_full_cadence(cluster4):
    sim, cluster = cluster4
    result = checkpoint_restart(sim, cluster.mounts, n_ranks=4,
                                ckpt_bytes=10_000, n_generations=4, keep=2)
    assert len(result.generation_times) == 4
    assert all(t > 0 for t in result.generation_times)
    assert result.restored_ranks == 4
    assert result.restart_time > 0
    assert result.bytes_per_generation == 40_000


def test_retention_prunes_old_generations(cluster4):
    sim, cluster = cluster4
    checkpoint_restart(sim, cluster.mounts, n_ranks=2, ckpt_bytes=100,
                       n_generations=5, keep=2)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    names = fs.readdir("/ckpt")
    # Generations 0..2 pruned; 3 and 4 retained.
    assert names == ["gen-00003", "gen-00004"]
    with pytest.raises(NotFound):
        fs.readdir("/ckpt/gen-00000")


def test_manifest_is_the_commit_point(cluster4):
    sim, cluster = cluster4
    checkpoint_restart(sim, cluster.mounts, n_ranks=3, ckpt_bytes=50,
                       n_generations=1, keep=1)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    names = fs.readdir("/ckpt/gen-00000")
    assert "MANIFEST" in names
    assert len([n for n in names if n.endswith(".ckpt")]) == 3


def test_layout_passes_fsck(cluster4):
    sim, cluster = cluster4
    checkpoint_restart(sim, cluster.mounts, n_ranks=4, ckpt_bytes=2_000,
                       n_generations=3, keep=1)
    for c in cluster.clients:
        sim.run_process(c.sync())
    sim.run(until=sim.now + 3)
    report = sim.run_process(fsck(cluster.prt))
    assert report.clean, report.summary()


def test_arkfs_checkpoints_faster_than_cephfs():
    """The motivating claim: client-side metadata helps checkpointing —
    in the amortizing regime (several segment files per rank, one
    durability point per rank per generation)."""
    from repro.baselines import build_cephfs

    def run(builder):
        sim = Simulator()
        cluster = builder(sim)
        result = checkpoint_restart(sim, cluster.mounts, n_ranks=16,
                                    ckpt_bytes=5_000, n_generations=4,
                                    files_per_rank=8)
        assert result.restored_ranks == 16
        return result.mean_generation_time

    t_ark = run(lambda sim: build_arkfs(sim, n_clients=4))
    t_k = run(lambda sim: build_cephfs(sim, n_clients=4, mount="kernel"))
    t_f = run(lambda sim: build_cephfs(sim, n_clients=4, mount="fuse"))
    assert t_ark < t_k
    assert t_ark < t_f


def test_segmented_checkpoints(cluster4):
    sim, cluster = cluster4
    result = checkpoint_restart(sim, cluster.mounts, n_ranks=3,
                                ckpt_bytes=1_000, n_generations=2,
                                files_per_rank=4)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    names = fs.readdir("/ckpt/gen-00001")
    segs = [n for n in names if ".ckpt." in n]
    assert len(segs) == 12  # 3 ranks x 4 segments
    assert result.bytes_per_generation == 12_000
