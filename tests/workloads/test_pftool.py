"""pftool-style parallel copy/compare/list over the VFS interface."""

import pytest

from repro.core import build_arkfs, fsck
from repro.baselines import build_cephfs, build_s3fs
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator
from repro.workloads import (
    parallel_compare,
    parallel_copy,
    parallel_list,
)
import repro.workloads.pftool as pftool_mod


@pytest.fixture
def two_fs():
    """A populated CephFS source and an empty ArkFS destination."""
    sim = Simulator()
    ceph = build_cephfs(sim, n_clients=1, functional=True)
    ark = build_arkfs(sim, n_clients=2, functional=True)
    src = SyncFS(ceph.client(0), ROOT_CREDS)
    src.makedirs("/campaign/2026/jan")
    src.makedirs("/campaign/2026/feb")
    for i in range(6):
        src.write_file(f"/campaign/2026/jan/img{i}", bytes([i]) * (100 + i),
                       do_fsync=True)
    src.write_file("/campaign/2026/feb/report", b"february" * 50,
                   do_fsync=True)
    src.symlink("/campaign/2026/jan", "/campaign/latest")
    return sim, ceph, ark


class TestCopy:
    def test_cross_filesystem_migration(self, two_fs):
        sim, ceph, ark = two_fs
        stats = sim.run_process(parallel_copy(
            sim, ceph.client(0), ark.client(0), ROOT_CREDS,
            "/campaign", "/migrated"))
        assert stats.ok, stats.errors
        assert stats.dirs == 3
        assert stats.files == 8  # 7 files + 1 symlink
        dst = SyncFS(ark.client(0), ROOT_CREDS)
        assert dst.readdir("/migrated/2026/jan") == \
            [f"img{i}" for i in range(6)]
        assert dst.read_file("/migrated/2026/feb/report") == b"february" * 50
        assert dst.readlink("/migrated/latest") == "/campaign/2026/jan"

    def test_content_integrity(self, two_fs):
        sim, ceph, ark = two_fs
        sim.run_process(parallel_copy(sim, ceph.client(0), ark.client(0),
                                      ROOT_CREDS, "/campaign", "/m"))
        dst = SyncFS(ark.client(0), ROOT_CREDS)
        for i in range(6):
            assert dst.read_file(f"/m/2026/jan/img{i}") == \
                bytes([i]) * (100 + i)

    def test_destination_layout_passes_fsck(self, two_fs):
        sim, ceph, ark = two_fs
        sim.run_process(parallel_copy(sim, ceph.client(0), ark.client(0),
                                      ROOT_CREDS, "/campaign", "/m"))
        for c in ark.clients:
            sim.run_process(c.sync())
        sim.run(until=sim.now + 3)
        report = sim.run_process(fsck(ark.prt))
        assert report.clean, report.summary()

    def test_large_files_copied_in_chunks(self, monkeypatch):
        monkeypatch.setattr(pftool_mod, "CHUNK_SIZE", 4096)
        sim = Simulator()
        a = build_arkfs(sim, n_clients=1, functional=True, seed=1)
        b = build_arkfs(sim, n_clients=1, functional=True, seed=2)
        src = SyncFS(a.client(0), ROOT_CREDS)
        src.mkdir("/big")
        payload = bytes(i % 251 for i in range(3 * 4096 + 100))
        src.write_file("/big/blob", payload, do_fsync=True)
        stats = sim.run_process(parallel_copy(
            sim, a.client(0), b.client(0), ROOT_CREDS, "/big", "/copy",
            n_workers=4))
        assert stats.ok, stats.errors
        assert stats.chunks == 4
        dst = SyncFS(b.client(0), ROOT_CREDS)
        assert dst.read_file("/copy/blob") == payload

    def test_copy_into_s3fs(self, two_fs):
        """The VFS abstraction lets pftool target any backend."""
        sim, ceph, _ark = two_fs
        s3 = build_s3fs(sim, n_clients=1, functional=True)
        stats = sim.run_process(parallel_copy(
            sim, ceph.client(0), s3.client(0), ROOT_CREDS,
            "/campaign/2026", "/bucket-copy"))
        assert not stats.errors
        dst = SyncFS(s3.client(0), ROOT_CREDS)
        assert dst.readdir("/bucket-copy") == ["feb", "jan"]

    def test_workers_actually_parallelize(self):
        """With per-op latency, 8 workers finish much faster than 1."""
        def run(n_workers):
            sim = Simulator()
            a = build_arkfs(sim, n_clients=1, seed=1)  # timed store
            b = build_arkfs(sim, n_clients=1, seed=2)
            src = SyncFS(a.client(0), ROOT_CREDS)
            src.mkdir("/src")
            for i in range(24):
                src.write_file(f"/src/f{i}", b"x" * 2048, do_fsync=True)
            t0 = sim.now
            stats = sim.run_process(parallel_copy(
                sim, a.client(0), b.client(0), ROOT_CREDS, "/src", "/dst",
                n_workers=n_workers))
            assert stats.ok
            return sim.now - t0

        serial = run(1)
        parallel = run(8)
        assert parallel < serial / 2


class TestCompare:
    def test_identical_trees_match(self, two_fs):
        sim, ceph, ark = two_fs
        sim.run_process(parallel_copy(sim, ceph.client(0), ark.client(0),
                                      ROOT_CREDS, "/campaign", "/m"))
        stats = sim.run_process(parallel_compare(
            sim, ceph.client(0), ark.client(0), ROOT_CREDS,
            "/campaign", "/m"))
        assert stats.ok, stats.mismatches

    def test_detects_content_difference(self, two_fs):
        sim, ceph, ark = two_fs
        sim.run_process(parallel_copy(sim, ceph.client(0), ark.client(0),
                                      ROOT_CREDS, "/campaign", "/m"))
        dst = SyncFS(ark.client(0), ROOT_CREDS)
        dst.write_file("/m/2026/feb/report", b"tampered", do_fsync=True)
        stats = sim.run_process(parallel_compare(
            sim, ceph.client(0), ark.client(0), ROOT_CREDS,
            "/campaign", "/m"))
        assert not stats.ok
        assert any("report" in m for m in stats.mismatches)

    def test_detects_missing_file(self, two_fs):
        sim, ceph, ark = two_fs
        sim.run_process(parallel_copy(sim, ceph.client(0), ark.client(0),
                                      ROOT_CREDS, "/campaign", "/m"))
        SyncFS(ark.client(0), ROOT_CREDS).unlink("/m/2026/jan/img3")
        stats = sim.run_process(parallel_compare(
            sim, ceph.client(0), ark.client(0), ROOT_CREDS,
            "/campaign", "/m"))
        assert any("img3" in m for m in stats.mismatches)


class TestList:
    def test_recursive_listing(self, two_fs):
        sim, ceph, _ark = two_fs
        stats = sim.run_process(parallel_list(
            sim, ceph.client(0), ROOT_CREDS, "/campaign"))
        paths = [p for p, _size in stats.entries]
        assert "/campaign/2026/jan/img0" in paths
        assert stats.dirs == 3
        assert stats.files == 8
        sizes = dict(stats.entries)
        assert sizes["/campaign/2026/jan/img5"] == 105
