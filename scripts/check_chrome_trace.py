#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (as written by ``--trace``).

Checks the invariants Perfetto / chrome://tracing rely on:

* strict JSON (no NaN/Infinity) with a ``traceEvents`` list;
* every event has ``ph``, ``pid``, ``tid`` and a ``name``;
* ``X`` (complete) events carry numeric ``ts``/``dur`` with ``dur >= 0``;
* every ``pid`` appearing in an event is named by a ``process_name``
  metadata record (and likewise every ``(pid, tid)`` by ``thread_name``);
* at least one non-metadata event exists.

Usage: ``python scripts/check_chrome_trace.py TRACE.json``
Exits non-zero (printing every violation) on an invalid trace.
"""

from __future__ import annotations

import json
import sys


def check(path: str) -> list:
    errors = []
    with open(path) as f:
        try:
            doc = json.load(f, parse_constant=lambda s: errors.append(
                f"non-standard JSON constant {s!r}") or 0.0)
        except json.JSONDecodeError as exc:
            return [f"not JSON: {exc}"]
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["missing top-level 'traceEvents' object"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]

    named_pids = set()
    named_tids = set()
    used_pids = set()
    used_tids = set()
    n_spans = 0
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                errors.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        pid, tid = ev.get("pid"), ev.get("tid")
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(pid)
            elif ev.get("name") == "thread_name":
                named_tids.add((pid, tid))
            continue
        used_pids.add(pid)
        used_tids.add((pid, tid))
        if ph == "X":
            n_spans += 1
            for key in ("ts", "dur"):
                v = ev.get(key)
                if not isinstance(v, (int, float)):
                    errors.append(f"{where}: {key!r} not numeric: {v!r}")
            if isinstance(ev.get("dur"), (int, float)) and ev["dur"] < 0:
                errors.append(f"{where}: negative dur {ev['dur']}")

    for pid in sorted(used_pids - named_pids):
        errors.append(f"pid {pid} has events but no process_name metadata")
    for pid, tid in sorted(used_tids - named_tids):
        errors.append(f"thread {pid}:{tid} has events but no thread_name "
                      f"metadata")
    if n_spans == 0:
        errors.append("trace contains no complete ('X') events")
    return errors


def main(argv) -> int:
    if len(argv) != 1:
        print(__doc__.strip().splitlines()[-2].strip(), file=sys.stderr)
        return 2
    errors = check(argv[0])
    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print(f"OK: {argv[0]} is a valid Chrome trace")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
