#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (as written by ``--trace``).

Checks the invariants Perfetto / chrome://tracing rely on:

* strict JSON (no NaN/Infinity) with a ``traceEvents`` list;
* every event has ``ph``, ``pid``, ``tid`` and a ``name``;
* ``X`` (complete) events carry numeric ``ts``/``dur`` with ``dur >= 0``;
* ``C`` (counter) events carry a numeric ``args.value``;
* ``s``/``f`` (flow) events pair up: every flow ``id`` has exactly one
  start and one finish, the finish uses ``bp: "e"``, and the start's
  timestamp does not come after the finish's;
* every ``pid`` appearing in an event is named by a ``process_name``
  metadata record (and likewise every ``(pid, tid)`` by ``thread_name``,
  counters excepted — Perfetto renders them on a per-process track);
* at least one non-metadata event exists.

With ``--recorder`` the argument is a flight-recorder dump instead
(``FlightRecorder.dump`` / crashcheck ``--flight`` output): checks the
``arkfs-flight-recorder-v1`` schema marker, that every event has a
``kind`` and a numeric non-decreasing ``t``, and that the
``recorded``/``dropped`` accounting is consistent with the event count.

Usage: ``python scripts/check_chrome_trace.py [--recorder] FILE.json``
Exits non-zero (printing every violation) on an invalid file.
"""

from __future__ import annotations

import json
import sys


def check(path: str) -> list:
    errors = []
    with open(path) as f:
        try:
            doc = json.load(f, parse_constant=lambda s: errors.append(
                f"non-standard JSON constant {s!r}") or 0.0)
        except json.JSONDecodeError as exc:
            return [f"not JSON: {exc}"]
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["missing top-level 'traceEvents' object"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]

    named_pids = set()
    named_tids = set()
    used_pids = set()
    used_tids = set()
    flow_starts = {}
    flow_ends = {}
    n_spans = 0
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                errors.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        pid, tid = ev.get("pid"), ev.get("tid")
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(pid)
            elif ev.get("name") == "thread_name":
                named_tids.add((pid, tid))
            continue
        used_pids.add(pid)
        if ph != "C":
            used_tids.add((pid, tid))
        if ph == "X":
            n_spans += 1
            for key in ("ts", "dur"):
                v = ev.get(key)
                if not isinstance(v, (int, float)):
                    errors.append(f"{where}: {key!r} not numeric: {v!r}")
            if isinstance(ev.get("dur"), (int, float)) and ev["dur"] < 0:
                errors.append(f"{where}: negative dur {ev['dur']}")
        elif ph == "C":
            value = ev.get("args", {}).get("value") \
                if isinstance(ev.get("args"), dict) else None
            if not isinstance(value, (int, float)):
                errors.append(f"{where}: counter without numeric "
                              f"args.value: {ev.get('args')!r}")
            if not isinstance(ev.get("ts"), (int, float)):
                errors.append(f"{where}: 'ts' not numeric: {ev.get('ts')!r}")
        elif ph in ("s", "f"):
            fid = ev.get("id")
            if fid is None:
                errors.append(f"{where}: flow event without 'id'")
                continue
            if not isinstance(ev.get("ts"), (int, float)):
                errors.append(f"{where}: 'ts' not numeric: {ev.get('ts')!r}")
            side = flow_starts if ph == "s" else flow_ends
            if fid in side:
                errors.append(f"{where}: duplicate flow {ph!r} for id {fid}")
            side[fid] = ev
            if ph == "f" and ev.get("bp") != "e":
                errors.append(f"{where}: flow finish without bp='e'")

    for fid, ev in sorted(flow_starts.items()):
        end = flow_ends.get(fid)
        if end is None:
            errors.append(f"flow id {fid} has a start but no finish")
        elif isinstance(ev.get("ts"), (int, float)) and \
                isinstance(end.get("ts"), (int, float)) and \
                ev["ts"] > end["ts"]:
            errors.append(f"flow id {fid}: start ts {ev['ts']} after "
                          f"finish ts {end['ts']}")
    for fid in sorted(set(flow_ends) - set(flow_starts)):
        errors.append(f"flow id {fid} has a finish but no start")

    for pid in sorted(used_pids - named_pids):
        errors.append(f"pid {pid} has events but no process_name metadata")
    for pid, tid in sorted(used_tids - named_tids):
        errors.append(f"thread {pid}:{tid} has events but no thread_name "
                      f"metadata")
    if n_spans == 0:
        errors.append("trace contains no complete ('X') events")
    return errors


RECORDER_SCHEMA = "arkfs-flight-recorder-v1"


def check_recorder(path: str) -> list:
    errors = []
    with open(path) as f:
        try:
            doc = json.load(f, parse_constant=lambda s: errors.append(
                f"non-standard JSON constant {s!r}") or 0.0)
        except json.JSONDecodeError as exc:
            return [f"not JSON: {exc}"]
    # Accept a bare FlightRecorder.dump(), a crashcheck --flight wrapper
    # ({"workload": ..., "points": [{..., "flight": <dump>}]}), or the
    # bench CLI's per-kind mapping ({"arkfs": <dump>, ...}).
    dumps = []
    if isinstance(doc, dict) and "points" in doc:
        for i, pt in enumerate(doc.get("points") or []):
            flight = pt.get("flight") if isinstance(pt, dict) else None
            if not isinstance(flight, dict):
                errors.append(f"points[{i}]: missing 'flight' dump")
            else:
                dumps.append((f"points[{i}].flight", flight))
        if not dumps and not errors:
            errors.append("no flight dumps in 'points'")
    elif isinstance(doc, dict) and "events" not in doc and doc and \
            all(isinstance(v, dict) and "events" in v for v in doc.values()):
        dumps = sorted(doc.items())
    elif isinstance(doc, dict):
        dumps.append(("", doc))
    else:
        return ["recorder dump is not an object"]

    for prefix, dump in dumps:
        at = (prefix + ".") if prefix else ""
        if dump.get("schema") != RECORDER_SCHEMA:
            errors.append(f"{at}schema is {dump.get('schema')!r}, "
                          f"expected {RECORDER_SCHEMA!r}")
        events = dump.get("events")
        if not isinstance(events, list):
            errors.append(f"{at}'events' is not a list")
            continue
        recorded = dump.get("recorded")
        dropped = dump.get("dropped", 0)
        if not isinstance(recorded, int) or recorded < len(events):
            errors.append(f"{at}recorded={recorded!r} inconsistent with "
                          f"{len(events)} event(s)")
        if not isinstance(dropped, int) or dropped < 0:
            errors.append(f"{at}dropped={dropped!r} not a non-negative int")
        prev_t = None
        for i, ev in enumerate(events):
            where = f"{at}events[{i}]"
            if not isinstance(ev, dict):
                errors.append(f"{where}: not an object")
                continue
            if not ev.get("kind"):
                errors.append(f"{where}: missing 'kind'")
            t = ev.get("t")
            if not isinstance(t, (int, float)):
                errors.append(f"{where}: 't' not numeric: {t!r}")
                continue
            if prev_t is not None and t < prev_t:
                errors.append(f"{where}: t={t} decreases (prev {prev_t})")
            prev_t = t
    return errors


def main(argv) -> int:
    recorder = "--recorder" in argv
    args = [a for a in argv if a != "--recorder"]
    if len(args) != 1:
        print(__doc__.strip().splitlines()[-2].strip(), file=sys.stderr)
        return 2
    errors = check_recorder(args[0]) if recorder else check(args[0])
    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    kind = "flight-recorder dump" if recorder else "Chrome trace"
    print(f"OK: {args[0]} is a valid {kind}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
