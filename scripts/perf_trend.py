#!/usr/bin/env python
"""Perf-trend observatory: track benchmark trajectories, flag regressions.

Generalizes ``scripts/perf_gate.py`` (which gates the two kernel-microbench
speedup ratios) into a baseline registry over every benchmark JSON the CI
produces — fig4/fig6/table2 walls and their deterministic simulation
counters, the kernel microbench, mdtest — plus an append-only trajectory
file that accumulates one line per run, so drift is visible over time
rather than only at the moment it crosses a gate.

Usage::

    python scripts/perf_trend.py append BENCH_*.json [--trend perf_trend.jsonl]
    python scripts/perf_trend.py check  BENCH_*.json [--baseline PATH]
    python scripts/perf_trend.py update BENCH_*.json [--baseline PATH]

``append`` extracts each benchmark's wall clock, its ``extra_info``
scalars, and its deterministic simulation counters, and appends one JSON
line to the trajectory file (created on first use; CI uploads it as an
artifact so the history survives across runs when seeded back in).

``check`` compares the same extraction against the committed baseline in
``benchmarks/perf_baseline.json``. Two classes of comparison:

* **exact** — deterministic quantities (simulated-event counts, journal
  commits, sampled-op counts...). The simulation is seeded and
  deterministic, so these must match bit-for-bit at the recorded scale;
  any difference is a real behavior change and fails the check.
* **wall** — wall-clock references are advisory: hosts differ, so drift
  beyond ``wall_tolerance`` prints a warning but does not fail unless
  ``--strict-wall`` is given.

Benchmarks in the baseline but absent from the given results files are
skipped (each CI job checks only the files it produced).

``update`` rewrites the baseline from the given results; commit the diff
alongside whatever change justified it.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO, "benchmarks", "perf_baseline.json")
DEFAULT_TREND = "perf_trend.jsonl"

#: Deterministic-counter keys worth gating, as regexes over the flattened
#: key space (see :func:`extract`). Everything else still lands in the
#: trajectory file; only these are pinned exactly in the baseline.
GATED_PATTERNS = [
    r"^(fast|legacy)\.(loop_events|heap_pushes|inline_events)$",
    r"\.journal\.commits$",
    r"\.cache\.flushes$",
    r"\.pack\.seals$",
    r"\.obs\.root_ops$",
    r"\.obs\.sampled_ops$",
    r"\.faults\.transient$",
    r"\.tier\.(hits|promotions|demotions)$",
    r"\.qos\.(admitted|busy|throttle_ops|throttle_bytes)$",
]
_GATED = [re.compile(p) for p in GATED_PATTERNS]

#: extra_info keys that are wall-clock-derived and must never be treated
#: as deterministic.
_NONDET = re.compile(
    r"(wall|ops_per_sec|speedup|ratio|pre_pr|_s$|seconds)", re.I)

#: Per-instance scopes (one metric namespace per simulated client/server)
#: are excluded from gating: a 4096-client run would pin thousands of
#: near-identical keys, bloating the baseline without adding signal. The
#: whole-sim aggregates remain gated.
_PER_INSTANCE = re.compile(r"\.[\w-]*(client|server|mds|oss)\d+\.")


def _flatten(prefix: str, obj, out: dict) -> None:
    if isinstance(obj, bool):
        return
    if isinstance(obj, (int, float)):
        out[prefix] = obj
    elif isinstance(obj, dict):
        for k, v in obj.items():
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, out)


def extract(results_path: str) -> dict:
    """``{benchmark name: {"wall_s", "scalars", "obs"}}`` from one
    pytest-benchmark JSON file."""
    with open(results_path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        info = dict(bench.get("extra_info", {}))
        obs = info.pop("obs", None)
        metrics = info.pop("metrics", [])
        scalars: dict = {}
        _flatten("", info, scalars)
        for entry in metrics:
            kind = entry.get("kind", "?")
            counters = entry.get("metrics", {}).get("counters", {})
            for cname, v in counters.items():
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    scalars[f"metrics.{kind}.{cname}"] = v
        out[bench["name"]] = {
            "wall_s": bench.get("stats", {}).get("mean"),
            "scalars": scalars,
            "obs": obs,
        }
    return out


def extract_all(results_paths) -> dict:
    merged = {}
    for path in results_paths:
        merged.update(extract(path))
    return merged


def _gated(scalars: dict) -> dict:
    return {k: v for k, v in sorted(scalars.items())
            if not _NONDET.search(k) and not _PER_INSTANCE.search(k)
            and any(p.search(k) for p in _GATED)}


def append(results_paths, trend_path: str, label: str) -> int:
    benches = extract_all(results_paths)
    if not benches:
        print(f"no benchmarks found in {results_paths}", file=sys.stderr)
        return 1
    record = {
        "t": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "label": label,
        "scale": os.environ.get("REPRO_SCALE", "default"),
        "benchmarks": {
            # Per-instance scopes stay out of the trajectory for the same
            # reason they stay out of the baseline; the full per-client
            # detail lives in the BENCH_*.json artifacts.
            name: {"wall_s": b["wall_s"], "obs": b["obs"],
                   "scalars": {k: v for k, v in sorted(b["scalars"].items())
                               if not _PER_INSTANCE.search(k)}}
            for name, b in sorted(benches.items())
        },
    }
    with open(trend_path, "a") as f:
        f.write(json.dumps(record, allow_nan=False) + "\n")
    print(f"appended {len(benches)} benchmark(s) to {trend_path}")
    return 0


def check(results_paths, baseline_path: str, strict_wall: bool) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)
    tolerance = float(baseline.get("wall_tolerance", 0.5))
    scale = os.environ.get("REPRO_SCALE", "default")
    if baseline.get("scale") not in (None, scale):
        print(f"note: baseline recorded at scale={baseline.get('scale')!r} "
              f"but this run is scale={scale!r}; exact gates skipped")
        return 0
    benches = extract_all(results_paths)
    failures, warnings = [], []
    checked = 0
    for name, entry in baseline.get("benchmarks", {}).items():
        got = benches.get(name)
        if got is None:
            print(f"{name}: not in results, skipped")
            continue
        checked += 1
        for key, want in entry.get("exact", {}).items():
            have = got["scalars"].get(key)
            if have != want:
                failures.append(f"{name}: {key} = {have!r}, baseline {want!r}")
            else:
                print(f"{name}: {key} = {have} ok")
        ref = entry.get("wall_s_reference")
        wall = got["wall_s"]
        if ref and wall:
            drift = wall / ref - 1.0
            flag = abs(drift) > tolerance
            print(f"{name}: wall {wall:.2f}s vs reference {ref:.2f}s "
                  f"({drift:+.0%}){' DRIFT' if flag else ''}")
            if flag:
                warnings.append(
                    f"{name}: wall {wall:.2f}s drifted {drift:+.0%} from "
                    f"reference {ref:.2f}s (tolerance ±{tolerance:.0%})")
    for line in warnings:
        print(f"warning: {line}", file=sys.stderr)
    if failures:
        print("\nperf trend FAILED (deterministic counters):",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    if strict_wall and warnings:
        print("\nperf trend FAILED (--strict-wall)", file=sys.stderr)
        return 1
    print(f"perf trend ok ({checked} benchmark(s) checked)")
    return 0


def update(results_paths, baseline_path: str) -> int:
    benches = extract_all(results_paths)
    if os.path.exists(baseline_path):
        with open(baseline_path) as f:
            baseline = json.load(f)
    else:
        baseline = {
            "_comment": [
                "Committed perf-trend baseline for scripts/perf_trend.py.",
                "'exact' pins deterministic simulation counters (seeded",
                "runs reproduce them bit-for-bit at the recorded scale);",
                "wall_s_reference values are advisory wall clocks from the",
                "machine that last ran --update, flagged past",
                "wall_tolerance but never gated unless --strict-wall.",
            ],
            "wall_tolerance": 0.5,
            "benchmarks": {},
        }
    baseline["scale"] = os.environ.get("REPRO_SCALE", "default")
    for name, got in sorted(benches.items()):
        entry = baseline["benchmarks"].setdefault(name, {})
        exact = _gated(got["scalars"])
        if exact:
            entry["exact"] = exact
        if got["wall_s"]:
            entry["wall_s_reference"] = round(got["wall_s"], 3)
        print(f"{name}: {len(exact)} exact key(s), "
              f"wall {got['wall_s'] or 0:.2f}s")
    with open(baseline_path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"wrote {baseline_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("mode", choices=("append", "check", "update"))
    parser.add_argument("results", nargs="+",
                        help="pytest-benchmark JSON file(s)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--trend", default=DEFAULT_TREND,
                        help="trajectory file for append (JSONL)")
    parser.add_argument("--label", default="local",
                        help="free-form run label recorded in the trend")
    parser.add_argument("--strict-wall", action="store_true",
                        help="fail check on wall-clock drift too")
    args = parser.parse_args(argv)
    if args.mode == "append":
        return append(args.results, args.trend, args.label)
    if args.mode == "update":
        return update(args.results, args.baseline)
    return check(args.results, args.baseline, args.strict_wall)


if __name__ == "__main__":
    sys.exit(main())
