#!/usr/bin/env python
"""Kernel performance gate: fail CI if the fast-kernel speedup regresses.

Usage::

    python scripts/perf_gate.py BENCH_kernel.json [--baseline PATH]
    python scripts/perf_gate.py BENCH_kernel.json --update

Reads the pytest-benchmark JSON written by ``benchmarks/test_kernel_speed.py``
(each benchmark's ``extra_info`` carries ``workload`` and ``speedup``) and
compares against the committed baseline in ``benchmarks/kernel_baseline.json``.

The gated quantity is the *speedup ratio* — fast-kernel ops/sec over
heap-only-kernel ops/sec, both measured in the same process moments apart —
not absolute throughput. A ratio of two runs on the same machine mostly
cancels host speed, so one committed baseline serves laptops and CI runners
alike. The gate fails when a workload's measured speedup falls below
``gate_fraction`` (default 0.8) of its baseline speedup: an optimisation
that quietly stopped firing shows up as the ratio collapsing toward 1.0
long before absolute numbers could prove anything.

``--update`` rewrites the baseline's speedups from the given results file
(keeping the recorded pre-PR context numbers); commit the diff alongside
whatever kernel change justified it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO, "benchmarks", "kernel_baseline.json")


def load_speedups(results_path: str) -> dict:
    """Extract {workload: speedup} from a pytest-benchmark JSON file."""
    with open(results_path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        info = bench.get("extra_info", {})
        workload = info.get("workload")
        speedup = info.get("speedup")
        if workload is not None and speedup is not None:
            out[workload] = float(speedup)
    return out


def gate(results_path: str, baseline_path: str) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)
    fraction = float(baseline.get("gate_fraction", 0.8))
    measured = load_speedups(results_path)
    failures = []
    for workload, entry in baseline["workloads"].items():
        base = float(entry["speedup"])
        floor = fraction * base
        got = measured.get(workload)
        if got is None:
            failures.append(f"{workload}: no speedup in {results_path} "
                            f"(benchmark missing or crashed)")
            continue
        verdict = "ok" if got >= floor else "FAIL"
        print(f"{workload}: speedup {got:.2f}x vs baseline {base:.2f}x "
              f"(floor {floor:.2f}x) {verdict}")
        if got < floor:
            failures.append(
                f"{workload}: speedup {got:.2f}x < floor {floor:.2f}x "
                f"({fraction:.0%} of baseline {base:.2f}x)")
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


def update(results_path: str, baseline_path: str) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)
    measured = load_speedups(results_path)
    changed = False
    for workload, entry in baseline["workloads"].items():
        got = measured.get(workload)
        if got is None:
            print(f"{workload}: not in {results_path}; keeping "
                  f"{entry['speedup']:.2f}x")
            continue
        print(f"{workload}: {entry['speedup']:.2f}x -> {got:.2f}x")
        entry["speedup"] = round(got, 2)
        changed = True
    if changed:
        with open(baseline_path, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"wrote {baseline_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="pytest-benchmark JSON "
                        "(BENCH_kernel.json)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--update", action="store_true",
                        help="rewrite baseline speedups from the results")
    args = parser.parse_args(argv)
    if args.update:
        return update(args.results, args.baseline)
    return gate(args.results, args.baseline)


if __name__ == "__main__":
    sys.exit(main())
