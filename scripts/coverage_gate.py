#!/usr/bin/env python
"""Coverage gate for the metadata core: fail CI if line coverage of
``src/repro/core`` drops below the recorded baseline.

Usage::

    PYTHONPATH=src python scripts/coverage_gate.py [--floor PCT] [pytest args]

Runs the core + faults test set (override by passing explicit pytest
args) under a line tracer and reports per-file and total line coverage
of ``repro/core``. Exits 1 when the total is below the floor.

Uses the ``coverage`` package when importable (CI installs it); otherwise
falls back to a stdlib ``sys.settrace`` tracer so the gate also runs in
minimal environments. Both count the same thing — executed source lines
over executable source lines — though the fallback is slower and counts
a few structural lines (e.g. ``else:``) differently, which is why the
floor leaves headroom below the measured baseline.
"""

from __future__ import annotations

import argparse
import os
import sys


REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORE = os.path.join(REPO, "src", "repro", "core")

#: Baseline minus headroom. Measured at this PR: 93.5% (stdlib tracer,
#: tests/core + tests/faults); the headroom covers coverage.py counting
#: executable lines slightly differently. Raise this when coverage rises.
DEFAULT_FLOOR = 88.0

DEFAULT_TESTS = ["tests/core", "tests/faults", "-q", "-p", "no:cacheprovider"]


def _executable_lines(path: str) -> set:
    """All line numbers the compiler emits code for, module + nested."""
    with open(path, "rb") as f:
        source = f.read()
    lines: set = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _start, _end, line in code.co_lines():
            if line is not None:
                lines.add(line)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # The compiler tags module/class/def headers and docstring loads;
    # those fire on import, which inflates coverage meaninglessly — but
    # removing them needs an AST pass for marginal gain. Keep it simple.
    return lines


def _core_files() -> list:
    return sorted(
        os.path.join(CORE, name) for name in os.listdir(CORE)
        if name.endswith(".py"))


def _run_with_coverage_pkg(pytest_args: list):
    import coverage
    import pytest

    cov = coverage.Coverage(source_pkgs=["repro.core"])
    cov.start()
    code = pytest.main(pytest_args)
    cov.stop()
    per_file = {}
    total_run = total_exec = 0
    data = cov.get_data()
    for path in _core_files():
        _fname, executable, _excluded, missing, _ = cov.analysis2(path)
        run = len(executable) - len(missing)
        per_file[path] = (run, len(executable))
        total_run += run
        total_exec += len(executable)
    return code, per_file, total_run, total_exec


def _run_with_settrace(pytest_args: list):
    import pytest

    hits = {}  # path -> set of line numbers
    prefix = CORE + os.sep

    def tracer(frame, event, arg):
        path = frame.f_code.co_filename
        if not path.startswith(prefix):
            # Returning None stops tracing this frame entirely, but its
            # callees still get a 'call' event — so core frames reached
            # through non-core callers are still counted.
            return tracer if event == "call" else None
        if event == "line":
            hits.setdefault(path, set()).add(frame.f_lineno)
        return tracer

    sys.settrace(tracer)
    try:
        code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)

    per_file = {}
    total_run = total_exec = 0
    for path in _core_files():
        executable = _executable_lines(path)
        run = len(hits.get(path, set()) & executable)
        per_file[path] = (run, len(executable))
        total_run += run
        total_exec += len(executable)
    return code, per_file, total_run, total_exec


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--floor", type=float, default=DEFAULT_FLOOR,
                    help=f"minimum repro/core coverage %% "
                         f"(default {DEFAULT_FLOOR})")
    ap.add_argument("pytest_args", nargs="*",
                    help=f"pytest selection (default: {DEFAULT_TESTS})")
    args = ap.parse_args(argv)
    pytest_args = args.pytest_args or DEFAULT_TESTS

    try:
        import coverage  # noqa: F401
        runner, how = _run_with_coverage_pkg, "coverage.py"
    except ImportError:
        runner, how = _run_with_settrace, "stdlib settrace"

    code, per_file, total_run, total_exec = runner(pytest_args)
    if code != 0:
        print(f"coverage_gate: test run failed (pytest exit {code})")
        return int(code) or 1

    print(f"\nrepro/core line coverage ({how}):")
    for path, (run, n) in sorted(per_file.items()):
        pct = 100.0 * run / n if n else 100.0
        print(f"  {os.path.relpath(path, REPO):<40} "
              f"{run:>5}/{n:<5} {pct:6.1f}%")
    total = 100.0 * total_run / total_exec if total_exec else 100.0
    print(f"  {'TOTAL':<40} {total_run:>5}/{total_exec:<5} {total:6.1f}%")

    if total < args.floor:
        print(f"coverage_gate: FAIL — {total:.1f}% < floor {args.floor}%")
        return 1
    print(f"coverage_gate: OK — {total:.1f}% >= floor {args.floor}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
