#!/usr/bin/env python3
"""Campaign-storage migration with the pftool-style parallel mover.

Run with:  python examples/migration_pftool.py

The paper positions ArkFS as campaign storage and cites LANL's *pftool* as
the parallel data mover for that tier. This example migrates a populated
CephFS tree into a fresh ArkFS deployment with 8 parallel workers, verifies
it with a parallel compare, and finishes with an fsck of the destination.
"""

from repro.baselines import build_cephfs
from repro.core import build_arkfs, fsck
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator
from repro.workloads import mscoco_like, parallel_compare, parallel_copy


def main() -> None:
    sim = Simulator()
    # Source: an aging CephFS deployment holding a dataset tree.
    ceph = build_cephfs(sim, n_clients=1, functional=True)
    src = SyncFS(ceph.client(0), ROOT_CREDS)
    dataset = mscoco_like(n_images=120, seed=42)
    src.makedirs("/campaign/coco")
    for cat in ("train", "val", "test"):
        src.mkdir(f"/campaign/coco/{cat}")
    for img in dataset:
        src.write_file(f"/campaign/coco/{img.category}/{img.name}",
                       img.content())
    print(f"source: {len(dataset)} images, "
          f"{dataset.total_bytes / 1e6:.1f} MB on CephFS")

    # Destination: a fresh ArkFS cluster.
    ark = build_arkfs(sim, n_clients=2, functional=True)

    t0 = sim.now
    stats = sim.run_process(parallel_copy(
        sim, ceph.client(0), ark.client(0), ROOT_CREDS,
        "/campaign", "/campaign", n_workers=8))
    print(f"migrated {stats.files} files / {stats.dirs} dirs "
          f"({stats.bytes_moved / 1e6:.1f} MB) in {sim.now - t0:.2f} s "
          f"simulated; errors: {len(stats.errors)}")

    cmp_stats = sim.run_process(parallel_compare(
        sim, ceph.client(0), ark.client(0), ROOT_CREDS,
        "/campaign", "/campaign"))
    print(f"verification: {'MATCH' if cmp_stats.ok else 'MISMATCH'} "
          f"({cmp_stats.files} files compared)")

    # Quiesce and fsck the destination layout.
    for client in ark.clients:
        sim.run_process(client.sync())
    sim.run(until=sim.now + 3)
    report = sim.run_process(fsck(ark.prt))
    print(report.summary())

    dst = SyncFS(ark.client(0), ROOT_CREDS)
    st = dst.statfs()
    print(f"destination usage: {st.f_files} objects, "
          f"{st.used_bytes / 1e6:.1f} MB used")


if __name__ == "__main__":
    main()
