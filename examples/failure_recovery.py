#!/usr/bin/env python3
"""Crash consistency walkthrough (paper Section III-E).

Run with:  python examples/failure_recovery.py

Demonstrates the two failure scenarios the paper analyzes:

1. a directory leader crashes holding committed-but-uncheckpointed journal
   transactions — the next client to acquire the lease is fenced, replays
   the per-directory journal, and continues;
2. the lease manager crashes and restarts — current leaders keep working
   until their leases expire, and new grants resume after one lease period.
"""

from repro.core import Transaction, build_arkfs, ops_put_dentry, ops_put_inode
from repro.core.types import Dentry, Inode
from repro.posix import FileType, ROOT_CREDS, SyncFS
from repro.sim import Simulator


def scenario_client_crash() -> None:
    print("=== scenario 1: directory leader crashes ===")
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, functional=True)
    fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
    fs1 = SyncFS(cluster.client(1), ROOT_CREDS)

    fs0.mkdir("/archive")
    fs0.write_file("/archive/before-crash", b"durable", do_fsync=True)
    dir_ino = fs0.stat("/archive").st_ino
    print(f"client0 leads /archive "
          f"(holder: {cluster.lease_manager.holder_of(dir_ino)})")

    # Simulate work the leader committed to its journal but had not yet
    # checkpointed to the base objects when it died.
    inode = Inode(ino=0xDEAD, ftype=FileType.REGULAR, mode=0o644, uid=0,
                  gid=0)
    txn = Transaction("crashed-txn", dir_ino, "update", [
        ops_put_inode(inode),
        ops_put_dentry(dir_ino, Dentry("committed-not-checkpointed",
                                       0xDEAD, FileType.REGULAR)),
    ])
    sim.run_process(cluster.store.put(
        cluster.prt.key_journal(dir_ino, 99), txn.to_bytes()))

    print("client0 crashes!")
    cluster.client(0).crash()

    t0 = sim.now
    names = fs1.readdir("/archive")  # fencing + journal replay happen inside
    print(f"client1 takes over after {sim.now - t0:.1f} s of fencing; "
          f"/archive now: {names}")
    assert "committed-not-checkpointed" in names
    assert fs1.read_file("/archive/before-crash") == b"durable"
    print(f"new leader: {cluster.lease_manager.holder_of(dir_ino)}\n")


def scenario_manager_crash() -> None:
    print("=== scenario 2: lease manager crashes and restarts ===")
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, functional=True)
    fs0 = SyncFS(cluster.client(0), ROOT_CREDS)
    fs1 = SyncFS(cluster.client(1), ROOT_CREDS)

    fs0.mkdir("/work")
    fs0.write_file("/work/a", b"1")
    print("lease manager crashes")
    cluster.lease_manager.crash()

    # The current leader continues within its lease ("any client who has
    # the lease can continue its work for its own directory").
    fs0.write_file("/work/b", b"2")
    print("leader kept working during the outage:", fs0.readdir("/work"))

    print("lease manager restarts (refuses grants for one lease period)")
    cluster.lease_manager.restart()
    t0 = sim.now
    data = fs1.read_file("/work/b")  # waits out the startup gate internally
    print(f"client1's first access completed after {sim.now - t0:.1f} s "
          f"and read {data!r}")


def main() -> None:
    scenario_client_crash()
    scenario_manager_crash()


if __name__ == "__main__":
    main()
