#!/usr/bin/env python3
"""The paper's archiving scenario (Table II), end to end.

Run with:  python examples/archiving_pipeline.py

Simulates the burst-buffer-to-campaign-storage pipeline: a synthetic
MS-COCO-like dataset staged on a 1 GB/s EBS volume is tarred into ArkFS,
extracted into categorized directories, and finally tarred back out —
reporting the simulated elapsed time of each stage, on both ArkFS and the
CephFS-K baseline.
"""

from repro.bench.harness import NET_50G, build
from repro.objectstore import EBS_GP_1GBS, LocalDisk
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator
from repro.workloads import (
    archive_from_disk,
    archive_to_disk,
    extract_in_fs,
    mscoco_like,
)

N_IMAGES = 500


def run_pipeline(kind: str) -> None:
    sim = Simulator()
    cluster, mounts = build(kind, sim, n_clients=1, net=NET_50G)
    mount = mounts[0]
    disk = LocalDisk(sim, EBS_GP_1GBS, name="burst-buffer")
    dataset = mscoco_like(N_IMAGES, seed=7)
    fs = SyncFS(cluster.clients[0] if hasattr(cluster, "clients") else mount,
                ROOT_CREDS)

    print(f"\n=== {kind} ===")
    print(f"dataset: {len(dataset)} images, "
          f"{dataset.total_bytes / 1e6:.1f} MB")

    # Stage 1: burst buffer -> campaign storage, as one tar stream.
    t0 = sim.now
    tar_bytes = sim.run_process(
        archive_from_disk(mount, ROOT_CREDS, disk, dataset, "/dataset.tar"))
    t1 = sim.now
    print(f"archive : {t1 - t0:7.3f} s  ({tar_bytes / 1e6:.1f} MB tar)")

    # Stage 2: extract + categorize inside campaign storage.
    n = sim.run_process(
        extract_in_fs(mount, ROOT_CREDS, "/dataset.tar", "/extracted"))
    t2 = sim.now
    print(f"extract : {t2 - t1:7.3f} s  ({n} files into "
          f"{fs.readdir('/extracted')})")

    # Stage 3 (unarchiving): campaign storage -> burst buffer.
    total = sim.run_process(
        archive_to_disk(mount, ROOT_CREDS, "/extracted", disk))
    t3 = sim.now
    print(f"restore : {t3 - t2:7.3f} s  ({total / 1e6:.1f} MB back to EBS)")
    print(f"total   : {t3 - t0:7.3f} s (simulated)")

    # Verify one image made the round trip bit-for-bit.
    img = dataset.images[0]
    assert fs.read_file(f"/extracted/{img.category}/{img.name}") == \
        img.content()
    print("integrity check passed")


def main() -> None:
    for kind in ("arkfs", "cephfs-k"):
        run_pipeline(kind)


if __name__ == "__main__":
    main()
