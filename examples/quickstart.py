#!/usr/bin/env python3
"""Quickstart: build an ArkFS cluster and use it through the POSIX API.

Run with:  python examples/quickstart.py

Builds a two-client ArkFS deployment on the in-memory object store, then
exercises the near-POSIX surface: directories, files, permissions, ACLs,
symlinks, renames — all through the synchronous facade.
"""

from repro.core import build_arkfs
from repro.posix import (
    Acl,
    Credentials,
    OpenFlags,
    PermissionDenied,
    R_OK,
    ROOT_CREDS,
    SyncFS,
)
from repro.sim import Simulator


def main() -> None:
    # One simulator per "world"; the cluster lives inside it.
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, functional=True)

    # A synchronous view of client 0, acting as root.
    fs = SyncFS(cluster.client(0), ROOT_CREDS)

    # -- namespace basics ---------------------------------------------------
    fs.makedirs("/projects/climate/run-001")
    fs.write_file("/projects/climate/run-001/output.dat",
                  b"temperature, pressure\n290.1, 1013\n")
    print("listing:", fs.readdir("/projects/climate/run-001"))
    print("content:", fs.read_file("/projects/climate/run-001/output.dat"))

    # Streamed I/O through open handles (pread/pwrite semantics available).
    with fs.create("/projects/climate/run-001/log.txt") as f:
        f.write(b"step 1 done\n")
        f.write(b"step 2 done\n")
        f.fsync()  # force durability: flush data + commit the journal
    st = fs.stat("/projects/climate/run-001/log.txt")
    print(f"log.txt: {st.st_size} bytes, inode {st.st_ino:#x}")

    # -- a second client sees everything ------------------------------------
    fs2 = SyncFS(cluster.client(1), ROOT_CREDS)
    print("client 2 reads:", fs2.read_file("/projects/climate/run-001/log.txt"))

    # -- permissions and ACLs ------------------------------------------------
    alice = Credentials(uid=1000, gid=1000)
    fs.mkdir("/home")
    fs.mkdir("/home/alice", 0o750)
    fs.chown("/home/alice", 1000, 1000)

    alice_fs = SyncFS(cluster.client(0), alice)
    alice_fs.write_file("/home/alice/notes.txt", b"private", mode=0o600)

    bob = Credentials(uid=1001, gid=1001)
    bob_fs = SyncFS(cluster.client(1), bob)
    try:
        bob_fs.read_file("/home/alice/notes.txt")
    except PermissionDenied:
        print("bob denied, as expected")

    # Grant bob read access via a POSIX ACL (the near-POSIX differentiator).
    acl = alice_fs.getfacl("/home/alice/notes.txt")
    acl.set_user(1001, R_OK)
    alice_fs.setfacl("/home/alice/notes.txt", acl)
    dir_acl = alice_fs.getfacl("/home/alice")
    dir_acl.set_user(1001, 0o5)  # r-x on the directory
    alice_fs.setfacl("/home/alice", dir_acl)
    print("bob via ACL:", bob_fs.read_file("/home/alice/notes.txt"))

    # -- symlinks and rename ---------------------------------------------------
    fs.symlink("/projects/climate/run-001", "/latest-run")
    print("via symlink:", fs.readdir("/latest-run"))
    fs.rename("/projects/climate/run-001/output.dat",
              "/projects/climate/archived.dat")  # cross-directory: 2PC
    print("after rename:", fs.readdir("/projects/climate"))

    # Where did everything go? Straight into object storage, as objects.
    print(f"\nobject store now holds {len(cluster.store)} objects "
          f"(inodes 'i…', dentries 'e…', data 'd…', journals 'j…')")


if __name__ == "__main__":
    main()
