#!/usr/bin/env python3
"""Running ArkFS on a custom object-storage backend.

Run with:  python examples/custom_backend.py

The paper's first design goal: "ArkFS provides a file system interface on
top of any distributed object storage system by simply registering their
REST APIs." Here we register a toy backend — a latency-modelled dict that
could just as well be Swift, MinIO or anything speaking GET/PUT/DELETE —
and mount a full ArkFS on it.
"""

from repro.core import ArkFSClient, DEFAULT_PARAMS, InoAllocator, PRT, mkfs
from repro.core.lease import LeaseManager
from repro.objectstore import NoSuchKey, RestAPIRegistry, RestObjectStore
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Network, Node, Simulator


def build_backend(sim):
    """A user-provided object store: a dict plus a per-op latency model."""
    blobs = {}
    LATENCY = 0.002  # pretend every REST call costs 2 ms

    def rest_get(key):
        yield sim.timeout(LATENCY)
        if key not in blobs:
            raise NoSuchKey(key)
        return blobs[key]

    def rest_put(key, data):
        yield sim.timeout(LATENCY + len(data) / 500e6)
        blobs[key] = bytes(data)

    def rest_delete(key):
        yield sim.timeout(LATENCY)
        if key not in blobs:
            raise NoSuchKey(key)
        del blobs[key]

    def rest_list(prefix):
        yield sim.timeout(LATENCY)
        return [k for k in blobs if k.startswith(prefix)]

    registry = (
        RestAPIRegistry()
        .register("get", rest_get)
        .register("put", rest_put)
        .register("delete", rest_delete)
        .register("list", rest_list)
    )
    return RestObjectStore(sim, registry), blobs


def main() -> None:
    sim = Simulator()
    store, blobs = build_backend(sim)

    # Wire an ArkFS deployment manually on top of the custom backend.
    net = Network(sim)
    prt = PRT(store, DEFAULT_PARAMS.data_object_size)
    mkfs(sim, store)
    mgr_node = Node(sim, "lease-mgr", net=net)
    manager = LeaseManager(sim, mgr_node, DEFAULT_PARAMS)
    alloc = InoAllocator(seed=0)
    node = Node(sim, "client0", cores=8, net=net)
    client = ArkFSClient(sim, node, prt, DEFAULT_PARAMS, manager, alloc)

    fs = SyncFS(client, ROOT_CREDS)
    fs.makedirs("/my/data")
    fs.write_file("/my/data/blob.bin", b"bytes on a custom backend",
                  do_fsync=True)
    print("read back:", fs.read_file("/my/data/blob.bin"))
    print("listing:", fs.readdir("/my/data"))
    print(f"simulated time spent: {sim.now * 1000:.1f} ms "
          f"(every REST call costs 2 ms here)")

    print("\nraw keys in the custom backend:")
    for key in sorted(blobs)[:8]:
        kind = {"i": "inode", "e": "dentry", "d": "data",
                "j": "journal", "t": "decision"}.get(key[0], "?")
        print(f"  [{kind:>8}] {key[:40]}{'…' if len(key) > 40 else ''}")
    if store.emulated_conditional_put:
        print("\nnote: this backend has no atomic conditional PUT; ArkFS "
              "emulates it (fine for single-coordinator workloads).")


if __name__ == "__main__":
    main()
