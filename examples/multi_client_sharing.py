#!/usr/bin/env python3
"""Client-driven metadata in action: leases, forwarding, and data leases.

Run with:  python examples/multi_client_sharing.py

Walks through the protocol of the paper's Figure 3: one client becomes a
directory leader and serves forwarded operations for everyone else; file
data stays cacheable under read/write leases until a genuine write conflict
pushes the file into direct-I/O mode.
"""

from repro.core import build_arkfs
from repro.posix import OpenFlags, ROOT_CREDS, SyncFS
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=3, functional=True)
    c0, c1, c2 = cluster.clients
    fs0, fs1, fs2 = (SyncFS(c, ROOT_CREDS) for c in cluster.clients)
    mgr = cluster.lease_manager

    # -- per-directory leadership -------------------------------------------
    fs0.mkdir("/shared")
    fs0.write_file("/shared/by-c0", b"")
    dir_ino = fs0.stat("/shared").st_ino
    print(f"/shared is led by {mgr.holder_of(dir_ino)} "
          f"(the first client to work there)")

    # c1 and c2 create files in the same directory: their CREATEs are
    # forwarded to the leader over RPC (Fig. 3(b) steps 1-5).
    fs1.write_file("/shared/by-c1", b"")
    fs2.write_file("/shared/by-c2", b"")
    print("directory after forwarded creates:", fs0.readdir("/shared"))
    print(f"lease manager stats: {mgr.stats['acquire']} acquires, "
          f"{mgr.stats['redirect']} redirects")

    # Each client is leader of its own working directory, though:
    fs1.mkdir("/c1-private")
    fs1.write_file("/c1-private/f", b"")
    print(f"/c1-private is led by "
          f"{mgr.holder_of(fs1.stat('/c1-private').st_ino)}")

    # -- file read/write leases (Section III-D) --------------------------------
    fs0.write_file("/shared/data.bin", b"v1" * 1000, do_fsync=True)
    ino = fs0.stat("/shared/data.bin").st_ino

    # Two clients read: both get shared read leases and cache the data.
    h1 = fs1.open("/shared/data.bin", OpenFlags.O_RDWR)
    h2 = fs2.open("/shared/data.bin", OpenFlags.O_RDONLY)
    h1.read(100)
    h2.read(100)
    print(f"\nread-lease holders of data.bin: "
          f"{c0.fleases.holder_count(ino)}")
    print(f"cached entries at c1: {c1.cache.cached_entries(ino)}, "
          f"c2: {c2.cache.cached_entries(ino)}")

    # c1 writes while c2 still holds a read lease: the leader broadcasts
    # cache flushes and the file goes into direct-I/O mode.
    h1.write(b"XX", offset=0)
    print(f"after conflicting write: direct mode = "
          f"{c0.fleases.is_direct(ino)}")
    print(f"c2's cache was invalidated: "
          f"{c2.cache.cached_entries(ino)} entries remain")

    # Everyone still reads consistent bytes (straight from object storage).
    print("c2 reads:", fs2.read_file("/shared/data.bin")[:4])
    h1.close()
    h2.close()


if __name__ == "__main__":
    main()
