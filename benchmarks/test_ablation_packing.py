"""Ablation A8 — packed small-file containers (log-structured packing).

The archiving scenario (Table II: 41K images of ~170 KB) is dominated by
per-object request latency on an S3-like backend: one PUT per small file.
With ``pack_enabled`` the writeback path appends sub-threshold chunks
into shared container objects and pays one large PUT per
``pack_target_size`` bytes, so small-file ingest should speed up by well
over 2x while large-file streaming bandwidth (fig6's regime, chunks at
the 2 MB object size) is untouched — large chunks bypass the pack layer
entirely.

The second test exercises the reclaim machinery: deleting most of a
packed population drops containers below the compaction live-ratio
threshold, and the background compactor must restore a clean layout
(no compaction-debt warnings from fsck, dead containers purged).
"""

import pytest

from repro.bench import NET_50G
from repro.core import DEFAULT_PARAMS, build_arkfs, fsck
from repro.objectstore.profiles import KiB, MiB, S3_PROFILE
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator
from repro.workloads import run_phase

PACK_PARAMS = dict(
    pack_threshold=256 * KiB,
    pack_target_size=4 * MiB,
    pack_seal_age=1.0,
    pack_compact_live_ratio=0.5,
)


def _ingest(pack: bool, scale, n_clients=2, procs=4):
    """Small-file ingest (no per-file fsync, one final drain), S3 backend
    over the paper's 50 GbE fabric. Each process writes a full Table II
    per-proc dataset, so the run reaches the steady state where cache
    eviction writeback — one PUT per small file without packing — bounds
    throughput, not the one-time metadata ramp."""
    files = scale.tar_images_per_proc
    size = int(scale.tar_image_kb * 1024)
    sim = Simulator()
    params = DEFAULT_PARAMS.with_(pack_enabled=pack, **PACK_PARAMS)
    cluster = build_arkfs(sim, n_clients=n_clients, params=params,
                          store_profile=S3_PROFILE, net_params=NET_50G)

    def setup():
        yield from cluster.client(0).mkdir(ROOT_CREDS, "/ingest")
        for c in range(n_clients):
            yield from cluster.client(c).mkdir(ROOT_CREDS, f"/ingest/c{c}")

    run_phase(sim, [sim.process(setup())])

    def worker(c, p):
        client = cluster.client(c)
        payload = bytes([(c * procs + p) % 251 + 1]) * size
        for i in range(files):
            yield from client.write_file(
                ROOT_CREDS, f"/ingest/c{c}/p{p}-f{i}", payload)

    t0 = sim.now
    run_phase(sim, [sim.process(worker(c, p))
                    for c in range(n_clients) for p in range(procs)])
    run_phase(sim, [sim.process(cluster.client(c).sync())
                    for c in range(n_clients)])
    elapsed = sim.now - t0
    total = n_clients * procs * files
    stats = (cluster.client(0).pack.stats
             if cluster.client(0).pack is not None else {})
    return total / elapsed, stats, cluster, sim


@pytest.mark.figure("ablation-A8")
def test_packing_speeds_up_small_file_ingest(bench_once, scale):
    """Acceptance criterion: packed ingest >= 2x unpacked on S3."""

    def run():
        off_rate, _, _, _ = _ingest(False, scale)
        on_rate, stats, cluster, sim = _ingest(True, scale)
        # Spot-check integrity on the packed run before tearing it down.
        fs = SyncFS(cluster.client(1), ROOT_CREDS)
        sample = fs.read_file("/ingest/c0/p0-f0")
        return off_rate, on_rate, stats, len(sample)

    off_rate, on_rate, stats, sample_len = bench_once(run)
    speedup = on_rate / off_rate
    print("\nA8 packed small-file containers (S3 backend, creates/s):")
    print(f"  {'packing':>10} {'rate':>12}")
    print(f"  {'off':>10} {off_rate:>12,.0f}")
    print(f"  {'on':>10} {on_rate:>12,.0f}   ({speedup:.1f}x)")
    print(f"  packed {stats['chunks_packed']} chunks "
          f"({stats['bytes_packed'] / MiB:.1f} MiB) into "
          f"{stats['packs_sealed']} containers")

    assert sample_len > 0
    assert stats["chunks_packed"] > 0
    assert stats["packs_sealed"] < stats["chunks_packed"] / 4, \
        "packing must amortize many chunks per container PUT"
    assert speedup >= 2.0, f"packing speedup {speedup:.2f}x < 2x"


@pytest.mark.figure("ablation-A8")
def test_large_file_path_unaffected_by_packing(bench_once, scale):
    """fig6 guard: chunks at the data-object size bypass the pack layer;
    streaming write bandwidth with packing on stays within 2% of off."""

    def _stream(pack: bool):
        sim = Simulator()
        params = DEFAULT_PARAMS.with_(pack_enabled=pack, **PACK_PARAMS)
        cluster = build_arkfs(sim, n_clients=1, params=params,
                              store_profile=S3_PROFILE)
        size = scale.fio_file

        def setup():
            yield from cluster.client(0).mkdir(ROOT_CREDS, "/big")

        run_phase(sim, [sim.process(setup())])
        t0 = sim.now
        payload = b"\x5a" * size

        def worker():
            yield from cluster.client(0).write_file(ROOT_CREDS, "/big/f",
                                                    payload)

        run_phase(sim, [sim.process(worker())])
        run_phase(sim, [sim.process(cluster.client(0).sync())])
        bw = size / (sim.now - t0)
        packed = (cluster.client(0).pack.stats["chunks_packed"]
                  if cluster.client(0).pack is not None else 0)
        return bw, packed

    def run():
        return _stream(False), _stream(True)

    (off_bw, _), (on_bw, on_packed) = bench_once(run)
    print(f"\nA8 large-file guard: streaming write {off_bw / MiB:,.0f} "
          f"MiB/s off vs {on_bw / MiB:,.0f} MiB/s on "
          f"({(1 - on_bw / off_bw) * 100:+.2f}% delta)")
    assert on_packed == 0, "large chunks must bypass the pack layer"
    assert on_bw >= off_bw * 0.98, \
        f"packing regressed large-file bandwidth: {off_bw} -> {on_bw}"


@pytest.mark.figure("ablation-A8")
def test_compaction_restores_live_ratio(bench_once):
    """Delete two of every three packed files: containers drop below the
    live-ratio threshold, the compactor rewrites the survivors, and the
    settled layout is clean (no compaction debt, no dead containers)."""

    def run():
        sim = Simulator()
        params = DEFAULT_PARAMS.with_(
            pack_enabled=True, pack_threshold=128 * KiB,
            pack_target_size=512 * KiB, pack_seal_age=0.5,
            pack_compact_live_ratio=0.8)
        cluster = build_arkfs(sim, n_clients=1, params=params,
                              functional=True, seed=0)
        client = cluster.client(0)
        fs = SyncFS(client, ROOT_CREDS)
        fs.mkdir("/a")
        n = 30
        for i in range(n):
            fs.write_file(f"/a/f{i}", bytes([i % 251 + 1]) * 50_000)
        sim.run_process(client.sync())
        sim.run(until=sim.now + 2)
        sealed = client.pack.stats["packs_sealed"]
        for i in range(n):
            if i % 3 != 0:
                fs.unlink(f"/a/f{i}")
        sim.run_process(client.sync())
        sim.run(until=sim.now + 6)
        survivors = {f"/a/f{i}": bytes([i % 251 + 1]) * 50_000
                     for i in range(0, n, 3)}
        sim.run_process(client.drop_caches())
        for path, want in survivors.items():
            assert fs.read_file(path) == want, path
        report = sim.run_process(fsck(cluster.prt, pack_live_warn=0.8))
        return sealed, client.pack.stats, report

    sealed, stats, report = bench_once(run)
    print(f"\nA8 compaction: {sealed} containers sealed, "
          f"{stats['compactions']} compactions moved "
          f"{stats['compacted_bytes'] / KiB:.0f} KiB, reclaimed "
          f"{stats['reclaimed_bytes'] / KiB:.0f} KiB "
          f"({stats['containers_purged']} containers purged)")
    assert stats["compactions"] > 0
    assert stats["reclaimed_bytes"] > 0
    assert report.clean, report.summary()
    # Live ratio restored: even at the strict 0.8 warn threshold the
    # settled layout carries no compaction debt.
    assert not any("live ratio" in w for w in report.warnings), \
        report.summary()
