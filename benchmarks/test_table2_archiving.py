"""Table II — tar archiving/unarchiving scenarios.

Paper (32 procs, MS-COCO from a 1 GB/s EBS volume):

                Archiving   Unarchiving
    CephFS-F     2016.86 s    1791.24 s
    CephFS-K      450.28 s     837.35 s
    ArkFS         297.64 s     475.93 s
    Speed-up   6.78x/1.51x   3.76x/1.76x

The improvement over CephFS-K is modest because EBS bandwidth takes a
nontrivial share of the elapsed time — a property our reproduction shares.
"""

import pytest

from repro.bench import table2_archiving, format_table


@pytest.mark.figure("table2")
def test_table2_archiving(bench_once, scale):
    rows = bench_once(table2_archiving, scale)
    print()
    print(format_table("Table II — elapsed seconds (simulated)", rows,
                       unit="s", fmt="{:>14.2f}"))
    for phase in ("Archiving", "Unarchiving"):
        f_ratio = rows["cephfs-f"][phase] / rows["arkfs"][phase]
        k_ratio = rows["cephfs-k"][phase] / rows["arkfs"][phase]
        print(f"{phase:>12}: ArkFS {f_ratio:.2f}x vs CephFS-F "
              f"(paper {'6.78' if phase == 'Archiving' else '3.76'}x), "
              f"{k_ratio:.2f}x vs CephFS-K "
              f"(paper {'1.51' if phase == 'Archiving' else '1.76'}x)")

    for phase in ("Archiving", "Unarchiving"):
        # Ordering: ArkFS fastest, CephFS-F slowest.
        assert rows["arkfs"][phase] < rows["cephfs-k"][phase]
        assert rows["cephfs-k"][phase] < rows["cephfs-f"][phase]
        # The CephFS-K margin stays modest (EBS-bound), as the paper notes.
        assert rows["cephfs-k"][phase] / rows["arkfs"][phase] < 2.5
        # The CephFS-F margin is large.
        assert rows["cephfs-f"][phase] / rows["arkfs"][phase] > 1.5
