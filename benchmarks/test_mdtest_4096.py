"""A 4096-client mdtest-easy CREATE point — the paper's full client scale.

Fig. 4's x-axis tops out at 4096 clients; until the fast kernel landed this
point was too slow for CI. It now builds + runs in ~20 s at small
files-per-client, so the bench-smoke budget can afford one full-scale
sample. The simulated creation rate lands in ``BENCH_mdtest4096.json``.
"""

from repro.bench.harness import NET_50G, build
from repro.sim import Simulator
from repro.sim.stats import kernel_counters
from repro.workloads import mdtest_easy

N_CLIENTS = 4096
FILES_PER_PROC = 2


def _mdtest_4096():
    sim = Simulator()
    _cluster, mounts = build("arkfs", sim, n_clients=N_CLIENTS, net=NET_50G)
    result = mdtest_easy(sim, mounts, n_procs=N_CLIENTS,
                         files_per_proc=FILES_PER_PROC, phases=("CREATE",))
    return result, kernel_counters(sim)


def test_mdtest_easy_4096_clients(bench_once, benchmark):
    result, counters = bench_once(_mdtest_4096)
    rate = result.phases["CREATE"]
    benchmark.extra_info["n_clients"] = N_CLIENTS
    benchmark.extra_info["files_per_proc"] = FILES_PER_PROC
    benchmark.extra_info["create_ops_per_sec"] = rate
    benchmark.extra_info["kernel_counters"] = counters
    print(f"\nmdtest-easy CREATE @ {N_CLIENTS} clients: {rate:,.0f} ops/s")
    assert rate > 0
