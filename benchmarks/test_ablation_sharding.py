"""Ablation A9 — elastic metadata plane (directory sharding).

mdtest-hard with EVERY process creating in ONE shared directory is the
adversarial case for ArkFS's directory-grained metadata distribution:
exactly one client leads the directory, so every create funnels through
that single authority and aggregate throughput stops scaling with client
count — the *single-owner ceiling*. With ``shards_enabled`` the directory
splits into hash-ranged sub-shards, each with its own metatable, journal,
and lease; consistent-hash shard-lease placement spreads the shard
leaderships over the client population, so the same workload fans out
over many authorities.

The ceiling only binds when the authority's *service capacity* is the
bottleneck. A real metadata service is CPU-bound at a few tens of
thousands of ops/s; the default model parameters (``md_op_cpu`` = 8 us on
32 spare cores) put that ceiling three orders of magnitude above what the
client-side mounts can generate, so this benchmark models a realistically
busy authority — ``md_op_cpu`` = 100 us on 4 spare cores, the same
technique the tier-1 lease-manager scalability test uses
(``lease_op_cpu`` = 3 ms) to surface ITS bottleneck at test scale.

Both modes run the identical workload at two process counts. The
headline: the shards-off curve is flat between them (the ceiling), while
the shards-on curve keeps scaling and beats the off-mode plateau.

The directory is pre-populated past the split threshold before the timed
phase, so the numbers are steady-state sharded throughput, not the
one-time split cost (which is measured and printed separately by the
crashcheck-covered split path: a sub-second pause of one directory).
"""

import pytest

from repro.bench import NET_50G
from repro.bench.harness import _attach_obs
from repro.core import DEFAULT_PARAMS, build_arkfs
from repro.objectstore.profiles import MiB, RADOS_PROFILE
from repro.posix import ROOT_CREDS, SyncFS
from repro.sim import Simulator
from repro.workloads import mdtest_hard

#: Spare cores a client can give its metadata-authority role while the
#: application owns the rest of the machine.
AUTHORITY_CORES = 4
#: Per-metadata-op service CPU for a realistically busy authority.
AUTHORITY_MD_OP_CPU = 1e-4

N_CLIENTS = 16


def _run(shards: bool, n_procs: int, files_per_proc: int) -> float:
    """Timed mdtest-hard WRITE into one shared directory; returns ops/s."""
    sim = Simulator()
    params = DEFAULT_PARAMS.with_(
        cache_capacity_bytes=96 * MiB,
        md_op_cpu=AUTHORITY_MD_OP_CPU,
        shards_enabled=shards,
        shard_split_threshold=64,
        shard_fanout=16,
    )
    cluster = build_arkfs(sim, n_clients=N_CLIENTS, params=params,
                          store_profile=RADOS_PROFILE, net_params=NET_50G,
                          client_cores=AUTHORITY_CORES)
    _attach_obs(f"shards-{'on' if shards else 'off'}-p{n_procs}", sim,
                cluster)
    # Pre-populate past the split threshold: with sharding on, the split
    # completes before the clock starts, so the timed phase measures the
    # steady state both modes would see on a long-lived hot directory.
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/mdtest-hard")
    fs.mkdir("/mdtest-hard/shared.0")
    for i in range(70):
        fs.write_file(f"/mdtest-hard/shared.0/warm{i}", b"x")
    sim.run(until=sim.now + 2)
    if shards:
        n_maps = sum(1 for c in cluster.clients if c._shard_maps)
        assert n_maps > 0, "warm-up must split the shared directory"
    r = mdtest_hard(sim, cluster.mounts, n_procs=n_procs,
                    files_per_proc=files_per_proc, n_dirs=1,
                    phases=("WRITE",))
    assert r.errors["WRITE"] == 0
    return r.phases["WRITE"]


@pytest.mark.figure("ablation-A9")
def test_sharding_scales_one_shared_directory(bench_once, scale):
    """Acceptance criterion: with every process hammering ONE directory,
    shards-on throughput at full scale must EXCEED the shards-off
    single-owner plateau — and by a widening margin as processes double."""
    procs_half = 32 * scale.hard_files_per_proc // 50  # 32 small, 64 full
    procs_full = 2 * procs_half
    files = 25

    def run():
        off_half = _run(False, procs_half, files)
        off_full = _run(False, procs_full, files)
        on_half = _run(True, procs_half, files)
        on_full = _run(True, procs_full, files)
        return off_half, off_full, on_half, on_full

    off_half, off_full, on_half, on_full = bench_once(run)
    print("\nA9 one shared directory, mdtest-hard WRITE (creates/s):")
    print(f"  {'procs':>8} {'shards off':>12} {'shards on':>12} {'on/off':>8}")
    print(f"  {procs_half:>8} {off_half:>12,.0f} {on_half:>12,.0f} "
          f"{on_half / off_half:>7.2f}x")
    print(f"  {procs_full:>8} {off_full:>12,.0f} {on_full:>12,.0f} "
          f"{on_full / off_full:>7.2f}x")
    off_growth = off_full / off_half - 1
    on_growth = on_full / on_half - 1
    print(f"  doubling procs grows off {off_growth * 100:+.0f}% "
          f"(the ceiling) vs on {on_growth * 100:+.0f}%")

    # The single-owner ceiling: doubling the process count barely moves
    # the shards-off number.
    assert off_growth < 0.25, \
        f"shards-off was expected to plateau, grew {off_growth * 100:.0f}%"
    # The headline: sharded throughput breaks through that ceiling.
    assert on_full > off_full * 1.25, \
        f"sharded {on_full:.0f} ops/s did not beat the single-owner " \
        f"ceiling {off_full:.0f} ops/s by >= 1.25x"
    # And it got there by scaling, not by a constant-factor head start.
    assert on_growth > off_growth, \
        "sharded mode must keep scaling where the single owner cannot"
