"""Fig. 7 — metadata scalability, 1..512 clients.

Paper: ArkFS-pcache is near-linear up to 512 clients; ArkFS-no-pcache
suffers a drastic drop already at 2 clients (near-root hotspot + per-LOOKUP
path traversal) and stays far below; CephFS-K with 1 MDS collapses; 16 MDSs
improve it by at most ~3.24x beyond 64 clients.
"""

import pytest

from repro.bench import fig7_arkfs_scalability, format_series


@pytest.mark.figure("fig7")
def test_fig7_scalability(bench_once, scale):
    series = bench_once(fig7_arkfs_scalability, scale)
    print()
    print(format_series("Fig. 7 — normalized create throughput", series))

    xs = sorted(scale.scal_clients)
    top = xs[-1]

    # ArkFS-pcache: near-linear (≥60% of ideal at the largest scale).
    ark = series["arkfs"]
    assert ark[top] > 0.6 * top, ark[top]

    # ArkFS-no-pcache: drastic drop at 2 clients (paper's exact phrasing),
    # and far below pcache at scale.
    nop = series["arkfs-no-pcache"]
    assert nop[2] < 0.8, nop[2]
    assert nop[top] < 0.55 * ark[top]

    # CephFS-K (1 MDS): not scalable; well below 10% of ideal at the top.
    k1 = series["cephfs-k"]
    assert k1[top] < 0.1 * top

    # 16 MDSs help, but only by a small factor at high client counts
    # (paper: at most 3.24x beyond 64 clients).
    k16 = series["cephfs-k16"]
    gain = k16[top] / k1[top]
    assert 1.5 < gain < 10.0, gain
    assert k16[top] < 0.5 * ark[top]
