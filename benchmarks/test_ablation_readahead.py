"""Ablation A3 — the read-ahead window policy (Section III-D).

The paper's cache opens the window to the maximum when a file is read from
offset 0 and doubles it on sequential reads otherwise. This ablation sweeps
the maximum window (off / 2 MB / 8 MB / 64 MB) on the S3 backend where the
per-request latency makes pipelining decisive.
"""

import pytest

from repro.core import DEFAULT_PARAMS, build_arkfs
from repro.objectstore.profiles import MiB, S3_PROFILE
from repro.sim import Simulator
from repro.workloads import fio_seq


def _read_mbps(max_readahead, file_size=32 * MiB):
    sim = Simulator()
    params = DEFAULT_PARAMS.with_(max_readahead=max_readahead,
                                  cache_capacity_bytes=256 * MiB)
    cluster = build_arkfs(sim, n_clients=1, params=params,
                          store_profile=S3_PROFILE)
    result = fio_seq(sim, cluster.mounts, n_procs=2, file_size=file_size)
    return result.read_mbps


@pytest.mark.figure("ablation-A3")
def test_readahead_window_sweep(bench_once):
    def run():
        return {ra: _read_mbps(ra)
                for ra in (0, 2 * MiB, 8 * MiB, 64 * MiB)}

    rates = bench_once(run)
    print("\nA3 read-ahead sweep on S3 (READ MB/s):")
    for ra, rate in sorted(rates.items()):
        print(f"  {'off' if ra == 0 else f'{ra // MiB} MiB':>8}: {rate:,.0f}")
    # Monotone improvement, large total effect.
    assert rates[2 * MiB] > rates[0]
    assert rates[8 * MiB] > rates[2 * MiB]
    assert rates[64 * MiB] > rates[8 * MiB]
    assert rates[64 * MiB] > 4 * rates[0]


@pytest.mark.figure("ablation-A3")
def test_start_of_file_window_boost(bench_once):
    """Reading from offset 0 opens the window immediately (the paper's
    special case); starting mid-file must ramp up by doubling instead."""
    from repro.core import ReadAheadState

    def run():
        ra0 = ReadAheadState()
        ra0.on_read(0, 4096, entry_size=2 * MiB, max_readahead=8 * MiB)
        ra_mid = ReadAheadState()
        ra_mid.on_read(4096, 4096, entry_size=2 * MiB, max_readahead=8 * MiB)
        return ra0.window, ra_mid.window

    from_start, from_mid = bench_once(run)
    print(f"\nA3 window after first read: from offset 0 -> "
          f"{from_start // MiB} MiB, mid-file -> {from_mid // MiB} MiB")
    assert from_start == 8 * MiB
    assert from_mid == 2 * MiB
