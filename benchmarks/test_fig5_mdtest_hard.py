"""Fig. 5 — mdtest-hard throughput (3901-byte files, shared directories).

Paper: ArkFS wins every phase but by less than in mdtest-easy (shared
directories); the STAT-phase gap vs CephFS-K narrows because of the FUSE
exclusive lookup lock; READ is at most 4.65x; MarFS errors in READ.
"""

import pytest

from repro.bench import fig4_mdtest_easy, fig5_mdtest_hard, format_table


@pytest.mark.figure("fig5")
def test_fig5_mdtest_hard(bench_once, scale):
    rows = bench_once(fig5_mdtest_hard, scale)
    print()
    print(format_table("Fig. 5 — mdtest-hard", rows, unit="ops/s",
                       fmt="{:>14.0f}"))

    for phase in ("WRITE", "STAT", "READ", "DELETE"):
        ark = rows["arkfs"][phase]
        for other in ("cephfs-k", "cephfs-f"):
            assert ark > rows[other][phase], (phase, other)

    # MarFS returns errors in the READ phase (as in the paper's environment).
    assert rows["marfs"]["READ"] == 0.0
    assert rows["marfs"].get("READ_errors", 0) > 0

    # WRITE advantage is "somewhat reduced" vs mdtest-easy's CREATE.
    write_gap = rows["arkfs"]["WRITE"] / rows["cephfs-k"]["WRITE"]
    assert write_gap < 10, write_gap

    # READ advantage bounded (paper: at most 4.65x over the others that
    # complete the phase).
    read_gap = rows["arkfs"]["READ"] / rows["cephfs-k"]["READ"]
    assert 1.0 < read_gap < 8.0, read_gap


@pytest.mark.figure("fig5")
def test_stat_gap_narrows_from_easy_to_hard(bench_once, scale):
    """The paper's FUSE-lookup-lock observation, quantified: ArkFS's STAT
    advantage over CephFS-K must shrink from mdtest-easy to mdtest-hard."""
    easy = fig4_mdtest_easy(scale, kinds=("arkfs", "cephfs-k"))
    hard = bench_once(fig5_mdtest_hard, scale, kinds=("arkfs", "cephfs-k"))
    easy_gap = easy["arkfs"]["STAT"] / easy["cephfs-k"]["STAT"]
    hard_gap = hard["arkfs"]["STAT"] / hard["cephfs-k"]["STAT"]
    print(f"\nSTAT gap: easy {easy_gap:.1f}x -> hard {hard_gap:.1f}x")
    assert hard_gap < easy_gap
