"""IO500-style combined scores (not a paper figure; the paper uses IO500's
mdtest configurations, this completes the scoring side)."""

import pytest

from repro.bench.io500 import io500_run, io500_table


@pytest.mark.figure("io500")
def test_combined_scores_rank_like_the_paper(bench_once, scale):
    def run():
        return {k: io500_run(k, scale)
                for k in ("arkfs", "cephfs-k", "cephfs-f")}

    results = bench_once(run)
    print()
    print(io500_table.__doc__ and "")
    for kind, r in results.items():
        print(f"  {kind:>10}: BW {r.bw_score:6.2f} GiB/s, "
              f"MD {r.md_score:7.1f} kIOPS, score {r.score:6.2f}")
    # ArkFS's metadata advantage dominates the combined score.
    assert results["arkfs"].score > results["cephfs-k"].score
    assert results["cephfs-k"].score > results["cephfs-f"].score
    assert results["arkfs"].md_score > 2 * results["cephfs-k"].md_score
    # Bandwidth scores stay within one order (parity claims of Fig. 6a).
    assert results["arkfs"].bw_score < 3 * results["cephfs-k"].bw_score
