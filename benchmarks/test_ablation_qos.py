"""Ablation A11 — multi-tenant QoS plane (slow-tenant isolation).

Archive-as-a-service: a Zipf-distributed tenant population ingests small
files through a few gateway clients while one abusive tenant floods a
dedicated gateway with concurrent big-object streams. Unprotected
(``arkfs``), the flood multiplies every victim's p99; with the QoS plane
(``arkfs-qos``: per-tenant token buckets, WFQ at the OSD queues and the
lease-manager CPU, bounded in-flight admission) the abuser is capped to
its byte rate and victims keep their solo latency. The acceptance gate is
the ISSUE's isolation bound — victim p99 under attack within 1.5x of its
solo p99 — plus an order-of-magnitude cap on the abuser's throughput.
Per-tenant latency histograms land in BENCH_qos.json for every config.
"""

import pytest

from repro.bench.qos import ISOLATION_BOUND, format_qos_report, qos_ablation


@pytest.mark.figure("ablation-A11")
def test_qos_isolates_victims_from_abuser(bench_once, scale):
    """Acceptance criterion: victim p99 under attack < 1.5x solo p99."""

    results = bench_once(qos_ablation, scale)
    solo = results["solo"]
    on = results["qos-on"]
    off = results["qos-off"]
    print("\n" + format_qos_report(results))

    # The default build must not construct the QoS plane at all.
    assert "qos" not in off, "qos-off control built a QosManager"
    assert "qos" in on and "qos" in solo

    # Isolation: every victim op under attack within the bound.
    ratio = on["victim_p99"] / solo["victim_p99"]
    assert ratio < ISOLATION_BOUND, \
        f"victim p99 under attack {ratio:.2f}x solo (bound {ISOLATION_BOUND}x)"

    # The unprotected control shows the damage the plane prevents: the
    # same flood at least doubles the victims' p99.
    assert off["victim_p99"] / solo["victim_p99"] >= 2.0, \
        "qos-off control shows no abuser damage; scenario lost its teeth"

    # Capping: the abuser's achieved throughput drops by an order of
    # magnitude relative to the unprotected run.
    assert on["abusive_ops"] > 0, "abuser starved entirely (deadlock?)"
    assert on["abusive_rate"] * 10 <= off["abusive_rate"], \
        (f"abuser barely capped: {on['abusive_rate']:.0f}/s with QoS vs "
         f"{off['abusive_rate']:.0f}/s without")

    # The plane actually engaged: ops were admitted and the byte bucket
    # fired on the abuser's flood.
    q = on["qos"]
    assert q["admitted"] > 0
    assert q["throttle_bytes"] > 0, "byte bucket never throttled the abuser"
    # The solo run must ride the same plane without throttling victims —
    # otherwise the baseline itself is QoS-inflated and the bound is easy.
    assert solo["qos"]["throttle_bytes"] == 0, \
        "solo victims hit the byte bucket; solo baseline is not clean"
