"""Fig. 4 — mdtest-easy throughput (empty-file metadata operations).

Paper: ArkFS far above every competitor in all three phases (up to 24.86x
vs CephFS); CephFS-K beats CephFS-F and MarFS; 16 MDSs buy CephFS-K at most
2.41x over 1 MDS.
"""

import pytest

from repro.bench import fig4_mdtest_easy, format_speedups, format_table


@pytest.mark.figure("fig4")
def test_fig4_mdtest_easy(bench_once, scale):
    rows = bench_once(fig4_mdtest_easy, scale)
    print()
    print(format_table("Fig. 4 — mdtest-easy", rows, unit="ops/s",
                       fmt="{:>14.0f}"))
    print(format_speedups("ArkFS advantage (paper: up to 24.86x vs CephFS):",
                          rows, "arkfs", ["cephfs-f", "cephfs-k"]))

    for phase in ("CREATE", "STAT", "DELETE"):
        ark = rows["arkfs"][phase]
        # ArkFS dominates every phase, by a large factor.
        for other in ("cephfs-k", "cephfs-k16", "cephfs-f", "marfs"):
            assert ark > 3 * rows[other][phase], (phase, other)
        # CephFS-K ahead of the FUSE-based CephFS-F and MarFS.
        assert rows["cephfs-k"][phase] > rows["cephfs-f"][phase] * 0.95
        assert rows["cephfs-k"][phase] > rows["marfs"][phase]

    # The headline ratio lands near the paper's 24.86x (vs CephFS).
    headline = max(rows["arkfs"][p] / rows["cephfs-f"][p]
                   for p in ("CREATE", "STAT", "DELETE"))
    assert 8 <= headline <= 80, headline

    # Multi-MDS gain is modest (paper: at most 2.41x). At reduced process
    # counts the distributed-lock overhead can even cancel the gain.
    gain = rows["cephfs-k16"]["CREATE"] / rows["cephfs-k"]["CREATE"]
    if scale.mdtest_procs >= 16:
        assert 1.1 <= gain <= 4.0, gain
    else:
        assert 0.7 <= gain <= 4.0, gain
