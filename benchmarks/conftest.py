"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures/tables in *simulated*
time and prints the reproduced rows next to the paper's claims. They run
under pytest-benchmark (``pytest benchmarks/ --benchmark-only``); the
benchmark clock then measures the wall time of the reproduction itself,
while the printed tables carry the simulated results that correspond to the
paper's numbers.

Set ``REPRO_SCALE=small`` for a quick pass (used in CI).
"""

import json
import os

import pytest

from repro.bench import BENCH_OBS, DEFAULT, SMALL


def pytest_configure(config):
    config.addinivalue_line("markers",
                            "figure(name): maps a benchmark to a paper figure")


@pytest.fixture(scope="session")
def scale():
    return SMALL if os.environ.get("REPRO_SCALE") == "small" else DEFAULT


#: Max points kept per sampled series in BENCH_*.json (full-resolution
#: series stay available in-process; the JSON carries a sketch).
_MAX_SERIES_POINTS = 64


def _compact_series(snapshot):
    for series in snapshot.get("series", {}).values():
        n = len(series["t"])
        if n > _MAX_SERIES_POINTS:
            step = -(-n // _MAX_SERIES_POINTS)  # ceil
            series["t"] = series["t"][::step]
            series["v"] = series["v"][::step]
        series["n_samples"] = n
    return snapshot


def _drain_metrics(benchmark):
    """Attach every built cluster's metrics snapshot to the benchmark's
    ``extra_info`` — pytest-benchmark writes it into BENCH_*.json."""
    metrics = []
    for kind, obs in BENCH_OBS.collected:
        snap = _compact_series(obs.metrics.to_dict())
        try:
            # Strict round-trip: a NaN/Infinity would render BENCH_*.json
            # non-standard JSON; drop the offending snapshot loudly instead.
            json.dumps(snap, allow_nan=False)
        except ValueError as exc:
            snap = {"error": f"non-finite metric value dropped: {exc}"}
        metrics.append({"kind": kind, "metrics": snap})
    if metrics:
        benchmark.extra_info["metrics"] = metrics


@pytest.fixture
def bench_once(benchmark):
    """Run a deterministic experiment exactly once under pytest-benchmark."""

    def run(fn, *args, **kwargs):
        BENCH_OBS.reset()
        try:
            return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                      iterations=1, rounds=1, warmup_rounds=0)
        finally:
            _drain_metrics(benchmark)
            BENCH_OBS.reset()

    return run
