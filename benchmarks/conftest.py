"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures/tables in *simulated*
time and prints the reproduced rows next to the paper's claims. They run
under pytest-benchmark (``pytest benchmarks/ --benchmark-only``); the
benchmark clock then measures the wall time of the reproduction itself,
while the printed tables carry the simulated results that correspond to the
paper's numbers.

Set ``REPRO_SCALE=small`` for a quick pass (used in CI).
"""

import os

import pytest

from repro.bench import DEFAULT, SMALL


def pytest_configure(config):
    config.addinivalue_line("markers",
                            "figure(name): maps a benchmark to a paper figure")


@pytest.fixture(scope="session")
def scale():
    return SMALL if os.environ.get("REPRO_SCALE") == "small" else DEFAULT


@pytest.fixture
def bench_once(benchmark):
    """Run a deterministic experiment exactly once under pytest-benchmark."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1, warmup_rounds=0)

    return run
