"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures/tables in *simulated*
time and prints the reproduced rows next to the paper's claims. They run
under pytest-benchmark (``pytest benchmarks/ --benchmark-only``); the
benchmark clock then measures the wall time of the reproduction itself,
while the printed tables carry the simulated results that correspond to the
paper's numbers.

Set ``REPRO_SCALE=small`` for a quick pass (used in CI).
"""

import json
import os

import pytest

from repro.bench import BENCH_OBS, DEFAULT, SMALL


def pytest_configure(config):
    config.addinivalue_line("markers",
                            "figure(name): maps a benchmark to a paper figure")


@pytest.fixture(scope="session")
def scale():
    return SMALL if os.environ.get("REPRO_SCALE") == "small" else DEFAULT


#: Max points kept per sampled series in BENCH_*.json (full-resolution
#: series stay available in-process; the JSON carries a sketch).
_MAX_SERIES_POINTS = 64


def _compact_series(snapshot):
    for series in snapshot.get("series", {}).values():
        n = len(series["t"])
        if n > _MAX_SERIES_POINTS:
            step = -(-n // _MAX_SERIES_POINTS)  # ceil
            series["t"] = series["t"][::step]
            series["v"] = series["v"][::step]
        series["n_samples"] = n
    return snapshot


def _obs_header():
    """The observability header recorded in every BENCH_*.json: which
    kernel ran and what tracing/sampling was active, so walls from
    different configurations are never compared blind."""
    from repro.sim.engine import DEFAULT_FAST

    return {
        "kernel_mode": "fast" if DEFAULT_FAST else "heap",
        "sample_rate": 1.0 if BENCH_OBS.tracing else BENCH_OBS.sample_rate,
        "tracing": BENCH_OBS.tracing,
        "slowlog": BENCH_OBS.slowlog,
        "recorder": BENCH_OBS.recorder,
    }


#: Dump of the most recent drained run, for the on-failure artifact hook.
_LAST_OBS_DUMP = None


def _drain_metrics(benchmark):
    """Attach every built cluster's metrics snapshot to the benchmark's
    ``extra_info`` — pytest-benchmark writes it into BENCH_*.json."""
    global _LAST_OBS_DUMP
    benchmark.extra_info["obs"] = _obs_header()
    metrics = []
    failure_dump = []
    for kind, obs in BENCH_OBS.collected:
        snap = _compact_series(obs.metrics.to_dict())
        try:
            # Strict round-trip: a NaN/Infinity would render BENCH_*.json
            # non-standard JSON; drop the offending snapshot loudly instead.
            json.dumps(snap, allow_nan=False)
        except ValueError as exc:
            snap = {"error": f"non-finite metric value dropped: {exc}"}
        entry = {"kind": kind, "metrics": snap}
        if obs.slowlog is not None and obs.slowlog.n_slow:
            entry["slowlog"] = obs.slowlog.to_dict(max_entries=5)
        if obs.recorder is not None:
            entry["recorder"] = {"recorded": obs.recorder.recorded,
                                 "dropped": obs.recorder.dropped}
            failure_dump.append({"kind": kind,
                                 "flight": obs.recorder.to_dict()})
        metrics.append(entry)
    if metrics:
        benchmark.extra_info["metrics"] = metrics
    _LAST_OBS_DUMP = failure_dump or None


@pytest.fixture
def bench_once(benchmark):
    """Run a deterministic experiment exactly once under pytest-benchmark."""

    def run(fn, *args, **kwargs):
        BENCH_OBS.reset()
        try:
            return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                      iterations=1, rounds=1, warmup_rounds=0)
        finally:
            _drain_metrics(benchmark)
            BENCH_OBS.reset()

    return run


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """On benchmark failure, drop the flight-recorder rings of the last
    drained run next to the working directory so CI can upload them."""
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed or not _LAST_OBS_DUMP:
        return
    path = f"obs_failure_{item.name}.json"
    try:
        with open(path, "w") as f:
            f.write(json.dumps({"test": item.nodeid,
                                "dumps": _LAST_OBS_DUMP}, allow_nan=False))
    except (OSError, ValueError):
        pass  # best-effort diagnostics; never mask the real failure
