"""Ablation A7 — parallel scatter-gather I/O fan-out.

With read-ahead disabled, a cold read that spans several 2 MB data objects
exercises the demand-fetch path directly: ``fetch_parallel=1`` pays one
object-store round trip per entry, while the default fan-out overlaps them
and the whole request costs ~one round trip. Likewise ``writeback_parallel``
controls how many dirty-entry PUTs an fsync's flush issues concurrently.
Both are run on the S3 backend, where per-request latency dominates.
"""

import pytest

from repro.bench.report import format_fanout
from repro.core import DEFAULT_PARAMS, build_arkfs
from repro.objectstore.profiles import MiB, S3_PROFILE
from repro.sim import Simulator
from repro.workloads import fio_seq


def _run(fetch_parallel, writeback_parallel=8):
    sim = Simulator()
    params = DEFAULT_PARAMS.with_(
        max_readahead=0,                 # isolate the demand-fetch path
        fetch_parallel=fetch_parallel,
        writeback_parallel=writeback_parallel,
        cache_capacity_bytes=256 * MiB,
    )
    cluster = build_arkfs(sim, n_clients=1, params=params,
                          store_profile=S3_PROFILE)
    result = fio_seq(sim, cluster.mounts, n_procs=2, file_size=64 * MiB,
                     block_size=16 * MiB)
    return result, cluster


@pytest.mark.figure("ablation-A7")
def test_fetch_fanout_speedup(bench_once):
    """Large sequential cold reads: default fan-out >= 2x over serial."""

    def run():
        serial, _ = _run(fetch_parallel=1)
        fanned, cluster = _run(fetch_parallel=DEFAULT_PARAMS.fetch_parallel)
        return serial, fanned, cluster

    serial, fanned, cluster = bench_once(run)
    speedup = fanned.read_mbps / serial.read_mbps
    print("\nA7 demand-fetch fan-out on S3 "
          "(16 MiB requests, read-ahead off, READ MB/s):")
    print(f"  fetch_parallel=1 : {serial.read_mbps:8,.0f}")
    print(f"  fetch_parallel={DEFAULT_PARAMS.fetch_parallel:<2d}: "
          f"{fanned.read_mbps:8,.0f}")
    print(f"  speedup          : {speedup:.2f}x")
    client = cluster.client(0)
    print(format_fanout("fan-out counters (default run):",
                        client.cache.stats, client.journal.fanout))
    assert client.cache.stats["batched_gets"] > 0
    assert speedup >= 2.0


@pytest.mark.figure("ablation-A7")
def test_writeback_fanout_speedup(bench_once):
    """fsync flushes: the flusher pool beats one-PUT-at-a-time writeback."""

    def run():
        serial, _ = _run(fetch_parallel=16, writeback_parallel=1)
        fanned, _ = _run(fetch_parallel=16, writeback_parallel=8)
        return serial, fanned

    serial, fanned = bench_once(run)
    speedup = fanned.write_mbps / serial.write_mbps
    print("\nA7 writeback fan-out on S3 (WRITE MB/s incl. fsync):")
    print(f"  writeback_parallel=1: {serial.write_mbps:8,.0f}")
    print(f"  writeback_parallel=8: {fanned.write_mbps:8,.0f}")
    print(f"  speedup             : {speedup:.2f}x")
    assert speedup >= 1.5
