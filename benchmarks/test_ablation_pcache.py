"""Ablation A5 — permission caching vs directory depth (Section III-C).

Without pcache, every LOOKUP performs a path traversal that consults each
ancestor's leader over RPC; the cost grows with depth and hammers near-root
leaders. With pcache, ancestors resolve from the local permission cache.
"""

import pytest

from repro.core import DEFAULT_PARAMS, build_arkfs
from repro.posix import AlreadyExists, OpenFlags, ROOT_CREDS
from repro.sim import Simulator
from repro.workloads import run_phase


def _deep_create_rate(pcache: bool, depth: int, n_clients=4, files=60):
    sim = Simulator()
    params = DEFAULT_PARAMS.with_(permission_cache=pcache)
    cluster = build_arkfs(sim, n_clients=n_clients, params=params)
    mounts = cluster.mounts
    prefix = "/" + "/".join(f"lvl{d}" for d in range(depth))

    def setup():
        for d in range(depth):
            p = "/" + "/".join(f"lvl{i}" for i in range(d + 1))
            try:
                yield from mounts[0].mkdir(ROOT_CREDS, p)
            except AlreadyExists:
                pass
        for c in range(n_clients):
            yield from mounts[c].mkdir(ROOT_CREDS, f"{prefix}/c{c}")

    run_phase(sim, [sim.process(setup())])

    def worker(c):
        m = mounts[c]
        for i in range(files):
            h = yield from m.open(
                ROOT_CREDS, f"{prefix}/c{c}/f{i}",
                OpenFlags.O_CREAT | OpenFlags.O_EXCL | OpenFlags.O_WRONLY)
            yield from m.close(h)

    t0 = sim.now
    run_phase(sim, [sim.process(worker(c)) for c in range(n_clients)])
    return n_clients * files / (sim.now - t0)


@pytest.mark.figure("ablation-A5")
def test_pcache_wins_and_depth_hurts_without_it(bench_once):
    def run():
        out = {}
        for depth in (2, 4, 8):
            out[depth] = (_deep_create_rate(True, depth),
                          _deep_create_rate(False, depth))
        return out

    rows = bench_once(run)
    print("\nA5 permission caching vs path depth (CREATE ops/s):")
    print(f"  {'depth':>6} {'pcache':>12} {'no-pcache':>12} {'gain':>7}")
    for depth, (with_pc, without) in sorted(rows.items()):
        print(f"  {depth:>6} {with_pc:>12,.0f} {without:>12,.0f} "
              f"{with_pc / without:>6.1f}x")

    for depth, (with_pc, without) in rows.items():
        assert with_pc > without, depth
    # The no-pcache penalty grows with depth (more remote ancestors/LOOKUP).
    gain_shallow = rows[2][0] / rows[2][1]
    gain_deep = rows[8][0] / rows[8][1]
    assert gain_deep > gain_shallow
