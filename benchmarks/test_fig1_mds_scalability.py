"""Fig. 1 — scalability problem of a dedicated metadata server.

Paper: massive file creations on CephFS (1 MDS) while varying clients up to
512; aggregate throughput peaks around 4 clients and collapses beyond.
"""

import pytest

from repro.bench import fig1_mds_scalability, format_series


@pytest.mark.figure("fig1")
def test_fig1_cephfs_collapse(bench_once, scale):
    series = bench_once(fig1_mds_scalability, scale)
    print()
    print(format_series("Fig. 1 — CephFS-K (1 MDS) normalized create "
                        "throughput", {"cephfs-k": series}))
    xs = sorted(series)
    peak_x = max(series, key=series.get)
    # Paper shape: the peak sits at a small client count (the paper's is at
    # ~4), the curve is far from linear at the top, and throughput collapses
    # well below the peak for large client counts.
    assert peak_x <= 8, f"peak at {peak_x} clients"
    assert series[xs[-1]] < 0.15 * xs[-1], "must be far from linear scaling"
    assert series[xs[-1]] < 0.6 * series[peak_x], \
        "throughput must collapse at high client counts"
