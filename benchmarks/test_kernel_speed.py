"""Kernel microbenchmark: fast two-queue scheduler vs. reference heap kernel.

Measures raw scheduler throughput (simulated operations per real second) on
the two workloads from :mod:`repro.bench.kernelbench`, each under both
kernels. The speedups land in ``BENCH_kernel.json`` via ``extra_info`` and
``scripts/perf_gate.py`` gates CI on them (ratios, not absolute ops/sec, so
host speed mostly cancels).

The fig6a data-path benchmark is gated on *deterministic* kernel counters
instead of wall clock: fig6a is dominated by cache/data movement, not the
scheduler, so its wall-clock delta between kernels is small and drowns in
noise on a loaded host — but the event-elision the fast kernel performs is
exactly reproducible, so the counter reduction is assertable bit-for-bit.

Measured reference numbers (same machine, best of 3, fresh process):

* pingpong:  legacy/pre-PR ~37-42k ops/s, fast ~167-208k  -> 4.4-5.0x
* contended: legacy/pre-PR ~339-405k ops/s, fast ~515-554k -> 1.4x
  (per-op generator frames shared by both kernels floor this ratio)
* fig6a arkfs events: legacy 13,898 loop / 13,910 heap pushes;
  fast 9,556 loop / 7,630 heap pushes (4,340 consumed inline)

Assertion floors sit well under the measured speedups to absorb CI noise.
"""

import time

import pytest

from repro.bench import SMALL
from repro.bench.harness import NET_50G, build
from repro.bench.kernelbench import compare
from repro.sim import Simulator
from repro.sim.stats import kernel_counters
from repro.workloads import fio_seq

#: Absolute throughputs measured at the commit before the fast kernel
#: landed (the in-process ``fast=False`` kernel is the same algorithm).
PRE_PR = {"pingpong_ops_per_sec": 37_200.0,
          "contended_ops_per_sec": 339_000.0}

# (workload, minimum fast-vs-legacy speedup). Measured: pingpong 4.4-5.2x,
# contended 1.24-1.45x.
_FLOORS = [("pingpong", 3.5), ("contended", 1.1)]


@pytest.mark.parametrize("workload,floor", _FLOORS)
def test_kernel_microbench_speedup(benchmark, workload, floor):
    result = benchmark.pedantic(compare, args=(workload,),
                                iterations=1, rounds=1, warmup_rounds=0)
    fast, legacy = result["fast"], result["legacy"]
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["speedup"] = result["speedup"]
    benchmark.extra_info["fast_ops_per_sec"] = fast["ops_per_sec"]
    benchmark.extra_info["legacy_ops_per_sec"] = legacy["ops_per_sec"]
    benchmark.extra_info["fast_counters"] = fast["counters"]
    benchmark.extra_info["legacy_counters"] = legacy["counters"]
    benchmark.extra_info["pre_pr"] = PRE_PR
    print(f"\n{workload}: fast {fast['ops_per_sec']:,.0f} ops/s, "
          f"legacy {legacy['ops_per_sec']:,.0f} ops/s, "
          f"speedup {result['speedup']:.2f}x")
    assert result["speedup"] >= floor, (
        f"{workload}: fast kernel only {result['speedup']:.2f}x over the "
        f"heap-only scheduler (floor {floor}x)")


def _fig6a_arkfs(fast):
    """The fig6a arkfs leg with the Simulator in hand, so the kernel
    counters are readable afterwards."""
    sim = Simulator(fast=fast)
    _cluster, mounts = build("arkfs", sim, n_clients=SMALL.fio_nodes,
                             net=NET_50G,
                             cache_capacity=max(96 * 1024 * 1024,
                                                SMALL.fio_file // 2))
    t0 = time.perf_counter()
    result = fio_seq(sim, mounts, n_procs=SMALL.fio_procs,
                     file_size=SMALL.fio_file, block_size=SMALL.fio_block)
    wall = time.perf_counter() - t0
    return ((result.write_mbps, result.read_mbps), kernel_counters(sim),
            wall)


def test_fig6a_event_elision_and_identity(benchmark):
    """On the fig6a arkfs workload the fast kernel must elide a large,
    deterministic share of the reference kernel's events while producing
    identical simulated bandwidths. Wall clocks are recorded for the JSON
    but not asserted: this workload is data-path-bound, so its wall delta
    is within host noise."""

    def measure():
        r_fast, c_fast, w_fast = _fig6a_arkfs(True)
        r_legacy, c_legacy, w_legacy = _fig6a_arkfs(False)
        assert r_fast == r_legacy  # bit-identical simulated bandwidths
        return {"fast": c_fast, "legacy": c_legacy,
                "fast_wall_s": w_fast, "legacy_wall_s": w_legacy}

    out = benchmark.pedantic(measure, iterations=1, rounds=1,
                             warmup_rounds=0)
    benchmark.extra_info["workload"] = "fig6a_arkfs_small"
    benchmark.extra_info.update(out)
    loop_cut = 1 - out["fast"]["loop_events"] / out["legacy"]["loop_events"]
    heap_cut = 1 - out["fast"]["heap_pushes"] / out["legacy"]["heap_pushes"]
    print(f"\nfig6a arkfs: loop events {out['legacy']['loop_events']} -> "
          f"{out['fast']['loop_events']} (-{loop_cut:.0%}), heap pushes "
          f"{out['legacy']['heap_pushes']} -> {out['fast']['heap_pushes']} "
          f"(-{heap_cut:.0%}), {out['fast']['inline_events']} inline")
    # Measured: 31% fewer loop events, 45% fewer heap pushes, 4340 inline.
    assert loop_cut >= 0.25
    assert heap_cut >= 0.35
    assert out["fast"]["inline_events"] > 0
    assert out["legacy"]["inline_events"] == 0
