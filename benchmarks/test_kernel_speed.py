"""Kernel microbenchmark: fast two-queue scheduler vs. reference heap kernel.

Measures raw scheduler throughput (simulated operations per real second) on
the two workloads from :mod:`repro.bench.kernelbench`, each under both
kernels. The speedups land in ``BENCH_kernel.json`` via ``extra_info`` and
``scripts/perf_gate.py`` gates CI on them (ratios, not absolute ops/sec, so
host speed mostly cancels).

The fig6a data-path benchmark is gated on *deterministic* kernel counters
instead of wall clock: fig6a is dominated by cache/data movement, not the
scheduler, so its wall-clock delta between kernels is small and drowns in
noise on a loaded host — but the event-elision the fast kernel performs is
exactly reproducible, so the counter reduction is assertable bit-for-bit.

Measured reference numbers (same machine, best of 3, fresh process):

* pingpong:  legacy/pre-PR ~37-42k ops/s, fast ~167-208k  -> 4.4-5.0x
* contended: legacy/pre-PR ~339-405k ops/s, fast ~515-554k -> 1.4x
  (per-op generator frames shared by both kernels floor this ratio)
* fig6a arkfs events: legacy 13,898 loop / 13,910 heap pushes;
  fast 9,556 loop / 7,630 heap pushes (4,340 consumed inline)

Assertion floors sit well under the measured speedups to absorb CI noise.
"""

import gc
import time

import pytest

from repro.bench import SMALL
from repro.bench.harness import BENCH_OBS, NET_50G, build
from repro.bench.kernelbench import compare, pingpong
from repro.obs import ROOT_CAT, chrome_trace_events
from repro.sim import Simulator
from repro.sim.stats import kernel_counters
from repro.workloads import fio_seq

#: Absolute throughputs measured at the commit before the fast kernel
#: landed (the in-process ``fast=False`` kernel is the same algorithm).
PRE_PR = {"pingpong_ops_per_sec": 37_200.0,
          "contended_ops_per_sec": 339_000.0}

# (workload, minimum fast-vs-legacy speedup). Measured: pingpong 4.4-5.2x,
# contended 1.24-1.45x.
_FLOORS = [("pingpong", 3.5), ("contended", 1.1)]


@pytest.mark.parametrize("workload,floor", _FLOORS)
def test_kernel_microbench_speedup(benchmark, workload, floor):
    result = benchmark.pedantic(compare, args=(workload,),
                                iterations=1, rounds=1, warmup_rounds=0)
    fast, legacy = result["fast"], result["legacy"]
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["speedup"] = result["speedup"]
    benchmark.extra_info["fast_ops_per_sec"] = fast["ops_per_sec"]
    benchmark.extra_info["legacy_ops_per_sec"] = legacy["ops_per_sec"]
    benchmark.extra_info["fast_counters"] = fast["counters"]
    benchmark.extra_info["legacy_counters"] = legacy["counters"]
    benchmark.extra_info["pre_pr"] = PRE_PR
    print(f"\n{workload}: fast {fast['ops_per_sec']:,.0f} ops/s, "
          f"legacy {legacy['ops_per_sec']:,.0f} ops/s, "
          f"speedup {result['speedup']:.2f}x")
    assert result["speedup"] >= floor, (
        f"{workload}: fast kernel only {result['speedup']:.2f}x over the "
        f"heap-only scheduler (floor {floor}x)")


def _fig6a_arkfs(fast):
    """The fig6a arkfs leg with the Simulator in hand, so the kernel
    counters are readable afterwards."""
    sim = Simulator(fast=fast)
    _cluster, mounts = build("arkfs", sim, n_clients=SMALL.fio_nodes,
                             net=NET_50G,
                             cache_capacity=max(96 * 1024 * 1024,
                                                SMALL.fio_file // 2))
    t0 = time.perf_counter()
    result = fio_seq(sim, mounts, n_procs=SMALL.fio_procs,
                     file_size=SMALL.fio_file, block_size=SMALL.fio_block)
    wall = time.perf_counter() - t0
    return ((result.write_mbps, result.read_mbps), kernel_counters(sim),
            wall)


def test_fig6a_event_elision_and_identity(benchmark):
    """On the fig6a arkfs workload the fast kernel must elide a large,
    deterministic share of the reference kernel's events while producing
    identical simulated bandwidths. Wall clocks are recorded for the JSON
    but not asserted: this workload is data-path-bound, so its wall delta
    is within host noise."""

    def measure():
        r_fast, c_fast, w_fast = _fig6a_arkfs(True)
        r_legacy, c_legacy, w_legacy = _fig6a_arkfs(False)
        assert r_fast == r_legacy  # bit-identical simulated bandwidths
        return {"fast": c_fast, "legacy": c_legacy,
                "fast_wall_s": w_fast, "legacy_wall_s": w_legacy}

    out = benchmark.pedantic(measure, iterations=1, rounds=1,
                             warmup_rounds=0)
    benchmark.extra_info["workload"] = "fig6a_arkfs_small"
    benchmark.extra_info.update(out)
    loop_cut = 1 - out["fast"]["loop_events"] / out["legacy"]["loop_events"]
    heap_cut = 1 - out["fast"]["heap_pushes"] / out["legacy"]["heap_pushes"]
    print(f"\nfig6a arkfs: loop events {out['legacy']['loop_events']} -> "
          f"{out['fast']['loop_events']} (-{loop_cut:.0%}), heap pushes "
          f"{out['legacy']['heap_pushes']} -> {out['fast']['heap_pushes']} "
          f"(-{heap_cut:.0%}), {out['fast']['inline_events']} inline")
    # Measured: 31% fewer loop events, 45% fewer heap pushes, 4340 inline.
    assert loop_cut >= 0.25
    assert heap_cut >= 0.35
    assert out["fast"]["inline_events"] > 0
    assert out["legacy"]["inline_events"] == 0


def _set_obs(monkeypatch, on: bool) -> None:
    monkeypatch.setattr(BENCH_OBS, "tracing", False)
    monkeypatch.setattr(BENCH_OBS, "sample_rate", 0.01 if on else 0.0)
    monkeypatch.setattr(BENCH_OBS, "slowlog", on)
    monkeypatch.setattr(BENCH_OBS, "recorder", on)


def test_observability_overhead_and_sampling(benchmark, monkeypatch):
    """The always-on tier (1% sampled tracing + slowlog + recorder) must
    cost <=5% of untraced fast-kernel throughput, keep simulated results
    bit-identical, and actually export the deterministically sampled
    fraction of root-op spans."""

    def measure():
        # Raw scheduler hot path: pingpong with the tier installed pays
        # one extra attribute check per Process._step (best of 3 each).
        pp_off = max(pingpong(fast=True)["ops_per_sec"] for _ in range(3))
        pp_on = max(pingpong(fast=True, obs=True)["ops_per_sec"]
                    for _ in range(3))

        # Full data path: fig6a arkfs, tier on vs. fully off. The configs
        # alternate within each trial so host-speed drift (thermal, cache,
        # competing load) hits both equally; best-of-3 per config. Cyclic
        # GC is quiesced and paused around each timed run: collection cost
        # scales with whatever unrelated live heap earlier tests left
        # behind, which otherwise amplifies the tier's small allocation
        # rate into an arbitrary wall-clock penalty.
        walls = {True: None, False: None}
        mbps = {}
        obs = None
        for _ in range(3):
            for on in (True, False):
                _set_obs(monkeypatch, on)
                BENCH_OBS.reset()
                gc.collect()
                gc_was = gc.isenabled()
                gc.disable()
                try:
                    r, _counters, w = _fig6a_arkfs(True)
                finally:
                    if gc_was:
                        gc.enable()
                if on and obs is None:
                    obs = BENCH_OBS.collected[-1][1]
                BENCH_OBS.reset()
                assert mbps.setdefault(on, r) == r
                if walls[on] is None or w < walls[on]:
                    walls[on] = w
        return (pp_off, pp_on, mbps[True], walls[True],
                mbps[False], walls[False], obs)

    (pp_off, pp_on, mbps_on, wall_on,
     mbps_off, wall_off, obs) = benchmark.pedantic(
        measure, iterations=1, rounds=1, warmup_rounds=0)

    pp_ratio = pp_on / pp_off
    fig6a_ratio = wall_off / wall_on  # >1 when the tier-on run was faster
    benchmark.extra_info["workload"] = "obs_overhead"
    benchmark.extra_info["pingpong_obs_ratio"] = pp_ratio
    benchmark.extra_info["fig6a_obs_ratio"] = fig6a_ratio
    print(f"\nobs overhead: pingpong {pp_ratio:.3f}x of untraced, "
          f"fig6a {fig6a_ratio:.3f}x (walls {wall_on:.2f}s vs "
          f"{wall_off:.2f}s)")

    # Bit-identity: sampling/slowlog/recorder never touch simulated time.
    assert mbps_on == mbps_off

    # The sampled-span contract: exactly the hash-chosen fraction of root
    # ops traced, and each traced op exported a root span.
    ob = obs._op_observer
    assert ob.n_root > 0
    assert ob.n_sampled == ob.expected_sampled()
    assert ob.n_sampled >= 1
    root_events = [e for e in chrome_trace_events([obs.tracer])
                   if e["ph"] == "X" and e["cat"] == ROOT_CAT
                   and e["args"].get("op") is not None]
    assert len(root_events) == ob.n_sampled

    # <=5% overhead on both the scheduler hot path and the data path.
    assert pp_ratio >= 0.95, f"pingpong with obs at {pp_ratio:.3f}x"
    assert fig6a_ratio >= 0.95, f"fig6a with obs at {fig6a_ratio:.3f}x"
