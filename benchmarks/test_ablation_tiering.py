"""Ablation A10 — hot/cold tiered object store (write-back staging,
demand promotion, lifecycle demotion).

The archival scenario the paper motivates (ingest once, read back later)
is hostile to a single capacity tier: every aged read pays the cold
store's first-byte latency. ``arkfs-tier`` fronts the same cold-S3
profile with a capacity-bounded RADOS-like hot tier — writes land hot
and drain in the background, aged reads promote on first miss and hit
hot on every re-read. The acceptance gate is a >= 2x aged-read latency
improvement over the single-tier ``arkfs-cold`` baseline, with the hit
rate and cold GET-byte savings printed and carried into BENCH_tier.json
via the tier metric counters.
"""

import pytest

from repro.bench.tiering import (REREADS, format_tier_report, tier_ablation)


@pytest.mark.figure("ablation-A10")
def test_tiering_speeds_up_aged_reads(bench_once, scale):
    """Acceptance criterion: tiered aged reads >= 2x single-tier cold."""

    results = bench_once(tier_ablation, scale)
    cold = results["arkfs-cold"]
    tier = results["arkfs-tier"]
    print("\n" + format_tier_report(results))

    speedup = cold["read_mean"] / tier["read_mean"]
    stats = tier["tier"]
    assert cold["tier"] is None, \
        "single-tier baseline must not construct a tier"
    assert stats is not None
    assert speedup >= 2.0, f"tiering speedup {speedup:.2f}x < 2x"
    # The read mix makes REREADS passes; pass one is the promotion misses,
    # the rest should be absorbed hot. Demand a clear majority of hits.
    assert tier["hit_rate"] >= (REREADS - 2) / REREADS, \
        f"hot hit rate {tier['hit_rate']:.2%} too low"
    assert stats["promotions"] > 0, "aged reads must demand-promote"
    assert stats["demotions"] > 0, \
        "ingest beyond hot capacity must trigger lifecycle demotion"
    # Cold GET-byte savings: the hot tier must serve more bytes than the
    # cold store does during the aged mix.
    assert stats["hit_bytes"] > stats["cold_get_bytes"], \
        "hot tier served fewer bytes than cold during the read mix"
    assert tier["cold_cost_saved"] > 0.0
    # Write-back staging must not slow ingest below the cold baseline.
    assert tier["ingest_rate"] >= cold["ingest_rate"], \
        "staged writes should not be slower than single-tier cold ingest"
