"""Ablation A6 — backend durability scheme: 3x replication vs 4+2 erasure.

The paper notes object stores "guarantee high durability and reliability by
means of replication and erasure coding mechanisms" but evaluates only the
replicated RADOS pool. This ablation runs ArkFS's fio WRITE phase on both:
EC halves the raw bytes written per logical byte (1.5x vs 3x overhead) at
the cost of striping + encode latency per object.
"""

import pytest

from repro.core import DEFAULT_PARAMS, build_arkfs
from repro.objectstore import RADOS_EC_PROFILE, RADOS_PROFILE, MiB
from repro.sim import Simulator
from repro.workloads import fio_seq


def _fio_write(profile, file_size=32 * MiB, procs=2):
    sim = Simulator()
    cluster = build_arkfs(
        sim, n_clients=1, store_profile=profile,
        params=DEFAULT_PARAMS.with_(cache_capacity_bytes=64 * MiB))
    result = fio_seq(sim, cluster.mounts, n_procs=procs,
                     file_size=file_size)
    return result


@pytest.mark.figure("ablation-A6")
def test_erasure_coding_vs_replication(bench_once):
    def run():
        return {
            "replication-3x": _fio_write(RADOS_PROFILE),
            "ec-4+2": _fio_write(RADOS_EC_PROFILE),
        }

    results = bench_once(run)
    print("\nA6 durability scheme (ArkFS fio):")
    for name, r in results.items():
        print(f"  {name:>15}: WRITE {r.write_mbps:8,.0f} MB/s, "
              f"READ {r.read_mbps:8,.0f} MB/s")
    print(f"  raw-storage overhead: "
          f"{RADOS_PROFILE.storage_overhead:.1f}x vs "
          f"{RADOS_EC_PROFILE.storage_overhead:.1f}x")

    # EC moves half the raw bytes: same-or-better write bandwidth.
    assert results["ec-4+2"].write_mbps >= \
        0.9 * results["replication-3x"].write_mbps
    # Reads remain competitive (k parallel shard reads vs one replica read).
    assert results["ec-4+2"].read_mbps >= \
        0.5 * results["replication-3x"].read_mbps
