"""Ablation A4 — lease period vs re-acquisition overhead (Section III-B).

The 5 s default lease means a leader working in bursts usually extends
instead of reloading its metatable. Very short leases force reloads
(inode GET + dentry LIST + child-inode GETs) between bursts.
"""

import pytest

from repro.core import DEFAULT_PARAMS, build_arkfs
from repro.posix import OpenFlags, ROOT_CREDS
from repro.sim import Simulator
from repro.workloads import run_phase


def _bursty_creates(lease_period, n_bursts=6, burst=25, think=0.6):
    """One client creating in bursts with idle gaps; returns active time
    (total minus the fixed think time)."""
    sim = Simulator()
    params = DEFAULT_PARAMS.with_(lease_period=lease_period,
                                  lease_renew_margin=lease_period / 5)
    cluster = build_arkfs(sim, n_clients=2, params=params)
    mount = cluster.mounts[0]

    def worker():
        yield from mount.mkdir(ROOT_CREDS, "/work")
        for b in range(n_bursts):
            for i in range(burst):
                h = yield from mount.open(
                    ROOT_CREDS, f"/work/f{b}.{i}",
                    OpenFlags.O_CREAT | OpenFlags.O_EXCL | OpenFlags.O_WRONLY)
                yield from mount.close(h)
            yield sim.timeout(think)

    t0 = sim.now
    run_phase(sim, [sim.process(worker())])
    return (sim.now - t0) - n_bursts * think


@pytest.mark.figure("ablation-A4")
def test_short_leases_force_metatable_reloads(bench_once):
    def run():
        return {period: _bursty_creates(period)
                for period in (0.2, 1.0, 5.0)}

    times = bench_once(run)
    print("\nA4 lease period sweep (active seconds for bursty creates):")
    for period, t in sorted(times.items()):
        print(f"  {period:>4.1f} s lease: {t * 1000:8.1f} ms active")
    # A 0.2 s lease expires during every 0.6 s think pause: each burst
    # re-acquires and reloads a growing metatable. 5 s leases never lapse.
    assert times[0.2] > times[5.0] * 1.5
    assert times[1.0] >= times[5.0] * 0.9
