"""Ablations A1/A2 — the journaling design choices.

A1: per-directory journals vs one global journal. The paper's motivation:
"the single journal area could be a performance bottleneck due to
serialized journal writings ... multiple journals allow parallel commits".

A2: compound-transaction buffering interval (paper: 1 s in-memory
transactions). Committing every op synchronously pays a storage round trip
per metadata operation.
"""

import pytest

from repro.core import DEFAULT_PARAMS, build_arkfs
from repro.sim import Simulator
from repro.workloads import mdtest_easy


def _easy_create_rate(params, n_procs=8, files=120):
    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=4, params=params)
    result = mdtest_easy(sim, cluster.mounts, n_procs=n_procs,
                         files_per_proc=files, phases=("CREATE",))
    return result.phases["CREATE"]


@pytest.mark.figure("ablation-A1")
def test_per_directory_journal_beats_global_journal(bench_once):
    def run():
        per_dir = _easy_create_rate(DEFAULT_PARAMS)
        single = _easy_create_rate(DEFAULT_PARAMS.with_(single_journal=True))
        return per_dir, single

    per_dir, single = bench_once(run)
    print(f"\nA1 journal layout: per-directory {per_dir:,.0f} ops/s vs "
          f"single global {single:,.0f} ops/s "
          f"({per_dir / single:.2f}x)")
    assert per_dir > single, "per-directory journaling must win"


@pytest.mark.figure("ablation-A2")
def test_compound_transactions_amortize_commits(bench_once):
    def run():
        out = {}
        for interval in (0.0, 0.1, 1.0):
            out[interval] = _easy_create_rate(
                DEFAULT_PARAMS.with_(journal_commit_interval=interval))
        return out

    rates = bench_once(run)
    print("\nA2 commit interval sweep (CREATE ops/s):")
    for interval, rate in sorted(rates.items()):
        label = "sync (no buffering)" if interval == 0 else f"{interval:.1f} s"
        print(f"  {label:>20}: {rate:,.0f}")
    # Synchronous commits pay a journal PUT per op: far slower.
    assert rates[1.0] > 3 * rates[0.0]
    # Longer buffering never hurts in this workload.
    assert rates[1.0] >= rates[0.1] * 0.8
