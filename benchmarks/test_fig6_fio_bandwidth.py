"""Fig. 6 — large-file sequential I/O bandwidth (fio).

Paper, RADOS side (a): WRITE parity between ArkFS, CephFS-F and CephFS-K;
READ parity between ArkFS and CephFS-K, with CephFS-F far lower (128 KB
max read-ahead).

Paper, S3 side (b): ArkFS 5.95x WRITE and 3.59x READ over S3FS (slow disk
staging cache); goofys READ well above ArkFS-ra8MB (400 MB read-ahead);
ArkFS-ra400MB comparable to goofys.
"""

import pytest

from repro.bench import fig6a_fio_rados, fig6b_fio_s3, format_table


@pytest.mark.figure("fig6a")
def test_fig6a_rados(bench_once, scale):
    rows = bench_once(fig6a_fio_rados, scale)
    print()
    print(format_table("Fig. 6(a) — fio on RADOS", rows, unit="MB/s",
                       fmt="{:>14.0f}"))

    writes = [rows[k]["WRITE"] for k in ("arkfs", "cephfs-k", "cephfs-f")]
    # WRITE parity: write-back caches absorb everywhere (within ~35%).
    assert max(writes) / min(writes) < 1.35, writes

    # READ: ArkFS ~ CephFS-K (both 8 MB read-ahead) >> CephFS-F (128 KB).
    assert rows["arkfs"]["READ"] / rows["cephfs-k"]["READ"] < 2.0
    assert rows["cephfs-k"]["READ"] > 1.5 * rows["cephfs-f"]["READ"]
    assert rows["arkfs"]["READ"] > 2.0 * rows["cephfs-f"]["READ"]


@pytest.mark.figure("fig6b")
def test_fig6b_s3(bench_once, scale):
    rows = bench_once(fig6b_fio_s3, scale)
    print()
    print(format_table("Fig. 6(b) — fio on S3", rows, unit="MB/s",
                       fmt="{:>14.0f}"))
    w_ratio = rows["arkfs-s3"]["WRITE"] / rows["s3fs"]["WRITE"]
    r_ratio = rows["arkfs-s3"]["READ"] / rows["s3fs"]["READ"]
    print(f"ArkFS vs S3FS: WRITE {w_ratio:.2f}x (paper 5.95x), "
          f"READ {r_ratio:.2f}x (paper 3.59x)")

    # ArkFS far above S3FS on both sides (paper: 5.95x / 3.59x).
    assert 3.0 < w_ratio < 12.0, w_ratio
    assert 2.0 < r_ratio < 12.0, r_ratio

    # goofys READ well above ArkFS-ra8MB...
    assert rows["goofys"]["READ"] > 1.5 * rows["arkfs-s3"]["READ"]
    # ... and ArkFS-ra400MB catches up to (or passes) goofys.
    assert rows["arkfs-s3-ra400"]["READ"] > 0.8 * rows["goofys"]["READ"]
    # The read-ahead sweep itself: 400 MB >> 8 MB for ArkFS on S3.
    assert rows["arkfs-s3-ra400"]["READ"] > 2 * rows["arkfs-s3"]["READ"]
