"""FUSE and kernel mount models.

The paper attributes several first-order effects to the FUSE kernel driver:

* every path-based operation is decomposed into per-component ``LOOKUP``
  requests to the user-space daemon ("if an application calls
  CREATE(/home/foo.txt), it incurs three LOOKUP requests ... and ArkFS
  performs path traversal on each request") — this is what makes the
  no-pcache configuration collapse (Fig. 7);
* the kernel holds an exclusive per-directory lock until the user-space
  daemon completes a LOOKUP, which narrows ArkFS's STAT-phase advantage in
  mdtest-hard (Fig. 5);
* each request pays user/kernel crossing overhead, which (together with
  ceph-fuse's global client lock) keeps CephFS-F and MarFS slow (Fig. 4).

:class:`FuseMount` wraps any :class:`~repro.posix.vfs.VFSClient` and adds
exactly these behaviours; :class:`KernelMount` models an in-kernel client
(CephFS-K): cheap crossings, no user-space lock extension.

Both maintain a positive dentry cache with a TTL (the kernel dcache /
FUSE ``entry_timeout``), shared by all processes using the mount.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..obs.trace import ROOT_CAT
from ..sim.engine import SimGen
from ..sim.network import Node
from ..sim.resources import Mutex
from . import path as pathmod
from .errors import NotFound
from .types import Credentials, OpenFlags
from .vfs import FileHandle, VFSClient

__all__ = ["MountParams", "FuseMount", "KernelMount", "FUSE_DEFAULTS",
           "KERNEL_DEFAULTS"]


@dataclass(frozen=True)
class MountParams:
    """Mount-layer costs and behaviours."""

    crossing_latency: float = 10e-6    # per-request user<->kernel round trip
    dispatch_cpu: float = 3e-6         # daemon/kernel dispatch work per request
    entry_ttl: float = 1.0             # dentry cache validity (entry_timeout)
    lookup_locked: bool = True         # dir lock held across user-space LOOKUP
    global_lock_service: float = 0.0   # ceph-fuse-style global client mutex
    data_lock_service: float = -1.0    # lock hold per *data* request; the
                                       # buffer-cache insert is much shorter
                                       # than a metadata op (-1: same value)
    max_request: int = 128 * 1024      # FUSE max_write: I/O request split size

    @property
    def effective_data_lock(self) -> float:
        if self.data_lock_service >= 0:
            return self.data_lock_service
        return self.global_lock_service


FUSE_DEFAULTS = MountParams()
KERNEL_DEFAULTS = MountParams(crossing_latency=0.7e-6, dispatch_cpu=0.8e-6,
                              lookup_locked=False)


class _MountBase(VFSClient):
    """Shared plumbing for FUSE and kernel mounts."""

    def __init__(self, inner: VFSClient, node: Node, params: MountParams):
        self.inner = inner
        self.node = node
        self.params = params
        self.sim = inner.sim
        # Positive dentry cache: path -> expiry time. Shared across processes.
        self._dcache: Dict[str, float] = {}
        # Per-directory exclusive lookup/mutation locks (kernel i_rwsem).
        self._dir_locks: Dict[str, Mutex] = {}
        self._global_lock: Optional[Mutex] = (
            Mutex(self.sim, name="fuse.client_lock")
            if params.global_lock_service > 0 else None
        )
        self.request_count = 0

    # -- request cost plumbing ------------------------------------------------

    def _request(self) -> SimGen:
        """Cost of shipping one request through the mount boundary."""
        self.request_count += 1
        if self.params.crossing_latency > 0:
            tr = self.sim._tracer
            if tr is not None:
                with tr.span("fuse.crossing", "fuse"):
                    yield self.sim.timeout(self.params.crossing_latency)
            else:
                yield self.sim.timeout(self.params.crossing_latency)
        if self.params.dispatch_cpu > 0:
            yield from self.node.work(self.params.dispatch_cpu)

    def _lock(self, lock: Mutex) -> SimGen:
        """Request ``lock``, attributing a contended wait when traced;
        returns the granted request (caller releases it)."""
        tr = self.sim._tracer
        req = lock.request()
        if tr is not None and not req.granted:
            with tr.span(lock._wait_name, "queue"):
                yield req
        else:
            yield req
        return req

    def _globally_locked(self, gen: SimGen) -> SimGen:
        """Run ``gen`` under the client-global mutex (ceph-fuse style)."""
        if self._global_lock is None:
            return (yield from gen)
        req = yield from self._lock(self._global_lock)
        try:
            yield from self.node.work(self.params.global_lock_service)
            return (yield from gen)
        finally:
            self._global_lock.release(req)

    def _dir_lock(self, dirpath: str) -> Mutex:
        lock = self._dir_locks.get(dirpath)
        if lock is None:
            lock = Mutex(self.sim, name=f"dirlock:{dirpath}")
            self._dir_locks[dirpath] = lock
        return lock

    # -- dentry cache -----------------------------------------------------------

    def _dcache_valid(self, path: str) -> bool:
        exp = self._dcache.get(path)
        return exp is not None and exp > self.sim.now

    def _dcache_insert(self, path: str) -> None:
        self._dcache[path] = self.sim.now + self.params.entry_ttl

    def invalidate_dcache(self) -> None:
        """Drop every cached dentry (benchmarks use this at phase barriers:
        at real mdtest scale each phase far outlives the 1 s entry TTL, so
        carrying entries across phases would be a scale-down artifact)."""
        self._dcache.clear()

    def _dcache_drop(self, path: str) -> None:
        self._dcache.pop(path, None)
        # Invalidate the whole subtree (rename/rmdir of a directory).
        prefix = path + "/"
        for key in [k for k in self._dcache if k.startswith(prefix)]:
            del self._dcache[key]

    # -- LOOKUP traffic ------------------------------------------------------------

    def _lookup_component(self, creds: Credentials, parent: str,
                          name: str) -> SimGen:
        """One LOOKUP request: cost + (optionally locked) daemon-side resolve."""
        yield from self._request()
        hold_dir_lock = self.params.lookup_locked

        def resolve() -> SimGen:
            return (yield from self.inner.lookup(creds, parent, name))

        if hold_dir_lock:
            lock = self._dir_lock(parent)
            req = yield from self._lock(lock)
            try:
                result = yield from self._globally_locked(resolve())
            finally:
                lock.release(req)
        else:
            result = yield from self._globally_locked(resolve())
        return result

    def _walk(self, creds: Credentials, path: str,
              include_final: bool = True) -> SimGen:
        """Issue LOOKUPs for every non-cached component of ``path``.

        Returns the normalized path. Raises what the daemon raises (ENOENT,
        EACCES, ...) exactly as the kernel would surface it.
        """
        parts = pathmod.split_path(path)
        upto = len(parts) if include_final else len(parts) - 1
        cur = ""
        for i in range(upto):
            parent = "/" + "/".join(parts[:i]) if i else "/"
            cur = parent.rstrip("/") + "/" + parts[i]
            if self._dcache_valid(cur):
                continue
            yield from self._lookup_component(creds, parent, parts[i])
            self._dcache_insert(cur)
        return "/" + "/".join(parts)

    # -- operation wrappers ----------------------------------------------------------

    def _pathop(self, creds: Credentials, path: str, gen: SimGen,
                lock_parent: bool = False, walk_final: bool = True,
                tolerate_missing_final: bool = False) -> SimGen:
        """LOOKUP walk + one request carrying the actual operation."""
        try:
            yield from self._walk(creds, path, include_final=walk_final)
        except NotFound:
            if not tolerate_missing_final:
                raise
        yield from self._request()
        if lock_parent:
            parent, _name = pathmod.parent_and_name(path)
            lock = self._dir_lock(parent)
            req = yield from self._lock(lock)
            try:
                return (yield from self._globally_locked(gen))
            finally:
                lock.release(req)
        return (yield from self._globally_locked(gen))

    # -- VFS implementation ------------------------------------------------------------

    def lookup(self, creds: Credentials, dir_path: str, name: str) -> SimGen:
        return (yield from self.inner.lookup(creds, dir_path, name))

    def mkdir(self, creds: Credentials, path: str, mode: int = 0o777) -> SimGen:
        result = yield from self._pathop(
            creds, path, self.inner.mkdir(creds, path, mode),
            lock_parent=True, walk_final=False,
        )
        return result

    def rmdir(self, creds: Credentials, path: str) -> SimGen:
        result = yield from self._pathop(
            creds, path, self.inner.rmdir(creds, path), lock_parent=True,
        )
        self._dcache_drop(pathmod.normalize(path))
        return result

    def open(self, creds: Credentials, path: str, flags: OpenFlags,
             mode: int = 0o666) -> SimGen:
        creating = bool(flags & OpenFlags.O_CREAT)
        handle = yield from self._pathop(
            creds, path, self.inner.open(creds, path, flags, mode),
            lock_parent=creating, tolerate_missing_final=creating,
        )
        if creating:
            self._dcache_insert(pathmod.normalize(path))
        return handle

    def close(self, handle: FileHandle) -> SimGen:
        yield from self._request()
        return (yield from self.inner.close(handle))

    def unlink(self, creds: Credentials, path: str) -> SimGen:
        result = yield from self._pathop(
            creds, path, self.inner.unlink(creds, path), lock_parent=True,
        )
        self._dcache_drop(pathmod.normalize(path))
        return result

    def stat(self, creds: Credentials, path: str) -> SimGen:
        return (yield from self._pathop(creds, path,
                                        self.inner.stat(creds, path)))

    def lstat(self, creds: Credentials, path: str) -> SimGen:
        return (yield from self._pathop(creds, path,
                                        self.inner.lstat(creds, path)))

    def readdir(self, creds: Credentials, path: str) -> SimGen:
        return (yield from self._pathop(creds, path,
                                        self.inner.readdir(creds, path)))

    def rename(self, creds: Credentials, src: str, dst: str) -> SimGen:
        yield from self._walk(creds, src)
        try:
            yield from self._walk(creds, dst)
        except NotFound:
            pass
        yield from self._request()
        result = yield from self._globally_locked(
            self.inner.rename(creds, src, dst))
        self._dcache_drop(pathmod.normalize(src))
        self._dcache_drop(pathmod.normalize(dst))
        return result

    def _data_request(self) -> SimGen:
        """One data-path FUSE request: crossing + dispatch, and — for
        clients with a global mutex (ceph-fuse, MarFS interactive) — a
        serialized section per request. This per-128KB serialization is why
        ceph-fuse bulk data movement collapses under multiple processes."""
        yield from self._request()
        if self._global_lock is not None:
            req = yield from self._lock(self._global_lock)
            try:
                yield from self.node.work(self.params.effective_data_lock)
            finally:
                self._global_lock.release(req)

    def read(self, handle: FileHandle, size: int,
             offset: Optional[int] = None) -> SimGen:
        # The kernel splits large I/O into max_request-sized FUSE requests.
        nreq = max(1, -(-size // self.params.max_request))
        for _ in range(nreq):
            yield from self._data_request()
        return (yield from self.inner.read(handle, size, offset))

    def write(self, handle: FileHandle, data: bytes,
              offset: Optional[int] = None) -> SimGen:
        nreq = max(1, -(-len(data) // self.params.max_request))
        for _ in range(nreq):
            yield from self._data_request()
        return (yield from self.inner.write(handle, data, offset))

    def fsync(self, handle: FileHandle) -> SimGen:
        yield from self._request()
        return (yield from self.inner.fsync(handle))

    def truncate(self, creds: Credentials, path: str, size: int) -> SimGen:
        return (yield from self._pathop(
            creds, path, self.inner.truncate(creds, path, size)))

    def chmod(self, creds: Credentials, path: str, mode: int) -> SimGen:
        return (yield from self._pathop(
            creds, path, self.inner.chmod(creds, path, mode)))

    def chown(self, creds: Credentials, path: str, uid: int, gid: int) -> SimGen:
        return (yield from self._pathop(
            creds, path, self.inner.chown(creds, path, uid, gid)))

    def utimens(self, creds: Credentials, path: str, atime: float,
                mtime: float) -> SimGen:
        return (yield from self._pathop(
            creds, path, self.inner.utimens(creds, path, atime, mtime)))

    def access(self, creds: Credentials, path: str, want: int) -> SimGen:
        return (yield from self._pathop(
            creds, path, self.inner.access(creds, path, want)))

    def symlink(self, creds: Credentials, target: str, linkpath: str) -> SimGen:
        return (yield from self._pathop(
            creds, linkpath, self.inner.symlink(creds, target, linkpath),
            lock_parent=True, walk_final=False,
        ))

    def readlink(self, creds: Credentials, path: str) -> SimGen:
        return (yield from self._pathop(
            creds, path, self.inner.readlink(creds, path)))

    def statfs(self, creds: Credentials) -> SimGen:
        yield from self._request()
        return (yield from self.inner.statfs(creds))

    def getfacl(self, creds: Credentials, path: str) -> SimGen:
        return (yield from self._pathop(
            creds, path, self.inner.getfacl(creds, path)))

    def setfacl(self, creds: Credentials, path: str, acl) -> SimGen:
        return (yield from self._pathop(
            creds, path, self.inner.setfacl(creds, path, acl)))


# Every public VFS op gets a root span ("vfs.<op>") so cross-layer latency
# attribution has one top-level interval per operation, across ArkFS and
# every baseline alike (they all sit behind a mount). The wrapper returns
# the raw generator untouched while tracing is disabled — zero allocations,
# one attribute check — and the span names are precomputed at import time.
_VFS_OPS = (
    "lookup", "mkdir", "rmdir", "open", "close", "unlink", "stat", "lstat",
    "readdir", "rename", "read", "write", "fsync", "truncate", "chmod",
    "chown", "utimens", "access", "symlink", "readlink", "statfs",
    "getfacl", "setfacl",
)


def _with_root_span(op: str, fn):
    name = "vfs." + op

    def method(self, *args, **kwargs):
        gen = fn(self, *args, **kwargs)
        sim = self.sim
        ob = sim._obs_ops
        if ob is not None:
            # Sampling / slow-op log / flight recorder installed: route the
            # root op through the observer (which opens the span itself).
            return ob.observe(name, gen)
        tr = sim._tracer
        if tr is None:
            return gen
        return tr.wrap(name, gen, ROOT_CAT)

    method.__name__ = fn.__name__
    method.__qualname__ = fn.__qualname__
    method.__doc__ = fn.__doc__
    return method


for _op in _VFS_OPS:
    setattr(_MountBase, _op, _with_root_span(_op, getattr(_MountBase, _op)))
del _op


class FuseMount(_MountBase):
    """A user-space (FUSE) mount: costly crossings, user-space-held locks."""

    def __init__(self, inner: VFSClient, node: Node,
                 params: MountParams = FUSE_DEFAULTS):
        super().__init__(inner, node, params)


class KernelMount(_MountBase):
    """An in-kernel client mount: near-free crossings, no user-space locks."""

    def __init__(self, inner: VFSClient, node: Node,
                 params: MountParams = KERNEL_DEFAULTS):
        super().__init__(inner, node, params)
