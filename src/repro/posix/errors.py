"""POSIX-style file-system errors.

Every file system in this repository (ArkFS and the baselines) raises these,
so workloads and tests can be written once against the VFS interface. Each
error carries its errno both symbolically and numerically.
"""

from __future__ import annotations

import errno

__all__ = [
    "FSError",
    "NotFound",
    "AlreadyExists",
    "PermissionDenied",
    "NotPermitted",
    "NotADirectory",
    "IsADirectory",
    "DirectoryNotEmpty",
    "InvalidArgument",
    "BadFileHandle",
    "TooManySymlinks",
    "NameTooLong",
    "StaleHandle",
    "IOFailure",
    "UnsupportedOperation",
    "CrossDevice",
]


class FSError(Exception):
    """Base class; ``errno`` matches the POSIX error the real syscall returns."""

    errno: int = errno.EIO

    def __init__(self, path: str = "", detail: str = ""):
        self.path = path
        self.detail = detail
        msg = f"[{errno.errorcode.get(self.errno, self.errno)}] {path}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class NotFound(FSError):
    errno = errno.ENOENT


class AlreadyExists(FSError):
    errno = errno.EEXIST


class PermissionDenied(FSError):
    errno = errno.EACCES


class NotPermitted(FSError):
    errno = errno.EPERM


class NotADirectory(FSError):
    errno = errno.ENOTDIR


class IsADirectory(FSError):
    errno = errno.EISDIR


class DirectoryNotEmpty(FSError):
    errno = errno.ENOTEMPTY


class InvalidArgument(FSError):
    errno = errno.EINVAL


class BadFileHandle(FSError):
    errno = errno.EBADF


class TooManySymlinks(FSError):
    errno = errno.ELOOP


class NameTooLong(FSError):
    errno = errno.ENAMETOOLONG


class StaleHandle(FSError):
    errno = errno.ESTALE


class IOFailure(FSError):
    errno = errno.EIO


class UnsupportedOperation(FSError):
    """The file system does not implement this operation (e.g. MarFS READ in
    the paper's environment, or chown on DAOS)."""

    errno = errno.ENOTSUP


class CrossDevice(FSError):
    errno = errno.EXDEV
