"""Operation tracing: a transparent VFS wrapper recording latencies.

Stack it anywhere in the mount chain (application → TracingClient →
FuseMount → file system) to collect per-operation-type latency
distributions in *simulated* time:

    traced = TracingClient(cluster.mount(0))
    ... run a workload against ``traced`` ...
    print(traced.report())

This is a thin adapter over :mod:`repro.obs`: each operation type is backed
by one :class:`repro.obs.Histogram`, so there is a single percentile
implementation in the repository (fixed log-spaced buckets — constant
memory regardless of operation count). Structural timing (where inside an
operation the time went) is the span tracer's job; this wrapper only
answers "how long did each op type take end to end".
"""

from __future__ import annotations

from typing import Dict

from ..obs.metrics import Histogram
from ..sim.engine import SimGen
from .vfs import VFSClient

__all__ = ["TracingClient", "OpTrace"]


class OpTrace:
    """Latency distribution for one operation type (histogram-backed)."""

    __slots__ = ("hist", "errors")

    def __init__(self, name: str = ""):
        self.hist = Histogram(name)
        self.errors = 0

    def observe(self, latency: float) -> None:
        self.hist.observe(latency)

    @property
    def count(self) -> int:
        return self.hist.count

    def percentile(self, q: float) -> float:
        return self.hist.percentile(q)

    @property
    def mean(self) -> float:
        return self.hist.mean

    @property
    def total(self) -> float:
        return self.hist.sum


class TracingClient(VFSClient):
    """Times every VFS operation passing through it."""

    _OPS = ("mkdir", "rmdir", "open", "close", "unlink", "stat", "lstat",
            "readdir", "rename", "read", "write", "fsync", "truncate",
            "chmod", "chown", "utimens", "access", "symlink", "readlink",
            "getfacl", "setfacl", "lookup", "statfs")

    def __init__(self, inner: VFSClient):
        self.inner = inner
        self.sim = inner.sim
        self.traces: Dict[str, OpTrace] = {}

    def _trace(self, name: str) -> OpTrace:
        t = self.traces.get(name)
        if t is None:
            t = OpTrace(name)
            self.traces[name] = t
        return t

    def _timed(self, name: str, gen: SimGen) -> SimGen:
        trace = self._trace(name)
        t0 = self.sim.now
        try:
            result = yield from gen
        except Exception:
            trace.errors += 1
            trace.observe(self.sim.now - t0)
            raise
        trace.observe(self.sim.now - t0)
        return result

    # Every VFS method delegates through _timed; generated uniformly.
    def __getattr__(self, name):  # pragma: no cover - defensive
        return getattr(self.inner, name)

    # -- namespace ---------------------------------------------------------

    def mkdir(self, creds, path, mode=0o777):
        return self._timed("mkdir", self.inner.mkdir(creds, path, mode))

    def rmdir(self, creds, path):
        return self._timed("rmdir", self.inner.rmdir(creds, path))

    def open(self, creds, path, flags, mode=0o666):
        return self._timed("open", self.inner.open(creds, path, flags, mode))

    def close(self, handle):
        return self._timed("close", self.inner.close(handle))

    def unlink(self, creds, path):
        return self._timed("unlink", self.inner.unlink(creds, path))

    def stat(self, creds, path):
        return self._timed("stat", self.inner.stat(creds, path))

    def lstat(self, creds, path):
        return self._timed("lstat", self.inner.lstat(creds, path))

    def readdir(self, creds, path):
        return self._timed("readdir", self.inner.readdir(creds, path))

    def rename(self, creds, src, dst):
        return self._timed("rename", self.inner.rename(creds, src, dst))

    def lookup(self, creds, dir_path, name):
        return self._timed("lookup", self.inner.lookup(creds, dir_path, name))

    # -- data -----------------------------------------------------------------

    def read(self, handle, size, offset=None):
        return self._timed("read", self.inner.read(handle, size, offset))

    def write(self, handle, data, offset=None):
        return self._timed("write", self.inner.write(handle, data, offset))

    def fsync(self, handle):
        return self._timed("fsync", self.inner.fsync(handle))

    def truncate(self, creds, path, size):
        return self._timed("truncate", self.inner.truncate(creds, path, size))

    # -- attributes ----------------------------------------------------------------

    def chmod(self, creds, path, mode):
        return self._timed("chmod", self.inner.chmod(creds, path, mode))

    def chown(self, creds, path, uid, gid):
        return self._timed("chown", self.inner.chown(creds, path, uid, gid))

    def utimens(self, creds, path, atime, mtime):
        return self._timed("utimens",
                           self.inner.utimens(creds, path, atime, mtime))

    def access(self, creds, path, want):
        return self._timed("access", self.inner.access(creds, path, want))

    def symlink(self, creds, target, linkpath):
        return self._timed("symlink",
                           self.inner.symlink(creds, target, linkpath))

    def readlink(self, creds, path):
        return self._timed("readlink", self.inner.readlink(creds, path))

    def getfacl(self, creds, path):
        return self._timed("getfacl", self.inner.getfacl(creds, path))

    def setfacl(self, creds, path, acl):
        return self._timed("setfacl", self.inner.setfacl(creds, path, acl))

    def statfs(self, creds):
        return self._timed("statfs", self.inner.statfs(creds))

    # -- reporting --------------------------------------------------------------------

    def report(self, unit: float = 1e-6, unit_name: str = "µs") -> str:
        """Aligned latency table: count, mean, p50/p95/p99, errors."""
        lines = [f"{'op':>10} {'count':>8} {'mean':>10} {'p50':>10} "
                 f"{'p95':>10} {'p99':>10} {'errs':>5}   [{unit_name}]"]
        for name in sorted(self.traces):
            t = self.traces[name]
            lines.append(
                f"{name:>10} {t.count:>8} {t.mean / unit:>10.1f} "
                f"{t.percentile(50) / unit:>10.1f} "
                f"{t.percentile(95) / unit:>10.1f} "
                f"{t.percentile(99) / unit:>10.1f} {t.errors:>5}")
        return "\n".join(lines)

    def reset(self) -> None:
        self.traces.clear()
