"""POSIX access control: classic mode bits plus POSIX.1e ACLs.

The paper positions ACL support as a differentiator ("HPC users ... control
the accesses using per-directory or per-file access control lists", and DAOS
is criticized for lacking them), so this is a full implementation of the
POSIX.1e access-check algorithm: USER_OBJ / named USER / GROUP_OBJ / named
GROUP / MASK / OTHER, mask-capping, chmod interaction, and the text form
``getfacl`` prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from .errors import InvalidArgument
from .types import Credentials, R_OK, W_OK, X_OK

__all__ = ["Acl", "check_perm", "perm_str"]


def _validate_perm(p: int) -> int:
    if not 0 <= p <= 7:
        raise InvalidArgument(str(p), "permission must be 0..7 (rwx bits)")
    return p


def perm_str(p: int) -> str:
    """``5`` → ``"r-x"``."""
    return ("r" if p & R_OK else "-") + ("w" if p & W_OK else "-") + (
        "x" if p & X_OK else "-"
    )


@dataclass
class Acl:
    """A POSIX.1e access ACL.

    ``user_obj``/``group_obj``/``other`` are the classic owner/group/other
    rwx triplets; ``named_users``/``named_groups`` are the extended entries;
    ``mask`` caps every entry except USER_OBJ and OTHER. An ACL with no
    extended entries and no mask is *minimal* and equivalent to mode bits.
    """

    user_obj: int
    group_obj: int
    other: int
    named_users: Dict[int, int] = field(default_factory=dict)
    named_groups: Dict[int, int] = field(default_factory=dict)
    mask: Optional[int] = None

    def __post_init__(self) -> None:
        for p in (self.user_obj, self.group_obj, self.other):
            _validate_perm(p)
        for p in self.named_users.values():
            _validate_perm(p)
        for p in self.named_groups.values():
            _validate_perm(p)
        if self.mask is not None:
            _validate_perm(self.mask)
        if self.is_extended and self.mask is None:
            # POSIX requires a mask whenever extended entries exist; compute
            # the union as setfacl does by default.
            self.mask = self._default_mask()

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_mode(cls, mode: int) -> "Acl":
        """Minimal ACL equivalent to the low nine mode bits."""
        return cls(
            user_obj=(mode >> 6) & 7,
            group_obj=(mode >> 3) & 7,
            other=mode & 7,
        )

    # -- properties -----------------------------------------------------------

    @property
    def is_extended(self) -> bool:
        return bool(self.named_users or self.named_groups)

    def _default_mask(self) -> int:
        m = self.group_obj
        for p in self.named_users.values():
            m |= p
        for p in self.named_groups.values():
            m |= p
        return m

    @property
    def effective_mask(self) -> int:
        return 7 if self.mask is None else self.mask

    def to_mode_bits(self) -> int:
        """The nine permission bits stat(2) reports for this ACL.

        When extended entries exist the group triplet shows the MASK, as the
        kernel does."""
        group_shown = self.mask if self.is_extended and self.mask is not None \
            else self.group_obj
        return (self.user_obj << 6) | (group_shown << 3) | self.other

    # -- mutation ----------------------------------------------------------------

    def apply_chmod(self, mode: int) -> None:
        """chmod(2) semantics: owner bits → USER_OBJ, other bits → OTHER, and
        group bits → MASK if extended else GROUP_OBJ."""
        self.user_obj = (mode >> 6) & 7
        self.other = mode & 7
        if self.is_extended:
            self.mask = (mode >> 3) & 7
        else:
            self.group_obj = (mode >> 3) & 7

    def set_user(self, uid: int, perm: int) -> None:
        """Add/replace a named-user entry, recalculating the mask as
        setfacl does by default (assign ``mask`` afterwards to override)."""
        self.named_users[uid] = _validate_perm(perm)
        self.mask = self._default_mask()

    def set_group(self, gid: int, perm: int) -> None:
        """Add/replace a named-group entry, recalculating the mask."""
        self.named_groups[gid] = _validate_perm(perm)
        self.mask = self._default_mask()

    def drop_user(self, uid: int) -> None:
        self.named_users.pop(uid, None)

    def drop_group(self, gid: int) -> None:
        self.named_groups.pop(gid, None)

    # -- the POSIX.1e access check ------------------------------------------------

    def check(self, creds: Credentials, want: int, owner_uid: int,
              owner_gid: int) -> bool:
        """The acl(5) access-check algorithm for permission bits ``want``."""
        if creds.is_root:
            # Root bypasses rw checks; needs at least one x bit for exec.
            if want & X_OK:
                any_x = (
                    (self.user_obj | self.group_obj | self.other) & X_OK
                ) or any((p & X_OK) for p in self.named_users.values()) or any(
                    (p & X_OK) for p in self.named_groups.values()
                )
                if not any_x:
                    return False
            return True
        mask = self.effective_mask
        if creds.uid == owner_uid:
            return (self.user_obj & want) == want
        if creds.uid in self.named_users:
            return (self.named_users[creds.uid] & mask & want) == want
        # Group class: grant if ANY matching group entry grants all bits.
        in_group_class = False
        if creds.in_group(owner_gid):
            in_group_class = True
            if (self.group_obj & mask & want) == want:
                return True
        for gid, perm in self.named_groups.items():
            if creds.in_group(gid):
                in_group_class = True
                if (perm & mask & want) == want:
                    return True
        if in_group_class:
            return False  # group class matched but denied: OTHER not consulted
        return (self.other & want) == want

    # -- serialization -------------------------------------------------------------

    def to_text(self) -> str:
        """getfacl-style short text form."""
        lines = [f"user::{perm_str(self.user_obj)}"]
        for uid in sorted(self.named_users):
            lines.append(f"user:{uid}:{perm_str(self.named_users[uid])}")
        lines.append(f"group::{perm_str(self.group_obj)}")
        for gid in sorted(self.named_groups):
            lines.append(f"group:{gid}:{perm_str(self.named_groups[gid])}")
        if self.mask is not None:
            lines.append(f"mask::{perm_str(self.mask)}")
        lines.append(f"other::{perm_str(self.other)}")
        return ",".join(lines)

    def to_dict(self) -> dict:
        return {
            "u": self.user_obj,
            "g": self.group_obj,
            "o": self.other,
            "nu": {str(k): v for k, v in self.named_users.items()},
            "ng": {str(k): v for k, v in self.named_groups.items()},
            "m": self.mask,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Acl":
        return cls(
            user_obj=d["u"],
            group_obj=d["g"],
            other=d["o"],
            named_users={int(k): v for k, v in d.get("nu", {}).items()},
            named_groups={int(k): v for k, v in d.get("ng", {}).items()},
            mask=d.get("m"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, s: str) -> "Acl":
        return cls.from_dict(json.loads(s))

    def copy(self) -> "Acl":
        return Acl(
            user_obj=self.user_obj,
            group_obj=self.group_obj,
            other=self.other,
            named_users=dict(self.named_users),
            named_groups=dict(self.named_groups),
            mask=self.mask,
        )


def check_perm(
    acl: Optional[Acl],
    mode: int,
    uid: int,
    gid: int,
    creds: Credentials,
    want: int,
) -> bool:
    """Access check for an inode: uses its ACL if extended, else mode bits."""
    effective = acl if acl is not None else Acl.from_mode(mode)
    return effective.check(creds, want, owner_uid=uid, owner_gid=gid)
