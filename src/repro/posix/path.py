"""Path handling shared by every file system in the repository.

All VFS entry points take absolute, ``/``-separated paths. Components are
validated the way a POSIX kernel would (no NUL, no ``/``, ≤255 bytes), and
``.``/``..`` are resolved lexically during normalization — matching what the
FUSE kernel driver hands a user-space file system, which never sees dot
entries in LOOKUP traffic.
"""

from __future__ import annotations

from typing import List, Tuple

from .errors import InvalidArgument, NameTooLong

__all__ = [
    "NAME_MAX",
    "validate_name",
    "split_path",
    "normalize",
    "parent_and_name",
    "join",
    "is_ancestor",
]

NAME_MAX = 255


def validate_name(name: str) -> str:
    """Check a single path component; returns it unchanged."""
    if not name or name in (".", ".."):
        raise InvalidArgument(name, "invalid path component")
    if "/" in name or "\x00" in name:
        raise InvalidArgument(name, "component contains '/' or NUL")
    if len(name.encode("utf-8", "surrogateescape")) > NAME_MAX:
        raise NameTooLong(name)
    return name


def split_path(path: str) -> List[str]:
    """``"/a/b/c"`` → ``["a", "b", "c"]``; ``"/"`` → ``[]``.

    Requires an absolute path; resolves ``.`` and ``..`` lexically;
    validates every component.
    """
    if not path or path[0] != "/":
        raise InvalidArgument(path, "path must be absolute")
    if "\x00" in path:
        raise InvalidArgument(path, "path contains NUL")
    parts: List[str] = []
    for comp in path.split("/"):
        if comp in ("", "."):
            continue
        if comp == "..":
            if parts:
                parts.pop()
            continue
        if len(comp.encode("utf-8", "surrogateescape")) > NAME_MAX:
            raise NameTooLong(comp)
        parts.append(comp)
    return parts


def normalize(path: str) -> str:
    """Canonical form: ``"/a//b/./c/"`` → ``"/a/b/c"``."""
    return "/" + "/".join(split_path(path))


def parent_and_name(path: str) -> Tuple[str, str]:
    """``"/a/b/c"`` → ``("/a/b", "c")``. The root has no name to give."""
    parts = split_path(path)
    if not parts:
        raise InvalidArgument(path, "operation on the root directory")
    return "/" + "/".join(parts[:-1]), parts[-1]


def join(base: str, *names: str) -> str:
    """Join validated components onto an absolute base path."""
    parts = split_path(base)
    for name in names:
        validate_name(name)
        parts.append(name)
    return "/" + "/".join(parts)


def is_ancestor(ancestor: str, path: str) -> bool:
    """True if ``ancestor`` is a proper lexical ancestor of ``path``
    (used to reject ``rename("/a", "/a/b")``)."""
    a = split_path(ancestor)
    p = split_path(path)
    return len(a) < len(p) and p[: len(a)] == a
