"""Shared POSIX-facing types: file kinds, open flags, stat results, credentials."""

from __future__ import annotations

import enum
import stat as statmod
from dataclasses import dataclass, field
from typing import Tuple

__all__ = [
    "FileType",
    "OpenFlags",
    "StatFSResult",
    "StatResult",
    "Credentials",
    "ROOT_CREDS",
    "R_OK",
    "W_OK",
    "X_OK",
    "F_OK",
]

# access(2) probe bits
R_OK, W_OK, X_OK, F_OK = 4, 2, 1, 0


class FileType(enum.Enum):
    """The file kinds ArkFS supports (no devices/FIFOs — archival storage)."""

    REGULAR = "reg"
    DIRECTORY = "dir"
    SYMLINK = "sym"

    @property
    def mode_bits(self) -> int:
        return {
            FileType.REGULAR: statmod.S_IFREG,
            FileType.DIRECTORY: statmod.S_IFDIR,
            FileType.SYMLINK: statmod.S_IFLNK,
        }[self]


class OpenFlags(enum.IntFlag):
    """Subset of open(2) flags the archiving workloads exercise."""

    O_RDONLY = 0
    O_WRONLY = 1
    O_RDWR = 2
    O_CREAT = 0o100
    O_EXCL = 0o200
    O_TRUNC = 0o1000
    O_APPEND = 0o2000

    @property
    def accmode(self) -> "OpenFlags":
        return OpenFlags(self & 0o3)

    @property
    def wants_read(self) -> bool:
        return self.accmode in (OpenFlags.O_RDONLY, OpenFlags.O_RDWR)

    @property
    def wants_write(self) -> bool:
        return self.accmode in (OpenFlags.O_WRONLY, OpenFlags.O_RDWR)


@dataclass(frozen=True)
class StatResult:
    """What stat(2) reports; field names mirror ``os.stat_result``."""

    st_ino: int
    st_mode: int          # type bits | permission bits
    st_nlink: int
    st_uid: int
    st_gid: int
    st_size: int
    st_atime: float
    st_mtime: float
    st_ctime: float

    @property
    def is_dir(self) -> bool:
        return statmod.S_ISDIR(self.st_mode)

    @property
    def is_file(self) -> bool:
        return statmod.S_ISREG(self.st_mode)

    @property
    def is_symlink(self) -> bool:
        return statmod.S_ISLNK(self.st_mode)

    @property
    def perm_bits(self) -> int:
        return statmod.S_IMODE(self.st_mode)


@dataclass(frozen=True)
class StatFSResult:
    """What statfs(2) reports (block counts in ``f_bsize`` units)."""

    f_bsize: int
    f_blocks: int     # total blocks
    f_bfree: int      # free blocks
    f_files: int      # objects/inodes in use

    @property
    def total_bytes(self) -> int:
        return self.f_bsize * self.f_blocks

    @property
    def free_bytes(self) -> int:
        return self.f_bsize * self.f_bfree

    @property
    def used_bytes(self) -> int:
        return self.total_bytes - self.free_bytes


@dataclass(frozen=True)
class Credentials:
    """The identity a file-system operation runs as."""

    uid: int
    gid: int
    groups: Tuple[int, ...] = field(default_factory=tuple)
    umask: int = 0o022

    @property
    def is_root(self) -> bool:
        return self.uid == 0

    def in_group(self, gid: int) -> bool:
        return gid == self.gid or gid in self.groups

    def apply_umask(self, mode: int) -> int:
        return mode & ~self.umask & 0o7777


#: The administrator identity the paper's background archiving daemons run as.
ROOT_CREDS = Credentials(uid=0, gid=0)
