"""The VFS operation surface every file system in this repo implements.

ArkFS, CephFS, MarFS, S3FS and goofys models all expose this interface, so
the workloads (mdtest, fio, tar) and the examples are written once. All
operations are simulation coroutines; :class:`SyncFS` wraps a client in a
blocking facade for scripts and tests that drive one operation at a time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, List, Optional

from ..sim.engine import SimGen, Simulator
from .types import Credentials, OpenFlags, StatResult

__all__ = ["FileHandle", "VFSClient", "SyncFS", "SyncFile"]


class FileHandle:
    """An open file description: identity plus a file offset.

    Concrete file systems subclass or wrap this to attach cache and lease
    state; the workloads only rely on the fields here.
    """

    __slots__ = ("ino", "flags", "pos", "creds", "closed", "impl")

    def __init__(self, ino: int, flags: OpenFlags, creds: Credentials,
                 impl: Any = None):
        self.ino = ino
        self.flags = flags
        self.pos = 0
        self.creds = creds
        self.closed = False
        self.impl = impl  # filesystem-private state


class VFSClient(ABC):
    """One client's view of a file system (near-POSIX operation set).

    Path arguments are absolute. ``read``/``write`` use and advance the
    handle offset unless ``offset`` is given (pread/pwrite semantics, which
    do not move the offset).
    """

    sim: Simulator

    # -- namespace -----------------------------------------------------------

    @abstractmethod
    def mkdir(self, creds: Credentials, path: str, mode: int = 0o777) -> SimGen: ...

    @abstractmethod
    def rmdir(self, creds: Credentials, path: str) -> SimGen: ...

    @abstractmethod
    def open(self, creds: Credentials, path: str, flags: OpenFlags,
             mode: int = 0o666) -> SimGen: ...

    @abstractmethod
    def close(self, handle: FileHandle) -> SimGen: ...

    @abstractmethod
    def unlink(self, creds: Credentials, path: str) -> SimGen: ...

    @abstractmethod
    def stat(self, creds: Credentials, path: str) -> SimGen: ...

    @abstractmethod
    def lstat(self, creds: Credentials, path: str) -> SimGen: ...

    @abstractmethod
    def readdir(self, creds: Credentials, path: str) -> SimGen: ...

    @abstractmethod
    def rename(self, creds: Credentials, src: str, dst: str) -> SimGen: ...

    # -- data ------------------------------------------------------------------

    @abstractmethod
    def read(self, handle: FileHandle, size: int,
             offset: Optional[int] = None) -> SimGen: ...

    @abstractmethod
    def write(self, handle: FileHandle, data: bytes,
              offset: Optional[int] = None) -> SimGen: ...

    @abstractmethod
    def fsync(self, handle: FileHandle) -> SimGen: ...

    @abstractmethod
    def truncate(self, creds: Credentials, path: str, size: int) -> SimGen: ...

    # -- attributes ---------------------------------------------------------------

    @abstractmethod
    def chmod(self, creds: Credentials, path: str, mode: int) -> SimGen: ...

    @abstractmethod
    def chown(self, creds: Credentials, path: str, uid: int, gid: int) -> SimGen: ...

    @abstractmethod
    def utimens(self, creds: Credentials, path: str, atime: float,
                mtime: float) -> SimGen: ...

    @abstractmethod
    def access(self, creds: Credentials, path: str, want: int) -> SimGen: ...

    # -- links ------------------------------------------------------------------

    @abstractmethod
    def symlink(self, creds: Credentials, target: str, linkpath: str) -> SimGen: ...

    @abstractmethod
    def readlink(self, creds: Credentials, path: str) -> SimGen: ...

    # -- ACLs (near-POSIX differentiator; baselines may raise Unsupported) -------

    @abstractmethod
    def getfacl(self, creds: Credentials, path: str) -> SimGen: ...

    @abstractmethod
    def setfacl(self, creds: Credentials, path: str, acl) -> SimGen: ...

    def statfs(self, creds: Credentials) -> SimGen:
        """statfs(2): file-system-wide usage. Default: unsupported."""
        from .errors import UnsupportedOperation

        yield self.sim.timeout(0)
        raise UnsupportedOperation(detail="statfs not implemented")

    # -- FUSE-facing primitive ------------------------------------------------------

    def lookup(self, creds: Credentials, dir_path: str, name: str) -> SimGen:
        """Resolve one component (a FUSE LOOKUP request): returns the child's
        stat. Default implementation is an lstat of the joined path, which
        per the paper means a full path traversal per LOOKUP; file systems
        with cheaper single-component resolution override this."""
        from .path import join

        return (yield from self.lstat(creds, join(dir_path, name)))

    # -- conveniences built on the primitives -------------------------------------

    def create(self, creds: Credentials, path: str, mode: int = 0o666) -> SimGen:
        """creat(2): O_CREAT|O_EXCL|O_WRONLY."""
        handle = yield from self.open(
            creds, path,
            OpenFlags.O_CREAT | OpenFlags.O_EXCL | OpenFlags.O_WRONLY, mode,
        )
        return handle

    def exists(self, creds: Credentials, path: str) -> SimGen:
        from .errors import FSError, NotFound

        try:
            yield from self.lstat(creds, path)
        except NotFound:
            return False
        except FSError:
            raise
        return True

    def read_file(self, creds: Credentials, path: str,
                  chunk: int = 1 << 20) -> SimGen:
        """Slurp a whole file (sequentially, in ``chunk``-sized reads)."""
        h = yield from self.open(creds, path, OpenFlags.O_RDONLY)
        try:
            pieces = []
            while True:
                data = yield from self.read(h, chunk)
                if not data:
                    break
                pieces.append(data)
            return b"".join(pieces)
        finally:
            yield from self.close(h)

    def write_file(self, creds: Credentials, path: str, data: bytes,
                   mode: int = 0o666, chunk: int = 1 << 20,
                   do_fsync: bool = False) -> SimGen:
        """Create/overwrite a file with ``data``."""
        h = yield from self.open(
            creds, path,
            OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_TRUNC, mode,
        )
        try:
            view = memoryview(data)
            for off in range(0, len(data), chunk):
                yield from self.write(h, bytes(view[off : off + chunk]))
            if do_fsync:
                yield from self.fsync(h)
        finally:
            yield from self.close(h)


class SyncFile:
    """Blocking wrapper around an open handle (for :class:`SyncFS`)."""

    def __init__(self, syncfs: "SyncFS", handle: FileHandle):
        self._fs = syncfs
        self.handle = handle

    def read(self, size: int, offset: Optional[int] = None) -> bytes:
        return self._fs._run(self._fs.client.read(self.handle, size, offset))

    def write(self, data: bytes, offset: Optional[int] = None) -> int:
        return self._fs._run(self._fs.client.write(self.handle, data, offset))

    def fsync(self) -> None:
        self._fs._run(self._fs.client.fsync(self.handle))

    def close(self) -> None:
        self._fs._run(self._fs.client.close(self.handle))

    def __enter__(self) -> "SyncFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SyncFS:
    """Run VFS coroutines to completion one at a time.

    This is the ergonomic front door for examples and semantic tests: each
    call advances the simulation until the operation (and anything it wakes,
    e.g. journal commit threads) finishes.
    """

    def __init__(self, client: VFSClient, creds: Credentials):
        self.client = client
        self.creds = creds

    def _run(self, gen: SimGen) -> Any:
        return self.client.sim.run_process(gen)

    def as_user(self, creds: Credentials) -> "SyncFS":
        return SyncFS(self.client, creds)

    # Namespace
    def mkdir(self, path: str, mode: int = 0o777) -> None:
        self._run(self.client.mkdir(self.creds, path, mode))

    def makedirs(self, path: str, mode: int = 0o777) -> None:
        from .errors import AlreadyExists
        from .path import split_path

        parts = split_path(path)
        for i in range(1, len(parts) + 1):
            try:
                self.mkdir("/" + "/".join(parts[:i]), mode)
            except AlreadyExists:
                pass

    def rmdir(self, path: str) -> None:
        self._run(self.client.rmdir(self.creds, path))

    def open(self, path: str, flags: OpenFlags, mode: int = 0o666) -> SyncFile:
        h = self._run(self.client.open(self.creds, path, flags, mode))
        return SyncFile(self, h)

    def create(self, path: str, mode: int = 0o666) -> SyncFile:
        h = self._run(self.client.create(self.creds, path, mode))
        return SyncFile(self, h)

    def unlink(self, path: str) -> None:
        self._run(self.client.unlink(self.creds, path))

    def stat(self, path: str) -> StatResult:
        return self._run(self.client.stat(self.creds, path))

    def lstat(self, path: str) -> StatResult:
        return self._run(self.client.lstat(self.creds, path))

    def readdir(self, path: str) -> List[str]:
        return self._run(self.client.readdir(self.creds, path))

    def rename(self, src: str, dst: str) -> None:
        self._run(self.client.rename(self.creds, src, dst))

    def truncate(self, path: str, size: int) -> None:
        self._run(self.client.truncate(self.creds, path, size))

    # Attributes
    def chmod(self, path: str, mode: int) -> None:
        self._run(self.client.chmod(self.creds, path, mode))

    def chown(self, path: str, uid: int, gid: int) -> None:
        self._run(self.client.chown(self.creds, path, uid, gid))

    def utimens(self, path: str, atime: float, mtime: float) -> None:
        self._run(self.client.utimens(self.creds, path, atime, mtime))

    def access(self, path: str, want: int) -> bool:
        return self._run(self.client.access(self.creds, path, want))

    # Links
    def symlink(self, target: str, linkpath: str) -> None:
        self._run(self.client.symlink(self.creds, target, linkpath))

    def readlink(self, path: str) -> str:
        return self._run(self.client.readlink(self.creds, path))

    # ACLs
    def getfacl(self, path: str):
        return self._run(self.client.getfacl(self.creds, path))

    def setfacl(self, path: str, acl) -> None:
        self._run(self.client.setfacl(self.creds, path, acl))

    def statfs(self):
        return self._run(self.client.statfs(self.creds))

    # Conveniences
    def exists(self, path: str) -> bool:
        return self._run(self.client.exists(self.creds, path))

    def read_file(self, path: str) -> bytes:
        return self._run(self.client.read_file(self.creds, path))

    def write_file(self, path: str, data: bytes, mode: int = 0o666,
                   do_fsync: bool = False) -> None:
        self._run(self.client.write_file(self.creds, path, data, mode,
                                         do_fsync=do_fsync))
