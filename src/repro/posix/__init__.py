"""POSIX substrate shared by ArkFS and every baseline file system.

Types (:mod:`types`), errors (:mod:`errors`), path handling (:mod:`path`),
POSIX.1e ACLs (:mod:`acl`), the common VFS operation interface (:mod:`vfs`),
and the FUSE / kernel mount models (:mod:`fuse`).
"""

from .acl import Acl, check_perm, perm_str
from .errors import (
    AlreadyExists,
    BadFileHandle,
    CrossDevice,
    DirectoryNotEmpty,
    FSError,
    InvalidArgument,
    IOFailure,
    IsADirectory,
    NameTooLong,
    NotADirectory,
    NotFound,
    NotPermitted,
    PermissionDenied,
    StaleHandle,
    TooManySymlinks,
    UnsupportedOperation,
)
from .fuse import FUSE_DEFAULTS, KERNEL_DEFAULTS, FuseMount, KernelMount, MountParams
from .trace import OpTrace, TracingClient
from .types import (
    Credentials,
    FileType,
    F_OK,
    OpenFlags,
    R_OK,
    ROOT_CREDS,
    StatFSResult,
    StatResult,
    W_OK,
    X_OK,
)
from .vfs import FileHandle, SyncFile, SyncFS, VFSClient

__all__ = [
    "Acl",
    "AlreadyExists",
    "BadFileHandle",
    "CrossDevice",
    "Credentials",
    "DirectoryNotEmpty",
    "FSError",
    "F_OK",
    "FUSE_DEFAULTS",
    "FileHandle",
    "FileType",
    "FuseMount",
    "InvalidArgument",
    "IOFailure",
    "IsADirectory",
    "KERNEL_DEFAULTS",
    "KernelMount",
    "MountParams",
    "NameTooLong",
    "NotADirectory",
    "NotFound",
    "NotPermitted",
    "OpenFlags",
    "PermissionDenied",
    "R_OK",
    "ROOT_CREDS",
    "StaleHandle",
    "StatFSResult",
    "StatResult",
    "SyncFS",
    "SyncFile",
    "TracingClient",
    "OpTrace",
    "TooManySymlinks",
    "UnsupportedOperation",
    "VFSClient",
    "W_OK",
    "X_OK",
    "check_perm",
    "perm_str",
]
