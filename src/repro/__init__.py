"""ArkFS reproduction (IPDPS 2023).

A from-scratch Python implementation of ArkFS — a near-POSIX distributed
file system on object storage with client-driven, per-directory metadata
management — together with every substrate and baseline its evaluation
depends on, and the paper's experiments as a regenerable benchmark suite.

Packages:

* :mod:`repro.sim` — discrete-event simulation kernel (timing substrate).
* :mod:`repro.objectstore` — flat KV object storage (RADOS/S3 profiles).
* :mod:`repro.posix` — POSIX types, ACLs, the VFS interface, mount models.
* :mod:`repro.core` — ArkFS itself (the paper's contribution).
* :mod:`repro.baselines` — CephFS, MarFS, S3FS, goofys comparators.
* :mod:`repro.workloads` — mdtest, fio, tar, synthetic datasets.
* :mod:`repro.bench` — one regeneration entry point per paper figure/table.

Quickstart::

    from repro.sim import Simulator
    from repro.core import build_arkfs
    from repro.posix import SyncFS, ROOT_CREDS

    sim = Simulator()
    cluster = build_arkfs(sim, n_clients=2, functional=True)
    fs = SyncFS(cluster.client(0), ROOT_CREDS)
    fs.mkdir("/data")
    fs.write_file("/data/hello", b"world", do_fsync=True)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
