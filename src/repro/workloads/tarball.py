"""A ustar tar implementation over the VFS interface (Table II substrate).

GNU tar is the paper's archiving tool; this is a from-scratch POSIX ustar
writer/reader that streams through VFS file handles, so the archive and
extract pipelines exercise the file systems' real data paths:

* :func:`archive_from_disk` — burst buffer → campaign storage: read each
  image off the (simulated EBS) staging volume, stream a tar into the FS.
* :func:`extract_in_fs` — unpack a tar stored in the FS back into the FS,
  categorized into per-category directories (the paper: "the dataset is
  extracted from the tar file and categorized by its date or its data
  type") — this is the metadata-heavy half ArkFS accelerates.
* :func:`archive_to_disk` — campaign storage → burst buffer: walk an FS
  tree, stream a tar onto the staging volume (the unarchiving scenario).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..objectstore.cluster import LocalDisk
from ..posix import path as pathmod
from ..posix.errors import AlreadyExists
from ..posix.types import Credentials, OpenFlags
from ..posix.vfs import FileHandle, VFSClient
from ..sim.engine import SimGen
from .dataset import SyntheticDataset

__all__ = ["TarWriter", "TarReader", "make_header", "parse_header",
           "archive_from_disk", "extract_in_fs", "archive_to_disk",
           "BLOCK"]

BLOCK = 512
_WRITE_BUFFER = 1 << 20  # stream tar bytes in 1 MiB writes


def _octal(value: int, width: int) -> bytes:
    return f"{value:0{width - 1}o}".encode() + b"\x00"


def _pad_name(name: str, width: int) -> bytes:
    raw = name.encode()
    if len(raw) > width:
        raise ValueError(f"name too long for ustar field: {name!r}")
    return raw + b"\x00" * (width - len(raw))


USTAR_MAX_SIZE = 8 ** 11 - 1  # the 12-byte octal size field caps at 8 GiB-1


def make_header(name: str, size: int, typeflag: bytes = b"0",
                mode: int = 0o644, uid: int = 0, gid: int = 0,
                mtime: int = 0) -> bytes:
    """Build one 512-byte ustar header block."""
    if not 0 <= size <= USTAR_MAX_SIZE:
        raise ValueError(f"ustar cannot represent size {size}")
    raw_name = name.encode()
    prefix = b""
    if len(raw_name) > 100:
        # Split at a '/' so name <=100 and prefix <=155 (ustar long names).
        cut = raw_name[:-100].rfind(b"/", 0, 156)
        split = raw_name.rfind(b"/", max(0, len(raw_name) - 101))
        if split <= 0 or split > 155:
            raise ValueError(f"path too long for ustar: {name!r}")
        prefix, raw_name = raw_name[:split], raw_name[split + 1:]
        del cut
    header = bytearray(BLOCK)
    header[0:100] = raw_name + b"\x00" * (100 - len(raw_name))
    header[100:108] = _octal(mode, 8)
    header[108:116] = _octal(uid, 8)
    header[116:124] = _octal(gid, 8)
    header[124:136] = _octal(size, 12)
    header[136:148] = _octal(mtime, 12)
    header[148:156] = b" " * 8  # checksum placeholder
    header[156:157] = typeflag
    header[257:263] = b"ustar\x00"
    header[263:265] = b"00"
    header[265:297] = _pad_name("root", 32)
    header[297:329] = _pad_name("root", 32)
    header[345:345 + len(prefix)] = prefix
    chksum = sum(header)
    header[148:156] = f"{chksum:06o}".encode() + b"\x00 "
    return bytes(header)


def parse_header(block: bytes) -> Optional[Tuple[str, int, bytes]]:
    """Parse a header block; returns (name, size, typeflag) or None at the
    end-of-archive zero block. Raises ValueError on checksum mismatch."""
    if len(block) != BLOCK:
        raise ValueError("short tar header")
    if block == b"\x00" * BLOCK:
        return None
    stored = int(block[148:156].split(b"\x00")[0].strip() or b"0", 8)
    actual = sum(block) - sum(block[148:156]) + 8 * ord(" ")
    if stored != actual:
        raise ValueError("tar header checksum mismatch")
    name = block[0:100].split(b"\x00")[0].decode()
    prefix = block[345:500].split(b"\x00")[0].decode()
    if prefix:
        name = prefix + "/" + name
    size = int(block[124:136].split(b"\x00")[0].strip() or b"0", 8)
    typeflag = block[156:157]
    return name, size, typeflag


class TarWriter:
    """Streams a ustar archive into an open VFS file handle."""

    def __init__(self, mount: VFSClient, handle: FileHandle):
        self.mount = mount
        self.handle = handle
        self._buf = bytearray()
        self.bytes_written = 0

    def _flush_if_full(self) -> SimGen:
        while len(self._buf) >= _WRITE_BUFFER:
            chunk = bytes(self._buf[:_WRITE_BUFFER])
            del self._buf[:_WRITE_BUFFER]
            yield from self.mount.write(self.handle, chunk)
            self.bytes_written += len(chunk)

    def add_dir(self, name: str) -> SimGen:
        self._buf += make_header(name.rstrip("/") + "/", 0, typeflag=b"5",
                                 mode=0o755)
        yield from self._flush_if_full()

    def add_file(self, name: str, data: bytes) -> SimGen:
        self._buf += make_header(name, len(data))
        self._buf += data
        if len(data) % BLOCK:
            self._buf += b"\x00" * (BLOCK - len(data) % BLOCK)
        yield from self._flush_if_full()

    def finish(self) -> SimGen:
        self._buf += b"\x00" * (2 * BLOCK)
        if self._buf:
            yield from self.mount.write(self.handle, bytes(self._buf))
            self.bytes_written += len(self._buf)
            self._buf.clear()


class TarReader:
    """Streams entries out of a tar stored in a VFS file."""

    def __init__(self, mount: VFSClient, handle: FileHandle,
                 read_size: int = _WRITE_BUFFER):
        self.mount = mount
        self.handle = handle
        self.read_size = read_size
        self._buf = bytearray()
        self._eof = False

    def _ensure(self, n: int) -> SimGen:
        while len(self._buf) < n and not self._eof:
            data = yield from self.mount.read(self.handle, self.read_size)
            if not data:
                self._eof = True
                break
            self._buf += data
        return len(self._buf) >= n

    def entries(self) -> SimGen:
        """Coroutine-iterator: returns the full entry list
        ``[(name, typeflag, data), ...]`` (directories have ``data=b""``)."""
        out: List[Tuple[str, bytes, bytes]] = []
        while True:
            ok = yield from self._ensure(BLOCK)
            if not ok:
                break
            block = bytes(self._buf[:BLOCK])
            del self._buf[:BLOCK]
            parsed = parse_header(block)
            if parsed is None:
                break
            name, size, typeflag = parsed
            padded = size + (BLOCK - size % BLOCK) % BLOCK
            ok = yield from self._ensure(padded)
            if not ok and size > 0:
                raise ValueError(f"truncated tar entry {name!r}")
            data = bytes(self._buf[:size])
            del self._buf[:padded]
            out.append((name, typeflag, data))
        return out


# -- Table II pipelines -----------------------------------------------------


def archive_from_disk(mount: VFSClient, creds: Credentials, disk: LocalDisk,
                      dataset: SyntheticDataset, tar_path: str) -> SimGen:
    """Burst buffer -> campaign storage: tar the dataset into the FS."""
    h = yield from mount.open(
        creds, tar_path,
        OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_TRUNC)
    writer = TarWriter(mount, h)
    for image in dataset:
        yield from disk.read(image.size)          # read off the EBS volume
        yield from writer.add_file(f"{image.category}/{image.name}",
                                   image.content())
    yield from writer.finish()
    yield from mount.fsync(h)
    yield from mount.close(h)
    return writer.bytes_written


def extract_in_fs(mount: VFSClient, creds: Credentials, tar_path: str,
                  dst_dir: str) -> SimGen:
    """Unpack a tar stored in the FS into categorized directories."""
    try:
        yield from mount.mkdir(creds, dst_dir)
    except AlreadyExists:
        pass
    h = yield from mount.open(creds, tar_path, OpenFlags.O_RDONLY)
    reader = TarReader(mount, h)
    entries = yield from reader.entries()
    yield from mount.close(h)
    seen_dirs = set()
    count = 0
    for name, typeflag, data in entries:
        target = pathmod.join(dst_dir, *name.strip("/").split("/"))
        if typeflag == b"5":
            continue
        parent, _fname = pathmod.parent_and_name(target)
        if parent not in seen_dirs:
            parts = pathmod.split_path(parent)
            base_parts = pathmod.split_path(dst_dir)
            for i in range(len(base_parts) + 1, len(parts) + 1):
                p = "/" + "/".join(parts[:i])
                if p in seen_dirs:
                    continue
                try:
                    yield from mount.mkdir(creds, p)
                except AlreadyExists:
                    pass
                seen_dirs.add(p)
            seen_dirs.add(parent)
        hf = yield from mount.open(
            creds, target,
            OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_TRUNC)
        if data:
            yield from mount.write(hf, data)
        yield from mount.close(hf)
        count += 1
    return count


def _walk(mount: VFSClient, creds: Credentials, root: str) -> SimGen:
    """Recursive listing: returns [(path, is_dir)] in DFS order."""
    out: List[Tuple[str, bool]] = []
    stack = [root]
    while stack:
        cur = stack.pop()
        names = yield from mount.readdir(creds, cur)
        for name in names:
            p = pathmod.join(cur, name)
            st = yield from mount.stat(creds, p)
            if st.is_dir:
                out.append((p, True))
                stack.append(p)
            else:
                out.append((p, False))
    return out


def archive_to_disk(mount: VFSClient, creds: Credentials, src_dir: str,
                    disk: LocalDisk, read_size: int = _WRITE_BUFFER) -> SimGen:
    """Campaign storage -> burst buffer: tar an FS tree onto the disk."""
    entries = yield from _walk(mount, creds, src_dir)
    total = 0
    for path, is_dir in entries:
        rel = path[len(src_dir):].strip("/")
        if is_dir:
            total += BLOCK
            yield from disk.write(BLOCK)
            continue
        h = yield from mount.open(creds, path, OpenFlags.O_RDONLY)
        size = 0
        while True:
            data = yield from mount.read(h, read_size)
            if not data:
                break
            size += len(data)
            yield from disk.write(len(data))
        yield from mount.close(h)
        padded = BLOCK + size + (BLOCK - size % BLOCK) % BLOCK
        yield from disk.write(padded - size)
        total += padded
        del rel
    yield from disk.write(2 * BLOCK)
    return total + 2 * BLOCK
