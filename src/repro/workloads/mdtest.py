"""mdtest workload generators, following the IO500 configurations.

* :func:`mdtest_easy` — CREATE / STAT / DELETE of empty files, each process
  in its own leaf directory (no metadata sharing at all).
* :func:`mdtest_hard` — WRITE (create + one 3901-byte write) / STAT / READ
  / DELETE, files spread over a pool of *shared* directories that every
  process touches ("the client processes of mdtest-hard conduct file
  operations on an arbitrary directory, simulating the usage in a shared
  directory environment").

Both call a full client sync after each phase, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..posix.errors import FSError, UnsupportedOperation
from ..posix.types import Credentials, OpenFlags, ROOT_CREDS
from ..posix.vfs import VFSClient
from ..sim.engine import SimGen, Simulator
from .runner import WorkloadRunner

__all__ = ["MdtestResult", "mdtest_easy", "mdtest_hard", "HARD_FILE_SIZE"]

HARD_FILE_SIZE = 3901  # bytes; the IO500 mdtest-hard default the paper uses


@dataclass
class MdtestResult:
    """Per-phase ops/sec plus error counts (MarFS READ errors etc.)."""

    phases: dict           # name -> ops/sec
    errors: dict           # name -> error count
    elapsed: dict          # name -> seconds
    total_files: int

    def rate(self, phase: str) -> float:
        return self.phases[phase]


def _mount_of(mounts: Sequence[VFSClient], proc: int) -> VFSClient:
    return mounts[proc % len(mounts)]


def _clients_of(mounts: Sequence[VFSClient]) -> List:
    out = []
    for m in mounts:
        inner = getattr(m, "inner", m)
        if inner not in out:
            out.append(inner)
    return out


def mdtest_easy(
    sim: Simulator,
    mounts: Sequence[VFSClient],
    n_procs: int,
    files_per_proc: int,
    creds: Credentials = ROOT_CREDS,
    base: str = "/mdtest-easy",
    phases: Sequence[str] = ("CREATE", "STAT", "DELETE"),
) -> MdtestResult:
    """mdtest-easy: empty-file metadata ops in private leaf directories."""
    runner = WorkloadRunner(sim, _clients_of(mounts), list(mounts))

    def setup() -> SimGen:
        m = mounts[0]
        try:
            yield from m.mkdir(creds, base)
        except FSError:
            pass  # reruns against an existing tree are fine

    def setup_leaf(p: int):
        def gen() -> SimGen:
            try:
                yield from _mount_of(mounts, p).mkdir(creds,
                                                      f"{base}/dir.{p}")
            except FSError:
                pass
        return gen

    runner.setup([setup])
    runner.setup([setup_leaf(p) for p in range(n_procs)])

    def create_proc(p: int):
        def gen() -> SimGen:
            m = _mount_of(mounts, p)
            for i in range(files_per_proc):
                h = yield from m.open(
                    creds, f"{base}/dir.{p}/file.{i}",
                    OpenFlags.O_CREAT | OpenFlags.O_EXCL | OpenFlags.O_WRONLY)
                yield from m.close(h)
        return gen

    def stat_proc(p: int):
        def gen() -> SimGen:
            m = _mount_of(mounts, p)
            for i in range(files_per_proc):
                yield from m.stat(creds, f"{base}/dir.{p}/file.{i}")
        return gen

    def delete_proc(p: int):
        def gen() -> SimGen:
            m = _mount_of(mounts, p)
            for i in range(files_per_proc):
                yield from m.unlink(creds, f"{base}/dir.{p}/file.{i}")
        return gen

    factories = {"CREATE": create_proc, "STAT": stat_proc,
                 "DELETE": delete_proc}
    total = n_procs * files_per_proc
    result = MdtestResult(phases={}, errors={}, elapsed={}, total_files=total)
    for name in phases:
        r = runner.phase(name, [factories[name](p) for p in range(n_procs)],
                         ops=total)
        result.phases[name] = r.ops_per_sec
        result.elapsed[name] = r.elapsed
        result.errors[name] = r.errors
    return result


def _hard_dir_of(p: int, i: int, n_dirs: int) -> int:
    """Deterministic 'arbitrary directory' assignment per file."""
    return (p * 2654435761 + i * 40503) % n_dirs


def mdtest_hard(
    sim: Simulator,
    mounts: Sequence[VFSClient],
    n_procs: int,
    files_per_proc: int,
    creds: Credentials = ROOT_CREDS,
    base: str = "/mdtest-hard",
    n_dirs: Optional[int] = None,
    file_size: int = HARD_FILE_SIZE,
    phases: Sequence[str] = ("WRITE", "STAT", "READ", "DELETE"),
) -> MdtestResult:
    """mdtest-hard: small-file ops spread over shared directories."""
    if n_dirs is None:
        n_dirs = max(2, n_procs // 2)
    runner = WorkloadRunner(sim, _clients_of(mounts), list(mounts))
    payload = b"\xA5" * file_size

    def setup() -> SimGen:
        m = mounts[0]
        try:
            yield from m.mkdir(creds, base)
        except FSError:
            pass
        for d in range(n_dirs):
            try:
                yield from m.mkdir(creds, f"{base}/shared.{d}")
            except FSError:
                pass

    runner.setup([setup])

    def path_of(p: int, i: int) -> str:
        return f"{base}/shared.{_hard_dir_of(p, i, n_dirs)}/f.{p}.{i}"

    def write_proc(p: int):
        def gen() -> SimGen:
            m = _mount_of(mounts, p)
            for i in range(files_per_proc):
                h = yield from m.open(
                    creds, path_of(p, i),
                    OpenFlags.O_CREAT | OpenFlags.O_EXCL | OpenFlags.O_WRONLY)
                yield from m.write(h, payload)
                yield from m.close(h)
        return gen

    def stat_proc(p: int):
        def gen() -> SimGen:
            m = _mount_of(mounts, p)
            for i in range(files_per_proc):
                yield from m.stat(creds, path_of(p, i))
        return gen

    def make_read_proc(p: int, errors: List[int]):
        def gen() -> SimGen:
            m = _mount_of(mounts, p)
            for i in range(files_per_proc):
                try:
                    h = yield from m.open(creds, path_of(p, i),
                                          OpenFlags.O_RDONLY)
                    yield from m.read(h, file_size)
                    yield from m.close(h)
                except (UnsupportedOperation, FSError):
                    errors[0] += 1
        return gen

    def delete_proc(p: int):
        def gen() -> SimGen:
            m = _mount_of(mounts, p)
            for i in range(files_per_proc):
                yield from m.unlink(creds, path_of(p, i))
        return gen

    total = n_procs * files_per_proc
    result = MdtestResult(phases={}, errors={}, elapsed={}, total_files=total)
    for name in phases:
        errs = [0]
        if name == "WRITE":
            fac = [write_proc(p) for p in range(n_procs)]
        elif name == "STAT":
            fac = [stat_proc(p) for p in range(n_procs)]
        elif name == "READ":
            fac = [make_read_proc(p, errs) for p in range(n_procs)]
        else:
            fac = [delete_proc(p) for p in range(n_procs)]
        r = runner.phase(name, fac, ops=total,
                         nbytes=total * file_size if name in ("WRITE", "READ")
                         else 0)
        result.phases[name] = r.ops_per_sec
        result.elapsed[name] = r.elapsed
        result.errors[name] = errs[0]
    return result
