"""pftool-style parallel data movement (LANL's recommended campaign tool).

The paper cites *pftool* — "a parallel metadata/data operation utility" —
as the recommended way to move data in and out of MarFS-class campaign
storage. This is a working equivalent over the VFS interface: a
producer/worker architecture where a tree walker enumerates work items
(directory creations, whole small files, chunks of large files) into a
queue drained by N parallel workers. Because it is written against the VFS
interface it moves data *between any two file systems* in this repository —
including CephFS→ArkFS migrations.

Operations:
* :func:`parallel_copy`    — recursive tree copy (pftool ``cpr``)
* :func:`parallel_compare` — recursive tree comparison (pftool ``cmpr``)
* :func:`parallel_list`    — recursive stat-walk (pftool ``lsr``)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..posix import path as pathmod
from ..posix.errors import AlreadyExists, FSError
from ..posix.types import Credentials, OpenFlags
from ..posix.vfs import VFSClient
from ..sim.engine import SimGen, Simulator
from ..sim.resources import Store

__all__ = ["PFToolStats", "parallel_copy", "parallel_compare",
           "parallel_list", "CHUNK_SIZE"]

CHUNK_SIZE = 16 * 1024 * 1024  # files larger than this are chunked
_DONE = object()


@dataclass
class PFToolStats:
    """Aggregate outcome of one parallel operation."""

    dirs: int = 0
    files: int = 0
    bytes_moved: int = 0
    chunks: int = 0
    errors: List[str] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)
    entries: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors and not self.mismatches


def _walker(sim: Simulator, mount: VFSClient, creds: Credentials, root: str,
            queue: Store, n_workers: int, stats: PFToolStats,
            emit_files: bool = True) -> SimGen:
    """Producer: BFS the source tree, emitting work items.

    Directories are emitted (and created downstream) before their contents
    thanks to BFS order; large files become multiple chunk items so several
    workers share one big file, as pftool does.
    """
    pending = [root]
    while pending:
        cur = pending.pop(0)
        try:
            names = yield from mount.readdir(creds, cur)
        except FSError as e:
            stats.errors.append(f"readdir {cur}: {e}")
            continue
        for name in names:
            path = pathmod.join(cur, name)
            try:
                st = yield from mount.lstat(creds, path)
            except FSError as e:
                stats.errors.append(f"stat {path}: {e}")
                continue
            if st.is_dir:
                queue.put(("dir", path, 0, 0))
                pending.append(path)
            elif st.is_symlink:
                queue.put(("symlink", path, 0, 0))
            elif emit_files:
                if st.st_size > CHUNK_SIZE:
                    for off in range(0, st.st_size, CHUNK_SIZE):
                        n = min(CHUNK_SIZE, st.st_size - off)
                        queue.put(("chunk", path, off, n))
                else:
                    queue.put(("file", path, 0, st.st_size))
            else:
                queue.put(("file", path, 0, st.st_size))
    for _ in range(n_workers):
        queue.put(_DONE)


def _rebase(path: str, src_root: str, dst_root: str) -> str:
    rel = pathmod.split_path(path)[len(pathmod.split_path(src_root)):]
    return pathmod.join(dst_root, *rel) if rel else dst_root


def _ensure_parents(dst: VFSClient, creds: Credentials, dst_root: str,
                    target: str) -> SimGen:
    """mkdir -p the rebased ancestors (a worker can outrun the worker that
    holds the parent's "dir" item — pftool workers race the same way)."""
    parts = pathmod.split_path(target)[:-1]
    base_depth = len(pathmod.split_path(dst_root))
    for i in range(base_depth, len(parts)):
        p = "/" + "/".join(parts[: i + 1])
        try:
            yield from dst.mkdir(creds, p)
        except AlreadyExists:
            pass


def _copy_worker(sim: Simulator, src: VFSClient, dst: VFSClient,
                 creds: Credentials, src_root: str, dst_root: str,
                 queue: Store, stats: PFToolStats) -> SimGen:
    while True:
        item = yield queue.get()
        if item is _DONE:
            return
        kind, path, offset, length = item
        target = _rebase(path, src_root, dst_root)
        try:
            if kind != "dir":
                yield from _ensure_parents(dst, creds, dst_root, target)
            if kind == "dir":
                st = yield from src.stat(creds, path)
                try:
                    yield from dst.mkdir(creds, target, st.perm_bits & 0o777)
                except AlreadyExists:
                    pass
                stats.dirs += 1
            elif kind == "symlink":
                link = yield from src.readlink(creds, path)
                try:
                    yield from dst.symlink(creds, link, target)
                except AlreadyExists:
                    pass
                stats.files += 1
            elif kind == "file":
                data = yield from src.read_file(creds, path)
                yield from dst.write_file(creds, target, data, do_fsync=True)
                stats.files += 1
                stats.bytes_moved += len(data)
            elif kind == "chunk":
                hs = yield from src.open(creds, path, OpenFlags.O_RDONLY)
                data = yield from src.read(hs, length, offset=offset)
                yield from src.close(hs)
                hd = yield from dst.open(creds, target,
                                         OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
                yield from dst.write(hd, data, offset=offset)
                yield from dst.fsync(hd)
                yield from dst.close(hd)
                stats.chunks += 1
                stats.bytes_moved += len(data)
                if offset == 0:
                    stats.files += 1
        except FSError as e:
            stats.errors.append(f"{kind} {path}: {e}")


def parallel_copy(sim: Simulator, src: VFSClient, dst: VFSClient,
                  creds: Credentials, src_root: str, dst_root: str,
                  n_workers: int = 8) -> SimGen:
    """Recursive parallel copy of a tree between two file systems."""
    stats = PFToolStats()
    try:
        yield from dst.mkdir(creds, dst_root)
    except AlreadyExists:
        pass
    queue = Store(sim, name="pftool-queue")
    workers = [
        sim.process(_copy_worker(sim, src, dst, creds, src_root, dst_root,
                                 queue, stats), name=f"pftool-w{i}")
        for i in range(n_workers)
    ]
    producer = sim.process(
        _walker(sim, src, creds, src_root, queue, n_workers, stats),
        name="pftool-walker")
    yield sim.all_of([producer] + workers)
    return stats


def _compare_worker(sim: Simulator, a: VFSClient, b: VFSClient,
                    creds: Credentials, a_root: str, b_root: str,
                    queue: Store, stats: PFToolStats) -> SimGen:
    while True:
        item = yield queue.get()
        if item is _DONE:
            return
        kind, path, offset, length = item
        other = _rebase(path, a_root, b_root)
        try:
            if kind == "dir":
                st = yield from b.stat(creds, other)
                if not st.is_dir:
                    stats.mismatches.append(f"{other}: not a directory")
                stats.dirs += 1
            elif kind == "symlink":
                la = yield from a.readlink(creds, path)
                lb = yield from b.readlink(creds, other)
                if la != lb:
                    stats.mismatches.append(f"{other}: symlink target differs")
                stats.files += 1
            else:
                ha = yield from a.open(creds, path, OpenFlags.O_RDONLY)
                da = yield from a.read(ha, length, offset=offset)
                yield from a.close(ha)
                hb = yield from b.open(creds, other, OpenFlags.O_RDONLY)
                db = yield from b.read(hb, length, offset=offset)
                yield from b.close(hb)
                if da != db:
                    stats.mismatches.append(
                        f"{other} @{offset}: content differs")
                stats.bytes_moved += len(da) + len(db)
                if kind == "chunk":
                    stats.chunks += 1
                if offset == 0:
                    stats.files += 1
        except FSError as e:
            stats.mismatches.append(f"{other}: {e}")


def parallel_compare(sim: Simulator, a: VFSClient, b: VFSClient,
                     creds: Credentials, a_root: str, b_root: str,
                     n_workers: int = 8) -> SimGen:
    """Recursive parallel comparison; mismatches land in the stats."""
    stats = PFToolStats()
    queue = Store(sim, name="pftool-cmp-queue")
    workers = [
        sim.process(_compare_worker(sim, a, b, creds, a_root, b_root,
                                    queue, stats), name=f"pfcmp-w{i}")
        for i in range(n_workers)
    ]
    producer = sim.process(
        _walker(sim, a, creds, a_root, queue, n_workers, stats),
        name="pfcmp-walker")
    yield sim.all_of([producer] + workers)
    return stats


def _list_worker(sim: Simulator, mount: VFSClient, creds: Credentials,
                 queue: Store, stats: PFToolStats) -> SimGen:
    while True:
        item = yield queue.get()
        if item is _DONE:
            return
        kind, path, _offset, length = item
        if kind == "dir":
            stats.dirs += 1
            stats.entries.append((path, -1))
        else:
            stats.files += 1
            stats.entries.append((path, length))


def parallel_list(sim: Simulator, mount: VFSClient, creds: Credentials,
                  root: str, n_workers: int = 8) -> SimGen:
    """Recursive parallel listing (pftool ``lsr``): paths + sizes."""
    stats = PFToolStats()
    queue = Store(sim, name="pftool-ls-queue")
    workers = [
        sim.process(_list_worker(sim, mount, creds, queue, stats),
                    name=f"pfls-w{i}")
        for i in range(n_workers)
    ]
    producer = sim.process(
        _walker(sim, mount, creds, root, queue, n_workers, stats,
                emit_files=True),
        name="pfls-walker")
    yield sim.all_of([producer] + workers)
    stats.entries.sort()
    return stats
