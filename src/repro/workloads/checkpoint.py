"""Checkpoint/restart workload — the HPC pattern behind client-side metadata.

The paper's related work credits client-funded metadata services with
"higher throughput in metadata-intensive or checkpointing workloads"; this
generator reproduces the classic N-N checkpointing cadence:

* every *generation*, each of N ranks writes its own checkpoint file into a
  fresh generation directory and fsyncs it;
* rank 0 then writes a manifest naming every member (the commit point);
* generations beyond a retention window are deleted;
* on *restart*, every rank locates the newest complete generation via its
  manifest and reads its own checkpoint back.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Sequence

from ..posix.errors import FSError, NotFound
from ..posix.types import Credentials, OpenFlags, ROOT_CREDS
from ..posix.vfs import VFSClient
from ..sim.engine import SimGen, Simulator
from .mdtest import _mount_of
from .runner import run_phase

__all__ = ["CheckpointResult", "checkpoint_restart"]


@dataclass
class CheckpointResult:
    generation_times: List[float] = field(default_factory=list)
    restart_time: float = 0.0
    bytes_per_generation: int = 0
    restored_ranks: int = 0

    @property
    def mean_generation_time(self) -> float:
        return (sum(self.generation_times) / len(self.generation_times)
                if self.generation_times else 0.0)

    @property
    def checkpoint_bandwidth_mbps(self) -> float:
        t = self.mean_generation_time
        return self.bytes_per_generation / t / 1e6 if t > 0 else 0.0


def _gen_dir(base: str, gen: int) -> str:
    return f"{base}/gen-{gen:05d}"


def checkpoint_restart(
    sim: Simulator,
    mounts: Sequence[VFSClient],
    n_ranks: int,
    ckpt_bytes: int,
    n_generations: int = 3,
    keep: int = 2,
    files_per_rank: int = 1,
    creds: Credentials = ROOT_CREDS,
    base: str = "/ckpt",
) -> CheckpointResult:
    """Run the full checkpoint cadence then a restart; returns timings.

    ``files_per_rank`` > 1 models the N-N-M pattern (each rank splits its
    state into several segment files) — the regime where per-directory
    metadata management amortizes its lease/metatable setup.
    """
    result = CheckpointResult(
        bytes_per_generation=n_ranks * ckpt_bytes * files_per_rank)
    seg_bytes = ckpt_bytes
    payload = b"\xCC" * seg_bytes

    def setup() -> SimGen:
        try:
            yield from mounts[0].mkdir(creds, base)
        except FSError:
            pass

    run_phase(sim, [sim.process(setup())])

    def write_rank(rank: int, gen: int):
        def gen_fn() -> SimGen:
            m = _mount_of(mounts, rank)
            if rank == 0:
                yield from m.mkdir(creds, _gen_dir(base, gen))
            else:
                # Non-zero ranks wait for the generation dir to appear.
                while True:
                    try:
                        yield from m.stat(creds, _gen_dir(base, gen))
                        break
                    except NotFound:
                        yield sim.timeout(0.001)
            last = None
            for seg in range(files_per_rank):
                suffix = f".{seg:03d}" if files_per_rank > 1 else ""
                path = (f"{_gen_dir(base, gen)}/"
                        f"rank-{rank:04d}.ckpt{suffix}")
                h = yield from m.open(
                    creds, path,
                    OpenFlags.O_CREAT | OpenFlags.O_WRONLY |
                    OpenFlags.O_TRUNC)
                yield from m.write(h, payload)
                if last is not None:
                    yield from m.close(last)
                last = h
            # One durability point per rank per generation (checkpoint
            # libraries batch their segment fsyncs exactly like this).
            yield from m.fsync(last)
            yield from m.close(last)
        return gen_fn

    def commit_manifest(gen: int):
        def gen_fn() -> SimGen:
            m = _mount_of(mounts, 0)
            suffix = ".000" if files_per_rank > 1 else ""
            manifest = {
                "generation": gen,
                "ranks": n_ranks,
                "segments": files_per_rank,
                "members": [f"rank-{r:04d}.ckpt{suffix}"
                            for r in range(n_ranks)],
            }
            yield from m.write_file(
                creds, f"{_gen_dir(base, gen)}/MANIFEST",
                json.dumps(manifest).encode(), do_fsync=True)
        return gen_fn

    def prune(gen: int):
        def gen_fn() -> SimGen:
            dead = gen - keep
            if dead < 0:
                yield sim.timeout(0)
                return
            m = _mount_of(mounts, 0)
            dead_dir = _gen_dir(base, dead)
            try:
                names = yield from m.readdir(creds, dead_dir)
            except NotFound:
                return
            for name in names:
                yield from m.unlink(creds, f"{dead_dir}/{name}")
            yield from m.rmdir(creds, dead_dir)
        return gen_fn

    for gen in range(n_generations):
        t0 = sim.now
        run_phase(sim, [sim.process(write_rank(r, gen)())
                        for r in range(n_ranks)])
        run_phase(sim, [sim.process(commit_manifest(gen)())])
        result.generation_times.append(sim.now - t0)
        run_phase(sim, [sim.process(prune(gen)())])

    # -- restart: every rank restores from the newest complete generation.
    latest = n_generations - 1

    def restore_rank(rank: int):
        def gen_fn() -> SimGen:
            m = _mount_of(mounts, rank)
            raw = yield from m.read_file(
                creds, f"{_gen_dir(base, latest)}/MANIFEST")
            manifest = json.loads(raw)
            name = manifest["members"][rank]
            data = yield from m.read_file(
                creds, f"{_gen_dir(base, latest)}/{name}")
            assert len(data) == seg_bytes, "truncated checkpoint"
            result.restored_ranks += 1
        return gen_fn

    t0 = sim.now
    run_phase(sim, [sim.process(restore_rank(r)()) for r in range(n_ranks)])
    result.restart_time = sim.now - t0
    return result
