"""fio-style sequential bandwidth workload (Section IV-B).

The paper: "we run fio with 32 processes and each process writes and then
reads a 32GB file using 128KB request size (total 1TB). At the end of the
file writing, each fio process calls fsync() ... and drops the cache
entries of written files." We reproduce the phase structure at a
configurable scale (the timing model is size-linear; EXPERIMENTS.md
documents the scale-down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..posix.types import Credentials, OpenFlags, ROOT_CREDS
from ..posix.vfs import VFSClient
from ..sim.engine import SimGen, Simulator
from .runner import WorkloadRunner, run_phase
from .mdtest import _clients_of, _mount_of

__all__ = ["FioResult", "fio_seq"]


@dataclass
class FioResult:
    write_mbps: float
    read_mbps: float
    write_elapsed: float
    read_elapsed: float
    total_bytes: int


def fio_seq(
    sim: Simulator,
    mounts: Sequence[VFSClient],
    n_procs: int,
    file_size: int,
    block_size: int = 128 * 1024,
    creds: Credentials = ROOT_CREDS,
    base: str = "/fio",
) -> FioResult:
    """Sequential write-then-read; returns aggregate MB/s per phase."""
    runner = WorkloadRunner(sim, _clients_of(mounts), list(mounts))
    block = b"\x5A" * block_size

    def setup() -> SimGen:
        yield from mounts[0].mkdir(creds, base)

    runner.setup([setup])

    def write_proc(p: int):
        def gen() -> SimGen:
            m = _mount_of(mounts, p)
            h = yield from m.open(
                creds, f"{base}/job{p}.dat",
                OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_TRUNC)
            remaining = file_size
            while remaining > 0:
                n = min(block_size, remaining)
                yield from m.write(h, block[:n])
                remaining -= n
            yield from m.fsync(h)
            yield from m.close(h)
        return gen

    def read_proc(p: int):
        def gen() -> SimGen:
            m = _mount_of(mounts, p)
            h = yield from m.open(creds, f"{base}/job{p}.dat",
                                  OpenFlags.O_RDONLY)
            remaining = file_size
            while remaining > 0:
                data = yield from m.read(h, min(block_size, remaining))
                if not data:
                    break
                remaining -= len(data)
            yield from m.close(h)
        return gen

    total = n_procs * file_size
    w = runner.phase("WRITE", [write_proc(p) for p in range(n_procs)],
                     ops=n_procs, nbytes=total)
    # Drop caches between phases, exactly as the paper does.
    drops = []
    for client in _clients_of(mounts):
        drop = getattr(client, "drop_caches", None)
        if drop is not None:
            drops.append(sim.process(drop()))
    if drops:
        run_phase(sim, drops)
    r = runner.phase("READ", [read_proc(p) for p in range(n_procs)],
                     ops=n_procs, nbytes=total)
    return FioResult(write_mbps=w.bandwidth_mbps, read_mbps=r.bandwidth_mbps,
                     write_elapsed=w.elapsed, read_elapsed=r.elapsed,
                     total_bytes=total)
