"""Synthetic MS-COCO-like image dataset (Table II substrate).

The paper archives the MS-COCO image dataset: ~41K images of tens to
hundreds of KB, ~7 GB total, staged on an EBS volume. That dataset is not
redistributable here, so we generate a synthetic one with the same shape: a
deterministic log-normal-ish size distribution over the 10 KB–600 KB range
whose mean lands near MS-COCO's ~170 KB, with stable per-image content so
archive/extract round trips are verifiable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["ImageSpec", "SyntheticDataset", "mscoco_like"]

CATEGORIES = ("train", "val", "test")


@dataclass(frozen=True)
class ImageSpec:
    name: str
    size: int
    category: str

    def content(self) -> bytes:
        """Deterministic pseudo-content: cheap, but verifiable."""
        seed = hash((self.name, self.size)) & 0xFF
        return bytes([seed]) * self.size


@dataclass
class SyntheticDataset:
    images: List[ImageSpec]

    @property
    def total_bytes(self) -> int:
        return sum(im.size for im in self.images)

    def __len__(self) -> int:
        return len(self.images)

    def __iter__(self):
        return iter(self.images)


def mscoco_like(n_images: int = 41_000, seed: int = 0,
                mean_kb: float = 170.0) -> SyntheticDataset:
    """Generate an MS-COCO-shaped dataset (sizes tens–hundreds of KB).

    Sizes are drawn log-normally in one vectorized numpy pass (41K sizes in
    a Python loop is measurable at full scale) and clamped to the
    10 KB .. 600 KB band MS-COCO spans.
    """
    rng = np.random.default_rng(seed)
    raw = rng.lognormal(mean=0.0, sigma=0.6, size=n_images)
    sizes = np.clip((raw * mean_kb * 1024).astype(np.int64),
                    10 * 1024, 600 * 1024)
    images = [
        ImageSpec(name=f"{i:012d}.jpg", size=int(size),
                  category=CATEGORIES[i % len(CATEGORIES)])
        for i, size in enumerate(sizes)
    ]
    return SyntheticDataset(images)
