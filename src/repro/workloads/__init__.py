"""Benchmark workloads: mdtest (IO500 easy/hard), fio-style sequential
bandwidth, a ustar tar archiver over the VFS API, the synthetic
MS-COCO-like dataset for the Table II archiving scenarios, and the
multi-tenant archive-as-a-service mix for the QoS ablation (A11)."""

from .checkpoint import CheckpointResult, checkpoint_restart
from .dataset import ImageSpec, SyntheticDataset, mscoco_like
from .fio import FioResult, fio_seq
from .mdtest import HARD_FILE_SIZE, MdtestResult, mdtest_easy, mdtest_hard
from .pftool import (
    CHUNK_SIZE,
    PFToolStats,
    parallel_compare,
    parallel_copy,
    parallel_list,
)
from .runner import WorkloadRunner, run_phase
from .tenants import TenantLoadResult, archive_service, zipf_ranks
from .tarball import (
    BLOCK,
    TarReader,
    TarWriter,
    archive_from_disk,
    archive_to_disk,
    extract_in_fs,
    make_header,
    parse_header,
)

__all__ = [
    "BLOCK",
    "CheckpointResult",
    "FioResult",
    "HARD_FILE_SIZE",
    "ImageSpec",
    "MdtestResult",
    "PFToolStats",
    "SyntheticDataset",
    "TenantLoadResult",
    "TarReader",
    "TarWriter",
    "WorkloadRunner",
    "archive_from_disk",
    "archive_service",
    "archive_to_disk",
    "checkpoint_restart",
    "extract_in_fs",
    "fio_seq",
    "make_header",
    "mdtest_easy",
    "mdtest_hard",
    "mscoco_like",
    "parallel_compare",
    "parallel_copy",
    "parallel_list",
    "parse_header",
    "run_phase",
    "zipf_ranks",
]
