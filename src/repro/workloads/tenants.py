"""Archive-as-a-service: many tenants, Zipf load, one abusive tenant.

The scale-out scenario behind ablation A11 (ROADMAP item 2). A handful of
gateway clients front a large tenant population: each *victim* stream runs
closed-loop archive ingest ops (create + write + fsync + close, with a
read-back mix), picking the acting tenant per op from a Zipf distribution
and rebinding via ``client.bind_tenant``. One optional *abusive* tenant
gets a dedicated client and hammers it with ``abusive_procs`` concurrent
zero-think-time streams — orders of magnitude more offered load than any
victim — until the victims finish.

Every op's end-to-end latency lands both in the returned per-tenant lists
(exact, for assertions) and in the obs metrics registry as
``tenant.<tid>.lat`` histograms (log-bucketed, exported into every
BENCH json with p50/p95/p99). The scenario itself is QoS-agnostic: run it
against a ``qos_enabled`` build and the same code exercises token buckets,
WFQ, and admission; run it against a default build to measure the damage
an unthrottled tenant does.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..obs import Observability
from ..posix.errors import FSError
from ..posix.types import OpenFlags, ROOT_CREDS
from ..sim.engine import SimGen, Simulator
from .runner import run_phase

__all__ = ["TenantLoadResult", "archive_service", "zipf_ranks"]

ABUSER = "abuser"


def zipf_ranks(n: int, s: float = 1.1) -> List[float]:
    """Cumulative Zipf(s) weights over ranks 1..n, for bisect sampling."""
    acc, out = 0.0, []
    for rank in range(1, n + 1):
        acc += 1.0 / rank ** s
        out.append(acc)
    return [w / acc for w in out]


@dataclass
class TenantLoadResult:
    """Per-tenant latencies plus aggregate accounting for one run."""

    lats: Dict[str, List[float]] = field(default_factory=dict)
    victim_ops: int = 0
    abusive_ops: int = 0
    abusive_rejected: int = 0
    elapsed: float = 0.0

    def p99(self, tenant: str) -> float:
        xs = sorted(self.lats[tenant])
        return xs[max(0, int(len(xs) * 0.99) - 1)]

    def victim_p99(self) -> float:
        """p99 over every victim-tenant op (the abuser excluded)."""
        xs = sorted(x for t, v in self.lats.items() if t != ABUSER
                    for x in v)
        return xs[max(0, int(len(xs) * 0.99) - 1)]

    def victim_tenants(self) -> List[str]:
        return sorted(t for t in self.lats if t != ABUSER)


def archive_service(
    sim: Simulator,
    cluster,
    n_tenants: int,
    ops_per_stream: int,
    abusive_procs: int = 0,
    payload: int = 16 * 1024,
    abusive_payload: int = None,
    think: float = 0.002,
    zipf_s: float = 1.1,
    seed: int = 0,
) -> TenantLoadResult:
    """Run the archive-as-a-service mix on a built ArkFS cluster.

    Victim streams run on ``cluster.clients[:-1]`` (all clients when
    ``abusive_procs == 0``); the last client is the abuser's dedicated
    gateway. Tenant weights are uniform — isolation must come from the QoS
    plane, not from configuration favors.
    """
    clients = cluster.clients
    n_streams = len(clients) - (1 if abusive_procs else 0)
    if n_streams < 1:
        raise ValueError("need at least one victim client")
    metrics = Observability.of(sim).metrics
    cdf = zipf_ranks(n_tenants, zipf_s)
    result = TenantLoadResult()
    stop = [False]

    def setup() -> SimGen:
        c = clients[0]
        yield from c.mkdir(ROOT_CREDS, "/svc", 0o777)
        for v in range(n_streams):
            yield from c.mkdir(ROOT_CREDS, f"/svc/s{v}", 0o777)
        if abusive_procs:
            yield from c.mkdir(ROOT_CREDS, "/svc/abuse", 0o777)

    run_phase(sim, [sim.process(setup(), name="svc-setup")])

    data = bytes(payload)
    # The abuser may slam much larger objects than the victims' small-file
    # ingest — the realistic damage vector is the shared OSD data path,
    # not op count alone.
    abuse_data = bytes(abusive_payload) if abusive_payload else data

    def record(tenant: str, dt: float) -> None:
        result.lats.setdefault(tenant, []).append(dt)
        metrics.histogram(f"tenant.{tenant}.lat").observe(dt)

    def victim_stream(v: int) -> SimGen:
        c = clients[v]
        rng = random.Random((seed << 16) ^ v)
        last_path = None
        for k in range(ops_per_stream):
            tid = f"t{bisect.bisect(cdf, rng.random())}"
            c.bind_tenant(tid)
            t0 = sim.now
            if last_path is not None and k % 4 == 3:
                # Read-back mix: one retrieval per three ingests.
                h = yield from c.open(ROOT_CREDS, last_path,
                                      OpenFlags.O_RDONLY)
                yield from c.read(h, payload)
                yield from c.close(h)
            else:
                path = f"/svc/s{v}/o{k}"
                h = yield from c.open(
                    ROOT_CREDS, path,
                    OpenFlags.O_CREAT | OpenFlags.O_EXCL | OpenFlags.O_WRONLY)
                yield from c.write(h, data)
                yield from c.fsync(h)
                yield from c.close(h)
                last_path = path
            record(tid, sim.now - t0)
            result.victim_ops += 1
            if think > 0:
                yield sim.timeout(think)

    def abusive_stream(p: int) -> SimGen:
        c = clients[-1]
        c.bind_tenant(ABUSER)
        k = 0
        while not stop[0]:
            t0 = sim.now
            try:
                path = f"/svc/abuse/p{p}.o{k}"
                h = yield from c.open(
                    ROOT_CREDS, path,
                    OpenFlags.O_CREAT | OpenFlags.O_EXCL | OpenFlags.O_WRONLY)
                yield from c.write(h, abuse_data)
                yield from c.fsync(h)
                yield from c.close(h)
            except FSError:
                # Admission gave up after its retry budget (EAGAIN): the
                # backpressure the QoS plane is supposed to apply.
                result.abusive_rejected += 1
            else:
                result.abusive_ops += 1
                record(ABUSER, sim.now - t0)
            k += 1

    t_start = sim.now
    abusers = [sim.process(abusive_stream(p), name=f"abuse[{p}]")
               for p in range(abusive_procs)]
    victims = [sim.process(victim_stream(v), name=f"victim[{v}]")
               for v in range(n_streams)]
    run_phase(sim, victims)
    stop[0] = True
    run_phase(sim, abusers)
    result.elapsed = sim.now - t_start
    return result
