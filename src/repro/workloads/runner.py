"""Multi-client workload execution with phase barriers.

mdtest and fio run as N closed-loop processes spread over the cluster's
mounts, with a barrier between phases and an fsync/sync of every client at
each phase end ("We call fsync() after each phase, causing all
modifications to be flushed to the underlying storage").
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..sim.engine import SimGen, Simulator
from ..sim.stats import PhaseRecorder, PhaseResult

__all__ = ["WorkloadRunner", "run_phase"]

ProcFactory = Callable[[], SimGen]


def run_phase(sim: Simulator, procs: Sequence) -> None:
    """Advance the simulation until every process completes (background
    processes — journal threads, lease keepers, MDS rebalancers — keep the
    event heap non-empty forever, so a bare ``run()`` is not usable)."""
    done = sim.all_of(list(procs))
    while not done.triggered:
        sim.step()
    if not done.ok:
        raise done.value


class WorkloadRunner:
    """Runs named phases of per-process coroutines and records timings."""

    def __init__(self, sim: Simulator, clients: Optional[List] = None,
                 mounts: Optional[List] = None):
        self.sim = sim
        self.clients = clients or []   # objects with .sync() for phase fsync
        self.mounts = mounts or []     # mounts whose dcache expires per phase
        self.recorder = PhaseRecorder(sim)

    def setup(self, factories: Sequence[ProcFactory]) -> None:
        """Untimed preparation work (directory trees, datasets)."""
        run_phase(self.sim, [self.sim.process(f()) for f in factories])
        self._sync_all()

    def phase(self, name: str, factories: Sequence[ProcFactory],
              ops: int = 0, nbytes: int = 0) -> PhaseResult:
        """Run one timed phase; returns its result."""
        for mount in self.mounts:
            drop = getattr(mount, "invalidate_dcache", None)
            if drop is not None:
                drop()
        tracer = self.sim._tracer or self.sim._sample_tracer
        if tracer is not None:
            # Spans opened during this phase carry its name, which is what
            # the latency-attribution report groups by. Under sampled
            # tracing the main context sees ``sim._tracer is None``, so
            # reach for the sampling tracer too.
            tracer.phase = name
        self.recorder.begin(name)
        procs = [self.sim.process(f(), name=f"{name}[{i}]")
                 for i, f in enumerate(factories)]
        try:
            run_phase(self.sim, procs)
            self._sync_all()
        finally:
            if tracer is not None:
                tracer.phase = ""
        self.recorder.count(ops, nbytes)
        return self.recorder.end()

    def _sync_all(self) -> None:
        syncs = []
        for client in self.clients:
            sync = getattr(client, "sync", None)
            if sync is not None:
                syncs.append(self.sim.process(sync()))
        if syncs:
            run_phase(self.sim, syncs)
