"""Kernel microbenchmarks: raw scheduler throughput, fast vs. reference.

Two workloads exercise the hot paths DESIGN.md §10 describes:

* ``pingpong`` — zero-latency-hop RPC ping-pong between two nodes. Every
  RPC is a process spawn plus a handful of immediately-due events (NIC
  hops, grant/complete), i.e. the ready-deque + immediate-resume path.
* ``contended`` — many processes hammering a capacity-2 Resource with a
  mix of timed and zero-length holds: the grant/release/lazy-cancel path
  plus heap traffic for the timed holds.

Each returns wall-clock ops/sec (simulated operations per real second) and
the kernel counters, and :func:`compare` runs a workload under both the
fast two-queue scheduler and the reference heap-only scheduler
(``Simulator(fast=False)``) to report the speedup — the number
``scripts/perf_gate.py`` gates on, chosen over absolute ops/sec because a
ratio of two runs on the same machine mostly cancels host speed.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from ..sim import NetParams, Network, Node, Resource, Simulator
from ..sim.stats import kernel_counters

__all__ = ["pingpong", "contended", "compare", "WORKLOADS"]


def _run(build: Callable[[Simulator], int], fast: Optional[bool],
         obs: bool = False) -> Dict[str, object]:
    """Drive one workload to completion and package the measurement.

    ``obs=True`` installs the always-on observability tier (1% sampled
    tracing + slow-op log + flight recorder) before running, so the
    overhead gate in ``benchmarks/test_kernel_speed.py`` can measure its
    cost on the raw scheduler hot path."""
    sim = Simulator(fast=fast)
    if obs:
        from ..obs import Observability

        o = Observability.of(sim)
        o.enable_tracing(sample_rate=0.01)
        o.enable_slowlog()
        o.enable_recorder()
    ops = build(sim)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "ops": ops,
        "wall_s": wall,
        "ops_per_sec": ops / wall if wall > 0 else 0.0,
        "sim_time": sim.now,
        "counters": kernel_counters(sim),
    }


def pingpong(n_ops: int = 20_000, fast: Optional[bool] = None,
             obs: bool = False) -> Dict[str, object]:
    """Zero-latency-hop RPC ping-pong: ``n_ops`` echo RPCs a -> b."""

    def build(sim: Simulator) -> int:
        net = Network(sim, NetParams(latency_s=0.0,
                                     bandwidth_bps=float("inf")))
        a = Node(sim, "a", net=net)
        b = Node(sim, "b", net=net)

        def echo(x):
            return x
            yield  # pragma: no cover - marks this as a generator

        b.register("echo", echo)

        def client():
            for i in range(n_ops):
                yield from a.call(b, "echo", i)

        sim.process(client())
        return n_ops

    return _run(build, fast, obs=obs)


def contended(n_ops: int = 40_000, procs: int = 4,
              fast: Optional[bool] = None,
              obs: bool = False) -> Dict[str, object]:
    """``procs`` workers sharing a capacity-2 resource.

    Every 8th acquisition holds for a microsecond — a timed heap event
    that opens a window of real contention (FIFO queueing, grant on
    release) — while the rest are zero-length. The mix mirrors how the
    FS layers use CPU slots: mostly instantaneous bookkeeping
    acquisitions punctuated by timed work, so the uncontended
    short-circuit, the grant/release path, and the heap all get
    exercised."""

    def build(sim: Simulator) -> int:
        res = Resource(sim, capacity=2, name="bench.cpu")
        per = max(1, n_ops // procs)

        def worker(k: int):
            for i in range(per):
                yield from res.use(0.0 if (i + k) % 8 else 1e-6)

        for k in range(procs):
            sim.process(worker(k))
        return per * procs

    return _run(build, fast, obs=obs)


WORKLOADS: Dict[str, Callable[..., Dict[str, object]]] = {
    "pingpong": pingpong,
    "contended": contended,
}


def compare(name: str, repeats: int = 3, **kwargs) -> Dict[str, object]:
    """Run one workload under both schedulers; report both and the speedup.

    Each side runs ``repeats`` times and the best (highest ops/sec) run is
    kept — the standard noise shield for wall-clock microbenchmarks on a
    shared machine."""
    fn = WORKLOADS[name]

    def best(fast: bool) -> Dict[str, object]:
        runs = [fn(fast=fast, **kwargs) for _ in range(max(1, repeats))]
        return max(runs, key=lambda r: r["ops_per_sec"])

    legacy = best(False)
    fastr = best(True)
    legacy_ops = legacy["ops_per_sec"]
    return {
        "workload": name,
        "fast": fastr,
        "legacy": legacy,
        "speedup": (fastr["ops_per_sec"] / legacy_ops) if legacy_ops else 0.0,
    }
