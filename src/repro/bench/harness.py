"""Experiment harness: named file-system configurations and scales.

Maps the paper's Table I deployment onto simulated clusters and provides
one builder per evaluated configuration. All benchmarks are *scaled down*
from the paper's sizes (1M files / 1 TB of fio traffic do not fit a unit
test); EXPERIMENTS.md documents each scale factor and why the model is
size-linear in the relevant regime.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..baselines import (
    CephClientParams,
    MDSParams,
    CEPH_MDS,
    build_cephfs,
    build_goofys,
    build_marfs,
    build_s3fs,
    GoofysParams,
)
from ..core import DEFAULT_PARAMS, build_arkfs
from ..obs import DEFAULT_SAMPLE_INTERVAL, Observability, Series
from ..objectstore.profiles import (KiB, MiB, RADOS_PROFILE, S3_COLD_PROFILE,
                                    S3_PROFILE)
from ..sim.engine import Simulator
from ..sim.network import NetParams

__all__ = ["Scale", "SMALL", "DEFAULT", "build", "FS_KINDS", "BENCH_OBS"]


#: The paper's cluster (Table I): 16 storage nodes (c5n.9xlarge, 50 Gb),
#: client nodes c5a.8xlarge (10 Gb) for scalability runs and c5n.9xlarge
#: (50 Gb) elsewhere.
NET_10G = NetParams(latency_s=50e-6, bandwidth_bps=10e9 / 8)
NET_50G = NetParams(latency_s=50e-6, bandwidth_bps=50e9 / 8)


@dataclass(frozen=True)
class Scale:
    """Workload sizes for the benchmark suite."""

    # mdtest (paper: 1M files, 16 processes over a few client nodes —
    # processes sharing a mount is what exposes ceph-fuse's client lock)
    mdtest_procs: int = 16
    mdtest_nodes: int = 4
    easy_files_per_proc: int = 250
    hard_files_per_proc: int = 100
    hard_dirs: int = 8

    # fio (paper: 32 procs x 32 GiB, 128 KiB requests)
    fio_procs: int = 4
    fio_nodes: int = 2
    fio_file: int = 48 * MiB
    fio_block: int = 128 * KiB

    # scalability (paper: 1..512 clients)
    scal_clients: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
    scal_files_per_client: int = 40

    # archiving (paper: 32 procs x 41K images of ~170 KB, 7 GB per dataset,
    # several processes per client node)
    tar_procs: int = 8
    tar_nodes: int = 2
    tar_images_per_proc: int = 600
    tar_image_kb: float = 50.0

    # archive-as-a-service / QoS (A11): a tenant population fronted by a
    # few gateway clients, plus one abusive tenant hammering a dedicated
    # gateway with concurrent zero-think streams.
    qos_tenants: int = 2000
    qos_streams: int = 4
    qos_ops_per_stream: int = 120
    qos_abusive_procs: int = 8


DEFAULT = Scale()

#: Reduced scale for CI-speed runs: the same *structure* as DEFAULT
#: (processes per node, node counts) with smaller work counts, so every
#: paper shape survives the reduction.
SMALL = Scale(
    mdtest_procs=8, mdtest_nodes=2, easy_files_per_proc=100,
    hard_files_per_proc=50, hard_dirs=4,
    fio_procs=4, fio_nodes=2, fio_file=32 * MiB,
    scal_clients=(1, 2, 4, 8, 16, 32, 64), scal_files_per_client=25,
    tar_procs=8, tar_nodes=2, tar_images_per_proc=150, tar_image_kb=50.0,
    qos_tenants=200, qos_streams=3, qos_ops_per_stream=60,
    qos_abusive_procs=6,
)


class BenchObs:
    """Run-scoped observability settings for harness-built clusters.

    Every :func:`build` call attaches an :class:`~repro.obs.Observability`
    to its simulation, registers the shared bottleneck resources for
    queue-depth/utilization sampling (MDS service slots, the directory
    leader's lease-manager CPU, per-OSD queues), and records ``(kind,
    obs)`` here so reporting layers — the bench CLI's trace export, the
    pytest-benchmark ``metrics`` section — can drain what a run produced.
    Span tracing is off unless ``tracing`` is set (``--trace`` in the CLI):
    sampling only reads resource state, but a full span record costs
    memory proportional to the operation count.
    """

    def __init__(self):
        self.tracing = False
        self.sampling = True
        self.sample_interval = DEFAULT_SAMPLE_INTERVAL
        # Always-on tier (PR 7): deterministic per-root-op sampled tracing,
        # slow-op attribution log, and flight recorder — cheap enough to
        # ship enabled by default on every harness build. ``tracing`` (the
        # --trace flag) still means *full* tracing and overrides the rate.
        self.sample_rate = 0.01
        self.slowlog = True
        self.recorder = True
        self.recorder_capacity = 512
        self.collected = []  # (kind, Observability) in build order
        # Fault-injection mode for arkfs builds: None (default, no shim
        # installed at all — bit-identical results) or "transient"
        # (deterministic periodic TransientErrors; the retry counters and
        # backoff histogram then show up in the BENCH_*.json metrics).
        self.fault_mode = None
        self.transient_every = 101

    def reset(self, tracing: bool = None) -> None:
        self.collected.clear()
        if tracing is not None:
            self.tracing = tracing

    def tracers(self):
        return [obs.tracer for _, obs in self.collected
                if obs.tracer is not None]

    def counter_series(self):
        """``(pid, label, Series)`` triples for the chrome-trace export's
        counter tracks, pid-aligned with :meth:`tracers`' span tracks."""
        out = []
        for i, (_kind, obs) in enumerate(self.collected):
            pid = obs.tracer.pid if obs.tracer is not None else i + 1
            for name, metric in obs.metrics.items():
                if isinstance(metric, Series) and metric.times:
                    out.append((pid, name, metric))
        return out


BENCH_OBS = BenchObs()


def _attach_obs(kind: str, sim: Simulator, cluster) -> None:
    """Attach tracing/sampling per BENCH_OBS and record the build."""
    obs = Observability.of(sim)
    if BENCH_OBS.tracing:
        obs.enable_tracing(pid=len(BENCH_OBS.collected) + 1, pid_name=kind)
    elif BENCH_OBS.sample_rate > 0:
        obs.enable_tracing(pid=len(BENCH_OBS.collected) + 1, pid_name=kind,
                           sample_rate=BENCH_OBS.sample_rate)
    if BENCH_OBS.slowlog:
        obs.enable_slowlog()
    if BENCH_OBS.recorder:
        obs.enable_recorder(capacity=BENCH_OBS.recorder_capacity)
    if BENCH_OBS.sampling:
        store = getattr(cluster, "store", None)
        for osd in getattr(store, "osds", ()):
            obs.sample_resource(f"osd{osd.index}.q", osd.queue)
        # Tiered backend: sample both tiers' OSD queues, name-prefixed.
        for tier_name in ("hot", "cold"):
            tier_store = getattr(store, tier_name, None)
            for osd in getattr(tier_store, "osds", ()):
                obs.sample_resource(f"{tier_name}.osd{osd.index}.q",
                                    osd.queue)
        mds = getattr(cluster, "mds", None)
        if mds is not None:  # cephfs / marfs metadata service
            for m in mds.mds:
                obs.sample_resource(f"mds{m.index}.slots", m.slots)
        mgr = getattr(cluster, "lease_manager", None)
        if mgr is not None:  # arkfs directory leader
            obs.sample_resource("lease-mgr.cpu", mgr.node.cpu)
        obs.start_sampling(BENCH_OBS.sample_interval)
    BENCH_OBS.collected.append((kind, obs))


FS_KINDS = (
    "arkfs",            # ArkFS-pcache on RADOS (the default configuration)
    "arkfs-no-pcache",
    "arkfs-s3",         # ArkFS (ra 8 MB) on the S3 profile
    "arkfs-s3-ra400",   # ArkFS with 400 MB read-ahead on S3
    "arkfs-cold",       # ArkFS on the cold-S3 profile (single tier)
    "arkfs-tier",       # ArkFS, hot RADOS tier over the cold-S3 tier
    "arkfs-qos",        # ArkFS with the multi-tenant QoS plane (A11)
    "cephfs-k",         # kernel mount, 1 MDS
    "cephfs-k16",       # kernel mount, 16 MDSs
    "cephfs-f",         # ceph-fuse mount, 1 MDS
    "marfs",
    "s3fs",
    "goofys",
)


def build(kind: str, sim: Simulator, n_clients: int,
          net: NetParams = NET_50G, cache_capacity: int = 96 * MiB,
          client_cores: int = 32):
    """Build a named configuration; returns (cluster, mounts).

    Also attaches per-:data:`BENCH_OBS` observability (resource sampling
    always; span tracing when enabled for the run)."""
    cluster, mounts = _build(kind, sim, n_clients, net, cache_capacity,
                             client_cores)
    _attach_obs(kind, sim, cluster)
    return cluster, mounts


def _build(kind: str, sim: Simulator, n_clients: int,
           net: NetParams, cache_capacity: int, client_cores: int):
    if kind in ("arkfs", "arkfs-no-pcache", "arkfs-s3", "arkfs-s3-ra400",
                "arkfs-cold", "arkfs-tier", "arkfs-qos"):
        params = DEFAULT_PARAMS.with_(
            permission_cache=(kind != "arkfs-no-pcache"),
            cache_capacity_bytes=cache_capacity,
        )
        profile = RADOS_PROFILE
        cold_profile = None
        if kind == "arkfs-s3":
            profile = S3_PROFILE
        elif kind == "arkfs-s3-ra400":
            profile = S3_PROFILE
            params = params.with_(max_readahead=400 * MiB,
                                  cache_capacity_bytes=512 * MiB)
        elif kind == "arkfs-cold":
            # The tiering ablation's baseline: every access pays the cold
            # capacity tier's first-byte latency.
            profile = S3_COLD_PROFILE
        elif kind == "arkfs-tier":
            # Hot RADOS-like tier fronting the same cold store (A10).
            profile = RADOS_PROFILE
            cold_profile = S3_COLD_PROFILE
            params = params.with_(tier_enabled=True)
        elif kind == "arkfs-qos":
            # Multi-tenant QoS plane (A11): per-tenant token buckets tight
            # enough that an abusive tenant is visibly capped, admission
            # bounded so its concurrency hits EAGAIN backpressure.
            # Rates sized so a Zipf-hot victim tenant never throttles
            # (each fs op is ~5 authority ops, ~2 MiB/s of small-file
            # ingest per hot tenant) while the abuser's big-object
            # concurrent streams hit the byte bucket hard.
            params = params.with_(
                qos_enabled=True,
                qos_ops_rate=1000.0,
                qos_ops_burst=32.0,
                qos_bytes_rate=8 * MiB,
                qos_bytes_burst=1 * MiB,
                qos_max_inflight=4,
            )
        faults = None
        if BENCH_OBS.fault_mode == "transient":
            from ..faults import FaultPlan

            faults = FaultPlan()
            faults.transient_every = BENCH_OBS.transient_every
        cluster = build_arkfs(sim, n_clients=n_clients, params=params,
                              store_profile=profile, net_params=net,
                              client_cores=client_cores, faults=faults,
                              cold_profile=cold_profile)
        return cluster, cluster.mounts

    if kind in ("cephfs-k", "cephfs-k16", "cephfs-f"):
        mds = CEPH_MDS if kind != "cephfs-k16" else replace(CEPH_MDS, n_mds=16)
        mount = "fuse" if kind == "cephfs-f" else "kernel"
        client_params = CephClientParams(cache_capacity=cache_capacity)
        if kind == "cephfs-f":
            # ceph-fuse: 128 KiB default max read-ahead (Section IV-B).
            client_params = replace(client_params, max_readahead=128 * KiB)
        cluster = build_cephfs(sim, n_clients=n_clients, mds_params=mds,
                               client_params=client_params, mount=mount,
                               store_profile=RADOS_PROFILE, net_params=net,
                               client_cores=client_cores)
        return cluster, cluster.mounts

    if kind == "marfs":
        cluster = build_marfs(sim, n_clients=n_clients,
                              store_profile=RADOS_PROFILE, net_params=net,
                              client_cores=client_cores)
        return cluster, cluster.mounts

    if kind == "s3fs":
        cluster = build_s3fs(sim, n_clients=n_clients,
                             store_profile=S3_PROFILE, net_params=net,
                             client_cores=client_cores)
        return cluster, cluster.mounts

    if kind == "goofys":
        cluster = build_goofys(sim, n_clients=n_clients,
                               store_profile=S3_PROFILE, net_params=net,
                               client_cores=client_cores)
        return cluster, cluster.mounts

    raise ValueError(f"unknown file system kind {kind!r}")
