"""IO500-style combined scoring.

The paper takes its mdtest configurations from IO500 [27]; this module
completes the picture with the benchmark's scoring method: the final score
is the geometric mean of a bandwidth score (GiB/s over the ior-easy/hard-
style phases — our fio workload stands in) and a metadata score (kIOPS over
the mdtest-easy/hard phases).

Not a paper figure — a convenience for comparing configurations with one
number (``python -m repro.bench io500``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..sim.engine import Simulator
from ..workloads import fio_seq, mdtest_easy, mdtest_hard
from .harness import DEFAULT, NET_50G, Scale, build

__all__ = ["IO500Result", "io500_run", "io500_table"]

GiB = 1024 ** 3


@dataclass
class IO500Result:
    """Scores for one file-system configuration."""

    kind: str
    bw_phases: Dict[str, float]      # GiB/s per bandwidth phase
    md_phases: Dict[str, float]      # kIOPS per metadata phase

    @property
    def bw_score(self) -> float:
        vals = [v for v in self.bw_phases.values() if v > 0]
        return float(np.exp(np.mean(np.log(vals)))) if vals else 0.0

    @property
    def md_score(self) -> float:
        vals = [v for v in self.md_phases.values() if v > 0]
        return float(np.exp(np.mean(np.log(vals)))) if vals else 0.0

    @property
    def score(self) -> float:
        if self.bw_score <= 0 or self.md_score <= 0:
            return 0.0
        return float(np.sqrt(self.bw_score * self.md_score))


def io500_run(kind: str, scale: Scale = DEFAULT) -> IO500Result:
    """Run the bandwidth + metadata phases for one configuration."""
    # Bandwidth: the fio sequential workload (ior-easy stand-in).
    sim = Simulator()
    _c, mounts = build(kind, sim, n_clients=scale.fio_nodes, net=NET_50G)
    fio = fio_seq(sim, mounts, n_procs=scale.fio_procs,
                  file_size=scale.fio_file, block_size=scale.fio_block)
    bw = {
        "write": fio.write_mbps * 1e6 / GiB,
        "read": fio.read_mbps * 1e6 / GiB,
    }

    # Metadata: mdtest-easy + mdtest-hard, fresh cluster each.
    sim = Simulator()
    _c, mounts = build(kind, sim, n_clients=scale.mdtest_nodes, net=NET_50G)
    easy = mdtest_easy(sim, mounts, n_procs=scale.mdtest_procs,
                       files_per_proc=scale.easy_files_per_proc)
    sim = Simulator()
    _c, mounts = build(kind, sim, n_clients=scale.mdtest_nodes, net=NET_50G)
    hard = mdtest_hard(sim, mounts, n_procs=scale.mdtest_procs,
                       files_per_proc=scale.hard_files_per_proc,
                       n_dirs=scale.hard_dirs)
    md = {f"easy-{k.lower()}": v / 1e3 for k, v in easy.phases.items()}
    md.update({f"hard-{k.lower()}": v / 1e3 for k, v in hard.phases.items()})
    return IO500Result(kind=kind, bw_phases=bw, md_phases=md)


def io500_table(kinds: Sequence[str] = ("arkfs", "cephfs-k", "cephfs-f"),
                scale: Scale = DEFAULT) -> str:
    """Run and render a comparison table."""
    from .report import LABELS

    results = [io500_run(kind, scale) for kind in kinds]
    width = max(len(LABELS.get(r.kind, r.kind)) for r in results) + 2
    lines = [f"{'':{width}}{'BW (GiB/s)':>12}{'MD (kIOPS)':>12}"
             f"{'SCORE':>10}"]
    for r in results:
        lines.append(f"{LABELS.get(r.kind, r.kind):<{width}}"
                     f"{r.bw_score:>12.2f}{r.md_score:>12.1f}"
                     f"{r.score:>10.2f}")
    return "\n".join(lines)
