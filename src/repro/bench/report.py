"""Text rendering of the reproduced tables and figure series."""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from ..obs import format_attribution
from ..obs.metrics import Counter, Gauge, MetricsRegistry

__all__ = ["format_table", "format_series", "format_speedups",
           "format_fanout", "merge_attributions",
           "format_attribution_merged", "format_slowlog"]

LABELS = {
    "arkfs": "ArkFS",
    "arkfs-no-pcache": "ArkFS-no-pcache",
    "arkfs-s3": "ArkFS-ra8MB",
    "arkfs-s3-ra400": "ArkFS-ra400MB",
    "cephfs-k": "CephFS-K (1 MDS)",
    "cephfs-k16": "CephFS-K (16 MDS)",
    "cephfs-f": "CephFS-F",
    "marfs": "MarFS",
    "s3fs": "S3FS",
    "goofys": "goofys",
}


def _label(kind: str) -> str:
    return LABELS.get(kind, kind)


def format_table(title: str, rows: Mapping[str, Mapping[str, float]],
                 unit: str = "", fmt: str = "{:>14.1f}") -> str:
    """Render ``{fs: {column: value}}`` as an aligned text table."""
    columns: list = []
    for row in rows.values():
        for col in row:
            if col not in columns:
                columns.append(col)
    width = max(len(_label(k)) for k in rows) + 2
    out = [title + (f"  [{unit}]" if unit else "")]
    out.append(" " * width + "".join(f"{c:>15}" for c in columns))
    for kind, row in rows.items():
        cells = "".join(
            fmt.format(row[c]) + " " if c in row else " " * 15
            for c in columns
        )
        out.append(f"{_label(kind):<{width}}" + cells)
    return "\n".join(out)


def format_series(title: str, series: Mapping[str, Mapping[int, float]],
                  x_label: str = "clients") -> str:
    """Render ``{fs: {x: y}}`` scalability curves as a text table."""
    xs = sorted({x for s in series.values() for x in s})
    width = max(len(_label(k)) for k in series) + 2
    out = [title]
    out.append(" " * width + "".join(f"{x:>10}" for x in xs) +
               f"   ({x_label})")
    for kind, s in series.items():
        cells = "".join(
            f"{s[x]:>10.2f}" if x in s else " " * 10 for x in xs
        )
        out.append(f"{_label(kind):<{width}}" + cells)
    return "\n".join(out)


def format_speedups(title: str, rows: Mapping[str, Mapping[str, float]],
                    base: str, versus: Sequence[str],
                    invert: bool = False) -> str:
    """Summarize ``base``'s advantage over each fs in ``versus`` per column.

    ``invert=True`` for elapsed-time tables (smaller is better)."""
    out = [title]
    for other in versus:
        for col, val in rows[base].items():
            if col not in rows.get(other, {}):
                continue
            ov = rows[other][col]
            if val <= 0 or ov <= 0:
                continue
            ratio = (ov / val) if invert else (val / ov)
            out.append(f"  {col:>12}: {_label(base)} is {ratio:5.2f}x "
                       f"vs {_label(other)}")
    return "\n".join(out)


#: Gauge metric name -> legacy high-water-mark key, per component scope.
_CACHE_GAUGE_KEYS = {"fetch_batch": "max_fetch_batch",
                     "wb_batch": "max_wb_batch",
                     "inflight_gets": "max_inflight_gets",
                     "inflight_puts": "max_inflight_puts"}
_JOURNAL_GAUGE_KEYS = {"ckpt_batch": "ckpt_max_batch",
                       "commit_fanout": "commit_max_fanout"}


def _fanout_from_registry(reg: MetricsRegistry):
    """Aggregate per-client ``*.cache.*`` / ``*.journal.*`` metrics into the
    legacy flat-dict shapes ``format_fanout`` renders (summed counters,
    maxed high-water marks across clients)."""
    cache: Dict[str, int] = {}
    journal: Dict[str, int] = {}
    for dst, marker, gauge_keys in ((cache, ".cache.", _CACHE_GAUGE_KEYS),
                                    (journal, ".journal.",
                                     _JOURNAL_GAUGE_KEYS)):
        for name, m in reg.items():
            if marker not in name:
                continue
            suffix = name.split(marker, 1)[1]
            if isinstance(m, Counter):
                dst[suffix] = dst.get(suffix, 0) + m.value
            elif isinstance(m, Gauge):
                key = gauge_keys.get(suffix)
                if key is not None:
                    dst[key] = max(dst.get(key, 0), m.max_value)
    return cache, (journal or None)


def format_fanout(title: str, cache_stats,
                  journal_fanout: Optional[Mapping[str, int]] = None) -> str:
    """Summarize how parallel the scatter-gather I/O paths actually ran.

    Takes ``DataObjectCache.stats`` and (optionally)
    ``JournalManager.fanout`` — or a whole :class:`MetricsRegistry`, whose
    per-client cache/journal metrics are then aggregated — and renders
    batched-vs-serial op counts plus batch-size / in-flight high-water
    marks — the observability check that a "parallel" run really fanned
    out."""
    if isinstance(cache_stats, MetricsRegistry):
        cache_stats, reg_journal = _fanout_from_registry(cache_stats)
        if journal_fanout is None:
            journal_fanout = reg_journal
    s = cache_stats
    out = [title]
    bg, sg = s.get("batched_gets", 0), s.get("serial_gets", 0)
    bp, sp = s.get("batched_puts", 0), s.get("serial_puts", 0)
    out.append(f"  demand GETs : {bg:6d} batched / {sg:6d} serial in "
               f"{s.get('fetch_batches', 0)} batches "
               f"(max batch {s.get('max_fetch_batch', 0)}, "
               f"max in-flight {s.get('max_inflight_gets', 0)})")
    out.append(f"  writebacks  : {bp:6d} batched / {sp:6d} serial in "
               f"{s.get('wb_batches', 0)} batches "
               f"(max batch {s.get('max_wb_batch', 0)}, "
               f"max in-flight {s.get('max_inflight_puts', 0)})")
    if journal_fanout is not None:
        j = journal_fanout
        out.append(f"  checkpoints : {j.get('ckpt_batched_ops', 0):6d} "
                   f"batched / {j.get('ckpt_serial_ops', 0):6d} serial ops "
                   f"in {j.get('ckpt_batches', 0)} batches "
                   f"(max batch {j.get('ckpt_max_batch', 0)})")
        out.append(f"  commits     : {j.get('commit_rounds', 0):6d} rounds "
                   f"(max dirs/round {j.get('commit_max_fanout', 0)})")
    return "\n".join(out)


def merge_attributions(parts: Sequence[Dict[str, Dict[str, Any]]]
                       ) -> Dict[str, Dict[str, Any]]:
    """Merge per-build :func:`repro.obs.attribute_latency` results (one
    figure may build the same kind many times, e.g. per client count)."""
    out: Dict[str, Dict[str, Any]] = {}
    for attrib in parts:
        for phase, row in attrib.items():
            dst = out.setdefault(phase, {
                "ops": 0, "total_s": 0.0, "attributed_s": 0.0,
                "unattributed_s": 0.0, "by_cat": {},
            })
            for key in ("ops", "total_s", "attributed_s", "unattributed_s"):
                dst[key] += row[key]
            for cat, sec in row["by_cat"].items():
                dst["by_cat"][cat] = dst["by_cat"].get(cat, 0.0) + sec
    return out


def format_slowlog(collected, max_entries: int = 5) -> str:
    """Slow-op tables for a bench run, one per build that logged any.

    ``collected`` is ``BENCH_OBS.collected``; each entry line shows when
    the op started, how long it took, why it was logged (static threshold
    or rolling p99), and — when the op was sampled — the phase-attributed
    waterfall of where its time went."""
    out = []
    for kind, obs in collected:
        log = obs.slowlog
        if log is None or not log.n_slow:
            continue
        doc = log.to_dict(max_entries=max_entries)
        out.append(f"slow ops — {_label(kind)} "
                   f"(threshold {doc['default_threshold_s'] * 1e3:.0f}ms, "
                   f"{doc['n_slow']} logged)")
        for op, row in doc["ops"].items():
            if not row["slow"]:
                continue
            out.append(f"  {op:<14} count={row['count']} "
                       f"p50={row['p50_s'] * 1e3:.2f}ms "
                       f"p99={row['p99_s'] * 1e3:.2f}ms "
                       f"max={row['max_s'] * 1e3:.2f}ms")
            for e in row["slow"]:
                line = (f"    @{e['start_s']:.3f}s {e['dur_s'] * 1e3:8.2f}ms "
                        f"[{e['why']}]")
                wf = e.get("waterfall_s")
                if wf:
                    line += "  " + " ".join(
                        f"{cat}={sec * 1e3:.2f}ms"
                        for cat, sec in wf.items())
                out.append(line)
    if not out:
        return "slow ops: none logged"
    return "\n".join(out)


def format_attribution_merged(collected) -> str:
    """Latency-attribution tables for a bench run, one per fs kind.

    ``collected`` is ``BENCH_OBS.collected``: ``(kind, Observability)``
    pairs in build order; builds of the same kind merge into one table."""
    from ..obs import attribute_latency

    by_kind: Dict[str, list] = {}
    for kind, obs in collected:
        if obs.tracer is None or not obs.tracer.spans:
            continue
        by_kind.setdefault(kind, []).append(attribute_latency(obs.tracer))
    out = []
    for kind, parts in by_kind.items():
        merged = merge_attributions(parts)
        if merged:
            out.append(format_attribution(
                f"latency attribution — {_label(kind)}", merged))
    return "\n".join(out)
