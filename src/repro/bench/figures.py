"""One entry point per paper figure/table.

Each function builds fresh clusters, runs the corresponding workload at the
given :class:`~repro.bench.harness.Scale`, and returns a plain data
structure (printable via :mod:`repro.bench.report`). These are what the
``benchmarks/`` pytest targets call.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..objectstore import EBS_GP_1GBS, LocalDisk
from ..posix import ROOT_CREDS
from ..sim.engine import Simulator
from ..workloads import (
    archive_from_disk,
    archive_to_disk,
    extract_in_fs,
    fio_seq,
    mdtest_easy,
    mdtest_hard,
    mscoco_like,
    run_phase,
)
from .harness import DEFAULT, NET_10G, NET_50G, Scale, build

__all__ = [
    "fig1_mds_scalability",
    "fig4_mdtest_easy",
    "fig5_mdtest_hard",
    "fig6a_fio_rados",
    "fig6b_fio_s3",
    "fig7_arkfs_scalability",
    "table2_archiving",
]


# -- Fig. 1 / Fig. 7: create-scalability ------------------------------------


def _creation_rate(kind: str, n_clients: int, files_per_client: int) -> float:
    """Aggregate CREATE throughput with one mdtest-easy process per client,
    each in its own directory (the Fig. 1 / Fig. 7 setup)."""
    sim = Simulator()
    _cluster, mounts = build(kind, sim, n_clients=n_clients, net=NET_10G)
    result = mdtest_easy(sim, mounts, n_procs=n_clients,
                         files_per_proc=files_per_client,
                         phases=("CREATE",))
    return result.phases["CREATE"]


def fig1_mds_scalability(scale: Scale = DEFAULT,
                         kind: str = "cephfs-k") -> Dict[int, float]:
    """Fig. 1: CephFS-K (1 MDS) create throughput vs client count,
    normalized to the 1-client rate. The paper's shape: rises slightly,
    then collapses beyond ~4 clients."""
    out = {}
    base = None
    for n in scale.scal_clients:
        rate = _creation_rate(kind, n, scale.scal_files_per_client)
        if base is None:
            base = rate
        out[n] = rate / base
    return out


def fig7_arkfs_scalability(
    scale: Scale = DEFAULT,
    kinds: Sequence[str] = ("arkfs", "arkfs-no-pcache", "cephfs-k",
                            "cephfs-k16"),
) -> Dict[str, Dict[int, float]]:
    """Fig. 7: normalized create throughput, 1..512 clients, for
    ArkFS-pcache / ArkFS-no-pcache / CephFS-K with 1 and 16 MDSs."""
    out: Dict[str, Dict[int, float]] = {}
    for kind in kinds:
        series = {}
        base = None
        for n in scale.scal_clients:
            rate = _creation_rate(kind, n, scale.scal_files_per_client)
            if base is None:
                base = rate
            series[n] = rate / base
        out[kind] = series
    return out


# -- Fig. 4 / Fig. 5: mdtest ---------------------------------------------------


def fig4_mdtest_easy(
    scale: Scale = DEFAULT,
    kinds: Sequence[str] = ("arkfs", "cephfs-k", "cephfs-k16", "cephfs-f",
                            "marfs"),
) -> Dict[str, Dict[str, float]]:
    """Fig. 4: mdtest-easy CREATE/STAT/DELETE ops/sec per file system."""
    out = {}
    for kind in kinds:
        sim = Simulator()
        _cluster, mounts = build(kind, sim, n_clients=scale.mdtest_nodes,
                                 net=NET_50G)
        result = mdtest_easy(sim, mounts, n_procs=scale.mdtest_procs,
                             files_per_proc=scale.easy_files_per_proc)
        out[kind] = dict(result.phases)
    return out


def fig5_mdtest_hard(
    scale: Scale = DEFAULT,
    kinds: Sequence[str] = ("arkfs", "cephfs-k", "cephfs-k16", "cephfs-f",
                            "marfs"),
) -> Dict[str, Dict[str, float]]:
    """Fig. 5: mdtest-hard WRITE/STAT/READ/DELETE ops/sec. MarFS READ
    errors are reported as rate 0 with an ``READ_errors`` count."""
    out = {}
    for kind in kinds:
        sim = Simulator()
        _cluster, mounts = build(kind, sim, n_clients=scale.mdtest_nodes,
                                 net=NET_50G)
        result = mdtest_hard(sim, mounts, n_procs=scale.mdtest_procs,
                             files_per_proc=scale.hard_files_per_proc,
                             n_dirs=scale.hard_dirs)
        row = dict(result.phases)
        if result.errors.get("READ"):
            row["READ"] = 0.0
            row["READ_errors"] = float(result.errors["READ"])
        out[kind] = row
    return out


# -- Fig. 6: fio bandwidth -------------------------------------------------------


def _fio_run(kind: str, scale: Scale) -> Tuple[float, float]:
    sim = Simulator()
    _cluster, mounts = build(kind, sim, n_clients=scale.fio_nodes,
                             net=NET_50G,
                             cache_capacity=max(96 * 1024 * 1024,
                                                scale.fio_file // 2))
    result = fio_seq(sim, mounts, n_procs=scale.fio_procs,
                     file_size=scale.fio_file, block_size=scale.fio_block)
    return result.write_mbps, result.read_mbps


def fig6a_fio_rados(
    scale: Scale = DEFAULT,
    kinds: Sequence[str] = ("arkfs", "cephfs-k", "cephfs-f"),
) -> Dict[str, Dict[str, float]]:
    """Fig. 6(a): WRITE/READ MB/s on the RADOS backend."""
    out = {}
    for kind in kinds:
        w, r = _fio_run(kind, scale)
        out[kind] = {"WRITE": w, "READ": r}
    return out


def fig6b_fio_s3(
    scale: Scale = DEFAULT,
    kinds: Sequence[str] = ("arkfs-s3", "arkfs-s3-ra400", "s3fs", "goofys"),
) -> Dict[str, Dict[str, float]]:
    """Fig. 6(b): WRITE/READ MB/s on the S3 backend (including the
    read-ahead sweep that explains goofys's READ advantage)."""
    out = {}
    for kind in kinds:
        w, r = _fio_run(kind, scale)
        out[kind] = {"WRITE": w, "READ": r}
    return out


# -- Table II: archiving ------------------------------------------------------------


def table2_archiving(
    scale: Scale = DEFAULT,
    kinds: Sequence[str] = ("cephfs-f", "cephfs-k", "arkfs"),
) -> Dict[str, Dict[str, float]]:
    """Table II: tar archiving/unarchiving elapsed seconds per file system.

    Archiving: each process reads its dataset off a 1 GB/s EBS volume,
    streams a tar into the FS, then extracts it into categorized
    directories. Unarchiving: each process tars its extracted tree back
    onto the EBS volume.
    """
    out = {}
    for kind in kinds:
        sim = Simulator()
        # Table I clients have 64–96 GB of RAM: page caches are not the
        # constraint for these dataset sizes.
        _cluster, mounts = build(kind, sim, n_clients=scale.tar_nodes,
                                 net=NET_50G, cache_capacity=512 * 1024 * 1024)
        # One EBS staging volume per client node, shared by its processes.
        disks = [LocalDisk(sim, EBS_GP_1GBS, name=f"ebs{n}")
                 for n in range(scale.tar_nodes)]
        datasets = [mscoco_like(scale.tar_images_per_proc, seed=p,
                                mean_kb=scale.tar_image_kb)
                    for p in range(scale.tar_procs)]

        def archive_proc(p: int):
            def gen():
                mount = mounts[p % len(mounts)]
                yield from mount.mkdir(ROOT_CREDS, f"/proc{p}")
                yield from archive_from_disk(
                    mount, ROOT_CREDS, disks[p % len(disks)], datasets[p],
                    f"/proc{p}/dataset.tar")
                yield from extract_in_fs(mount, ROOT_CREDS,
                                         f"/proc{p}/dataset.tar",
                                         f"/proc{p}/extracted")
            return gen

        def unarchive_proc(p: int):
            def gen():
                mount = mounts[p % len(mounts)]
                yield from archive_to_disk(mount, ROOT_CREDS,
                                           f"/proc{p}/extracted",
                                           disks[p % len(disks)])
            return gen

        t0 = sim.now
        run_phase(sim, [sim.process(archive_proc(p)())
                        for p in range(scale.tar_procs)])
        archive_time = sim.now - t0
        t1 = sim.now
        run_phase(sim, [sim.process(unarchive_proc(p)())
                        for p in range(scale.tar_procs)])
        unarchive_time = sim.now - t1
        out[kind] = {"Archiving": archive_time, "Unarchiving": unarchive_time}
    return out
