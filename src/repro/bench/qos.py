"""Ablation A11 — multi-tenant QoS plane (slow-tenant isolation).

Archive-as-a-service: a Zipf-distributed tenant population runs the
closed-loop ingest mix of :func:`repro.workloads.tenants.archive_service`
through a few gateway clients while one abusive tenant floods a dedicated
gateway with concurrent zero-think-time streams. Three configurations
bracket the claim:

* ``solo``    — QoS on, no abuser: each victim tenant's achievable p99.
* ``qos-on``  — QoS on, abuser present: token buckets + WFQ + admission
  control must keep every victim's p99 within 1.5x of solo.
* ``qos-off`` — default build, abuser present: the damage an unthrottled
  tenant does to shared FIFO queues (the baseline the plane exists for).

Shared by ``benchmarks/test_ablation_qos.py`` (the acceptance gate) and
``python -m repro.bench qos`` / ``--qos`` (figure regeneration).
"""

from __future__ import annotations

from typing import Dict

from ..obs import Observability
from ..sim.engine import Simulator
from ..workloads.tenants import archive_service
from .harness import NET_50G, build

__all__ = ["qos_run", "qos_ablation", "format_qos_report"]

#: Victim p99 under attack must stay within this factor of its solo p99.
ISOLATION_BOUND = 1.5

#: Payload per ingest op. Small-file archive regime (Table II shape).
PAYLOAD = 16 * 1024

#: The abuser's payload: large objects that clog the shared OSD data path
#: — the damage vector op-count throttling alone would miss. Kept at one
#: store object so the non-preemptible in-service time (head-of-line for
#: a victim behind it) stays bounded; the *aggregate* flood is what the
#: byte bucket and WFQ must absorb.
ABUSE_PAYLOAD = 1024 * 1024


def qos_run(kind: str, scale, abusive: bool) -> Dict:
    """One configuration of the A11 matrix; returns a result dict."""
    sim = Simulator()
    n_clients = scale.qos_streams + (1 if abusive else 0)
    cluster, _ = build(kind, sim, n_clients=n_clients, net=NET_50G)
    res = archive_service(
        sim, cluster,
        n_tenants=scale.qos_tenants,
        ops_per_stream=scale.qos_ops_per_stream,
        abusive_procs=scale.qos_abusive_procs if abusive else 0,
        payload=PAYLOAD,
        abusive_payload=ABUSE_PAYLOAD,
    )
    metrics = Observability.of(sim).metrics
    out = {
        "kind": kind,
        "abusive": abusive,
        "victim_ops": res.victim_ops,
        "victim_p99": res.victim_p99(),
        "abusive_ops": res.abusive_ops,
        "abusive_rejected": res.abusive_rejected,
        "elapsed": res.elapsed,
        "abusive_rate": (res.abusive_ops / res.elapsed
                         if res.elapsed else 0.0),
        "per_tenant_p99": {t: res.p99(t) for t in res.victim_tenants()},
    }
    if cluster.qos is not None:
        out["qos"] = {
            "admitted": metrics.counter("qos.admitted").value,
            "busy": metrics.counter("qos.busy").value,
            "throttle_ops": metrics.counter("qos.throttle_ops").value,
            "throttle_bytes": metrics.counter("qos.throttle_bytes").value,
        }
    return out


def qos_ablation(scale) -> Dict[str, Dict]:
    """A11: solo baseline, QoS under attack, and the unprotected control."""
    return {
        "solo": qos_run("arkfs-qos", scale, abusive=False),
        "qos-on": qos_run("arkfs-qos", scale, abusive=True),
        "qos-off": qos_run("arkfs", scale, abusive=True),
    }


def format_qos_report(results: Dict[str, Dict]) -> str:
    solo, on, off = results["solo"], results["qos-on"], results["qos-off"]
    lines = [
        f"A11 — multi-tenant QoS, {len(solo['per_tenant_p99'])} victim "
        f"tenants, {on['victim_ops']} victim ops vs one abusive tenant",
        f"  {'config':<10} {'victim p99':>12} {'vs solo':>8} "
        f"{'abuser ops/s':>13} {'rejected':>9}",
    ]
    for label, r in (("solo", solo), ("qos-on", on), ("qos-off", off)):
        ratio = (r["victim_p99"] / solo["victim_p99"]
                 if solo["victim_p99"] else float("inf"))
        lines.append(
            f"  {label:<10} {r['victim_p99'] * 1e3:>10.2f}ms "
            f"{ratio:>7.2f}x {r['abusive_rate']:>13,.0f} "
            f"{r['abusive_rejected']:>9}")
    q = on.get("qos")
    if q is not None:
        lines.append(
            f"  qos-on plane: {q['admitted']} admitted, {q['busy']} busy "
            f"(EAGAIN), {q['throttle_ops']} op throttles, "
            f"{q['throttle_bytes']} byte throttles")
    ratio = (on["victim_p99"] / solo["victim_p99"]
             if solo["victim_p99"] else float("inf"))
    verdict = "HOLDS" if ratio < ISOLATION_BOUND else "VIOLATED"
    lines.append(
        f"  isolation bound ({ISOLATION_BOUND:.1f}x solo p99): {verdict}")
    return "\n".join(lines)
