"""Ablation A10 — hot/cold tiered object store (aged-read latency).

The archival regime the paper targets (ingest once, read back months
later) collapses into one run: ingest a Table II-shaped small-file
population, let the lifecycle demoter push it to the capacity tier, then
replay an aged read mix with re-reads. The single-tier cold-S3 baseline
(``arkfs-cold``) pays the capacity store's first-byte latency on every
GET; the tiered configuration (``arkfs-tier``) pays it once per object —
the demand promotion — and serves the re-reads from the hot tier.

Shared by ``benchmarks/test_ablation_tiering.py`` (the acceptance gate)
and ``python -m repro.bench tier`` / ``--tier`` (figure regeneration).
"""

from __future__ import annotations

from typing import Dict, List

from ..objectstore.profiles import MiB
from ..posix import ROOT_CREDS
from ..sim.engine import Simulator
from ..workloads import run_phase
from .harness import NET_50G, build

__all__ = ["tier_aged_read", "tier_ablation", "format_tier_report"]

#: Deliberately small client data cache: the aged-read phase must hit the
#: object store, not local DRAM, or both configurations measure the same
#: thing. Both sides of the ablation use the same value.
AGED_CACHE = 4 * MiB

#: Aged working set per process (files), and how many passes the read mix
#: makes over it. Pass one is all cold misses (the demand promotions);
#: passes two and up are the re-reads the hot tier exists to absorb.
AGED_FILES = 64
REREADS = 4


def tier_aged_read(kind: str, scale, n_clients: int = 2,
                   procs: int = 4) -> Dict:
    """Ingest, age, then replay the read mix on one configuration.

    Returns a result dict with the ingest rate, per-read latency stats,
    and (for the tiered build) the tier counters and cost savings.
    """
    files = scale.tar_images_per_proc
    size = int(scale.tar_image_kb * 1024)
    aged = min(AGED_FILES, files)
    sim = Simulator()
    cluster, _ = build(kind, sim, n_clients=n_clients, net=NET_50G,
                       cache_capacity=AGED_CACHE)

    def setup():
        yield from cluster.client(0).mkdir(ROOT_CREDS, "/tar")
        for c in range(n_clients):
            yield from cluster.client(c).mkdir(ROOT_CREDS, f"/tar/c{c}")

    run_phase(sim, [sim.process(setup())])

    def writer(c, p):
        client = cluster.client(c)
        payload = bytes([(c * procs + p) % 251 + 1]) * size
        for i in range(files):
            yield from client.write_file(
                ROOT_CREDS, f"/tar/c{c}/p{p}-f{i}", payload)

    t0 = sim.now
    run_phase(sim, [sim.process(writer(c, p))
                    for c in range(n_clients) for p in range(procs)])
    run_phase(sim, [sim.process(cluster.client(c).sync())
                    for c in range(n_clients)])
    ingest_elapsed = sim.now - t0

    # Age the population: the maintenance tickers drain any staging
    # remainder and the demoter walks the LRU back under the low
    # watermark, so the oldest files — the aged working set below — are
    # cold-only by the time the read mix starts.
    sim.run(until=sim.now + 3.0)
    run_phase(sim, [sim.process(cluster.client(c).drop_caches())
                    for c in range(n_clients)])

    lats: List[float] = []

    def reader(c, p):
        client = cluster.client(c)
        for _ in range(REREADS):
            for i in range(aged):
                r0 = sim.now
                data = yield from client.read_file(
                    ROOT_CREDS, f"/tar/c{c}/p{p}-f{i}")
                lats.append(sim.now - r0)
                assert len(data) == size

    t0 = sim.now
    run_phase(sim, [sim.process(reader(c, p))
                    for c in range(n_clients) for p in range(procs)])
    read_elapsed = sim.now - t0

    lats.sort()
    store = cluster.store
    tier_stats = getattr(store, "stats", None) if hasattr(
        store, "tier_maintain") else None
    result = {
        "kind": kind,
        "ingest_rate": (n_clients * procs * files) / ingest_elapsed,
        "reads": len(lats),
        "read_elapsed": read_elapsed,
        "read_mean": sum(lats) / len(lats),
        "read_p99": lats[int(len(lats) * 0.99) - 1],
        "tier": tier_stats,
    }
    if tier_stats is not None:
        total = tier_stats["hits"] + tier_stats["misses"]
        result["hit_rate"] = tier_stats["hits"] / total if total else 0.0
        result["cold_cost_saved"] = store.cold_cost_saved()
    return result


def tier_ablation(scale) -> Dict[str, Dict]:
    """A10: single-tier cold baseline vs the hot/cold tiered store."""
    return {
        "arkfs-cold": tier_aged_read("arkfs-cold", scale),
        "arkfs-tier": tier_aged_read("arkfs-tier", scale),
    }


def format_tier_report(results: Dict[str, Dict]) -> str:
    cold = results["arkfs-cold"]
    tier = results["arkfs-tier"]
    speedup = cold["read_mean"] / tier["read_mean"]
    lines = [
        "A10 — hot/cold tiering, aged read mix "
        f"({tier['reads']} reads, {REREADS} passes)",
        f"  {'config':<12} {'read mean':>12} {'read p99':>12} "
        f"{'ingest/s':>10}",
    ]
    for r in (cold, tier):
        lines.append(
            f"  {r['kind']:<12} {r['read_mean'] * 1e3:>10.2f}ms "
            f"{r['read_p99'] * 1e3:>10.2f}ms {r['ingest_rate']:>10,.0f}")
    lines.append(f"  aged-read speedup: {speedup:.1f}x")
    stats = tier["tier"]
    if stats is not None:
        lines.append(
            f"  hot tier: hit rate {tier['hit_rate'] * 100:.1f}% "
            f"({stats['hits']} hits / {stats['misses']} misses), "
            f"{stats['promotions']} promotions, "
            f"{stats['demotions']} demotions")
        lines.append(
            f"  cold GETs: {stats['cold_get_bytes'] / MiB:.1f} MiB "
            f"fetched, {stats['hit_bytes'] / MiB:.1f} MiB served hot "
            f"(saved ${tier['cold_cost_saved']:.4f} of cold traffic)")
    return "\n".join(lines)
