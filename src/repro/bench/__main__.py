"""Command-line figure regeneration: ``python -m repro.bench [targets...]``.

Targets: fig1 fig4 fig5 fig6a fig6b fig7 table2 io500 tier qos
(default: all). ``--tier`` is shorthand for adding the ``tier`` target —
the A10 hot/cold tiering ablation (aged-read latency, hit rate, cold GET
savings) — and ``--qos`` likewise adds the ``qos`` target, the A11
multi-tenant QoS ablation (slow-tenant isolation, abuser capping).
Pass ``--small`` for the reduced scale. Pass ``--trace out.json`` to record
cross-layer spans for every simulated cluster the run builds: the file is
Chrome trace-event JSON (load it at https://ui.perfetto.dev), and a
per-phase latency-attribution table is printed per file-system kind.

Pass ``--faults transient`` (or set ``REPRO_FAULTS=transient``) to slide a
deterministic fault plan beneath the arkfs builds: every Nth store
operation fails with a retryable error, and the run prints the retry
counters and backoff totals the clients accumulated absorbing them.

Pass ``--profile`` (or ``--profile=30`` for more rows) to run everything
under cProfile and print the top functions by cumulative time — the first
stop when hunting simulator hot spots before reaching for the span tracer.

Observability defaults to the always-on tier: 1% deterministic sampling,
slow-op log, flight recorder. ``--sample-rate R`` changes the sampling
rate (``--trace`` implies full tracing and wins); ``--slowlog[=PATH]``
prints the slow-op table and optionally dumps it as JSON;
``--flight=PATH`` dumps the flight-recorder ring per kind.
"""

from __future__ import annotations

import os
import sys
import time

from . import (
    BENCH_OBS,
    DEFAULT,
    SMALL,
    fig1_mds_scalability,
    fig4_mdtest_easy,
    fig5_mdtest_hard,
    fig6a_fio_rados,
    fig6b_fio_s3,
    fig7_arkfs_scalability,
    format_attribution_merged,
    format_series,
    format_slowlog,
    format_qos_report,
    format_table,
    format_tier_report,
    qos_ablation,
    table2_archiving,
    tier_ablation,
)

TARGETS = ("fig1", "fig4", "fig5", "fig6a", "fig6b", "fig7", "table2",
           "io500", "tier", "qos")


def run_target(name: str, scale) -> None:
    t0 = time.time()
    if name == "fig1":
        series = fig1_mds_scalability(scale)
        print(format_series("Fig. 1 — CephFS-K (1 MDS) normalized create "
                            "throughput", {"cephfs-k": series}))
    elif name == "fig4":
        print(format_table("Fig. 4 — mdtest-easy", fig4_mdtest_easy(scale),
                           unit="ops/s", fmt="{:>14.0f}"))
    elif name == "fig5":
        print(format_table("Fig. 5 — mdtest-hard", fig5_mdtest_hard(scale),
                           unit="ops/s", fmt="{:>14.0f}"))
    elif name == "fig6a":
        print(format_table("Fig. 6(a) — fio on RADOS", fig6a_fio_rados(scale),
                           unit="MB/s", fmt="{:>14.0f}"))
    elif name == "fig6b":
        print(format_table("Fig. 6(b) — fio on S3", fig6b_fio_s3(scale),
                           unit="MB/s", fmt="{:>14.0f}"))
    elif name == "fig7":
        print(format_series("Fig. 7 — normalized create throughput",
                            fig7_arkfs_scalability(scale)))
    elif name == "table2":
        print(format_table("Table II — elapsed seconds (simulated)",
                           table2_archiving(scale), unit="s",
                           fmt="{:>14.2f}"))
    elif name == "io500":
        from .io500 import io500_table

        print("IO500-style combined scores")
        print(io500_table(scale=scale))
    elif name == "tier":
        print(format_tier_report(tier_ablation(scale)))
    elif name == "qos":
        print(format_qos_report(qos_ablation(scale)))
    else:
        raise SystemExit(f"unknown target {name!r}; pick from {TARGETS}")
    print(f"[{name}: {time.time() - t0:.1f}s wall]\n")


def format_fault_report(collected) -> str:
    """Summarize fault injections and the retries that absorbed them."""
    lines = ["Fault injection — transient errors and client retries"]
    for kind, obs in collected:
        snap = obs.metrics.to_dict()
        counters = snap["counters"]
        injected = counters.get("faults.transient", 0)
        attempts = counters.get("store.retry.attempts", 0)
        giveups = counters.get("store.retry.giveups", 0)
        if not (injected or attempts):
            continue
        hist = snap["histograms"].get("store.retry.backoff", {})
        lines.append(
            f"  {kind:<16} injected={injected} retries={attempts} "
            f"giveups={giveups} backoff_total={hist.get('sum', 0.0):.4f}s "
            f"backoff_max={hist.get('max', 0.0) * 1e3:.1f}ms")
    if len(lines) == 1:
        lines.append("  (no faults fired)")
    return "\n".join(lines)


def main(argv) -> None:
    args = []
    trace_path = None
    profile_rows = 0
    sample_rate = None
    slowlog_path = None
    want_slowlog = False
    flight_path = None
    fault_mode = os.environ.get("REPRO_FAULTS") or None
    it = iter(argv)
    for a in it:
        if a == "--trace":
            trace_path = next(it, None)
            if trace_path is None:
                raise SystemExit("--trace requires an output path")
        elif a.startswith("--trace="):
            trace_path = a.split("=", 1)[1]
        elif a == "--faults":
            fault_mode = next(it, None)
            if fault_mode is None:
                raise SystemExit("--faults requires a mode (transient)")
        elif a.startswith("--faults="):
            fault_mode = a.split("=", 1)[1]
        elif a == "--profile":
            profile_rows = 20
        elif a.startswith("--profile="):
            try:
                profile_rows = int(a.split("=", 1)[1])
            except ValueError:
                raise SystemExit("--profile=N needs an integer row count")
        elif a == "--sample-rate" or a.startswith("--sample-rate="):
            raw = a.split("=", 1)[1] if "=" in a else next(it, None)
            try:
                sample_rate = float(raw)
            except (TypeError, ValueError):
                raise SystemExit("--sample-rate needs a float in [0, 1]")
        elif a == "--slowlog":
            want_slowlog = True
        elif a.startswith("--slowlog="):
            want_slowlog = True
            slowlog_path = a.split("=", 1)[1]
        elif a.startswith("--flight="):
            flight_path = a.split("=", 1)[1]
        elif a == "--tier":
            args.append("tier")
        elif a == "--qos":
            args.append("qos")
        elif not a.startswith("-"):
            args.append(a)
    if fault_mode not in (None, "transient"):
        raise SystemExit(f"unknown fault mode {fault_mode!r}")
    scale = SMALL if "--small" in argv else DEFAULT
    BENCH_OBS.reset(tracing=trace_path is not None)
    if sample_rate is not None:
        BENCH_OBS.sample_rate = sample_rate
    BENCH_OBS.fault_mode = fault_mode
    if trace_path is not None:
        print("[--trace: full tracing disables fast-kernel event elision; "
              "wall-clock times are NOT comparable to untraced runs]")
    targets = args or ["all"]
    if "all" in targets:
        targets = list(TARGETS)
    profiler = None
    if profile_rows:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        for name in targets:
            run_target(name, scale)
        if fault_mode is not None:
            print(format_fault_report(BENCH_OBS.collected))
    finally:
        BENCH_OBS.fault_mode = None
        if profiler is not None:
            import pstats

            profiler.disable()
            print(f"\ncProfile — top {profile_rows} by cumulative time")
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.strip_dirs().sort_stats("cumulative").print_stats(
                profile_rows)
    if trace_path is not None:
        from ..obs import write_chrome_trace

        n = write_chrome_trace(trace_path, BENCH_OBS.tracers(),
                               counters=BENCH_OBS.counter_series())
        attrib = format_attribution_merged(BENCH_OBS.collected)
        if attrib:
            print(attrib)
        print(f"\n[trace: {n} events -> {trace_path}]")
    if want_slowlog:
        print(format_slowlog(BENCH_OBS.collected))
        if slowlog_path is not None:
            import json

            doc = {kind: obs.slowlog.to_dict()
                   for kind, obs in BENCH_OBS.collected
                   if obs.slowlog is not None}
            with open(slowlog_path, "w") as f:
                f.write(json.dumps(doc, allow_nan=False))
            print(f"[slowlog -> {slowlog_path}]")
    if flight_path is not None:
        import json

        doc = {kind: obs.recorder.to_dict()
               for kind, obs in BENCH_OBS.collected
               if obs.recorder is not None}
        with open(flight_path, "w") as f:
            f.write(json.dumps(doc, allow_nan=False))
        print(f"[flight recorder -> {flight_path}]")


if __name__ == "__main__":
    main(sys.argv[1:])
