"""Benchmark harness: one reproduction entry point per paper figure/table."""

from .figures import (
    fig1_mds_scalability,
    fig4_mdtest_easy,
    fig5_mdtest_hard,
    fig6a_fio_rados,
    fig6b_fio_s3,
    fig7_arkfs_scalability,
    table2_archiving,
)
from .io500 import IO500Result, io500_run, io500_table
from .harness import (
    BENCH_OBS,
    DEFAULT,
    FS_KINDS,
    NET_10G,
    NET_50G,
    SMALL,
    Scale,
    build,
)
from .tiering import format_tier_report, tier_ablation, tier_aged_read
from .qos import format_qos_report, qos_ablation, qos_run
from .report import (
    format_attribution_merged,
    format_fanout,
    format_series,
    format_slowlog,
    format_speedups,
    format_table,
)

__all__ = [
    "BENCH_OBS",
    "DEFAULT",
    "FS_KINDS",
    "NET_10G",
    "NET_50G",
    "SMALL",
    "Scale",
    "build",
    "fig1_mds_scalability",
    "fig4_mdtest_easy",
    "fig5_mdtest_hard",
    "fig6a_fio_rados",
    "fig6b_fio_s3",
    "fig7_arkfs_scalability",
    "IO500Result",
    "format_attribution_merged",
    "format_fanout",
    "format_series",
    "format_slowlog",
    "format_speedups",
    "format_table",
    "format_tier_report",
    "format_qos_report",
    "qos_ablation",
    "qos_run",
    "tier_ablation",
    "tier_aged_read",
    "io500_run",
    "io500_table",
    "table2_archiving",
]
