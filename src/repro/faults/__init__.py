"""Deterministic fault injection + crash-consistency checking.

See DESIGN.md §"Fault model & crash-consistency methodology". Quick start::

    PYTHONPATH=src python -m repro.faults.crashcheck --workload rename --stride 7
"""

from .plan import FaultPlan, InjectedCrash, MessageRule
from .store import FaultyObjectStore

__all__ = ["FaultPlan", "InjectedCrash", "MessageRule", "FaultyObjectStore"]
