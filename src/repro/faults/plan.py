"""Deterministic fault schedules for the ArkFS simulation.

A :class:`FaultPlan` is a *schedule*, not a random process: every fault it
injects is keyed to a deterministic index (the Nth store operation, the Kth
batch PUT, the Mth matching network message), so a failing run replays
bit-identically from its parameters alone. The plan is consulted from hooks
*beneath* the layers under test:

* :class:`~repro.faults.store.FaultyObjectStore` wraps the object store and
  calls :meth:`before_op` / :meth:`before_batch_put` on every operation;
* :class:`~repro.sim.network.Network` calls :meth:`on_message` on every
  message when a plan is attached.

When no plan is installed (``build_arkfs(faults=None)``, the default), none
of these hooks exist and the simulation is bit-identical to a build without
this module — the same rule the span tracer follows.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..objectstore.errors import TransientError

__all__ = ["FaultPlan", "InjectedCrash", "MessageRule"]


class InjectedCrash(Exception):
    """Raised at an injected crash point to unwind the victim's coroutines.

    Deliberately *not* an ``FSError``/``RpcError`` subclass: nothing in the
    client stack may catch-and-continue past its own death."""


class MessageRule:
    """Drop or delay a deterministic window of matching network messages.

    ``src``/``dst`` are :func:`fnmatch.fnmatchcase` patterns on node names;
    occurrences ``[start, start + count)`` of the matching stream are
    affected (``count=None`` means "from start onwards, forever")."""

    __slots__ = ("src", "dst", "start", "count", "action", "delay", "seen")

    def __init__(self, src: str = "*", dst: str = "*", start: int = 0,
                 count: Optional[int] = 1, action: str = "drop",
                 delay: float = 0.0):
        if action not in ("drop", "delay"):
            raise ValueError(f"unknown message action {action!r}")
        self.src = src
        self.dst = dst
        self.start = start
        self.count = count
        self.action = action
        self.delay = delay
        self.seen = 0  # matching messages observed so far

    def matches(self, src_name: str, dst_name: str) -> Optional[Tuple[str, float]]:
        if not (fnmatchcase(src_name, self.src)
                and fnmatchcase(dst_name, self.dst)):
            return None
        i = self.seen
        self.seen += 1
        if i < self.start:
            return None
        if self.count is not None and i >= self.start + self.count:
            return None
        return (self.action, self.delay)


class FaultPlan:
    """A deterministic schedule of store, crash, and network faults.

    All knobs are plain attributes so a test can build a plan imperatively;
    the ``crash_at`` / ``fail_ops`` / ... helpers exist for readability.
    The plan only acts while :attr:`armed` is true — crashcheck runs the
    workload *setup* phase unarmed so crash indices count only the phase
    under test.
    """

    def __init__(self):
        self.armed = True

        # (a) kill a client/leader at the Nth store operation it issues.
        self.crash_victim: Optional[str] = None   # node name whose ops count
        self.crash_at_op: Optional[int] = None    # 1-based; op N is *not* applied
        self.crash_handler: Optional[Callable[[], None]] = None
        self.crashed = False

        # (b) fail / partially apply a scatter-gather batch PUT.
        self.batch_put_fail_at: Optional[int] = None  # 1-based batch index
        self.batch_put_apply = 0                      # items applied before failing

        # (d) transient errors the client must absorb by retrying.
        self.transient_window: Optional[Tuple[int, int]] = None  # [start, end) op idx
        self.transient_every: Optional[int] = None    # op idx % n == 0 fails
        self.flaky_keys: Dict[str, int] = {}          # key substring -> failures left

        # bookkeeping (counts only while armed)
        self.ops_seen = 0        # global store-op index (next op gets this)
        self.victim_ops = 0      # ops issued by crash_victim
        self.batches_seen = 0    # put_many batches observed
        self.message_rules: List[MessageRule] = []

        # Decision-record (``t<txid>``) immutability audit: key -> value at
        # creation. A re-create after deletion or an overwrite with a
        # different value is a protocol violation the sweep must surface.
        self.decision_values: Dict[str, bytes] = {}
        self.retired_decisions: set = set()
        self.violations: List[str] = []

        self._metrics = None  # bound lazily in attach()
        self._sim = None      # bound in attach(); feeds the flight recorder

    # -- configuration helpers ------------------------------------------------

    def crash_at(self, victim: str, at_op: int,
                 handler: Optional[Callable[[], None]] = None) -> "FaultPlan":
        """Kill ``victim`` instead of executing its ``at_op``-th store op."""
        self.crash_victim = victim
        self.crash_at_op = at_op
        if handler is not None:
            self.crash_handler = handler
        return self

    def fail_ops(self, start: int, end: int) -> "FaultPlan":
        """Store ops with global index in ``[start, end)`` raise TransientError."""
        self.transient_window = (start, end)
        return self

    def flaky_key(self, substring: str, failures: int) -> "FaultPlan":
        """The next ``failures`` ops touching a matching key fail transiently."""
        self.flaky_keys[substring] = failures
        return self

    def fail_batch_put(self, nth_batch: int, apply_items: int) -> "FaultPlan":
        """The ``nth_batch``-th batch PUT applies ``apply_items`` items then fails."""
        self.batch_put_fail_at = nth_batch
        self.batch_put_apply = apply_items
        return self

    def drop_messages(self, src: str = "*", dst: str = "*", start: int = 0,
                      count: Optional[int] = 1) -> "FaultPlan":
        self.message_rules.append(
            MessageRule(src, dst, start, count, action="drop"))
        return self

    def delay_messages(self, delay: float, src: str = "*", dst: str = "*",
                       start: int = 0, count: Optional[int] = 1) -> "FaultPlan":
        self.message_rules.append(
            MessageRule(src, dst, start, count, action="delay", delay=delay))
        return self

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    # -- observability ---------------------------------------------------------

    def attach(self, sim) -> None:
        """Bind fault counters into the sim-wide metrics registry."""
        from ..obs import Observability

        self._sim = sim
        m = Observability.of(sim).metrics.scope("faults")
        self._metrics = {
            "crashes": m.counter("crashes"),
            "transient": m.counter("transient"),
            "batch_partial": m.counter("batch_partial"),
            "msg_dropped": m.counter("msg_dropped"),
            "msg_delayed": m.counter("msg_delayed"),
        }

    def _count(self, what: str) -> None:
        if self._metrics is not None:
            self._metrics[what].inc()

    def _record(self, kind: str, **fields) -> None:
        """Feed the flight recorder, when one is installed on the sim."""
        sim = self._sim
        if sim is not None:
            rec = sim._recorder
            if rec is not None:
                rec.record(kind, **fields)

    # -- hooks (called from the wrappers) ---------------------------------------

    def _fire_crash(self, kind: str, key: str) -> None:
        self.crashed = True
        self._count("crashes")
        self._record("fault.crash", victim=self.crash_victim,
                     at_op=self.victim_ops, op=kind, key=key)
        if self.crash_handler is not None:
            self.crash_handler()

    def _transient(self, kind: str, key: str, why: str) -> None:
        self._count("transient")
        self._record("fault.transient", op=kind, key=key, why=why)
        raise TransientError(f"injected transient on {kind} {key!r} ({why})")

    def before_op(self, kind: str, key: str, src) -> None:
        """Consulted before every store operation; may raise.

        Raising here means the operation was *not* applied — transient
        errors and crashes both happen strictly between operations, which is
        what makes crash indices well-defined."""
        if not self.armed:
            return
        # A dead machine cannot reach the store: in-flight coroutines of a
        # crashed client (parallel batch legs, background threads) die at
        # their next store op instead of mutating state post-mortem.
        if src is not None and not src.alive:
            raise InjectedCrash(
                f"store {kind} {key!r} from crashed node {src.name}")
        i = self.ops_seen
        self.ops_seen += 1
        if src is not None and src.name == self.crash_victim:
            self.victim_ops += 1
            if (self.crash_at_op is not None and not self.crashed
                    and self.victim_ops >= self.crash_at_op):
                self._fire_crash(kind, key)
                raise InjectedCrash(
                    f"{self.crash_victim} killed at store op "
                    f"#{self.victim_ops} ({kind} {key!r})")
        if self.transient_window is not None:
            lo, hi = self.transient_window
            if lo <= i < hi:
                self._transient(kind, key, f"op window [{lo},{hi})")
        if self.transient_every is not None and i and i % self.transient_every == 0:
            self._transient(kind, key, f"every {self.transient_every}th op")
        if self.flaky_keys:
            for sub, left in self.flaky_keys.items():
                if left > 0 and sub in key:
                    self.flaky_keys[sub] = left - 1
                    self._transient(kind, key, f"flaky key {sub!r}")

    def before_batch_put(self, n_items: int, src) -> Optional[int]:
        """Returns how many items of this batch to apply before failing,
        or None for no batch-level fault."""
        if not self.armed:
            return None
        self.batches_seen += 1
        if (self.batch_put_fail_at is not None
                and self.batches_seen == self.batch_put_fail_at):
            self._count("batch_partial")
            applied = min(self.batch_put_apply, n_items)
            self._record("fault.batch_partial", batch=self.batches_seen,
                         applied=applied, items=n_items)
            return applied
        return None

    def on_message(self, src_name: str, dst_name: str,
                   size: int) -> Optional[Tuple[str, float]]:
        """Consulted by Network.send; returns ("drop"|"delay", delay) or None."""
        if not self.armed:
            return None
        for rule in self.message_rules:
            act = rule.matches(src_name, dst_name)
            if act is not None:
                self._count("msg_dropped" if act[0] == "drop" else "msg_delayed")
                self._record("fault.msg_" + act[0], src=src_name,
                             dst=dst_name, delay=act[1])
                return act
        return None

    # -- decision-record audit ---------------------------------------------------

    def note_put(self, key: str, data: bytes, created: bool) -> None:
        """Record writes to 2PC decision records (``t...`` keys).

        ``created`` is False for a put_if_absent that lost the race (no
        mutation happened)."""
        if key[:1] != "t" or not created:
            return
        old = self.decision_values.get(key)
        if old is not None and old != bytes(data):
            self.violations.append(
                f"decision record {key} overwritten: "
                f"{old!r} -> {bytes(data)!r}")
        elif old is None and key in self.retired_decisions:
            self.violations.append(
                f"decision record {key} re-created after deletion")
        self.decision_values[key] = bytes(data)

    def note_delete(self, key: str) -> None:
        if key[:1] != "t":
            return
        if self.decision_values.pop(key, None) is not None:
            self.retired_decisions.add(key)
