"""Exhaustive crash-consistency checking for the journal/lease/2PC stack.

The method is the classic "crash at every store operation" sweep:

1. **Profile** — run a workload on a two-client cluster with an (armed but
   crash-free) :class:`~repro.faults.plan.FaultPlan` underneath the store,
   counting every store operation the victim client issues. After each
   workload step, snapshot the victim's op count: that is the step's
   *durability milestone*.
2. **Sweep** — for every store-op index ``k`` in ``1..N`` (or a strided /
   bounded subset), rebuild the cluster from scratch and re-run the same
   workload with ``crash_at(victim, k)``: the victim dies *instead of*
   executing its k-th store operation. Execution is deterministic, so the
   run is bit-identical to the profiling run right up to the crash.
3. **Check** — after each crash, the surviving client waits out lease
   fencing, walks the whole namespace (acquiring a directory's lease
   replays its journal — this is the production recovery path), replays any
   residual journals, and then the checker asserts:

   * :func:`~repro.core.fsck.fsck` is clean (``after_crash=True``: data
     garbage a crash legitimately leaves is downgraded, everything the
     journal/2PC machinery promises stays a hard error — no dangling
     dentries, no orphan inodes, no leftover journal transactions);
   * every workload step that *completed before the crash* and carries a
     durability promise (mkdir's eager flush, fsync, 2PC rename commit)
     is still satisfied post-recovery;
   * workload-specific invariants hold at **every** crash point — e.g.
     rename atomicity: for each rename, exactly one of (old name, new
     name) exists, with the original content;
   * no 2PC decision record was ever overwritten with a different value
     or re-created after deletion (audited live by the FaultPlan);
   * no commit ever landed under a stale authority epoch (audited live by
     the lease cluster's FencingRegistry — the ``epoch_handoff`` workload
     deposes every manager range mid-run to exercise this), and a crashed
     or interrupted directory split recovers to exactly one authoritative
     layout (checked structurally by fsck's shard-map rules — the
     ``shard_split`` workload lands crash points across the whole
     two-phase split).

Run it from the command line::

    PYTHONPATH=src python -m repro.faults.crashcheck --workload rename --stride 7

``--bug lost-commit`` seeds a deliberate recovery bug (mutations applied
locally but never committed to the journal) to demonstrate the checker
catching it.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core import build_arkfs
from ..core.fsck import fsck
from ..core.params import ArkFSParams, DEFAULT_PARAMS, KiB
from ..core.recovery import recover_directory
from ..obs import Observability
from ..posix import ROOT_CREDS
from ..posix.vfs import SyncFS
from ..sim.engine import SimGen, Simulator
from .plan import FaultPlan, InjectedCrash

__all__ = ["Step", "Workload", "WORKLOADS", "SEEDED_BUGS",
           "CrashPointResult", "CrashCheckReport",
           "profile", "check_point", "sweep", "main"]

VICTIM = "client0"

# A healthy workload step finishes in well under a sim-minute on the
# functional store; a step still running after this long has wedged
# (e.g. a post-crash coroutine spinning on a retry loop).
STEP_BOUND_S = 120.0
FENCE_MARGIN_S = 1.0


# --------------------------------------------------------------------------
# workload description
# --------------------------------------------------------------------------

@dataclass
class Step:
    """One unit of victim-side work.

    ``gen(client)`` returns the coroutine to run; ``advance`` instead just
    runs simulated time forward (letting background commit/checkpoint
    threads fire). ``durable(fs)`` — given the *survivor's* SyncFS view —
    asserts the effects this step promised were durable on return.

    ``survivor=True`` runs ``gen`` on the surviving client instead (its
    store ops are not counted as crash points — only the victim's are).
    ``act(cluster)`` is a synchronous cluster-level control action (e.g.
    deposing a lease-manager range) executed before any ``advance``.
    """

    name: str
    gen: Optional[Callable] = None
    advance: float = 0.0
    durable: Optional[Callable] = None
    survivor: bool = False
    act: Optional[Callable] = None


@dataclass
class Workload:
    name: str
    setup: Callable                     # client -> SimGen, run unarmed
    steps: List[Step]
    invariants: Optional[Callable] = None   # (SyncFS, violations) -> None
    params: Optional[ArkFSParams] = None    # cluster params override
    n_lease_managers: int = 1               # >1 builds a LeaseManagerCluster
    # Factory ``cluster -> handler()`` replacing the default crash action
    # (victim.crash). The tier workload uses it to also lose the volatile
    # hot tier at the crash instant — node RAM and fast-tier media go
    # together in the modelled failure.
    crash_handler: Optional[Callable] = None


def _wl_mkdir_heavy() -> Workload:
    """Directory-tree construction: eager-flush mkdirs, nesting, rmdir.

    Every mkdir checkpoints eagerly (the child inode must be loadable
    before anyone acquires its lease), so each one is durable on return —
    each step carries its own milestone check."""
    flat = [f"/m{i}" for i in range(4)]
    nested = ["/m0/s0", "/m0/s1", "/m1/s0"]
    late = ["/late0", "/late1", "/m2/s0"]

    def exists_check(path):
        def check(fs):
            assert fs.stat(path).is_dir, f"{path} is not a directory"
        return check

    def mk(path):
        return Step(f"mkdir:{path}",
                    gen=lambda c, p=path: c.mkdir(ROOT_CREDS, p),
                    durable=exists_check(path))

    steps = [mk(p) for p in flat + nested]
    steps.append(Step("sync-1", gen=lambda c: c.sync()))
    steps += [mk(p) for p in late]
    # rmdir buffers the parent-journal delete (only mkdir checkpoints
    # eagerly), so removal becomes durable at the *next sync*, not on
    # return — the milestone lives on sync-2.
    steps.append(Step("rmdir:/m3", gen=lambda c: c.rmdir(ROOT_CREDS, "/m3")))
    steps.append(Step("sync-2", gen=lambda c: c.sync(),
                      durable=lambda fs: _assert(not fs.exists("/m3"),
                                                 "/m3 still exists")))
    return Workload("mkdir", setup=_noop_setup, steps=steps)


def _wl_rename_heavy() -> Workload:
    """Cross-directory renames: the full 2PC prepare/decide/finish path.

    Each rename is durable on return (the decision record committed), so
    each one is a milestone; the atomicity invariant (exactly one of the
    old and new name exists, holding the original bytes) must hold at
    *every* crash point."""
    n = 20
    content = {i: bytes([65 + i]) * (100 + i) for i in range(n)}

    def setup(c):
        yield from c.mkdir(ROOT_CREDS, "/a")
        yield from c.mkdir(ROOT_CREDS, "/b")
        for i in range(n):
            yield from c.write_file(ROOT_CREDS, f"/a/f{i}", content[i],
                                    do_fsync=True)
        yield from c.sync()

    def renamed_check(i):
        def check(fs):
            got = fs.read_file(f"/b/g{i}")
            assert got == content[i], f"/b/g{i} holds {got!r}"
            assert not fs.exists(f"/a/f{i}"), f"/a/f{i} survived its rename"
        return check

    steps = [Step(f"rename:f{i}",
                  gen=lambda c, i=i: c.rename(ROOT_CREDS,
                                              f"/a/f{i}", f"/b/g{i}"),
                  durable=renamed_check(i))
             for i in range(n)]

    def invariants(fs, violations):
        for i in range(n):
            at_src = fs.exists(f"/a/f{i}")
            at_dst = fs.exists(f"/b/g{i}")
            if at_src == at_dst:
                violations.append(
                    f"rename atomicity broken for f{i}: "
                    f"src={at_src} dst={at_dst}")
                continue
            path = f"/a/f{i}" if at_src else f"/b/g{i}"
            got = fs.read_file(path)
            if got != content[i]:
                violations.append(
                    f"rename content for f{i}: {path} holds {got!r}")

    return Workload("rename", setup=setup, steps=steps,
                    invariants=invariants)


def _wl_checkpoint() -> Workload:
    """Group-commit and checkpoint timing: unfsynced writes ride the 1 s
    compound-transaction buffer; time-advance steps let the background
    commit/checkpoint threads fire mid-workload, so the sweep lands crash
    points inside their store operations too."""
    udata, sdata = b"u" * 50, b"s" * 50

    def setup(c):
        yield from c.mkdir(ROOT_CREDS, "/c")
        yield from c.sync()

    def wr(path, data, fsync):
        return lambda c: c.write_file(ROOT_CREDS, path, data,
                                      do_fsync=fsync)

    def committed_check(fs):
        # The journal makes *metadata* durable: name and size survive. The
        # unfsynced bytes lived only in the victim's cache and may read
        # back as zeros — metadata-journaling semantics, same as ext4's
        # default mode. Only fsync promises the data itself.
        for i in range(3):
            st = fs.stat(f"/c/u{i}")
            assert st.st_size == len(udata), f"/c/u{i} size {st.st_size}"
            got = fs.read_file(f"/c/u{i}")
            assert got in (udata, b"\x00" * len(udata)), \
                f"/c/u{i} holds {got!r}"

    def synced_check(fs):
        for i in range(3):
            got = fs.read_file(f"/c/s{i}")
            assert got == sdata, f"/c/s{i} holds {got!r}"

    steps = [Step(f"write:u{i}", gen=wr(f"/c/u{i}", udata, False))
             for i in range(3)]
    # > journal_commit_interval: the background threads commit (and then
    # checkpoint) the buffered creates, making them durable.
    steps.append(Step("advance-commit", advance=2.5,
                      durable=committed_check))
    steps += [Step(f"write:s{i}", gen=wr(f"/c/s{i}", sdata, True))
              for i in range(3)]
    steps.append(Step("sync", gen=lambda c: c.sync(), durable=synced_check))
    steps.append(Step("advance-ckpt", advance=2.5))
    return Workload("checkpoint", setup=setup, steps=steps)


def _wl_pack() -> Workload:
    """Packed small-file containers: crash points across the whole pack
    lifecycle — append, size/age seal (container PUT + extent-index
    commit + stale-object purge), unlink-driven dead-extent accounting,
    and background reclaim/compaction.

    Small target/threshold values force several seals out of eight
    ~40 KB files; the unlinks drop two containers' live ratios so the
    time-advance steps land crash points inside the compactor too."""
    params = DEFAULT_PARAMS.with_(
        pack_enabled=True, pack_threshold=64 * KiB,
        pack_target_size=192 * KiB, pack_seal_age=0.5,
        pack_compact_live_ratio=0.8)
    content = {i: bytes([97 + i]) * (40_000 + 1_000 * i) for i in range(8)}

    def setup(c):
        yield from c.mkdir(ROOT_CREDS, "/p")
        yield from c.sync()

    def wr(i, fsync):
        return lambda c: c.write_file(ROOT_CREDS, f"/p/f{i}", content[i],
                                      do_fsync=fsync)

    def packed_check(i):
        def check(fs):
            if i in (1, 5):
                # The later unlink step may have removed it — or a crash
                # mid-unlink purged the data before the namespace commit,
                # leaving the name reading zeros (the same torn-unlink
                # state the checkpoint workload's contract allows).
                if not fs.exists(f"/p/f{i}"):
                    return
                got = fs.read_file(f"/p/f{i}")
                assert got in (content[i], b"\x00" * len(got)), \
                    f"/p/f{i} holds {len(got)} unexpected bytes"
                return
            got = fs.read_file(f"/p/f{i}")
            assert got == content[i], \
                f"/p/f{i} holds {len(got)} bytes != expected"
        return check

    def synced_check(fs):
        for i in range(4, 8):
            packed_check(i)(fs)

    def gone_check(fs):
        for i in (1, 5):
            assert not fs.exists(f"/p/f{i}"), f"/p/f{i} survived unlink"

    steps = [Step(f"fsync:f{i}", gen=wr(i, True), durable=packed_check(i))
             for i in range(4)]
    # Let the age-based seal and the commit threads fire mid-workload.
    steps.append(Step("advance-seal", advance=1.0))
    steps += [Step(f"write:f{i}", gen=wr(i, False)) for i in range(4, 8)]
    steps.append(Step("sync-1", gen=lambda c: c.sync(),
                      durable=synced_check))
    steps.append(Step("unlink:f1",
                      gen=lambda c: c.unlink(ROOT_CREDS, "/p/f1")))
    steps.append(Step("unlink:f5",
                      gen=lambda c: c.unlink(ROOT_CREDS, "/p/f5")))
    steps.append(Step("sync-2", gen=lambda c: c.sync(),
                      durable=gone_check))
    # The maintenance ticker reclaims dead containers / compacts
    # low-live-ratio ones during this window.
    steps.append(Step("advance-compact", advance=2.0))
    steps.append(Step("sync-3", gen=lambda c: c.sync()))

    def invariants(fs, violations):
        # Any surviving file must read as its exact content or as zeros
        # (metadata-journaling semantics: an unfsynced file's bytes lived
        # only in the victim's cache/open pack buffer) — never as another
        # file's bytes or a torn mix. A 40 KB file is one chunk, so its
        # packed extent is either wholly present or wholly absent.
        for i in range(8):
            path = f"/p/f{i}"
            if not fs.exists(path):
                continue
            got = fs.read_file(path)
            if got not in (content[i], b"\x00" * len(got), b""):
                violations.append(
                    f"{path} holds {len(got)} bytes that are neither its "
                    f"content nor zeros")

    return Workload("pack", setup=setup, steps=steps,
                    invariants=invariants, params=params)


def _wl_shard_split() -> Workload:
    """Directory sharding: crash points across the whole two-phase split —
    the pre-split journal checkpoint, the splitting-map PUT, the per-dentry
    migration copies/deletes, and the activating map PUT — plus post-split
    creates, unlink, and an intra-directory (possibly cross-shard) rename.

    A tiny ``shard_split_threshold`` makes the 6th create of ``/s`` trigger
    the background split, so the very next create blocks on the split gate
    and the sweep lands crash points inside every migration store op. The
    *one-authoritative-layout* invariant is checked structurally by fsck
    (shard-map soundness: every dentry hash-routes to the range holding
    it, no parent-range dentries survive an activated split); the workload
    invariants add that the recovered directory lists every name exactly
    once and that renames never duplicate across shards."""
    params = DEFAULT_PARAMS.with_(shards_enabled=True,
                                  shard_split_threshold=6, shard_fanout=4)
    n = 10
    content = {i: bytes([70 + i]) * (60 + 7 * i) for i in range(n)}

    def setup(c):
        yield from c.mkdir(ROOT_CREDS, "/s")
        yield from c.sync()

    def wr(i):
        return lambda c: c.write_file(ROOT_CREDS, f"/s/f{i}", content[i],
                                      do_fsync=True)

    def present_check(i):
        def check(fs):
            if i == 1:
                # The later unlink step may have removed it — or a crash
                # mid-unlink purged the data before the namespace commit,
                # leaving the name reading zeros (the torn-unlink state
                # the pack/checkpoint workloads' contracts also allow).
                if not fs.exists("/s/f1"):
                    return
                got = fs.read_file("/s/f1")
                assert got in (content[1], b"\x00" * len(got)), \
                    f"/s/f1 holds {got!r}"
                return
            if i == 2:
                # The later rename step may have moved it; atomicity is
                # asserted by the invariants at every crash point.
                path = "/s/g2" if fs.exists("/s/g2") else "/s/f2"
                got = fs.read_file(path)
                assert got == content[2], f"{path} holds {got!r}"
                return
            got = fs.read_file(f"/s/f{i}")
            assert got == content[i], f"/s/f{i} holds {got!r}"
        return check

    def synced_check(fs):
        assert not fs.exists("/s/f1"), "/s/f1 survived its unlink"
        got = fs.read_file("/s/g2")
        assert got == content[2], f"/s/g2 holds {got!r}"
        assert not fs.exists("/s/f2"), "/s/f2 survived its rename"

    # f5's create crosses the threshold; f6's create waits on the split
    # gate, so the split's store ops all land inside these steps.
    steps = [Step(f"fsync:f{i}", gen=wr(i), durable=present_check(i))
             for i in range(8)]
    steps.append(Step("advance-split", advance=1.5))
    steps.append(Step("unlink:f1",
                      gen=lambda c: c.unlink(ROOT_CREDS, "/s/f1")))
    steps.append(Step("rename:f2",
                      gen=lambda c: c.rename(ROOT_CREDS, "/s/f2", "/s/g2")))
    steps.append(Step("sync-1", gen=lambda c: c.sync(),
                      durable=synced_check))
    steps += [Step(f"fsync:f{i}", gen=wr(i), durable=present_check(i))
              for i in range(8, n)]
    steps.append(Step("sync-2", gen=lambda c: c.sync()))

    def invariants(fs, violations):
        names = fs.readdir("/s")
        if len(names) != len(set(names)):
            violations.append(
                f"sharded readdir lists duplicates: {sorted(names)}")
        for nm in names:
            if not fs.exists(f"/s/{nm}"):
                violations.append(f"/s/{nm} listed but not stat-able")
        if fs.exists("/s/f2") and fs.exists("/s/g2"):
            violations.append(
                "rename f2->g2 duplicated across shard ranges")
        for i in range(n):
            for path in (f"/s/f{i}",) + (("/s/g2",) if i == 2 else ()):
                if not fs.exists(path):
                    continue
                got = fs.read_file(path)
                if got not in (content[i], b"\x00" * len(got), b""):
                    violations.append(
                        f"{path} holds {len(got)} bytes that are neither "
                        f"its content nor zeros")

    return Workload("shard_split", setup=setup, steps=steps,
                    invariants=invariants, params=params)


def _wl_epoch_handoff() -> Workload:
    """Lease-manager scale-out: epoch-fenced range handoff under load.

    A three-manager cluster serves the namespace; mid-workload every ring
    range is failed over to its successor at epoch + 1 while the victim
    still holds live leases and has uncommitted buffered transactions.
    The survivor then acquires a directory under the new epoch (driving
    the recovery grant + journal replay), after which the victim keeps
    writing — its stale leases must re-resolve to the new authority.

    The *no-stale-epoch-commit* invariant is audited independently of the
    clients by :class:`~repro.core.lease.FencingRegistry` (every commit
    that lands is compared against the highest token ever granted); the
    harness drains its breach list into the violations of every crash
    point, and the ``fence-blind`` seeded bug exists to prove the audit
    has teeth."""
    udata, sdata, vdata = b"u" * 64, b"s" * 72, b"v" * 80

    def setup(c):
        yield from c.mkdir(ROOT_CREDS, "/d0")
        yield from c.mkdir(ROOT_CREDS, "/d1")
        yield from c.sync()

    def wr(path, data, fsync):
        return lambda c: c.write_file(ROOT_CREDS, path, data,
                                      do_fsync=fsync)

    def fail_all(cluster):
        svc = cluster.lease_service
        for rs in list(svc.ranges):
            svc.fail_over(rs.index)

    def synced(path, data):
        def check(fs):
            got = fs.read_file(path)
            assert got == data, f"{path} holds {got!r}"
        return check

    def committed(path, data):
        def check(fs):
            st = fs.stat(path)
            assert st.st_size == len(data), f"{path} size {st.st_size}"
            got = fs.read_file(path)
            assert got in (data, b"\x00" * len(data)), f"{path}: {got!r}"
        return check

    steps = [
        Step("write:u0", gen=wr("/d0/u0", udata, False)),
        Step("write:u1", gen=wr("/d1/u1", udata, False)),
        Step("fsync:s0", gen=wr("/d0/s0", sdata, True),
             durable=synced("/d0/s0", sdata)),
        # Depose every range owner at epoch + 1, then sit out the per-range
        # fence window (one lease period) plus the victim's lease lapse.
        Step("failover", act=fail_all, advance=6.5),
        Step("survivor:v0", gen=wr("/d0/v0", vdata, True), survivor=True,
             durable=synced("/d0/v0", vdata)),
        Step("write:u2", gen=wr("/d0/u2", udata, False)),
        Step("advance-commit", advance=2.5,
             durable=committed("/d0/u0", udata)),
        Step("fsync:s1", gen=wr("/d1/s1", sdata, True),
             durable=synced("/d1/s1", sdata)),
        Step("sync", gen=lambda c: c.sync(),
             durable=committed("/d0/u2", udata)),
    ]

    def invariants(fs, violations):
        for path, data, exact in (("/d0/s0", sdata, True),
                                  ("/d0/v0", vdata, True),
                                  ("/d1/s1", sdata, True),
                                  ("/d0/u0", udata, False),
                                  ("/d1/u1", udata, False),
                                  ("/d0/u2", udata, False)):
            if not fs.exists(path):
                continue
            got = fs.read_file(path)
            ok = (got == data) if exact else \
                 (got in (data, b"\x00" * len(got), b""))
            if not ok:
                violations.append(f"{path} holds {len(got)} "
                                  f"unexpected bytes")

    return Workload("epoch_handoff", setup=setup, steps=steps,
                    invariants=invariants, n_lease_managers=3)


def _wl_tier_drain() -> Workload:
    """Hot/cold tiered store: crash points across the whole staged-object
    lifecycle — hot-tier staging PUTs, the fsync drain barrier, the
    background drain ticker, demand promotions on read, and watermark
    demotion deletes.

    A tiny hot capacity (192 KB against ~280 KB of ~30–40 KB files) and
    dirty bound force drain rounds and watermark demotions mid-workload.
    The crash model is the tier's worst case: the victim dies *and* the
    fast tier's contents are lost with it (``lose_hot``), so everything
    fsync'd/synced must be readable from the cold tier + journal alone —
    hot-only state is volatile by contract."""
    params = DEFAULT_PARAMS.with_(
        tier_enabled=True, tier_hot_capacity=192 * KiB,
        tier_high_watermark=0.75, tier_low_watermark=0.5,
        tier_dirty_max=128 * KiB, tier_drain_interval=0.4,
        tier_drain_batch=4, tier_promote_max=64 * KiB)
    content = {i: bytes([98 + i]) * (30_000 + 1_500 * i) for i in range(8)}

    def setup(c):
        yield from c.mkdir(ROOT_CREDS, "/t")
        yield from c.sync()

    def crash_handler(cluster):
        victim = cluster.client(0)

        def handler():
            victim.crash()
            cluster.store.lose_hot()

        return handler

    def wr(i, fsync):
        return lambda c: c.write_file(ROOT_CREDS, f"/t/f{i}", content[i],
                                      do_fsync=fsync)

    def drained_check(i):
        def check(fs):
            if i == 1:
                # The later unlink step may have removed it — or a crash
                # mid-unlink purged the data before the namespace commit,
                # leaving the name reading zeros (the same torn-unlink
                # state the pack workload's contract allows).
                if not fs.exists("/t/f1"):
                    return
                got = fs.read_file("/t/f1")
                assert got in (content[1], b"\x00" * len(got)), \
                    f"/t/f1 holds {len(got)} unexpected bytes"
                return
            got = fs.read_file(f"/t/f{i}")
            assert got == content[i], \
                f"/t/f{i} holds {len(got)} bytes != expected"
        return check

    def synced_check(fs):
        for i in range(4, 8):
            got = fs.read_file(f"/t/f{i}")
            assert got == content[i], \
                f"/t/f{i} holds {len(got)} bytes != expected"

    def gone_check(fs):
        assert not fs.exists("/t/f1"), "/t/f1 survived unlink"

    def rd(i):
        return lambda c: c.read_file(ROOT_CREDS, f"/t/f{i}")

    # fsync = staged hot + drain barrier: durable at cold on return, so it
    # must survive losing the entire hot tier at any later crash point.
    steps = [Step(f"fsync:f{i}", gen=wr(i, True), durable=drained_check(i))
             for i in range(4)]
    # Let the drain ticker and the watermark demoter run mid-workload.
    steps.append(Step("advance-drain", advance=1.0))
    # Demand reads: hot hits for resident objects, cold GET + promotion
    # for demoted ones — crash points inside the promotion PUTs too.
    steps.append(Step("read:f0", gen=rd(0)))
    steps.append(Step("read:f1", gen=rd(1)))
    steps += [Step(f"write:f{i}", gen=wr(i, False)) for i in range(4, 8)]
    steps.append(Step("sync-1", gen=lambda c: c.sync(),
                      durable=synced_check))
    steps.append(Step("unlink:f1",
                      gen=lambda c: c.unlink(ROOT_CREDS, "/t/f1")))
    steps.append(Step("sync-2", gen=lambda c: c.sync(),
                      durable=gone_check))
    # Everything is clean now; the demoter evicts past the watermark.
    steps.append(Step("advance-demote", advance=1.0))
    steps.append(Step("sync-3", gen=lambda c: c.sync()))

    def invariants(fs, violations):
        # Exact-or-zeros, as in the pack workload: a surviving name must
        # read its content or zeros (bytes that lived only in the victim's
        # cache or the lost hot tier) — never torn or foreign bytes.
        for i in range(8):
            path = f"/t/f{i}"
            if not fs.exists(path):
                continue
            got = fs.read_file(path)
            if got not in (content[i], b"\x00" * len(got), b""):
                violations.append(
                    f"{path} holds {len(got)} bytes that are neither its "
                    f"content nor zeros")

    return Workload("tier_drain", setup=setup, steps=steps,
                    invariants=invariants, params=params,
                    crash_handler=crash_handler)


def _wl_qos_backlog() -> Workload:
    """Multi-tenant QoS plane: crash points while ops sit queued behind
    admission and token-bucket throttles.

    Tight per-tenant rates (a few ops/s, a few KiB/s) put every victim op
    into a throttle sleep, and the concurrent-burst steps keep several
    fsyncs in flight at once — at the crash instant the victim holds
    admission slots and a token deficit, plus whatever store ops were
    mid-flight. Recovery must drain it all cleanly: the dead tenant's
    in-flight accounting is dropped (``QosManager.release_tenant`` runs in
    ``client.crash()``), the survivor — its own tenant, same plane — walks
    and replays the namespace without spurious EAGAINs, and every fsync
    that returned before the crash is durable despite having waited out a
    throttle on the way in."""
    params = DEFAULT_PARAMS.with_(
        qos_enabled=True, qos_ops_rate=60.0, qos_ops_burst=4.0,
        qos_bytes_rate=64 * KiB, qos_bytes_burst=16 * KiB,
        qos_max_inflight=4)
    content = {i: bytes([103 + i]) * (12_000 + 900 * i) for i in range(8)}

    def setup(c):
        yield from c.mkdir(ROOT_CREDS, "/q")
        yield from c.sync()

    def wr(i, fsync):
        return lambda c: c.write_file(ROOT_CREDS, f"/q/f{i}", content[i],
                                      do_fsync=fsync)

    def present_check(i):
        def check(fs):
            got = fs.read_file(f"/q/f{i}")
            assert got == content[i], \
                f"/q/f{i} holds {len(got)} bytes != expected"
        return check

    def burst(first, last):
        # Concurrent fsyncs from one gateway: the admission slots fill and
        # the ops/bytes buckets run a deficit, so the sweep lands crash
        # points while requests are queued *inside* the QoS plane.
        def gen(c):
            procs = [c.sim.process(wr(i, True)(c), name=f"burst:f{i}")
                     for i in range(first, last)]
            yield c.sim.all_of(procs)
        return gen

    def burst_check(first, last):
        def check(fs):
            for i in range(first, last):
                present_check(i)(fs)
        return check

    steps = [Step(f"fsync:f{i}", gen=wr(i, True), durable=present_check(i))
             for i in range(2)]
    steps.append(Step("burst:f2-f5", gen=burst(2, 6),
                      durable=burst_check(2, 6)))
    steps += [Step(f"write:f{i}", gen=wr(i, False)) for i in range(6, 8)]
    steps.append(Step("sync-1", gen=lambda c: c.sync(),
                      durable=burst_check(6, 8)))
    # A scratch file with no presence contract of its own: its unlink can
    # become durable at any later crash point without contradicting an
    # earlier step's durability closure.
    steps.append(Step("fsync:tmp",
                      gen=lambda c: c.write_file(ROOT_CREDS, "/q/tmp",
                                                 b"\x7f" * 9_000,
                                                 do_fsync=True)))
    steps.append(Step("unlink:tmp",
                      gen=lambda c: c.unlink(ROOT_CREDS, "/q/tmp")))
    steps.append(Step("sync-2", gen=lambda c: c.sync(),
                      durable=lambda fs: _assert(not fs.exists("/q/tmp"),
                                                 "/q/tmp survived unlink")))
    steps.append(Step("advance-settle", advance=1.0))

    def invariants(fs, violations):
        # Exact-or-zeros, as in the pack/tier workloads: throttle sleeps
        # and admission retries must never tear or cross-wire file bytes.
        for i in range(8):
            path = f"/q/f{i}"
            if not fs.exists(path):
                continue
            got = fs.read_file(path)
            if got not in (content[i], b"\x00" * len(got), b""):
                violations.append(
                    f"{path} holds {len(got)} bytes that are neither its "
                    f"content nor zeros")

    return Workload("qos_backlog", setup=setup, steps=steps,
                    invariants=invariants, params=params)


def _noop_setup(client):
    yield client.sim.timeout(0)


def _assert(cond, msg):
    assert cond, msg


WORKLOADS: Dict[str, Callable[[], Workload]] = {
    "mkdir": _wl_mkdir_heavy,
    "rename": _wl_rename_heavy,
    "checkpoint": _wl_checkpoint,
    "pack": _wl_pack,
    "shard_split": _wl_shard_split,
    "epoch_handoff": _wl_epoch_handoff,
    "tier_drain": _wl_tier_drain,
    "qos_backlog": _wl_qos_backlog,
}


# --------------------------------------------------------------------------
# seeded bugs (to prove the checker has teeth)
# --------------------------------------------------------------------------

def _bug_lost_commit(cluster) -> None:
    """Mutations applied locally but never committed: the victim's journal
    manager reports durability without writing the journal object. Every
    'durable' promise it makes is a lie the checker must catch."""
    victim = cluster.client(0)
    jm = victim.journal

    def lying_commit(dj):
        dj.running = []
        dj.ops_committed = dj.ops_recorded
        yield victim.sim.timeout(0)

    jm._commit_locked = lying_commit


def _bug_pretend_fsync(cluster) -> None:
    """Data mutations applied locally but never written back: the victim's
    cache marks dirty entries clean without the store PUT, so fsync returns
    success while the bytes exist only in volatile memory. Fault-free runs
    look fine (the victim reads its own cache); the durability milestones
    of any crash point after an 'fsync' expose it."""
    victim = cluster.client(0)
    cache = victim.cache

    def lying_writeback(ino, entry):
        entry.dirty = False
        yield victim.sim.timeout(0)

    cache._writeback = lying_writeback


def _bug_fence_blind(cluster) -> None:
    """A zombie leader: the victim's journal manager skips the fencing
    admit check AND the victim believes every lease it is granted lasts
    forever, so after a range fails over it keeps journaling and
    committing under its stale ``(mgr_epoch, dir_epoch)`` token instead
    of re-resolving the new authority. The independent
    :class:`~repro.core.lease.FencingRegistry` audit (compare every
    landed commit against the highest token ever granted) must flag the
    stale-epoch commits — this bug proves that auditor has teeth even
    when in-path enforcement is disabled."""
    victim = cluster.client(0)
    victim.journal.fencing_enforce = False
    real_acquire = victim._acquire_dir

    def immortal_acquire(dir_ino):
        kind, who = yield from real_acquire(dir_ino)
        if kind == "local":
            who.lease_expires += 1000.0
        return kind, who

    victim._acquire_dir = immortal_acquire


def _bug_tier_drain_reorder(cluster) -> None:
    """Drain bookkeeping ahead of durability: the tier's cold-PUT leg holds
    each drain batch back and only flushes the *previous* one, so every
    batch is marked clean (and the fsync barrier returns) one round before
    its bytes actually reach cold. Fault-free runs look fine — reads still
    hit the hot copy — but a crash that loses the hot tier after any fsync
    deterministically loses the most recent 'drained' batch, which the
    durability milestones must expose."""
    store = cluster.store  # the TieredObjectStore (unwrapped by design)
    real = store._drain_cold_put
    pending: List[list] = []

    def reordered(items, src):
        pending.append(list(items))
        if len(pending) > 1:
            yield from real(pending.pop(0), src)
        else:
            yield store.sim.timeout(0)

    store._drain_cold_put = reordered


SEEDED_BUGS: Dict[str, Callable] = {
    "lost-commit": _bug_lost_commit,
    "pretend-fsync": _bug_pretend_fsync,
    "fence-blind": _bug_fence_blind,
    "tier-drain-reorder": _bug_tier_drain_reorder,
}


# --------------------------------------------------------------------------
# results
# --------------------------------------------------------------------------

@dataclass
class CrashPointResult:
    index: int                 # crash_at_op (1-based victim store-op index)
    fired: bool                # did the crash actually trigger?
    completed_steps: int
    violations: List[str] = field(default_factory=list)
    # Flight-recorder dump captured when violations were found (the last
    # ~512 structured events before/around the failure), else None.
    flight: Optional[dict] = None


@dataclass
class CrashCheckReport:
    workload: str
    total_ops: int             # victim store ops in the fault-free run
    points: List[CrashPointResult] = field(default_factory=list)
    profile_failure: Optional[str] = None

    @property
    def violations(self) -> List[Tuple[int, str]]:
        return [(r.index, v) for r in self.points for v in r.violations]

    @property
    def ok(self) -> bool:
        # A step failing in the *fault-free* profiling run is the strongest
        # possible finding: the workload broke before any crash was injected.
        return not self.violations and self.profile_failure is None

    def summary(self) -> str:
        status = ("OK" if self.ok
                  else f"{len(self.violations)} VIOLATIONS")
        lines = [f"crashcheck[{self.workload}]: {status} — "
                 f"{len(self.points)} crash points checked "
                 f"of {self.total_ops} victim store ops"]
        if self.profile_failure:
            lines.append(f"  profiling stopped early: {self.profile_failure}")
        for idx, v in self.violations:
            lines.append(f"  crash@{idx}: {v}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# the harness
# --------------------------------------------------------------------------

class _StepWedged(Exception):
    """A step made no progress within its sim-time bound."""


def _build(bug: Optional[str] = None,
           params: Optional[ArkFSParams] = None,
           n_lease_managers: int = 1):
    sim = Simulator()
    # Flight recorder from the start: when a crash point finds a violation,
    # its result carries the recent event ring (fault injections, journal
    # commits, lease revocations, ...) so the failure is diagnosable from
    # the report alone. Recording never perturbs simulated outcomes.
    Observability.of(sim).enable_recorder()
    plan = FaultPlan()
    plan.disarm()
    cluster = build_arkfs(sim, n_clients=2, functional=True, seed=0,
                          params=params or DEFAULT_PARAMS, faults=plan,
                          n_lease_managers=n_lease_managers)
    if bug is not None:
        SEEDED_BUGS[bug](cluster)
    return sim, cluster, plan


def _run_step(sim: Simulator, cluster, step: Step) -> None:
    """Run one step with a sim-time bound (a crashed client's unwinding
    coroutines can otherwise spin on retry loops forever)."""
    if step.act is not None:
        step.act(cluster)
    if step.gen is None:
        sim.run(until=sim.now + step.advance)
        return
    client = cluster.client(1 if step.survivor else 0)
    deadline = sim.now + STEP_BOUND_S
    proc = sim.process(step.gen(client), name=f"step:{step.name}")
    while not proc.triggered and sim._heap and sim._heap[0][0] <= deadline:
        sim.step()
    if not proc.triggered:
        raise _StepWedged(
            f"step {step.name!r} did not finish within {STEP_BOUND_S}s")
    if not proc._ok:
        raise proc._value


def _drain_breaches(cluster, sink: List[str]) -> None:
    """Append every stale-epoch commit the fencing auditor recorded.

    The :class:`~repro.core.lease.FencingRegistry` audit is independent of
    client-side enforcement (it compares every commit that actually landed
    against the highest token ever granted), so it catches zombie leaders
    even when a seeded bug disables the in-path check."""
    fencing = getattr(cluster.lease_service, "fencing", None)
    if fencing is not None:
        sink.extend(f"fencing: {b}" for b in fencing.drain_breaches())


def profile(workload: Workload,
            bug: Optional[str] = None) -> Tuple[int, List[int], Optional[str]]:
    """Fault-free reference run. Returns ``(total victim ops, per-step
    op-count milestones, failure)`` — ``failure`` is set when a step failed
    even without any fault injected (itself a finding; the sweep still
    covers the ops up to that point)."""
    sim, cluster, plan = _build(bug, params=workload.params,
                                n_lease_managers=workload.n_lease_managers)
    victim = cluster.client(0)
    plan.crash_victim = victim.node.name   # count, but never crash
    try:
        sim.run_process(workload.setup(victim),
                        name=f"{workload.name}.setup")
    except Exception as exc:  # noqa: BLE001
        return 0, [], f"setup: {exc!r}"
    plan.arm()
    milestones: List[int] = []
    failure: Optional[str] = None
    for step in workload.steps:
        try:
            _run_step(sim, cluster, step)
        except Exception as exc:  # noqa: BLE001 - reported, not masked
            failure = f"step {step.name!r}: {exc!r}"
            break
        milestones.append(plan.victim_ops)
    if failure is None:
        # Even the fault-free run is audited: a zombie leader committing
        # under a stale epoch is a finding with no crash injected at all.
        breaches: List[str] = []
        _drain_breaches(cluster, breaches)
        if breaches:
            failure = breaches[0] if len(breaches) == 1 else \
                f"{breaches[0]} (+{len(breaches) - 1} more)"
    return plan.victim_ops, milestones, failure


def check_point(workload: Workload, k: int, milestones: List[int],
                bug: Optional[str] = None) -> CrashPointResult:
    """Crash the victim at its k-th store op, recover, check invariants."""
    sim, cluster, plan = _build(bug, params=workload.params,
                                n_lease_managers=workload.n_lease_managers)
    victim, survivor = cluster.client(0), cluster.client(1)
    handler = (victim.crash if workload.crash_handler is None
               else workload.crash_handler(cluster))
    plan.crash_at(victim.node.name, k, handler=handler)
    try:
        sim.run_process(workload.setup(victim),
                        name=f"{workload.name}.setup")
    except Exception as exc:  # noqa: BLE001
        return CrashPointResult(
            index=k, fired=False, completed_steps=0,
            violations=[f"workload setup failed (no fault armed): {exc!r}"])
    plan.arm()

    violations: List[str] = []
    completed = 0
    for step in workload.steps:
        try:
            _run_step(sim, cluster, step)
        except InjectedCrash:
            break
        except Exception as exc:  # noqa: BLE001
            if plan.crashed:
                break  # downstream wreckage of the injected crash
            violations.append(
                f"step {step.name!r} failed without a crash: {exc!r}")
            break
        if plan.crashed:
            break  # fired in a background thread during this step
        completed += 1

    if plan.crashed:
        # Let the victim's leases expire so the survivor can take over.
        sim.run(until=sim.now + 2 * cluster.params.lease_period
                + FENCE_MARGIN_S)

    fs = SyncFS(survivor, ROOT_CREDS)

    # Production recovery path: acquiring each directory's lease replays
    # its journal. Walking the tree also proves every file is readable.
    try:
        _walk(fs, "/")
    except Exception as exc:  # noqa: BLE001
        violations.append(f"survivor namespace walk failed: {exc!r}")

    # Journals of directories the walk cannot reach (none in the shipped
    # workloads, but a cheap safety net for custom ones).
    try:
        _recover_residual(sim, cluster, survivor)
    except Exception as exc:  # noqa: BLE001
        violations.append(f"residual journal replay failed: {exc!r}")

    # Quiesce the survivor so fsck sees a settled store.
    sim.run_process(survivor.sync(), name="survivor.sync")
    sim.run(until=sim.now + 3.0)

    report = sim.run_process(
        fsck(cluster.prt, src=survivor.node, after_crash=True), name="fsck")
    violations.extend(f"fsck: {e}" for e in report.errors)

    # Durability milestones: a step that returned before the crash (its
    # last counted op <= k-1, i.e. k > milestone) promised durability.
    for step, m in zip(workload.steps, milestones):
        if step.durable is None or k <= m:
            continue
        try:
            step.durable(fs)
        except AssertionError as exc:
            violations.append(
                f"durability of completed step {step.name!r} broken: {exc}")
        except Exception as exc:  # noqa: BLE001
            violations.append(
                f"durability check for {step.name!r} errored: {exc!r}")

    if workload.invariants is not None:
        try:
            workload.invariants(fs, violations)
        except Exception as exc:  # noqa: BLE001
            violations.append(f"invariant check errored: {exc!r}")

    violations.extend(plan.violations)
    _drain_breaches(cluster, violations)
    flight = None
    if violations:
        rec = sim._recorder
        if rec is not None:
            flight = rec.to_dict()
    return CrashPointResult(index=k, fired=plan.crashed,
                            completed_steps=completed,
                            violations=violations, flight=flight)


def _walk(fs: SyncFS, path: str) -> None:
    for name in sorted(fs.readdir(path)):
        sub = (path.rstrip("/") + "/" + name)
        st = fs.lstat(sub)
        if st.is_dir:
            _walk(fs, sub)
        elif st.is_file:
            fs.read_file(sub)


def _recover_residual(sim: Simulator, cluster, survivor) -> None:
    keys = sim.run_process(
        cluster.store.list("j", src=survivor.node), name="scan-j")
    dir_inos = {int(key[1:].partition("/")[0], 16) for key in keys}
    for dir_ino in sorted(dir_inos):
        sim.run_process(
            recover_directory(cluster.prt, dir_ino, src=survivor.node),
            name=f"residual-recover:{dir_ino:x}")


def sweep(workload_name: str, stride: int = 1,
          limit: Optional[int] = None, bug: Optional[str] = None,
          progress: Optional[Callable[[str], None]] = None) -> CrashCheckReport:
    """Profile the workload, then check a (strided, bounded) set of its
    crash points. ``stride=1, limit=None`` is the exhaustive sweep."""
    workload = WORKLOADS[workload_name]()
    total, milestones, failure = profile(workload, bug=bug)
    report = CrashCheckReport(workload=workload_name, total_ops=total,
                              profile_failure=failure)
    points = list(range(1, total + 1, max(1, stride)))
    if limit is not None:
        points = points[:limit]
    for i, k in enumerate(points):
        if progress is not None and i % 25 == 0:
            progress(f"crash point {k}/{total} "
                     f"({i + 1}/{len(points)} checked)")
        report.points.append(check_point(workload, k, milestones, bug=bug))
    return report


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.faults.crashcheck",
        description="Exhaustive crash-consistency sweep over ArkFS "
                    "store operations.")
    ap.add_argument("--workload", choices=sorted(WORKLOADS),
                    default="rename")
    ap.add_argument("--stride", type=int, default=1,
                    help="check every Nth crash point (default: all)")
    ap.add_argument("--limit", type=int, default=None,
                    help="check at most this many crash points")
    ap.add_argument("--bug", choices=sorted(SEEDED_BUGS), default=None,
                    help="seed a deliberate recovery bug (the sweep "
                         "should then FAIL)")
    ap.add_argument("--flight", default="crashcheck_flight.json",
                    metavar="PATH",
                    help="where to write flight-recorder dumps of failing "
                         "crash points (default: %(default)s)")
    args = ap.parse_args(argv)
    report = sweep(args.workload, stride=args.stride, limit=args.limit,
                   bug=args.bug, progress=lambda msg: print(f"  {msg}"))
    print(report.summary())
    if not report.ok and args.flight:
        dumps = [{"crash_at_op": r.index, "flight": r.flight}
                 for r in report.points if r.violations]
        with open(args.flight, "w") as f:
            f.write(json.dumps(
                {"workload": report.workload, "points": dumps},
                allow_nan=False))
        print(f"  flight-recorder dumps of {len(dumps)} failing point(s) "
              f"written to {args.flight}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
