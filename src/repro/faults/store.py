"""An object-store wrapper that injects the faults a :class:`FaultPlan` asks for.

Sits directly beneath the PRT (``build_arkfs(faults=plan)`` installs it
around whichever backend the cluster uses), so every store operation of
every client flows through :meth:`FaultPlan.before_op` — which is what
makes "the Nth store operation" a well-defined, replayable crash point.

Batched operations are decomposed into per-item operations here (each item
consults the plan, then hits the backend individually), so a crash point
can land *between* the items of a scatter-gather batch — exactly the
non-atomicity a real batch PUT against S3/RADOS exposes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..objectstore.base import ObjectStore
from ..objectstore.errors import NoSuchKey, TransientError
from ..sim.engine import SimGen
from ..sim.network import Node
from .plan import FaultPlan

__all__ = ["FaultyObjectStore"]


class FaultyObjectStore(ObjectStore):
    """Wraps any :class:`ObjectStore`, consulting a plan before every op.

    Adds no simulation events of its own: a plan that injects nothing
    leaves event order and timing identical to the bare backend (batched
    ops excepted — see module docstring — which is why bit-identical
    no-fault runs simply omit the wrapper)."""

    def __init__(self, inner: ObjectStore, plan: FaultPlan):
        self.inner = inner
        self.sim = inner.sim
        self.plan = plan

    def __getattr__(self, name):
        # sync_* helpers, usage(), op_counts, osds, ... delegate untouched.
        return getattr(self.inner, name)

    def __contains__(self, key: str) -> bool:
        return key in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    # -- single-key operations ------------------------------------------------

    def get(self, key: str, src: Optional[Node] = None) -> SimGen:
        self.plan.before_op("get", key, src)
        return (yield from self.inner.get(key, src=src))

    def get_range(self, key: str, offset: int, length: int,
                  src: Optional[Node] = None) -> SimGen:
        self.plan.before_op("get", key, src)
        return (yield from self.inner.get_range(key, offset, length, src=src))

    def put(self, key: str, data: bytes, src: Optional[Node] = None) -> SimGen:
        self.plan.before_op("put", key, src)
        yield from self.inner.put(key, data, src=src)
        self.plan.note_put(key, data, created=True)

    def delete(self, key: str, src: Optional[Node] = None) -> SimGen:
        self.plan.before_op("delete", key, src)
        yield from self.inner.delete(key, src=src)
        self.plan.note_delete(key)

    def head(self, key: str, src: Optional[Node] = None) -> SimGen:
        self.plan.before_op("head", key, src)
        return (yield from self.inner.head(key, src=src))

    def list(self, prefix: str, src: Optional[Node] = None) -> SimGen:
        self.plan.before_op("list", prefix, src)
        return (yield from self.inner.list(prefix, src=src))

    def put_if_absent(self, key: str, data: bytes,
                      src: Optional[Node] = None) -> SimGen:
        self.plan.before_op("put", key, src)
        created = yield from self.inner.put_if_absent(key, data, src=src)
        self.plan.note_put(key, data, created=created)
        return created

    # -- batched operations ----------------------------------------------------
    #
    # Decomposed per item through our own single-op wrappers (the base-class
    # defaults fan them out as concurrent processes), so per-op faults apply
    # inside batches and partial batch application is expressible.

    def put_many(self, items: Sequence[Tuple[str, bytes]],
                 src: Optional[Node] = None) -> SimGen:
        partial = self.plan.before_batch_put(len(items), src)
        if partial is not None:
            # Non-atomic batch PUT: a prefix of the items lands, the rest
            # don't, and the caller sees a retryable failure. Re-putting the
            # whole batch is idempotent, so a retrying caller converges.
            for key, data in items[:partial]:
                yield from self.put(key, data, src=src)
            raise TransientError(
                f"injected batch PUT failure: {partial}/{len(items)} "
                f"items applied")
        yield from ObjectStore.put_many(self, items, src=src)

    # get_many / delete_many inherit the base-class per-item fan-out, which
    # routes through our wrapped get()/delete() above.

    def delete_prefix(self, prefix: str, src: Optional[Node] = None) -> SimGen:
        keys: List[str] = yield from self.list(prefix, src=src)
        n = yield from self.delete_many(keys, src=src)
        return n

    def exists(self, key: str, src: Optional[Node] = None) -> SimGen:
        try:
            yield from self.head(key, src=src)
        except NoSuchKey:
            return False
        return True
