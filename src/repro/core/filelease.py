"""Read/write leases on file data (Section III-D).

Unlike metatable leases (issued by the lease manager), read/write leases on
a file's data are issued by the leader of the file's parent directory.
Every opener starts with a shared read lease and may cache data objects.
The first write upgrades to an exclusive write lease if nobody else holds a
lease; otherwise the leader broadcasts cache-flush requests and switches the
file to *direct* mode, where clients bypass their caches and perform I/O
straight against object storage.

A per-file version number lets clients that missed a revocation broadcast
(their lease had lapsed) detect staleness on re-grant and invalidate their
cache instead of serving stale bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from ..sim.engine import SimGen, Simulator
from ..sim.network import NodeDown

__all__ = ["FileLeaseGrant", "FileLeaseService", "READ", "WRITE", "DIRECT"]

READ = "r"
WRITE = "w"
DIRECT = "direct"


@dataclass(frozen=True)
class FileLeaseGrant:
    ino: int
    mode: str           # "r", "w", or "direct"
    version: int
    expires_at: float


@dataclass
class _FileState:
    holders: Dict[str, Tuple[str, float]] = field(default_factory=dict)
    version: int = 0
    direct: bool = False


class FileLeaseService:
    """Leader-side lease table for the files in directories this client leads.

    ``revoke_cb(holder_name, ino, deleted)`` is provided by the owning
    client: it flushes + invalidates the holder's cache for ``ino``
    (locally for the leader itself, by RPC for remote holders).
    ``deleted`` tells the holder the file is being unlinked rather than
    handed off, so its pack layer retires the extents instead of
    publishing them.
    """

    def __init__(self, sim: Simulator, lease_period: float,
                 revoke_cb: Callable[[str, int], SimGen]):
        self.sim = sim
        self.lease_period = lease_period
        self.revoke_cb = revoke_cb
        self.files: Dict[int, _FileState] = {}
        self.stats = {"grants": 0, "upgrades": 0, "revocations": 0,
                      "direct_demotions": 0}

    def _state(self, ino: int) -> _FileState:
        st = self.files.get(ino)
        if st is None:
            st = _FileState()
            self.files[ino] = st
        return st

    def _prune(self, st: _FileState, ino: Optional[int] = None) -> SimGen:
        """Drop expired holders; expired *writers* are revoked (flushed)
        first so their write-back data reaches storage before anyone else
        is granted a lease over it."""
        now = self.sim.now
        for c, (mode, exp) in list(st.holders.items()):
            if exp > now:
                continue
            if mode == WRITE and ino is not None:
                self.stats["revocations"] += 1
                rec = self.sim._recorder
                if rec is not None:
                    rec.record("lease.revoke", ino=ino, holder=c,
                               expired=True)
                try:
                    yield from self.revoke_cb(c, ino)
                except NodeDown:
                    pass  # crashed writer: directory-lease fencing covers it
            del st.holders[c]
        if st.direct and not st.holders:
            # Everyone left: the file can be cached again (fresh version).
            st.direct = False
            st.version += 1

    def _revoke_all(self, st: _FileState, ino: int, but: str,
                    deleted: bool = False) -> SimGen:
        rec = self.sim._recorder
        for holder in list(st.holders):
            if holder == but:
                continue
            self.stats["revocations"] += 1
            if rec is not None:
                rec.record("lease.revoke", ino=ino, holder=holder,
                           deleted=deleted)
            try:
                yield from self.revoke_cb(holder, ino, deleted)
            except NodeDown:
                # Dead holder: its lease will lapse; fencing at the
                # directory-lease level guarantees it cannot resurface
                # with stale cached data past expiry.
                pass
            mode, exp = st.holders.get(holder, (None, 0.0))
            if mode is not None:
                st.holders[holder] = (READ, exp)  # writers demoted

    # -- the protocol -------------------------------------------------------------

    def acquire(self, ino: int, client: str, mode: str) -> SimGen:
        """Grant (or renew) a lease. Yields for revocation broadcasts."""
        if mode not in (READ, WRITE):
            raise ValueError(f"bad lease mode {mode!r}")
        st = self._state(ino)
        yield from self._prune(st, ino)
        exp = self.sim.now + self.lease_period
        self.stats["grants"] += 1

        if st.direct:
            st.holders[client] = (READ, exp)
            return FileLeaseGrant(ino, DIRECT, st.version, exp)

        if mode == READ:
            # Readers may share; an active writer must flush first so the
            # reader never sees stale storage.
            writers = [c for c, (m, _e) in st.holders.items()
                       if m == WRITE and c != client]
            if writers:
                yield from self._revoke_all(st, ino, but=client)
            cur = st.holders.get(client)
            kept = WRITE if cur and cur[0] == WRITE else READ
            st.holders[client] = (kept, exp)
            return FileLeaseGrant(ino, kept, st.version, exp)

        # WRITE upgrade path.
        others = [c for c in st.holders if c != client]
        if not others:
            self.stats["upgrades"] += 1
            st.version += 1
            st.holders[client] = (WRITE, exp)
            return FileLeaseGrant(ino, WRITE, st.version, exp)
        # Conflict: flush everyone, go direct (Section III-D).
        yield from self._revoke_all(st, ino, but=client)
        st.direct = True
        st.version += 1
        self.stats["direct_demotions"] += 1
        st.holders[client] = (READ, exp)
        return FileLeaseGrant(ino, DIRECT, st.version, exp)

    def _drop_expired_readers(self, st: _FileState) -> None:
        now = self.sim.now
        for c, (mode, exp) in list(st.holders.items()):
            if exp <= now and mode == READ:
                del st.holders[c]
        if st.direct and not st.holders:
            st.direct = False
            st.version += 1

    def release(self, ino: int, client: str) -> None:
        st = self.files.get(ino)
        if st is None:
            return
        st.holders.pop(client, None)
        self._drop_expired_readers(st)
        # Only garbage-collect never-written files: once the version has
        # advanced it must survive, or a returning client could match a
        # freshly-reset version 0 against its stale cached copy.
        if not st.holders and not st.direct and st.version == 0:
            del self.files[ino]

    def forget_file(self, ino: int) -> None:
        """File deleted: drop its lease state."""
        self.files.pop(ino, None)

    def holder_count(self, ino: int) -> int:
        st = self.files.get(ino)
        if st is None:
            return 0
        now = self.sim.now
        return sum(1 for _m, exp in st.holders.values() if exp > now)

    def is_direct(self, ino: int) -> bool:
        st = self.files.get(ino)
        return bool(st and st.direct)
