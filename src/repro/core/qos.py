"""Multi-tenant QoS plane: token buckets, weighted fair queueing, admission.

ArkFS is shared archival infrastructure: thousands of tenants funnel
through a handful of OSD queues and one lease-manager CPU, and a single
aggressive tenant can otherwise starve everyone (ROADMAP item 2; CFS and
λFS in PAPERS.md make the same argument for container and serverless
tenants). This module supplies the three classic mechanisms:

* :class:`TokenBucket` — per-tenant rate limiting for metadata ops/s and
  data bytes/s with a configurable burst. Borrow semantics: a request is
  always charged immediately and the caller sleeps off any deficit, so
  for costs ≤ burst the service observed over any window ``(t0, t1]``
  never exceeds ``rate × (t1 - t0) + burst``.
* :class:`WFQResource` — a drop-in :class:`~repro.sim.resources.Resource`
  whose queue is ordered by start-time fair queueing (SFQ) finish tags
  instead of FIFO. Per-tenant order is preserved (tags within a tenant
  are strictly increasing) while backlogged tenants share capacity in
  proportion to their weights. Used for the OSD service queues and the
  lease-manager CPU when ``qos_enabled``.
* :class:`QosManager` — pure cluster bookkeeping (no events of its own,
  like ``FencingRegistry``): tenant registry, weights, buckets, bounded
  per-tenant in-flight ops. Admission overflow raises :class:`TenantBusy`
  (EAGAIN) which the client surfaces through its retry policy.

Everything here is built only when ``ArkFSParams.qos_enabled`` is True;
the default-off configuration leaves ``client.qos``/``store.qos``/
``manager.qos`` as ``None`` and is pinned bit-identical by
``tests/core/test_qos_off_identity.py``.
"""

from __future__ import annotations

import errno as _errno
import heapq
from typing import Callable, Dict, List, Optional, Tuple

from ..posix.errors import FSError
from ..sim.engine import SimGen, Simulator, SimulationError
from ..sim.resources import Request, Resource, _PENDING

__all__ = [
    "QosManager",
    "TenantBusy",
    "TokenBucket",
    "WFQRequest",
    "WFQResource",
]


class TenantBusy(FSError):
    """Admission control rejected the op: tenant at max in-flight ops.

    EAGAIN-style backpressure — transient by construction, retried through
    the client's :class:`~repro.core.retry.RetryPolicy`.
    """

    errno = _errno.EAGAIN


class TokenBucket:
    """Classic token bucket with borrow semantics and an explicit clock.

    The bucket never blocks by itself: :meth:`delay_for` charges ``cost``
    tokens at time ``now`` and returns how long the caller must sleep
    before proceeding (0.0 when the bucket covers the cost). Clock-free so
    property tests can drive it directly; in the sim the caller passes
    ``sim.now``.
    """

    __slots__ = ("rate", "burst", "level", "last")

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise SimulationError("token bucket rate/burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.level = float(burst)
        self.last = 0.0

    def delay_for(self, cost: float, now: float) -> float:
        """Charge ``cost`` tokens; return seconds to wait before proceeding."""
        if now > self.last:
            lvl = self.level + (now - self.last) * self.rate
            self.level = lvl if lvl < self.burst else self.burst
            self.last = now
        self.level -= cost
        if self.level >= 0.0:
            return 0.0
        return -self.level / self.rate


class WFQRequest(Request):
    """A tenant-tagged claim on a :class:`WFQResource` slot."""

    __slots__ = ("tenant", "cost", "start", "finish")

    def __init__(self, resource: "WFQResource"):
        super().__init__(resource)
        self.tenant: Optional[str] = None
        self.cost = 0.0
        self.start = 0.0
        self.finish = 0.0


class WFQResource(Resource):
    """Start-time fair queueing (SFQ) replacement for a FIFO Resource.

    Each queued request carries a virtual *finish tag*
    ``start + cost / weight(tenant)`` with
    ``start = max(vtime, last_finish[tenant])``; the queue grants the
    smallest finish tag first and advances virtual time to the dispatched
    request's start tag. Two consequences, both property-tested:

    * tags within one tenant are strictly increasing, so per-tenant FIFO
      order is preserved;
    * continuously-backlogged tenants receive capacity in proportion to
      their weights.

    Untagged :meth:`request`/:meth:`use` calls (and internal pooled
    requests) map to the default tenant ``None`` at cost 1.0, so code that
    is unaware of tenants keeps working against a WFQResource.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 1,
        name: str = "",
        weight_of: Optional[Callable[[Optional[str]], float]] = None,
    ):
        super().__init__(sim, capacity=capacity, name=name)
        self._weight_of = weight_of
        self._vtime = 0.0
        self._last_finish: Dict[Optional[str], float] = {}
        self._heap: List[Tuple[float, int, WFQRequest]] = []
        self._seq = 0

    @property
    def queue_length(self) -> int:
        return sum(1 for _, _, r in self._heap if not r.cancelled)

    def _tag(self, req: WFQRequest, tenant: Optional[str], cost: float) -> None:
        w = 1.0
        if self._weight_of is not None:
            w = self._weight_of(tenant) or 1.0
        start = self._vtime
        last = self._last_finish.get(tenant)
        if last is not None and last > start:
            start = last
        finish = start + cost / w
        self._last_finish[tenant] = finish
        req.tenant = tenant
        req.cost = cost
        req.start = start
        req.finish = finish

    def request_wfq(self, tenant: Optional[str], cost: float = 1.0) -> WFQRequest:
        req = WFQRequest(self)
        self._tag(req, tenant, cost)
        if self._in_use < self.capacity and not self._heap:
            if req.start > self._vtime:
                self._vtime = req.start
            self._grant(req)
        else:
            self._seq += 1
            heapq.heappush(self._heap, (req.finish, self._seq, req))
        return req

    def request(self) -> WFQRequest:
        return self.request_wfq(None, 1.0)

    # ``Resource.use`` recycles plain Requests through a freelist; tags
    # would go stale on reuse, so the WFQ variant just allocates.
    def _request_pooled(self) -> WFQRequest:
        return self.request_wfq(None, 1.0)

    def release(self, req: Request) -> None:
        if not req.granted:
            if req.cancelled or req._value is not _PENDING:
                raise SimulationError("releasing a request never granted/queued")
            # Lazy cancellation, as in the base class: the grant loop skips
            # cancelled entries when they surface at the top of the heap.
            req.cancelled = True
            return
        req.granted = False
        self._in_use -= 1
        heap = self._heap
        while heap and self._in_use < self.capacity:
            _, _, nxt = heapq.heappop(heap)
            if nxt.cancelled:
                continue
            if nxt.start > self._vtime:
                self._vtime = nxt.start
            self._grant(nxt)

    def use_wfq(self, hold_time: float, tenant: Optional[str],
                cost: Optional[float] = None) -> SimGen:
        """Tenant-tagged acquire / hold / release (cf. ``Resource.use``)."""
        sim = self.sim
        req = self.request_wfq(tenant, hold_time if cost is None else cost)
        tr = sim._tracer
        if tr is not None and not req.granted:
            with tr.span(self._wait_name, "queue"):
                yield req
        else:
            yield req
        try:
            if hold_time > 0:
                yield sim.timeout(hold_time)
        finally:
            self.release(req)


class _TenantState:
    __slots__ = ("tenant", "weight", "ops", "bytes", "inflight")

    def __init__(self, tenant: Optional[str], weight: float,
                 ops: TokenBucket, bytes_: TokenBucket):
        self.tenant = tenant
        self.weight = weight
        self.ops = ops
        self.bytes = bytes_
        self.inflight = 0


class QosManager:
    """Cluster-wide tenant registry, rate limits, and admission control.

    Pure bookkeeping — schedules no events of its own (the
    ``FencingRegistry`` pattern); the throttle generators yield at most one
    timeout and only when a bucket is in deficit, so an under-limit tenant
    pays zero events.
    """

    def __init__(self, sim: Simulator, params) -> None:
        self.sim = sim
        self.params = params
        self._tenants: Dict[Optional[str], _TenantState] = {}
        self._client_tenant: Dict[str, str] = {}
        from ..obs import Observability

        registry = Observability.of(sim).metrics
        self.metrics = registry
        scope = registry.scope("qos")
        self._c_admitted = scope.counter("admitted")
        self._c_busy = scope.counter("busy")
        self._c_throttle_ops = scope.counter("throttle_ops")
        self._c_throttle_bytes = scope.counter("throttle_bytes")
        self._h_wait = scope.histogram("throttle_wait")
        self._tenant_hists: Dict[Tuple[str, str], object] = {}

    # -- tenant registry --------------------------------------------------

    def state(self, tenant: Optional[str]) -> _TenantState:
        st = self._tenants.get(tenant)
        if st is None:
            p = self.params
            st = _TenantState(
                tenant,
                p.qos_default_weight,
                TokenBucket(p.qos_ops_rate, p.qos_ops_burst),
                TokenBucket(p.qos_bytes_rate, p.qos_bytes_burst),
            )
            self._tenants[tenant] = st
        return st

    def register_client(self, client_name: str, tenant: str,
                        weight: Optional[float] = None) -> None:
        """Bind ``client_name`` to ``tenant`` (for lease-RPC attribution)."""
        self._client_tenant[client_name] = tenant
        st = self.state(tenant)
        if weight is not None:
            st.weight = float(weight)

    def set_weight(self, tenant: str, weight: float) -> None:
        self.state(tenant).weight = float(weight)

    def tenant_of(self, client_name: Optional[str]) -> Optional[str]:
        if client_name is None:
            return None
        return self._client_tenant.get(client_name, client_name)

    def weight_of(self, tenant: Optional[str]) -> float:
        st = self._tenants.get(tenant)
        return st.weight if st is not None else self.params.qos_default_weight

    # -- admission + throttling -------------------------------------------

    def enter_op(self, tenant: Optional[str]) -> SimGen:
        """Admit one metadata op: bounded in-flight, then the ops bucket.

        Raises :class:`TenantBusy` *before* claiming an in-flight slot when
        the tenant is at its cap; the caller retries with backoff. On
        success the slot is held until :meth:`exit_op`, including across
        the throttle sleep (queued-but-throttled ops count as in flight).
        """
        st = self.state(tenant)
        if st.inflight >= self.params.qos_max_inflight:
            self._c_busy.inc()
            raise TenantBusy(tenant or "?", "max in-flight ops reached")
        st.inflight += 1
        self._c_admitted.inc()
        delay = st.ops.delay_for(1.0, self.sim.now)
        if delay > 0.0:
            self._c_throttle_ops.inc()
            self._h_wait.observe(delay)
            yield self.sim.timeout(delay)

    def exit_op(self, tenant: Optional[str]) -> None:
        st = self.state(tenant)
        # Clamped: a crashed client may have reset this tenant already.
        if st.inflight > 0:
            st.inflight -= 1

    def throttle_bytes(self, tenant: Optional[str], nbytes: int) -> SimGen:
        """Charge ``nbytes`` to the tenant's data bucket, sleeping off any
        deficit. Zero events when the tenant is under its rate."""
        if nbytes <= 0:
            return
        st = self.state(tenant)
        delay = st.bytes.delay_for(float(nbytes), self.sim.now)
        if delay > 0.0:
            self._c_throttle_bytes.inc()
            self._h_wait.observe(delay)
            yield self.sim.timeout(delay)

    def release_tenant(self, tenant: Optional[str]) -> None:
        """Drop all in-flight accounting for ``tenant`` (client crash):
        abandoned generators never reach their ``exit_op``."""
        st = self._tenants.get(tenant)
        if st is not None:
            st.inflight = 0

    # -- per-tenant metrics ------------------------------------------------

    def tenant_histogram(self, tenant: Optional[str], name: str = "lat"):
        """Lazily-created per-tenant histogram (``tenant.<tid>.<name>``)."""
        key = (tenant or "?", name)
        h = self._tenant_hists.get(key)
        if h is None:
            h = self.metrics.histogram(f"tenant.{key[0]}.{name}")
            self._tenant_hists[key] = h
        return h

    def observe_op(self, tenant: Optional[str], seconds: float,
                   name: str = "md_lat") -> None:
        self.tenant_histogram(tenant, name).observe(seconds)
