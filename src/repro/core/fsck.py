"""fsck — offline consistency checker for an ArkFS object layout.

Scans the flat object store and validates the invariants the PRT layout
promises (run it on a *quiesced* file system: journals flushed, caches
written back — e.g. after ``client.sync()`` plus checkpoint drain):

* the root inode exists;
* every dentry references an existing inode of the matching type;
* every inode except the root is referenced by exactly one dentry
  (no orphans, no double links — ArkFS has no hard links);
* directory nlink equals 2 + number of child directories;
* file sizes are consistent with their data objects: no object extends
  past EOF, no data object belongs to a nonexistent inode;
* packed extents are sound: every extent index belongs to an existing
  file, references an existing container within its bounds, and no chunk
  has both a packed extent and a plain data object; containers nobody
  references are garbage, and mostly-dead containers (live ratio below
  ``pack_live_warn``) are flagged as compaction debt;
* shard maps are sound: every map belongs to an existing directory, every
  shard-range dentry hashes into its shard's range (the map is a total
  partition), and an *active* map coexists with no parent-range dentries —
  there is exactly one authoritative layout;
* no journal transactions remain (a dirty journal on a quiet system means
  an unrecovered crash);
* leftover 2PC decision records are reported (harmless garbage, but worth
  surfacing).

Besides being a shippable admin tool, the test suite uses it as an oracle:
stress tests end with ``assert fsck(...).clean``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..posix.types import FileType
from ..sim.engine import SimGen
from ..sim.network import Node
from .prt import PRT
from .shards import ShardMap
from .types import Dentry, Inode, ROOT_INO, ino_hex

__all__ = ["FsckReport", "fsck"]


@dataclass
class FsckReport:
    """The checker's findings."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    n_inodes: int = 0
    n_dentries: int = 0
    n_data_objects: int = 0
    n_containers: int = 0
    n_extents: int = 0

    @property
    def clean(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.errors)} ERRORS"
        lines = [f"fsck: {status} — {self.n_inodes} inodes, "
                 f"{self.n_dentries} dentries, "
                 f"{self.n_data_objects} data objects, "
                 f"{self.n_containers} containers, "
                 f"{self.n_extents} extents"]
        lines += [f"  ERROR: {e}" for e in self.errors]
        lines += [f"  warn:  {w}" for w in self.warnings]
        return "\n".join(lines)


def fsck(prt: PRT, src: Optional[Node] = None,
         after_crash: bool = False, pack_live_warn: float = 0.5) -> SimGen:
    """Run the full consistency scan; returns an :class:`FsckReport`.

    ``after_crash=True`` relaxes exactly the checks a crash is *allowed*
    to violate: data objects belonging to no inode, and data past EOF.
    Both are garbage a crashed client legitimately leaves behind (a data
    PUT whose metadata commit never happened, or an interrupted async
    purge) — cleanup fodder, not corruption. Everything the journal/2PC
    machinery promises (namespace integrity, nlink, no leftover journal
    transactions after recovery) stays a hard error.
    """
    report = FsckReport()
    store = prt.store
    keys = yield from store.list("", src=src)

    inodes: Dict[int, Inode] = {}
    dentries: List[tuple] = []         # (dir_ino, Dentry)
    data_owners: Dict[int, List[int]] = {}   # file ino -> [object indices]
    data_sizes: Dict[tuple, int] = {}
    containers: Dict[str, int] = {}          # pack id -> container size
    extent_maps: Dict[int, dict] = {}        # file ino -> {idx: PackExtent}
    shard_maps: Dict[int, ShardMap] = {}     # parent dir ino -> map
    journal_keys: List[str] = []
    decision_keys: List[str] = []

    for key in keys:
        kind = key[0]
        if kind == "i":
            raw = yield from store.get(key, src=src)
            try:
                inode = Inode.from_bytes(raw)
            except Exception:
                report.errors.append(f"unparseable inode object {key}")
                continue
            if ino_hex(inode.ino) != key[1:]:
                report.errors.append(
                    f"inode object {key} claims ino {inode.ino:x}")
            inodes[inode.ino] = inode
        elif kind == "e":
            dir_hex, _sep, name = key[1:].partition("/")
            raw = yield from store.get(key, src=src)
            try:
                dentry = Dentry.from_bytes(raw)
            except Exception:
                report.errors.append(f"unparseable dentry object {key}")
                continue
            if dentry.name != name:
                report.errors.append(
                    f"dentry key {key} holds name {dentry.name!r}")
            dentries.append((int(dir_hex, 16), dentry))
        elif kind == "d":
            ino_part, _sep, idx = key[1:].partition("/")
            ino = int(ino_part, 16)
            data_owners.setdefault(ino, []).append(int(idx))
            size = yield from store.head(key, src=src)
            data_sizes[(ino, int(idx))] = size
        elif kind == "p":
            size = yield from store.head(key, src=src)
            containers[key[1:]] = size
        elif kind == "x":
            raw = yield from store.get(key, src=src)
            try:
                extents = PRT.parse_extent_index(raw)
            except Exception:
                report.errors.append(f"unparseable extent index {key}")
                continue
            extent_maps[int(key[1:], 16)] = extents
        elif kind == "s":
            raw = yield from store.get(key, src=src)
            try:
                smap = ShardMap.from_bytes(raw)
            except Exception:
                report.errors.append(f"unparseable shard map {key}")
                continue
            if ino_hex(smap.dir_ino) != key[1:]:
                report.errors.append(
                    f"shard map {key} claims dir {smap.dir_ino:x}")
            shard_maps[smap.dir_ino] = smap
        elif kind == "j":
            journal_keys.append(key)
        elif kind == "t":
            decision_keys.append(key)

    report.n_inodes = len(inodes)
    report.n_dentries = len(dentries)
    report.n_data_objects = sum(len(v) for v in data_owners.values())
    report.n_containers = len(containers)
    report.n_extents = sum(len(m) for m in extent_maps.values())

    # -- shard maps ------------------------------------------------------------
    # A sharded directory's dentries live in its shards' key ranges; for the
    # graph checks below they are attributed back to the parent. There must
    # be exactly one authoritative layout: an *active* map means the parent
    # range is retired (any parent-range dentry is corruption), a
    # *splitting* map means the parent range is authoritative (shard-range
    # copies are mid-migration shadows, ignored for refcounting).
    shard_parent: Dict[int, tuple] = {}      # shard ino -> (parent, map)
    for pino, smap in sorted(shard_maps.items()):
        parent = inodes.get(pino)
        if parent is None:
            report.errors.append(f"shard map for nonexistent dir {pino:x}")
        elif not parent.is_dir:
            report.errors.append(f"shard map under non-directory {pino:x}")
        if not smap.active:
            (report.warnings if after_crash else report.errors).append(
                f"dir {pino:x}: shard map left in state 'splitting'"
                " (interrupted split; parent range authoritative)")
        for r in smap.shards:
            shard_parent[r.ino] = (pino, smap)

    # -- the namespace graph ---------------------------------------------------
    if ROOT_INO not in inodes:
        report.errors.append("root inode missing")
    refcount: Dict[int, int] = {}
    subdir_count: Dict[int, int] = {}
    for dir_ino, dentry in dentries:
        sp = shard_parent.get(dir_ino)
        if sp is not None:
            pino, smap = sp
            if smap.route(dentry.name) != dir_ino:
                report.errors.append(
                    f"dentry {dentry.name!r} in the wrong shard of dir "
                    f"{pino:x} (total hash partition violated)")
            if not smap.active:
                continue  # mid-split shadow copy; the parent range counts
            dir_ino = pino
        else:
            smap = shard_maps.get(dir_ino)
            if smap is not None and smap.active:
                report.errors.append(
                    f"dir {dir_ino:x}: parent-range dentry "
                    f"{dentry.name!r} survived an active split")
                continue  # shard copy is the authoritative reference
        if dir_ino not in inodes:
            report.errors.append(
                f"dentry {dentry.name!r} under nonexistent dir "
                f"{dir_ino:x}")
        elif not inodes[dir_ino].is_dir:
            report.errors.append(
                f"dentry {dentry.name!r} under non-directory {dir_ino:x}")
        child = inodes.get(dentry.ino)
        if child is None:
            report.errors.append(
                f"dentry {dentry.name!r} points to missing inode "
                f"{dentry.ino:x}")
            continue
        if child.ftype is not dentry.ftype:
            report.errors.append(
                f"dentry {dentry.name!r} type {dentry.ftype.value} != "
                f"inode type {child.ftype.value}")
        refcount[dentry.ino] = refcount.get(dentry.ino, 0) + 1
        if dentry.ftype is FileType.DIRECTORY:
            subdir_count[dir_ino] = subdir_count.get(dir_ino, 0) + 1

    for ino, inode in inodes.items():
        refs = refcount.get(ino, 0)
        if ino == ROOT_INO:
            if refs:
                report.errors.append("the root has a dentry pointing at it")
            continue
        if refs == 0:
            report.errors.append(
                f"orphan inode {ino:x} ({inode.ftype.value})")
        elif refs > 1:
            report.errors.append(
                f"inode {ino:x} referenced by {refs} dentries "
                f"(hard links are unsupported)")

    # -- directory link counts -----------------------------------------------------
    for ino, inode in inodes.items():
        if inode.is_dir:
            smap = shard_maps.get(ino)
            if smap is not None and smap.active:
                # Sharded directories freeze nlink at the split value (a
                # documented relaxation: shards never journal the parent
                # inode, so subdirectory churn stops updating it).
                continue
            expected = 2 + subdir_count.get(ino, 0)
            if inode.nlink != expected:
                report.errors.append(
                    f"dir {ino:x} nlink={inode.nlink}, expected {expected}")

    # -- data objects -----------------------------------------------------------------
    # After a crash, unreferenced/past-EOF data objects are expected garbage
    # (data lands before the metadata commit); report them as warnings so
    # the crash-consistency checker can still demand `clean`.
    data_garbage = (report.warnings.append if after_crash
                    else report.errors.append)
    osz = prt.data_object_size
    for ino, indices in data_owners.items():
        inode = inodes.get(ino)
        if inode is None:
            data_garbage(f"data objects for nonexistent inode {ino:x}")
            continue
        if not inode.is_file:
            report.errors.append(f"data objects under non-file {ino:x}")
            continue
        for idx in indices:
            start = idx * osz
            length = data_sizes[(ino, idx)]
            if start >= inode.size and length > 0:
                data_garbage(
                    f"file {ino:x}: data object {idx} lies past EOF "
                    f"(size {inode.size})")
            elif start + length > inode.size:
                data_garbage(
                    f"file {ino:x}: data object {idx} extends past EOF")

    # -- packed containers & extent indices -------------------------------------------
    # Same crash relaxation as plain data objects: a seal that died between
    # its container PUT and the index commit leaves an unreferenced
    # container; one that died between the index commit and the stale-object
    # purge leaves a chunk with both copies (reads stay correct — the
    # extent wins). Structural breakage (an index under a non-file, an
    # extent past its container's end) stays a hard error.
    live_bytes: Dict[str, int] = {}
    for ino, extents in sorted(extent_maps.items()):
        inode = inodes.get(ino)
        if inode is None:
            data_garbage(f"extent index for nonexistent inode {ino:x}")
            continue
        if not inode.is_file:
            report.errors.append(f"extent index under non-file {ino:x}")
            continue
        for idx, ext in sorted(extents.items()):
            csize = containers.get(ext.pack)
            if csize is None:
                data_garbage(
                    f"file {ino:x}: extent {idx} references missing "
                    f"container {ext.pack}")
                continue
            if ext.offset + ext.length > csize:
                report.errors.append(
                    f"file {ino:x}: extent {idx} extends past the end of "
                    f"container {ext.pack}")
            live_bytes[ext.pack] = live_bytes.get(ext.pack, 0) + ext.length
            start = idx * osz
            if start >= inode.size and ext.length > 0:
                data_garbage(
                    f"file {ino:x}: extent {idx} lies past EOF "
                    f"(size {inode.size})")
            elif start + ext.length > inode.size:
                data_garbage(f"file {ino:x}: extent {idx} extends past EOF")
            if data_sizes.get((ino, idx), 0) > 0:
                data_garbage(
                    f"file {ino:x}: chunk {idx} has both a packed extent "
                    f"and a plain data object")

    for pack_id, csize in sorted(containers.items()):
        live = live_bytes.get(pack_id, 0)
        if live == 0:
            data_garbage(f"container {pack_id} has no referenced extents")
        elif csize > 0 and live / csize < pack_live_warn:
            report.warnings.append(
                f"container {pack_id} live ratio {live / csize:.2f} "
                f"below {pack_live_warn:.2f} (compaction debt)")

    # -- journals & decisions --------------------------------------------------------------
    for key in journal_keys:
        report.errors.append(f"journal transaction left behind: {key}")
    for key in decision_keys:
        report.warnings.append(f"stale 2PC decision record: {key}")

    # -- tiered backend: staged-not-drained objects ----------------------------------------
    # Hot-only state is volatile by contract (durable only once drained to
    # the cold tier); surface it so operators see what a crash would lose.
    # Never an error: nothing above fsync'd data ever stays hot-only.
    dirty_keys = getattr(prt.store, "tier_dirty_keys", None)
    if dirty_keys is not None:
        for key in dirty_keys():
            report.warnings.append(
                f"staged object not yet drained to cold tier: {key}")

    return report
