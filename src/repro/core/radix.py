"""Radix tree indexing cached data objects (Section III-D).

The paper: "Internally, the radix tree is used to index cached data objects.
Due to the large cache entry size, it is very likely to have a shallow depth
allowing for faster lookups." Keys are non-negative object indices within a
file; fanout is 64 (6 bits/level), so files up to 128 GiB of 2 MiB objects
need at most 3 levels.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["RadixTree"]

_BITS = 6
_FANOUT = 1 << _BITS
_MASK = _FANOUT - 1


class _Node:
    __slots__ = ("slots", "count")

    def __init__(self) -> None:
        self.slots: List[Optional[Any]] = [None] * _FANOUT
        self.count = 0


class RadixTree:
    """A radix tree mapping small non-negative integers to values.

    Grows its height lazily as larger keys are inserted; shrinks on delete.
    ``None`` is not a storable value (it marks empty slots).
    """

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._height = 0        # number of levels; 0 = empty tree
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    @property
    def height(self) -> int:
        return self._height

    @staticmethod
    def _levels_for(key: int) -> int:
        levels = 1
        while key >> (_BITS * levels):
            levels += 1
        return levels

    def _grow_to(self, levels: int) -> None:
        while self._height < levels:
            node = _Node()
            if self._root is not None:
                node.slots[0] = self._root
                node.count = 1
            self._root = node
            self._height += 1

    def set(self, key: int, value: Any) -> None:
        if key < 0:
            raise ValueError("radix tree keys must be non-negative")
        if value is None:
            raise ValueError("cannot store None in a radix tree")
        self._grow_to(self._levels_for(key))
        if self._root is None:
            self._root = _Node()
            self._height = 1
        node = self._root
        for level in range(self._height - 1, 0, -1):
            idx = (key >> (_BITS * level)) & _MASK
            child = node.slots[idx]
            if child is None:
                child = _Node()
                node.slots[idx] = child
                node.count += 1
            node = child
        idx = key & _MASK
        if node.slots[idx] is None:
            node.count += 1
            self._size += 1
        node.slots[idx] = value

    def get(self, key: int) -> Optional[Any]:
        if key < 0 or self._root is None:
            return None
        if self._levels_for(key) > self._height:
            return None
        node = self._root
        for level in range(self._height - 1, 0, -1):
            node = node.slots[(key >> (_BITS * level)) & _MASK]
            if node is None:
                return None
        return node.slots[key & _MASK]

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns True if it was present."""
        if key < 0 or self._root is None or self._levels_for(key) > self._height:
            return False
        path: List[Tuple[_Node, int]] = []
        node = self._root
        for level in range(self._height - 1, 0, -1):
            idx = (key >> (_BITS * level)) & _MASK
            child = node.slots[idx]
            if child is None:
                return False
            path.append((node, idx))
            node = child
        idx = key & _MASK
        if node.slots[idx] is None:
            return False
        node.slots[idx] = None
        node.count -= 1
        self._size -= 1
        # Prune empty nodes bottom-up.
        for parent, pidx in reversed(path):
            child = parent.slots[pidx]
            if isinstance(child, _Node) and child.count == 0:
                parent.slots[pidx] = None
                parent.count -= 1
            else:
                break
        if self._size == 0:
            self._root = None
            self._height = 0
        return True

    def items(self) -> Iterator[Tuple[int, Any]]:
        """All (key, value) pairs in ascending key order."""
        if self._root is None:
            return
        yield from self._walk(self._root, self._height - 1, 0)

    def keys(self) -> Iterator[int]:
        for k, _ in self.items():
            yield k

    def _walk(self, node: _Node, level: int, prefix: int) -> Iterator[Tuple[int, Any]]:
        for idx in range(_FANOUT):
            slot = node.slots[idx]
            if slot is None:
                continue
            key = (prefix << _BITS) | idx
            if level == 0:
                yield key, slot
            else:
                yield from self._walk(slot, level - 1, key)

    def clear(self) -> None:
        self._root = None
        self._height = 0
        self._size = 0
