"""Packed small-file containers: log-structured object packing.

ArkFS's headline archiving workloads (Table 2: pftool/tarball ingest)
create thousands of files far smaller than the 2 MB data-object size, and
one PUT per small file bounds ingest throughput by per-object latency
instead of link bandwidth. The :class:`PackWriter` sits beneath the data
object cache: writeback of a chunk smaller than ``pack_threshold`` appends
it to an open log-structured *container* buffer instead of issuing its own
PUT. The container seals — one large PUT of up to ``pack_target_size``
bytes — when it fills or ages out, and the chunks' new homes are recorded
as ``(pack, offset, length)`` extents in each file's **extent index**
(object ``x<uuid>``), persisted through the per-directory journal when
this client leads the file's directory, or an idempotent read-modify-write
on the index object otherwise.

Seal protocol (crash safety — each step is durable before the next):

1. PUT the container object ``p<pack-id>`` (the durability milestone:
   a crash before this loses only unfsynced data, exactly like losing the
   dirty cache);
2. commit the extent-index deltas (journal commit or direct RMW) — a crash
   between 1 and 2 leaves a *dangling container*: unreferenced garbage
   that fsck reports as a post-crash warning and reclaim deletes;
3. delete the stale plain ``d`` objects the packed chunks replaced — a
   crash between 2 and 3 leaves both copies, and reads stay correct
   because the extent index *wins* over a plain object for the same chunk.

Deletes and overwrites punch holes logically: per-container live-byte
accounting feeds a background compactor that rewrites containers whose
live ratio drops below ``pack_compact_live_ratio`` (re-appending the live
extents into the open buffer, then purging the old container), so space
reclamation costs bounded, amortised I/O.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..objectstore.errors import NoSuchKey
from ..obs import Observability
from ..obs.trace import span as _span
from ..sim.engine import Interrupt, SimGen, Simulator
from ..sim.network import Node
from ..sim.resources import Mutex
from .journal import JournalManager, ops_del_extents, ops_set_extents
from .params import ArkFSParams
from .prt import PRT
from .retry import RetryPolicy
from .types import PackExtent

__all__ = ["PackWriter"]


class PackWriter:
    """Per-client log-structured packer for sub-threshold chunks."""

    def __init__(self, sim: Simulator, prt: PRT, journal: JournalManager,
                 node: Optional[Node], params: ArkFSParams,
                 client_name: str, leads, retry: Optional[RetryPolicy] = None):
        """``leads(dir_ino) -> bool`` tells whether this client currently
        leads a directory (extent deltas then ride its journal; otherwise
        they are applied directly to the index object)."""
        self.sim = sim
        self.prt = prt
        self.journal = journal
        self.node = node
        self.params = params
        self.client_name = client_name
        self._leads = leads
        self._retry = retry or RetryPolicy(sim)

        # -- open container buffer -----------------------------------------
        self._buf = bytearray()
        self._buf_dead = 0            # bytes superseded while still buffered
        self._open_since: Optional[float] = None
        # (ino, chunk index) -> (offset, length) inside the open buffer
        self._pending: Dict[Tuple[int, int], Tuple[int, int]] = {}
        # chunks whose stale plain ``d`` object must die after the seal
        self._had_plain: Set[Tuple[int, int]] = set()
        # Container ids must stay unique across crash/restart of this
        # client (old containers may still hold live extents), so the
        # sequence is never reset.
        self._seq = 0

        # -- sealed-state mirrors ------------------------------------------
        # In-memory extent maps (lazily merged with the stored index).
        self._extents: Dict[int, Dict[int, PackExtent]] = {}
        self._index_loaded: Set[int] = set()
        self._dirs: Dict[int, int] = {}          # file ino -> parent dir ino
        # Containers sealed while their PUT is still in flight stay
        # readable from memory (the extent map already points at them).
        self._sealing_bufs: Dict[str, bytes] = {}
        # Live-byte accounting for containers this client sealed. Deaths
        # are reported from several overlapping sources (the holder's
        # revoke-for-delete, the leader's purge reading the stored index,
        # truncate, overwrite), so the ledger is keyed by (ino, chunk) and
        # a death is counted exactly once: a second report of the same
        # chunk is a no-op, never a double decrement (which could drive
        # live to zero and purge a container that still has live bytes).
        self._live_total: Dict[str, int] = {}    # pack id -> container size
        self._live_exts: Dict[str, Dict[Tuple[int, int], int]] = {}

        self._seal_lock = Mutex(sim, name=f"packseal:{client_name}")
        m = Observability.of(sim).metrics.scope(client_name + ".pack")
        self._c_chunks = m.counter("chunks_packed")
        self._c_bytes = m.counter("bytes_packed")
        self._c_seals = m.counter("packs_sealed")
        self._c_buffer_reads = m.counter("buffer_reads")
        self._c_packed_reads = m.counter("packed_reads")
        self._c_dead_bytes = m.counter("dead_bytes")
        self._c_compactions = m.counter("compactions")
        self._c_compacted_bytes = m.counter("compacted_bytes")
        self._c_reclaimed_bytes = m.counter("reclaimed_bytes")
        self._c_containers_purged = m.counter("containers_purged")
        self._g_open_buffer = m.gauge("open_buffer")
        self._ticker = sim.process(self._tick_loop(),
                                   name=f"{client_name}.packer")

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "chunks_packed": self._c_chunks.value,
            "bytes_packed": self._c_bytes.value,
            "packs_sealed": self._c_seals.value,
            "buffer_reads": self._c_buffer_reads.value,
            "packed_reads": self._c_packed_reads.value,
            "dead_bytes": self._c_dead_bytes.value,
            "compactions": self._c_compactions.value,
            "compacted_bytes": self._c_compacted_bytes.value,
            "reclaimed_bytes": self._c_reclaimed_bytes.value,
            "containers_purged": self._c_containers_purged.value,
            "max_open_buffer": self._g_open_buffer.max_value,
        }

    def _call(self, factory) -> SimGen:
        return (yield from self._retry.call(factory))

    # -- bookkeeping hooks (plain functions: safe inside other coroutines) --

    def wants(self, nbytes: int) -> bool:
        """Should this writeback be packed instead of PUT individually?"""
        return 0 < nbytes < self.params.pack_threshold

    def note_file_dir(self, ino: int, dir_ino: int) -> None:
        """Remember a file's parent directory (journal routing for deltas)."""
        self._dirs[ino] = dir_ino

    def _note_dead(self, ino: int, index: int, pack_id: str,
                   keep: int = 0) -> None:
        """Mark a chunk's container bytes dead, exactly once. ``keep``
        leaves that many bytes live (truncate trimming a boundary chunk).
        Containers this client didn't seal are ignored — each client
        reclaims only its own."""
        live = self._live_exts.get(pack_id)
        if live is None:
            return
        key = (ino, index)
        ln = live.get(key)
        if ln is None or ln <= keep:
            return
        if keep > 0:
            live[key] = keep
        else:
            del live[key]
        self._c_dead_bytes.inc(ln - keep)

    def note_dead_extents(self, ino: int, exts: Dict[int, PackExtent]) -> None:
        """A whole file's extents just died (unlink purge read the stored
        index before deleting it)."""
        for idx, ext in exts.items():
            self._note_dead(ino, idx, ext.pack)

    def note_dead_extent(self, ino: int, index: int, ext: PackExtent,
                         keep: int = 0) -> None:
        """One extent died (or was trimmed to ``keep`` bytes): truncate."""
        self._note_dead(ino, index, ext.pack, keep=keep)

    def append(self, ino: int, index: int, data: bytes,
               had_plain: bool = False) -> bool:
        """Log a chunk into the open container buffer (pure memory; the
        caller's writeback turns into a memcpy). Returns True when the
        buffer reached ``pack_target_size`` and should be sealed."""
        key = (ino, index)
        old = self._pending.get(key)
        if old is not None:
            # Same chunk rewritten while still buffered: the old segment
            # becomes dead weight in the log.
            self._buf_dead += old[1]
            self._c_dead_bytes.inc(old[1])
        else:
            ext = self._extents.get(ino, {}).get(index)
            if ext is not None:
                # sealed copy superseded by this rewrite
                self._note_dead(ino, index, ext.pack)
        off = len(self._buf)
        self._buf += data
        self._pending[key] = (off, len(data))
        if had_plain:
            self._had_plain.add(key)
        if self._open_since is None:
            self._open_since = self.sim.now
        self._c_chunks.inc()
        self._c_bytes.inc(len(data))
        self._g_open_buffer.set(len(self._buf))
        return len(self._buf) >= self.params.pack_target_size

    def note_plain_write(self, ino: int, index: int) -> None:
        """A plain ``d`` object was just written for this chunk (it outgrew
        the threshold): any packed copy is now stale and its index entry
        must go, or the extent-wins read rule would serve old bytes."""
        key = (ino, index)
        seg = self._pending.pop(key, None)
        if seg is not None:
            self._buf_dead += seg[1]
            self._c_dead_bytes.inc(seg[1])
            self._had_plain.discard(key)
        ext = self._extents.get(ino, {}).pop(index, None)
        if ext is None and ino not in self._index_loaded:
            # A stored index entry may exist that we never loaded; the
            # delta below handles both cases (deleting a missing entry is
            # a no-op).
            ext_known = False
        else:
            ext_known = ext is not None
        if ext is not None:
            self._note_dead(ino, index, ext.pack)
        if not ext_known and ino in self._index_loaded:
            return  # index known, chunk was never packed: nothing to drop
        dir_ino = self._dirs.get(ino)
        if dir_ino is not None and self._leads(dir_ino):
            self.journal.record(dir_ino, ops_del_extents(ino, [index]))
        else:
            self.sim.process(
                self._call(lambda: self.prt.apply_extent_delta(
                    ino, del_list=[index], src=self.node)),
                name=f"xdel:{ino:x}:{index}")

    def _drop_pending(self, inos) -> None:
        for key in [k for k in self._pending if k[0] in inos]:
            off, ln = self._pending.pop(key)
            self._buf_dead += ln
            self._c_dead_bytes.inc(ln)
            self._had_plain.discard(key)

    def drop_inos(self, inos) -> None:
        """The caller is discarding these files' cached data unflushed
        (lease lapse): buffered segments become dead weight, memory
        extent mirrors are forgotten. The files still exist — their
        *sealed* extents stay live."""
        self._drop_pending(inos)
        self.forget(inos)

    def kill_inos(self, inos) -> None:
        """These files are being deleted (unlink/overwrite revocation):
        buffered segments AND every sealed extent this client knows of
        die now. This is what lets the sealer's reclaim see deaths whose
        index deltas still sit in a journal (the stored index — all the
        unlinking leader can read — lags until checkpoint, and the
        unlink's clear op means those entries never surface there)."""
        self._drop_pending(inos)
        for ino in inos:
            for idx, ext in self._extents.get(ino, {}).items():
                self._note_dead(ino, idx, ext.pack)
        self.forget(inos)

    def forget(self, inos) -> None:
        """Drop in-memory extent state for files this client no longer
        caches (lease revocation hand-off: the stored index is now the
        only truth, and another client may rewrite it).

        The ino→directory hint survives: it only routes extent deltas to
        the right journal, and a file's parent doesn't change under a
        revocation. Dropping it would silently downgrade the next seal to
        a direct store apply, splitting the extents from the journaled
        dentry/inode ops they must commit with."""
        for ino in inos:
            self._extents.pop(ino, None)
            self._index_loaded.discard(ino)

    # -- seal ---------------------------------------------------------------

    def _snapshot(self):
        """Atomically (no yields) close the open buffer and mirror its
        chunks as sealed extents, so reads stay served during the seal."""
        self._seq += 1
        pack_id = f"{self.client_name}-{self._seq:08d}"
        data = bytes(self._buf)
        pending = self._pending
        had_plain = self._had_plain
        dead = self._buf_dead
        self._buf = bytearray()
        self._pending = {}
        self._had_plain = set()
        self._buf_dead = 0
        self._open_since = None
        self._g_open_buffer.set(0)
        self._sealing_bufs[pack_id] = data
        self._live_total[pack_id] = len(data)
        self._live_exts[pack_id] = {key: ln
                                    for key, (_off, ln) in pending.items()}
        set_maps: Dict[int, Dict[int, PackExtent]] = {}
        for (ino, idx), (off, ln) in pending.items():
            ext = PackExtent(pack_id, off, ln)
            self._extents.setdefault(ino, {})[idx] = ext
            set_maps.setdefault(ino, {})[idx] = ext
        return pack_id, data, set_maps, had_plain

    def seal(self) -> SimGen:
        """Seal the open container: one big PUT, then commit the extent
        deltas, then purge the stale plain objects. Serialized; concurrent
        callers coalesce (the second finds an empty buffer)."""
        req = self._seal_lock.request()
        yield req
        try:
            if not self._pending:
                return
            sp = _span(self.sim, "pack.seal", "pack")
            try:
                pack_id, data, set_maps, had_plain = self._snapshot()
                yield from self._call(
                    lambda: self.prt.store.put(self.prt.key_pack(pack_id),
                                               data, src=self.node))
                del self._sealing_bufs[pack_id]
                yield from self._commit_deltas(set_maps)
                if had_plain:
                    yield from self.prt._purge(
                        sorted(self.prt.key_data(ino, idx)
                               for ino, idx in had_plain),
                        src=self.node)
                self._c_seals.inc()
                rec = self.sim._recorder
                if rec is not None:
                    rec.record("pack.seal", pack=pack_id, bytes=len(data))
            finally:
                sp.close()
        finally:
            self._seal_lock.release(req)

    def _commit_deltas(self, set_maps: Dict[int, Dict[int, PackExtent]]
                       ) -> SimGen:
        """Make extent-index updates durable: journal commit for files in
        directories this client leads, direct idempotent RMW otherwise."""
        flush_dirs = set()
        for ino in sorted(set_maps):
            dir_ino = self._dirs.get(ino)
            if dir_ino is not None and self._leads(dir_ino):
                self.journal.record(dir_ino,
                                    ops_set_extents(ino, set_maps[ino]))
                flush_dirs.add(dir_ino)
            else:
                yield from self._call(
                    lambda i=ino: self.prt.apply_extent_delta(
                        i, set_map=set_maps[i], src=self.node))
        for dir_ino in sorted(flush_dirs):
            yield from self.journal.flush(dir_ino)

    def flush_inos(self, inos) -> SimGen:
        """fsync path: packed chunks of these files must be durable."""
        if any(key[0] in inos for key in self._pending):
            yield from self.seal()

    def publish(self, inos) -> SimGen:
        """Lease-revocation path: beyond durability, the stored extent
        index must reflect our deltas before another client reads it, so
        journaled deltas are checkpointed, not merely committed."""
        if any(key[0] in inos for key in self._pending):
            yield from self.seal()
        dirs = {self._dirs[ino] for ino in inos if ino in self._dirs}
        for dir_ino in sorted(dirs):
            if self._leads(dir_ino):
                yield from self.journal.flush(dir_ino, full=True)
        self.forget(inos)

    # -- read path ------------------------------------------------------------

    def fetch_chunk(self, ino: int, index: int) -> SimGen:
        """Resolve a chunk through the pack layer: open-buffer hit, else a
        ranged GET through the extent index. Returns ``None`` when the
        chunk isn't packed (caller falls through to the plain object)."""
        seg = self._pending.get((ino, index))
        if seg is not None:
            self._c_buffer_reads.inc()
            off, ln = seg
            return bytes(self._buf[off:off + ln])
        ext = self._extents.get(ino, {}).get(index)
        if ext is None and ino not in self._index_loaded:
            stored = yield from self._call(
                lambda: self.prt.read_extent_index(ino, src=self.node))
            self._index_loaded.add(ino)
            mem = self._extents.setdefault(ino, {})
            for idx, st_ext in stored.items():
                mem.setdefault(idx, st_ext)   # memory (newer) wins
            seg = self._pending.get((ino, index))
            if seg is not None:               # appended while we loaded
                self._c_buffer_reads.inc()
                off, ln = seg
                return bytes(self._buf[off:off + ln])
            ext = mem.get(index)
        if ext is None:
            return None
        buf = self._sealing_bufs.get(ext.pack)
        if buf is not None:
            self._c_buffer_reads.inc()
            return bytes(buf[ext.offset:ext.offset + ext.length])
        try:
            data = yield from self._call(
                lambda: self.prt.read_extent(ext, src=self.node))
        except NoSuchKey:
            # Container compacted/purged under us: the stored index is
            # authoritative — reload once and retry.
            self._extents.get(ino, {}).pop(index, None)
            stored = yield from self._call(
                lambda: self.prt.read_extent_index(ino, src=self.node))
            ext2 = stored.get(index)
            if ext2 is None:
                return None
            try:
                data = yield from self._call(
                    lambda: self.prt.read_extent(ext2, src=self.node))
            except NoSuchKey:
                return None
            self._extents.setdefault(ino, {})[index] = ext2
        self._c_packed_reads.inc()
        return data

    # -- background maintenance ----------------------------------------------

    def _tick_loop(self) -> SimGen:
        interval = max(self.params.pack_seal_age / 2, 0.05)
        try:
            while True:
                yield self.sim.timeout(interval)
                yield from self.maintain()
        except Interrupt:
            return

    def maintain(self) -> SimGen:
        """One maintenance round: age-seal the open buffer, purge dead
        containers, compact low-live-ratio ones."""
        if (self._pending and self._open_since is not None
                and self.sim.now - self._open_since
                >= self.params.pack_seal_age):
            yield from self.seal()
        for pack_id in sorted(self._live_total):
            total = self._live_total.get(pack_id)
            if total is None or pack_id in self._sealing_bufs:
                continue
            live = sum(self._live_exts.get(pack_id, {}).values())
            if live <= 0:
                self._live_total.pop(pack_id, None)
                self._live_exts.pop(pack_id, None)
                yield from self.prt._purge([self.prt.key_pack(pack_id)],
                                           src=self.node)
                self._c_containers_purged.inc()
                self._c_reclaimed_bytes.inc(total)
            elif total and live / total < self.params.pack_compact_live_ratio:
                yield from self.compact(pack_id)
        tier = getattr(self.prt.store, "tier_maintain", None)
        if tier is not None:
            # Tiered backend rides this ticker for its lifecycle work:
            # drain a staged batch to cold and demote past the watermark.
            yield from tier(src=self.node)

    def compact(self, pack_id: str) -> SimGen:
        """Rewrite a mostly-dead container: re-append its still-live
        chunks into the open buffer, seal, then purge the old object.

        The live ledger — not the stored index — decides what moves: the
        stored index can lag the journal in both directions (a committed
        set not yet checkpointed must NOT be dropped; a committed del not
        yet checkpointed must NOT be resurrected). Each chunk's current
        extent is resolved memory-first, falling back to the stored index
        only for files whose mirror a lease hand-off already dropped."""
        total = self._live_total.pop(pack_id, None)
        live = self._live_exts.pop(pack_id, {})
        if total is None:
            return
        sp = _span(self.sim, "pack.compact", "pack")
        try:
            try:
                data = yield from self._call(
                    lambda: self.prt.store.get(self.prt.key_pack(pack_id),
                                               src=self.node))
            except NoSuchKey:
                return
            stored_cache: Dict[int, Dict[int, PackExtent]] = {}
            moved = 0
            for ino, idx in sorted(live):
                if (ino, idx) in self._pending:
                    continue   # freshly rewritten; old bytes are dead
                ext = self._extents.get(ino, {}).get(idx)
                if ext is None and ino not in self._index_loaded:
                    if ino not in stored_cache:
                        stored_cache[ino] = yield from self._call(
                            lambda i=ino: self.prt.read_extent_index(
                                i, src=self.node))
                    ext = stored_cache[ino].get(idx)
                if ext is None or ext.pack != pack_id:
                    continue
                self.append(ino, idx,
                            bytes(data[ext.offset:ext.offset + ext.length]))
                moved += ext.length
            if self._pending:
                yield from self.seal()
            yield from self.prt._purge([self.prt.key_pack(pack_id)],
                                       src=self.node)
            self._c_compactions.inc()
            rec = self.sim._recorder
            if rec is not None:
                rec.record("pack.compact", pack=pack_id, moved=moved)
            self._c_compacted_bytes.inc(moved)
            self._c_containers_purged.inc()
            self._c_reclaimed_bytes.inc(max(0, len(data) - moved))
        finally:
            sp.close()

    # -- failure handling -----------------------------------------------------

    def discard(self) -> None:
        """Client crash: every buffered byte and in-memory mirror is lost
        (sealed-but-uncommitted containers become post-crash garbage)."""
        self._buf = bytearray()
        self._buf_dead = 0
        self._open_since = None
        self._pending.clear()
        self._had_plain.clear()
        self._extents.clear()
        self._index_loaded.clear()
        self._dirs.clear()
        self._sealing_bufs.clear()
        self._live_total.clear()
        self._live_exts.clear()
        self._g_open_buffer.set(0)
        self._ticker.interrupt("crash")

    def restart(self, journal: JournalManager) -> None:
        """Client restart: bind the rebuilt journal manager and resume the
        maintenance ticker (the container id sequence keeps counting)."""
        self.journal = journal
        self._ticker = self.sim.process(
            self._tick_loop(), name=f"{self.client_name}.packer")
