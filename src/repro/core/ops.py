"""Leader-side metadata operations.

These ``_op_*`` coroutines implement every metadata operation a *directory
leader* performs on a directory it holds the lease for — both for its own
applications and on behalf of other clients that were redirected to it
(Fig. 3(b) steps 3–5). They are mixed into :class:`~repro.core.client.
ArkFSClient`; the dispatch path (local call vs RPC) lives in the client.

Every operation:

* re-validates leadership first (raising :class:`RedirectError` if the lease
  moved, so callers can retry at the new leader),
* performs POSIX permission checks against the metatable in local memory,
* applies the mutation to the metatable and records journal ops in the
  directory's running compound transaction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..posix.acl import Acl, check_perm
from ..posix.errors import (
    AlreadyExists,
    DirectoryNotEmpty,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    NotFound,
    NotPermitted,
    PermissionDenied,
)
from ..posix.types import Credentials, FileType, OpenFlags, R_OK, W_OK, X_OK
from ..sim.engine import SimGen
from .filelease import FileLeaseGrant
from .journal import (
    ops_clear_extents,
    ops_del_dentry,
    ops_del_inode,
    ops_put_dentry,
    ops_put_inode,
)
from .types import Dentry, Inode

__all__ = ["RedirectError", "LeaderOps"]


class RedirectError(Exception):
    """This node is not (or no longer) the directory's leader."""

    def __init__(self, dir_ino: int, leader: Optional[str]):
        super().__init__(f"dir {dir_ino:x} led by {leader}")
        self.dir_ino = dir_ino
        self.leader = leader


def _require(ok: bool, exc_cls, path: str = "", detail: str = "") -> None:
    if not ok:
        raise exc_cls(path, detail)


class LeaderOps:
    """Mixin: leader-side operation handlers for ArkFSClient."""

    # The client provides: sim, node, prt, params, metatables, journal,
    # fleases, alloc, _ensure_leader(), _charge_md_op(), _pending_names,
    # cache, pack, name.

    # -- shared helpers ---------------------------------------------------------

    def _check_dir_perm(self, mt, creds: Credentials, want: int) -> None:
        inode = mt.dir_inode
        if creds is not None and not check_perm(
            inode.acl, inode.mode, inode.uid, inode.gid, creds, want
        ):
            raise PermissionDenied(f"dir {inode.ino:x}")

    def _check_inode_perm(self, inode: Inode, creds: Credentials,
                          want: int) -> None:
        if creds is not None and not check_perm(
            inode.acl, inode.mode, inode.uid, inode.gid, creds, want
        ):
            raise PermissionDenied(f"inode {inode.ino:x}")

    def _wait_name_free(self, dir_ino: int, name: str) -> SimGen:
        """Block while a 2PC rename holds this name prepared."""
        while (dir_ino, name) in self._pending_names:
            yield self.sim.timeout(0.001)

    def _journal_dir_inode(self, mt) -> None:
        self.journal.record(mt.dir_ino, ops_put_inode(mt.dir_inode))

    def _touch_dir(self, mt) -> None:
        # Shard tables hold a *copy* of the parent inode: mutating or
        # journaling it from every shard would make the parent inode a
        # multi-writer object. Sharded directories freeze mtime/ctime/nlink
        # at their split value (a documented relaxation; only the home
        # shard, via routed setattr, writes the parent inode).
        if mt.is_shard:
            return
        now = self.sim.now
        mt.dir_inode.mtime = now
        mt.dir_inode.ctime = now

    # -- lookup / getattr -----------------------------------------------------------

    def _op_lookup(self, creds: Credentials, dir_ino: int, name: str,
                   requester: str = "") -> SimGen:
        """Resolve one name: returns (dentry dict, dir-inode dict).

        The dir-inode payload carries the permission information that the
        permission-caching mode caches at the requester (Section III-C).
        """
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_lookup()
        self._check_dir_perm(mt, creds, X_OK)
        yield from self._wait_name_free(dir_ino, name)
        dentry = mt.lookup(name)
        return dentry.to_dict(), mt.dir_inode.to_dict()

    def _op_getattr_child(self, creds: Credentials, dir_ino: int, name: str,
                          requester: str = "") -> SimGen:
        """stat of a non-directory child (its inode lives in this metatable)."""
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        self._check_dir_perm(mt, creds, X_OK)
        dentry = mt.lookup(name)
        if dentry.ftype is FileType.DIRECTORY:
            # Directories are stat'ed at their own leader.
            return {"redirect_dir": dentry.ino}
        inode = mt.child_inode(dentry.ino)
        return inode.to_dict()

    def _op_getattr_dir(self, creds: Credentials, dir_ino: int,
                        requester: str = "") -> SimGen:
        """stat of the directory itself (authoritative in its own metatable)."""
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        return mt.dir_inode.to_dict()

    def _op_readdir(self, creds: Credentials, dir_ino: int,
                    requester: str = "") -> SimGen:
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        self._check_dir_perm(mt, creds, R_OK)
        return mt.names()

    # -- open / create -------------------------------------------------------------------

    def _op_open(self, creds: Credentials, dir_ino: int, name: str,
                 flags: int, mode: int, requester: str = "") -> SimGen:
        """OPEN/CREATE of a regular file in a directory this client leads.

        Returns an info dict: the file inode payload plus the initial read
        lease (every opener starts with a read lease, Section III-D).
        """
        flags = OpenFlags(flags)
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        self._check_dir_perm(mt, creds, X_OK)
        yield from self._wait_name_free(dir_ino, name)
        now = self.sim.now

        dentry = mt.dentries.get(name)
        if dentry is None:
            _require(bool(flags & OpenFlags.O_CREAT), NotFound, name)
            self._check_dir_perm(mt, creds, W_OK | X_OK)
            ino = self.alloc.new()
            inode = Inode(
                ino=ino, ftype=FileType.REGULAR,
                mode=(creds.apply_umask(mode) if creds else mode & 0o777),
                uid=creds.uid if creds else 0,
                gid=creds.gid if creds else 0,
                size=0, atime=now, mtime=now, ctime=now,
            )
            dentry = Dentry(name=name, ino=ino, ftype=FileType.REGULAR)
            mt.add(dentry, inode)
            self._touch_dir(mt)
            ops = [ops_put_inode(inode), ops_put_dentry(dir_ino, dentry)]
            if not mt.is_shard:
                ops.append(ops_put_inode(mt.dir_inode))
            self.journal.record(dir_ino, *ops)
            yield from self._charge_journal(len(ops), dir_ino)
            self._maybe_split(mt)
            created = True
        else:
            _require(not (flags & OpenFlags.O_EXCL and flags & OpenFlags.O_CREAT),
                     AlreadyExists, name)
            if dentry.ftype is FileType.DIRECTORY:
                raise IsADirectory(name)
            if dentry.ftype is FileType.SYMLINK:
                inode = mt.child_inode(dentry.ino)
                return {"symlink": inode.symlink_target}
            inode = mt.child_inode(dentry.ino)
            if flags.wants_read:
                self._check_inode_perm(inode, creds, R_OK)
            if flags.wants_write:
                self._check_inode_perm(inode, creds, W_OK)
            if flags & OpenFlags.O_TRUNC and inode.size > 0:
                old_size = inode.size
                inode.size = 0
                inode.mtime = inode.ctime = now
                self.journal.record(dir_ino, ops_put_inode(inode))
                yield from self._charge_journal(1, dir_ino)
                yield from self._truncate_file_data(inode.ino, old_size, 0)
            created = False

        lease: Optional[FileLeaseGrant] = None
        if inode.ftype is FileType.REGULAR:
            lease = yield from self.fleases.acquire(inode.ino, requester or
                                                    self.name, "r")
        return {"inode": inode.to_dict(), "lease": lease, "created": created,
                "leader": self.name}

    def _truncate_file_data(self, ino: int, old_size: int,
                            new_size: int) -> SimGen:
        """Drop a file's data past new EOF: revoke holder caches, then
        delete the backing objects (and trim the extent index)."""
        yield from self._revoke_all_holders(ino)
        if self.prt.pack_enabled:
            killed = yield from self.prt.truncate_extents(ino, new_size,
                                                          src=self.node)
            if self.pack is not None:
                for idx, ext, keep in killed:
                    self.pack.note_dead_extent(ino, idx, ext, keep=keep)
        yield from self.prt.truncate_data(ino, old_size, new_size,
                                          src=self.node)

    def _purge_file_data(self, ino: int) -> SimGen:
        """Delete a dead file's backing objects. When packing is on, the
        stored extent index is read first so the pack layer's live-byte
        accounting learns which container bytes just died (that is what
        drives container reclaim and compaction)."""
        if self.pack is not None:
            exts = yield from self.prt.read_extent_index(ino, src=self.node)
            self.pack.note_dead_extents(ino, exts)
        yield from self.prt.delete_data(ino, src=self.node)

    def _revoke_all_holders(self, ino: int, deleted: bool = False) -> SimGen:
        st = self.fleases.files.get(ino)
        if st is None:
            return
        yield from self.fleases._revoke_all(st, ino, but="", deleted=deleted)
        st.version += 1

    # -- unlink -----------------------------------------------------------------------------

    def _op_unlink(self, creds: Credentials, dir_ino: int, name: str,
                   requester: str = "") -> SimGen:
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        self._check_dir_perm(mt, creds, W_OK | X_OK)
        yield from self._wait_name_free(dir_ino, name)
        dentry = mt.dentries.get(name)
        _require(dentry is not None, NotFound, name)
        _require(dentry.ftype is not FileType.DIRECTORY, IsADirectory, name)
        inode = mt.child_inode(dentry.ino)
        mt.remove(name)
        self._touch_dir(mt)
        ops = [
            ops_del_dentry(dir_ino, name),
            ops_del_inode(dentry.ino),
        ]
        if not mt.is_shard:
            ops.append(ops_put_inode(mt.dir_inode))
        if self.prt.pack_enabled and dentry.ftype is FileType.REGULAR:
            # Without this a committed-but-uncheckpointed extent set in the
            # same journal would recreate the index after the purge below.
            ops.append(ops_clear_extents(dentry.ino))
        self.journal.record(dir_ino, *ops)
        yield from self._charge_journal(len(ops), dir_ino)
        if inode.ftype is FileType.REGULAR and inode.size > 0:
            yield from self._revoke_all_holders(dentry.ino, deleted=True)
            # Data objects are purged asynchronously (UUID inode numbers mean
            # a re-created name can never collide with the dying objects).
            ino_ = dentry.ino
            self.sim.process(
                self._retry.call(
                    lambda: self._purge_file_data(ino_)),
                name=f"purge:{ino_:x}")
        self.fleases.forget_file(dentry.ino)
        return dentry.ino

    # -- mkdir / rmdir --------------------------------------------------------------------------

    def _op_mkdir(self, creds: Credentials, dir_ino: int, name: str,
                  mode: int, requester: str = "") -> SimGen:
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        self._check_dir_perm(mt, creds, W_OK | X_OK)
        yield from self._wait_name_free(dir_ino, name)
        _require(not mt.has(name), AlreadyExists, name)
        now = self.sim.now
        ino = self.alloc.new()
        child = Inode(
            ino=ino, ftype=FileType.DIRECTORY,
            mode=(creds.apply_umask(mode) if creds else mode & 0o777),
            uid=creds.uid if creds else 0, gid=creds.gid if creds else 0,
            atime=now, mtime=now, ctime=now,
        )
        dentry = Dentry(name=name, ino=ino, ftype=FileType.DIRECTORY)
        mt.add(dentry, None)  # child dir inode lives in its own metatable
        ops = [ops_put_inode(child), ops_put_dentry(dir_ino, dentry)]
        if not mt.is_shard:
            mt.dir_inode.nlink += 1
            ops.append(ops_put_inode(mt.dir_inode))
        self._touch_dir(mt)
        self.journal.record(dir_ino, *ops)
        yield from self._charge_journal(len(ops), dir_ino)
        self._maybe_split(mt)
        # The child's inode object must be durable before anyone can acquire
        # the new directory's lease (lease acquisition loads it from
        # storage), so directory creation checkpoints eagerly. File creates
        # keep the cheap buffered path.
        yield from self.journal.flush(dir_ino, full=True)
        return child.to_dict()

    def _op_rmdir(self, creds: Credentials, dir_ino: int, name: str,
                  requester: str = "") -> SimGen:
        """Remove an (empty) child directory.

        The parent's leader coordinates: whoever leads the child must verify
        emptiness, flush, and surrender the child's lease first.
        """
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        self._check_dir_perm(mt, creds, W_OK | X_OK)
        yield from self._wait_name_free(dir_ino, name)
        dentry = mt.dentries.get(name)
        _require(dentry is not None, NotFound, name)
        _require(dentry.ftype is FileType.DIRECTORY, NotADirectory, name)
        yield from self._surrender_child(dentry.ino)
        mt.remove(name)
        ops = [ops_del_dentry(dir_ino, name), ops_del_inode(dentry.ino)]
        if not mt.is_shard:
            mt.dir_inode.nlink -= 1
            ops.append(ops_put_inode(mt.dir_inode))
        self._touch_dir(mt)
        self.journal.record(dir_ino, *ops)
        yield from self._charge_journal(len(ops), dir_ino)
        self._drop_authority_hints(dentry.ino)
        return True

    def _surrender_child(self, child_ino: int) -> SimGen:
        """Ensure the child dir is empty and nobody leads it anymore.

        Goes through the real lease protocol: either we become the child's
        leader (seeing any journaled-but-uncheckpointed entries via the
        metatable/recovery path) and release it, or we ask the current
        leader to verify emptiness and surrender. Never trusts raw storage
        while someone may hold uncommitted state in memory.
        """
        from ..sim.network import NodeDown

        for _attempt in range(16):
            kind, who = yield from self._acquire_dir(child_ino)
            if kind == "sharded":
                # A sharded directory is empty iff every shard is. Surrender
                # the shards (one-level splits: the recursion terminates),
                # retire the map, then fall through to the parent range.
                for si in who.shard_inos():
                    yield from self._surrender_child(si)
                self._drop_shard_map(child_ino)
                yield from self._retry.call(
                    lambda: self.prt.delete_shard_map(child_ino,
                                                      src=self.node))
                continue
            if kind == "local":
                mt = self.metatables[child_ino]
                _require(mt.is_empty, DirectoryNotEmpty, f"{child_ino:x}")
                yield from self._release_dir(child_ino)
                return
            try:
                yield from self._peer_call(who, "surrender_if_empty",
                                           creds=None, dir_ino=child_ino)
                return
            except RedirectError:
                self.remotes.pop(child_ino, None)
            except NodeDown:
                self.remotes.pop(child_ino, None)
                yield self.sim.timeout(self.params.lease_retry_delay)
        raise DirectoryNotEmpty(f"{child_ino:x}", "no stable child authority")

    def _op_surrender_if_empty(self, creds: Credentials, dir_ino: int,
                               requester: str = "") -> SimGen:
        """RPC from a parent leader preparing to rmdir a dir we lead."""
        yield self.sim.timeout(0)
        mt = self.metatables.get(dir_ino)
        if mt is None or mt.lease_expires <= self.sim.now:
            # Our lease lapsed: make the caller re-resolve authority.
            raise RedirectError(dir_ino, None)
        _require(mt.is_empty, DirectoryNotEmpty, f"{dir_ino:x}")
        yield from self._release_dir(dir_ino)
        return True

    # -- attribute updates -------------------------------------------------------------------------

    def _locate_inode(self, mt, name: Optional[str]):
        """The target inode for a setattr: a child file, or the dir itself."""
        if name is None:
            return mt.dir_inode, None
        dentry = mt.lookup(name)
        if dentry.ftype is FileType.DIRECTORY:
            return None, dentry.ino  # caller must go to the dir's own leader
        return mt.child_inode(dentry.ino), None

    def _op_setattr(self, creds: Credentials, dir_ino: int,
                    name: Optional[str], changes: Dict[str, Any],
                    requester: str = "") -> SimGen:
        """chmod/chown/utimens/truncate-size/setfacl on a child file
        (``name`` given) or on the directory itself (``name`` is None)."""
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        if name is not None:
            self._check_dir_perm(mt, creds, X_OK)
        inode, redirect = self._locate_inode(mt, name)
        if redirect is not None:
            return {"redirect_dir": redirect}
        now = self.sim.now

        if "mode" in changes:
            self._require_owner(creds, inode)
            inode.mode = changes["mode"] & 0o7777
            if inode.acl is not None:
                inode.acl.apply_chmod(changes["mode"])
            inode.ctime = now
        if "uid" in changes or "gid" in changes:
            new_uid = changes.get("uid", inode.uid)
            new_gid = changes.get("gid", inode.gid)
            if creds is not None and not creds.is_root:
                # Non-root may only change the group, to a group it is in.
                _require(new_uid == inode.uid and creds.uid == inode.uid,
                         NotPermitted, detail="chown requires root")
                _require(creds.in_group(new_gid), NotPermitted,
                         detail="not a member of the target group")
            inode.uid, inode.gid = new_uid, new_gid
            inode.ctime = now
        if "acl" in changes:
            self._require_owner(creds, inode)
            acl = changes["acl"]
            inode.acl = Acl.from_dict(acl) if isinstance(acl, dict) else acl
            inode.ctime = now
        if "times" in changes:
            atime, mtime = changes["times"]
            if creds is not None and not creds.is_root and creds.uid != inode.uid:
                self._check_inode_perm(inode, creds, W_OK)
            inode.atime, inode.mtime = atime, mtime
            inode.ctime = now
        if "size" in changes:
            self._check_inode_perm(inode, creds, W_OK)
            _require(inode.ftype is FileType.REGULAR, IsADirectory,
                     detail="truncate on non-file")
            new_size = changes["size"]
            _require(new_size >= 0, InvalidArgument, detail="negative size")
            old_size = inode.size
            inode.size = new_size
            inode.mtime = inode.ctime = now
            if new_size < old_size:
                yield from self._truncate_file_data(inode.ino, old_size,
                                                    new_size)

        self.journal.record(dir_ino, ops_put_inode(inode))
        yield from self._charge_journal(1, dir_ino)
        return inode.to_dict()

    def _require_owner(self, creds: Credentials, inode: Inode) -> None:
        if creds is not None and not creds.is_root and creds.uid != inode.uid:
            raise NotPermitted(f"inode {inode.ino:x}", "not the owner")

    def _op_update_inode(self, creds: Credentials, dir_ino: int, ino: int,
                         size: int, mtime: float, requester: str = "") -> SimGen:
        """Post-write metadata publication from a data-writing client
        (size/mtime reach the leader at fsync/close)."""
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        inode = mt.inodes.get(ino)
        if inode is None:
            raise NotFound(f"inode {ino:x}", "file removed while open")
        if size > inode.size:
            inode.size = size
        inode.mtime = max(inode.mtime, mtime)
        inode.ctime = self.sim.now
        self.journal.record(dir_ino, ops_put_inode(inode))
        yield from self._charge_journal(1, dir_ino)
        return inode.to_dict()

    def _op_fsync_dir(self, creds: Credentials, dir_ino: int,
                      requester: str = "") -> SimGen:
        """Force the directory's compound transaction to commit (fsync)."""
        yield from self._ensure_leader(dir_ino)
        yield from self.journal.flush(dir_ino)
        return True

    # -- symlinks ------------------------------------------------------------------------------------

    def _op_symlink(self, creds: Credentials, dir_ino: int, name: str,
                    target: str, requester: str = "") -> SimGen:
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        self._check_dir_perm(mt, creds, W_OK | X_OK)
        yield from self._wait_name_free(dir_ino, name)
        _require(not mt.has(name), AlreadyExists, name)
        now = self.sim.now
        ino = self.alloc.new()
        inode = Inode(ino=ino, ftype=FileType.SYMLINK, mode=0o777,
                      uid=creds.uid if creds else 0,
                      gid=creds.gid if creds else 0,
                      size=len(target), atime=now, mtime=now, ctime=now,
                      symlink_target=target)
        dentry = Dentry(name=name, ino=ino, ftype=FileType.SYMLINK)
        mt.add(dentry, inode)
        self._touch_dir(mt)
        ops = [ops_put_inode(inode), ops_put_dentry(dir_ino, dentry)]
        if not mt.is_shard:
            ops.append(ops_put_inode(mt.dir_inode))
        self.journal.record(dir_ino, *ops)
        yield from self._charge_journal(len(ops), dir_ino)
        self._maybe_split(mt)
        return inode.to_dict()

    def _op_readlink(self, creds: Credentials, dir_ino: int, name: str,
                     requester: str = "") -> SimGen:
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        self._check_dir_perm(mt, creds, X_OK)
        dentry = mt.lookup(name)
        _require(dentry.ftype is FileType.SYMLINK, InvalidArgument, name,
                 "not a symlink")
        return mt.child_inode(dentry.ino).symlink_target

    # -- file data leases ---------------------------------------------------------------------------------

    def _op_flease(self, creds: Credentials, dir_ino: int, ino: int,
                   mode: str, requester: str = "") -> SimGen:
        """Acquire/renew a read or write lease on a child file's data."""
        yield from self._ensure_leader(dir_ino)
        grant = yield from self.fleases.acquire(ino, requester or self.name,
                                                mode)
        return grant

    def _op_flease_release(self, creds: Credentials, dir_ino: int, ino: int,
                           requester: str = "") -> SimGen:
        yield self.sim.timeout(0)
        self.fleases.release(ino, requester or self.name)
        return True

    # -- rename ----------------------------------------------------------------------------------------------

    def _op_rename_local(self, creds: Credentials, dir_ino: int, src_name: str,
                         dst_name: str, requester: str = "") -> SimGen:
        """Rename within one directory: one journal, trivially atomic."""
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        self._check_dir_perm(mt, creds, W_OK | X_OK)
        yield from self._wait_name_free(dir_ino, src_name)
        yield from self._wait_name_free(dir_ino, dst_name)
        dentry = mt.dentries.get(src_name)
        _require(dentry is not None, NotFound, src_name)
        if src_name == dst_name:
            return True
        existing = mt.dentries.get(dst_name)
        if existing is not None:
            yield from self._check_overwrite(mt, dentry, existing)
            yield from self._remove_overwritten(mt, existing)
        moved = Dentry(name=dst_name, ino=dentry.ino, ftype=dentry.ftype)
        inode = mt.inodes.get(dentry.ino)
        mt.remove(src_name)
        mt.add(moved, inode)
        self._touch_dir(mt)
        ops = [
            ops_del_dentry(dir_ino, src_name),
            ops_put_dentry(dir_ino, moved),
        ]
        if not mt.is_shard:
            ops.append(ops_put_inode(mt.dir_inode))
        if inode is not None:
            inode.ctime = self.sim.now
            ops.append(ops_put_inode(inode))
        self.journal.record(dir_ino, *ops)
        yield from self._charge_journal(len(ops), dir_ino)
        return True

    def _check_overwrite(self, mt, src_dentry: Dentry,
                         dst_dentry: Dentry) -> SimGen:
        """POSIX rename-overwrite rules."""
        if dst_dentry.ftype is FileType.DIRECTORY:
            _require(src_dentry.ftype is FileType.DIRECTORY, IsADirectory,
                     dst_dentry.name)
            yield from self._surrender_child(dst_dentry.ino)  # must be empty
        else:
            _require(src_dentry.ftype is not FileType.DIRECTORY, NotADirectory,
                     dst_dentry.name)
            yield self.sim.timeout(0)

    def _remove_overwritten(self, mt, dentry: Dentry) -> SimGen:
        """Unlink the entry being replaced by a rename."""
        inode = mt.inodes.get(dentry.ino)
        mt.remove(dentry.name)
        ops = [ops_del_inode(dentry.ino)]
        if (self.prt.pack_enabled and inode is not None
                and inode.ftype is FileType.REGULAR):
            ops.append(ops_clear_extents(dentry.ino))
        self.journal.record(mt.dir_ino, *ops)
        if inode is not None and inode.ftype is FileType.REGULAR and inode.size:
            yield from self._revoke_all_holders(dentry.ino, deleted=True)
            yield from self._retry.call(
                lambda: self._purge_file_data(dentry.ino))
        else:
            yield self.sim.timeout(0)
        self.fleases.forget_file(dentry.ino)
        if dentry.ftype is FileType.DIRECTORY:
            if not mt.is_shard:
                mt.dir_inode.nlink -= 1
            self._drop_authority_hints(dentry.ino)

    # Cross-directory rename: 2PC participants (Section III-E).

    def _op_rename_prepare_src(self, creds: Credentials, dir_ino: int,
                               name: str, txid: str, decision_key: str,
                               requester: str = "") -> SimGen:
        """Participant 1: validate the source side and force-commit a
        PREPARE transaction removing the entry. Returns the payload the
        destination side needs, plus our journal seq."""
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        self._check_dir_perm(mt, creds, W_OK | X_OK)
        yield from self._wait_name_free(dir_ino, name)
        dentry = mt.dentries.get(name)
        _require(dentry is not None, NotFound, name)
        inode = mt.inodes.get(dentry.ino)
        if inode is not None:
            # File leases move with the file to the destination leader.
            yield from self._revoke_all_holders(dentry.ino)
            self.fleases.forget_file(dentry.ino)
        self._touch_dir(mt)
        ops = [ops_del_dentry(dir_ino, name)]
        if not mt.is_shard:
            ops.append(ops_put_inode(mt.dir_inode))
            if dentry.ftype is FileType.DIRECTORY:
                mt.dir_inode.nlink -= 1  # applied at commit; journal has state
                ops[-1] = ops_put_inode(mt.dir_inode)
                mt.dir_inode.nlink += 1  # undo until commit
        seq = yield from self.journal.prepare(dir_ino, txid, ops, decision_key)
        self._pending_names.add((dir_ino, name))
        self._pending_renames[txid, dir_ino] = {
            "seq": seq, "ops": ops, "name": name, "role": "src",
            "dentry": dentry, "inode": inode,
        }
        return {
            "dentry": dentry.to_dict(),
            "inode": inode.to_dict() if inode is not None else None,
            "seq": seq,
        }

    def _op_rename_prepare_dst(self, creds: Credentials, dir_ino: int,
                               name: str, payload: Dict[str, Any], txid: str,
                               decision_key: str, requester: str = "") -> SimGen:
        """Participant 2: validate the destination side and force-commit a
        PREPARE transaction inserting the entry."""
        mt = yield from self._ensure_leader(dir_ino)
        yield from self._charge_md_op()
        self._check_dir_perm(mt, creds, W_OK | X_OK)
        yield from self._wait_name_free(dir_ino, name)
        src_dentry = Dentry.from_dict(payload["dentry"])
        moved = Dentry(name=name, ino=src_dentry.ino, ftype=src_dentry.ftype)
        moved_inode = (Inode.from_dict(payload["inode"])
                       if payload.get("inode") else None)
        existing = mt.dentries.get(name)
        extra_ops: List[Dict[str, Any]] = []
        if existing is not None:
            yield from self._check_overwrite(mt, src_dentry, existing)
            extra_ops.append(ops_del_inode(existing.ino))
        now = self.sim.now
        dir_copy = mt.dir_inode.copy()
        dir_copy.mtime = dir_copy.ctime = now
        if moved.ftype is FileType.DIRECTORY and (
            existing is None or existing.ftype is not FileType.DIRECTORY
        ):
            dir_copy.nlink += 1
        ops = extra_ops + [ops_put_dentry(dir_ino, moved)]
        if not mt.is_shard:
            ops.append(ops_put_inode(dir_copy))
        if moved_inode is not None:
            moved_inode.ctime = now
            ops.append(ops_put_inode(moved_inode))
        seq = yield from self.journal.prepare(dir_ino, txid, ops, decision_key)
        self._pending_names.add((dir_ino, name))
        self._pending_renames[txid, dir_ino] = {
            "seq": seq, "ops": ops, "name": name, "role": "dst",
            "dentry": moved, "inode": moved_inode, "existing": existing,
            "dir_copy": dir_copy,
        }
        return {"seq": seq}

    def _op_rename_finish(self, creds: Credentials, dir_ino: int, txid: str,
                          commit: bool, requester: str = "") -> SimGen:
        """Phase 2: apply (or discard) the prepared rename transaction."""
        pend = self._pending_renames.pop((txid, dir_ino), None)
        if pend is None:
            yield self.sim.timeout(0)
            return False
        self._pending_names.discard((dir_ino, pend["name"]))
        mt = self.metatables.get(dir_ino)
        if commit and mt is not None:
            if pend["role"] == "src":
                if mt.has(pend["name"]):
                    mt.remove(pend["name"])
                if pend["dentry"].ftype is FileType.DIRECTORY \
                        and not mt.is_shard:
                    mt.dir_inode.nlink -= 1
                self._touch_dir(mt)
                self._drop_authority_hints(pend["dentry"].ino)
            else:
                existing = pend.get("existing")
                if existing is not None:
                    yield from self._remove_overwritten(mt, existing)
                mt.add(pend["dentry"], pend["inode"])
                if not mt.is_shard:
                    mt.dir_inode.nlink = pend["dir_copy"].nlink
                self._touch_dir(mt)
        yield from self.journal.finish_prepared(dir_ino, pend["seq"],
                                                pend["ops"], commit)
        return True
