"""Per-directory metadata tables (Section III-C).

When a client wins a directory's lease it loads the directory inode, the
dentries, and the child *file* inodes from object storage into a metatable.
While the lease is valid, every metadata operation on that directory —
lookup, permission check, create, unlink, stat — is a local in-memory
operation. A *remote metatable* is just a pointer to the directory's
current leader, used to forward requests (Fig. 3(c)).

Child directories' inodes are **not** part of the parent's metatable: each
directory's inode is authoritative in its own metatable (under its own
lease), which is what lets metadata management partition cleanly by
directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..posix.errors import NotFound
from ..posix.types import FileType
from ..sim.engine import SimGen
from ..sim.network import Node
from .prt import PRT
from .types import Dentry, Inode

__all__ = ["Metatable", "RemoteTable", "load_metatable"]


@dataclass
class Metatable:
    """The leader-side in-memory image of one directory."""

    dir_inode: Inode
    dentries: Dict[str, Dentry] = field(default_factory=dict)
    inodes: Dict[int, Inode] = field(default_factory=dict)  # child files only
    lease_expires: float = 0.0
    epoch: int = 0
    last_used: float = 0.0  # drives lease extension vs clean release
    mgr_epoch: int = 0      # range-authority epoch of the grant (cluster mode)
    # Shard tables: ``auth_ino`` is the ino whose e<>/j<> key ranges and
    # lease this table is authoritative for; ``dir_inode`` is then a copy of
    # the *parent* directory's inode (shards have no inode object of their
    # own). ``None`` means the table is an ordinary directory's.
    auth_ino: Optional[int] = None

    @property
    def dir_ino(self) -> int:
        return self.dir_inode.ino

    @property
    def is_shard(self) -> bool:
        return self.auth_ino is not None

    @property
    def journal_ino(self) -> int:
        """The ino keying this table's journal stream and lease."""
        return self.auth_ino if self.auth_ino is not None \
            else self.dir_inode.ino

    # -- lookups ----------------------------------------------------------------

    def lookup(self, name: str) -> Dentry:
        try:
            return self.dentries[name]
        except KeyError:
            raise NotFound(name) from None

    def child_inode(self, ino: int) -> Inode:
        try:
            return self.inodes[ino]
        except KeyError:
            raise NotFound(f"inode {ino:x}") from None

    def has(self, name: str) -> bool:
        return name in self.dentries

    def names(self) -> List[str]:
        return sorted(self.dentries)

    @property
    def is_empty(self) -> bool:
        return not self.dentries

    # -- mutations (callers journal these) -----------------------------------------

    def add(self, dentry: Dentry, inode: Optional[Inode]) -> None:
        """Insert an entry; ``inode`` is stored for regular files/symlinks
        (directories keep their inode in their own metatable)."""
        self.dentries[dentry.name] = dentry
        if inode is not None:
            self.inodes[inode.ino] = inode

    def remove(self, name: str) -> Dentry:
        d = self.dentries.pop(name, None)
        if d is None:
            raise NotFound(name)
        self.inodes.pop(d.ino, None)
        return d


class RemoteTable:
    """A remote metatable: points at the directory's current leader."""

    __slots__ = ("dir_ino", "leader", "expires_at")

    def __init__(self, dir_ino: int, leader: str, expires_at: float):
        self.dir_ino = dir_ino
        self.leader = leader
        self.expires_at = expires_at

    def valid(self, now: float) -> bool:
        return now < self.expires_at


def load_metatable(prt: PRT, dir_inode: Inode, src: Optional[Node],
                   lease_expires: float, epoch: int,
                   list_ino: Optional[int] = None,
                   mgr_epoch: int = 0) -> SimGen:
    """Pull a directory's metadata from object storage (lease-grant path).

    Loads dentries via a prefix LIST, then the inodes of child files and
    symlinks. Directories contribute only their dentry. ``list_ino`` loads
    a *shard* table: dentries come from the shard's key range while
    ``dir_inode`` is the parent directory's inode.
    """
    mt = Metatable(dir_inode=dir_inode.copy(), lease_expires=lease_expires,
                   epoch=epoch, mgr_epoch=mgr_epoch, auth_ino=list_ino)
    dentries = yield from prt.list_dentries(
        list_ino if list_ino is not None else dir_inode.ino, src=src)
    for d in dentries:
        mt.dentries[d.name] = d
        if d.ftype is not FileType.DIRECTORY:
            inode = yield from prt.get_inode(d.ino, src=src)
            mt.inodes[d.ino] = inode
    return mt
