"""PRT — the POSIX-REST Translator (Section III-F).

Defines how file-system state maps onto flat object keys and translates
block-granularity POSIX I/O into whole/ranged object REST operations:

* ``i<uuid>``            — inode (JSON)
* ``e<uuid>/<name>``     — one directory entry of directory ``<uuid>``
* ``j<uuid>/<seq>``      — one committed journal transaction of the directory
* ``d<uuid>/<index>``    — one data object of a file (fixed-size chunks)
* ``t<txid>``            — a two-phase-commit decision record

File data is split into ``data_object_size`` chunks ("The PRT module divides
the file data into multiple objects if the file size exceeds the maximum
object size defined by the object storage"). Missing chunks read as zeros
(sparse files).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..objectstore.base import ObjectStore
from ..objectstore.errors import NoSuchKey
from ..obs.trace import span as _span
from ..sim.engine import SimGen
from ..sim.network import Node
from .types import Dentry, Inode, ino_hex

__all__ = ["PRT"]


class PRT:
    """Key schema + chunked data path over one object-storage backend."""

    def __init__(self, store: ObjectStore, data_object_size: int):
        if data_object_size <= 0:
            raise ValueError("data_object_size must be positive")
        self.store = store
        self.sim = store.sim
        self.data_object_size = data_object_size

    # -- key construction ------------------------------------------------------

    @staticmethod
    def key_inode(ino: int) -> str:
        return "i" + ino_hex(ino)

    @staticmethod
    def key_dentry(dir_ino: int, name: str) -> str:
        return f"e{ino_hex(dir_ino)}/{name}"

    @staticmethod
    def key_dentry_prefix(dir_ino: int) -> str:
        return f"e{ino_hex(dir_ino)}/"

    @staticmethod
    def key_journal(dir_ino: int, seq: int) -> str:
        return f"j{ino_hex(dir_ino)}/{seq:012d}"

    @staticmethod
    def key_journal_prefix(dir_ino: int) -> str:
        return f"j{ino_hex(dir_ino)}/"

    @staticmethod
    def key_data(ino: int, index: int) -> str:
        return f"d{ino_hex(ino)}/{index:010d}"

    @staticmethod
    def key_data_prefix(ino: int) -> str:
        return f"d{ino_hex(ino)}/"

    @staticmethod
    def key_decision(txid: str) -> str:
        return f"t{txid}"

    # -- inode / dentry objects ---------------------------------------------------

    def get_inode(self, ino: int, src: Optional[Node] = None) -> SimGen:
        raw = yield from self.store.get(self.key_inode(ino), src=src)
        return Inode.from_bytes(raw)

    def put_inode(self, inode: Inode, src: Optional[Node] = None) -> SimGen:
        yield from self.store.put(self.key_inode(inode.ino), inode.to_bytes(),
                                  src=src)

    def delete_inode(self, ino: int, src: Optional[Node] = None) -> SimGen:
        try:
            yield from self.store.delete(self.key_inode(ino), src=src)
        except NoSuchKey:
            pass  # idempotent (journal replay may re-delete)

    def inode_exists(self, ino: int, src: Optional[Node] = None) -> SimGen:
        return (yield from self.store.exists(self.key_inode(ino), src=src))

    def get_dentry(self, dir_ino: int, name: str,
                   src: Optional[Node] = None) -> SimGen:
        raw = yield from self.store.get(self.key_dentry(dir_ino, name), src=src)
        return Dentry.from_bytes(raw)

    def put_dentry(self, dir_ino: int, dentry: Dentry,
                   src: Optional[Node] = None) -> SimGen:
        yield from self.store.put(self.key_dentry(dir_ino, dentry.name),
                                  dentry.to_bytes(), src=src)

    def delete_dentry(self, dir_ino: int, name: str,
                      src: Optional[Node] = None) -> SimGen:
        try:
            yield from self.store.delete(self.key_dentry(dir_ino, name), src=src)
        except NoSuchKey:
            pass

    def list_dentries(self, dir_ino: int, src: Optional[Node] = None) -> SimGen:
        """All dentries of a directory, name-sorted (metatable load path)."""
        prefix = self.key_dentry_prefix(dir_ino)
        keys = yield from self.store.list(prefix, src=src)
        raws = yield from self.store.get_many(keys, src=src)
        # A dentry deleted between LIST and GET simply isn't part of the
        # load — same race a real S3 lister has.
        return [Dentry.from_bytes(raw) for raw in raws if raw is not None]

    # -- data path -------------------------------------------------------------------

    def chunk_range(self, offset: int, length: int) -> List[Tuple[int, int, int]]:
        """Split a byte range into per-object pieces.

        Returns ``(object_index, offset_in_object, piece_length)`` triples.
        """
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        osz = self.data_object_size
        pieces = []
        pos = offset
        end = offset + length
        while pos < end:
            idx = pos // osz
            off = pos % osz
            n = min(osz - off, end - pos)
            pieces.append((idx, off, n))
            pos += n
        return pieces

    def read_object(self, ino: int, index: int,
                    src: Optional[Node] = None) -> SimGen:
        """One whole data object; missing objects read as empty (sparse)."""
        try:
            data = yield from self.store.get(self.key_data(ino, index), src=src)
        except NoSuchKey:
            return b""
        return data

    def read_objects(self, ino: int, indices: List[int],
                     src: Optional[Node] = None) -> SimGen:
        """Scatter-gather read of whole data objects; missing read as empty.

        Returns ``{index: data}``; one batched GET instead of one RTT per
        object (the cold-read fast path when the cache fans out misses)."""
        if not indices:
            return {}
        sp = _span(self.sim, "prt.read_objects", "prt")
        try:
            keys = [self.key_data(ino, idx) for idx in indices]
            raws = yield from self.store.get_many(keys, src=src)
        finally:
            sp.close()
        return {idx: (raw if raw is not None else b"")
                for idx, raw in zip(indices, raws)}

    def write_object(self, ino: int, index: int, data: bytes,
                     src: Optional[Node] = None) -> SimGen:
        if len(data) > self.data_object_size:
            raise ValueError("object larger than data_object_size")
        yield from self.store.put(self.key_data(ino, index), data, src=src)

    def read_data(self, ino: int, offset: int, length: int, file_size: int,
                  src: Optional[Node] = None) -> SimGen:
        """Translate a POSIX read into ranged GETs; zero-fills holes."""
        if offset >= file_size:
            return b""
        length = min(length, file_size - offset)
        sp = _span(self.sim, "prt.read_data", "prt")
        out = bytearray()
        try:
            for idx, off, n in self.chunk_range(offset, length):
                try:
                    piece = yield from self.store.get_range(
                        self.key_data(ino, idx), off, n, src=src)
                except NoSuchKey:
                    piece = b""
                if len(piece) < n:
                    piece = piece + b"\x00" * (n - len(piece))
                out += piece
        finally:
            sp.close()
        return bytes(out)

    def write_data(self, ino: int, offset: int, data: bytes,
                   src: Optional[Node] = None) -> SimGen:
        """Translate a POSIX write into object PUTs (read-modify-write at
        the edges when a piece only partially covers an existing object)."""
        sp = _span(self.sim, "prt.write_data", "prt")
        try:
            pos = 0
            for idx, off, n in self.chunk_range(offset, len(data)):
                piece = data[pos : pos + n]
                pos += n
                if off == 0 and n == self.data_object_size:
                    yield from self.write_object(ino, idx, piece, src=src)
                    continue
                old = yield from self.read_object(ino, idx, src=src)
                buf = bytearray(old)
                if len(buf) < off:
                    buf += b"\x00" * (off - len(buf))
                buf[off : off + n] = piece
                yield from self.write_object(ino, idx, bytes(buf), src=src)
        finally:
            sp.close()

    def truncate_data(self, ino: int, old_size: int, new_size: int,
                      src: Optional[Node] = None) -> SimGen:
        """Drop objects past the new EOF and trim the boundary object."""
        if new_size >= old_size:
            return
        sp = _span(self.sim, "prt.truncate_data", "prt")
        try:
            osz = self.data_object_size
            first_dead = -(-new_size // osz)  # ceil: first wholly-dead index
            last = (old_size - 1) // osz if old_size else -1
            dead = [self.key_data(ino, idx)
                    for idx in range(first_dead, last + 1)]
            if dead:
                yield from self.store.delete_many(dead, src=src)
            if new_size % osz:
                idx = new_size // osz
                old = yield from self.read_object(ino, idx, src=src)
                if len(old) > new_size % osz:
                    yield from self.write_object(
                        ino, idx, old[: new_size % osz], src=src)
        finally:
            sp.close()

    def delete_data(self, ino: int, src: Optional[Node] = None) -> SimGen:
        """Remove every data object of a file; returns count deleted."""
        sp = _span(self.sim, "prt.delete_data", "prt")
        try:
            n = yield from self.store.delete_prefix(self.key_data_prefix(ino),
                                                    src=src)
        finally:
            sp.close()
        return n
