"""PRT — the POSIX-REST Translator (Section III-F).

Defines how file-system state maps onto flat object keys and translates
block-granularity POSIX I/O into whole/ranged object REST operations:

* ``i<uuid>``            — inode (JSON)
* ``e<uuid>/<name>``     — one directory entry of directory ``<uuid>``
* ``j<uuid>/<seq>``      — one committed journal transaction of the directory
* ``d<uuid>/<index>``    — one data object of a file (fixed-size chunks)
* ``t<txid>``            — a two-phase-commit decision record
* ``p<pack-id>``         — a sealed small-file container (packed chunks)
* ``x<uuid>``            — a file's extent index: chunk → container extent
* ``s<uuid>``            — a sharded directory's hash-range shard map

File data is split into ``data_object_size`` chunks ("The PRT module divides
the file data into multiple objects if the file size exceeds the maximum
object size defined by the object storage"). Missing chunks read as zeros
(sparse files). With packing enabled, a chunk may instead live as a
``(pack, offset, length)`` extent inside a container object; the extent
index *wins* over a plain ``d`` object for the same chunk (the seal
protocol deletes the stale plain object only after the index commit).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..objectstore.base import ObjectStore
from ..objectstore.errors import NoSuchKey
from ..obs import Observability
from ..obs.trace import span as _span
from ..sim.engine import SimGen
from ..sim.network import Node
from .retry import RetryPolicy
from .types import Dentry, Inode, PackExtent, ino_hex

__all__ = ["PRT"]


class PRT:
    """Key schema + chunked data path over one object-storage backend."""

    def __init__(self, store: ObjectStore, data_object_size: int,
                 retry: Optional[RetryPolicy] = None,
                 pack_enabled: bool = False):
        if data_object_size <= 0:
            raise ValueError("data_object_size must be positive")
        self.store = store
        self.sim = store.sim
        self.data_object_size = data_object_size
        self._retry = retry
        self.pack_enabled = pack_enabled
        # Purge fan-out observability (unlink / truncate / container reclaim
        # all funnel through ``_purge``).
        m = Observability.of(self.sim).metrics.scope("prt.purge")
        self._c_batched_deletes = m.counter("batched_deletes")
        self._c_serial_deletes = m.counter("serial_deletes")
        self._c_purge_batches = m.counter("batches")
        self._g_purge_batch = m.gauge("batch")

    def _call(self, factory) -> SimGen:
        """Run a store op under the client retry policy when one is wired
        (zero extra sim events on success — no-fault runs stay identical)."""
        if self._retry is not None:
            return (yield from self._retry.call(factory))
        return (yield from factory())

    # -- key construction ------------------------------------------------------

    @staticmethod
    def key_inode(ino: int) -> str:
        return "i" + ino_hex(ino)

    @staticmethod
    def key_dentry(dir_ino: int, name: str) -> str:
        return f"e{ino_hex(dir_ino)}/{name}"

    @staticmethod
    def key_dentry_prefix(dir_ino: int) -> str:
        return f"e{ino_hex(dir_ino)}/"

    @staticmethod
    def key_journal(dir_ino: int, seq: int) -> str:
        return f"j{ino_hex(dir_ino)}/{seq:012d}"

    @staticmethod
    def key_journal_prefix(dir_ino: int) -> str:
        return f"j{ino_hex(dir_ino)}/"

    @staticmethod
    def key_data(ino: int, index: int) -> str:
        return f"d{ino_hex(ino)}/{index:010d}"

    @staticmethod
    def key_data_prefix(ino: int) -> str:
        return f"d{ino_hex(ino)}/"

    @staticmethod
    def key_decision(txid: str) -> str:
        return f"t{txid}"

    @staticmethod
    def key_pack(pack_id: str) -> str:
        return "p" + pack_id

    @staticmethod
    def key_extent_index(ino: int) -> str:
        return "x" + ino_hex(ino)

    @staticmethod
    def key_shard_map(dir_ino: int) -> str:
        return "s" + ino_hex(dir_ino)

    # -- inode / dentry objects ---------------------------------------------------

    def get_inode(self, ino: int, src: Optional[Node] = None) -> SimGen:
        raw = yield from self.store.get(self.key_inode(ino), src=src)
        return Inode.from_bytes(raw)

    def put_inode(self, inode: Inode, src: Optional[Node] = None) -> SimGen:
        yield from self.store.put(self.key_inode(inode.ino), inode.to_bytes(),
                                  src=src)

    def delete_inode(self, ino: int, src: Optional[Node] = None) -> SimGen:
        try:
            yield from self.store.delete(self.key_inode(ino), src=src)
        except NoSuchKey:
            pass  # idempotent (journal replay may re-delete)

    def inode_exists(self, ino: int, src: Optional[Node] = None) -> SimGen:
        return (yield from self.store.exists(self.key_inode(ino), src=src))

    def get_dentry(self, dir_ino: int, name: str,
                   src: Optional[Node] = None) -> SimGen:
        raw = yield from self.store.get(self.key_dentry(dir_ino, name), src=src)
        return Dentry.from_bytes(raw)

    def put_dentry(self, dir_ino: int, dentry: Dentry,
                   src: Optional[Node] = None) -> SimGen:
        yield from self.store.put(self.key_dentry(dir_ino, dentry.name),
                                  dentry.to_bytes(), src=src)

    def delete_dentry(self, dir_ino: int, name: str,
                      src: Optional[Node] = None) -> SimGen:
        try:
            yield from self.store.delete(self.key_dentry(dir_ino, name), src=src)
        except NoSuchKey:
            pass

    def list_dentries(self, dir_ino: int, src: Optional[Node] = None) -> SimGen:
        """All dentries of a directory, name-sorted (metatable load path)."""
        prefix = self.key_dentry_prefix(dir_ino)
        keys = yield from self.store.list(prefix, src=src)
        raws = yield from self.store.get_many(keys, src=src)
        # A dentry deleted between LIST and GET simply isn't part of the
        # load — same race a real S3 lister has.
        return [Dentry.from_bytes(raw) for raw in raws if raw is not None]

    # -- shard maps ------------------------------------------------------------

    def get_shard_map(self, dir_ino: int, src: Optional[Node] = None) -> SimGen:
        """A sharded directory's partition map, or ``None`` when the
        directory is flat (the common case)."""
        from .shards import ShardMap

        try:
            raw = yield from self.store.get(self.key_shard_map(dir_ino),
                                            src=src)
        except NoSuchKey:
            return None
        return ShardMap.from_bytes(raw)

    def put_shard_map(self, smap, src: Optional[Node] = None) -> SimGen:
        """One atomic PUT — this is the split protocol's commit point when
        the map carries state ``"active"``."""
        yield from self._call(lambda: self.store.put(
            self.key_shard_map(smap.dir_ino), smap.to_bytes(), src=src))

    def delete_shard_map(self, dir_ino: int,
                         src: Optional[Node] = None) -> SimGen:
        try:
            yield from self._call(lambda: self.store.delete(
                self.key_shard_map(dir_ino), src=src))
        except NoSuchKey:
            pass

    # -- data path -------------------------------------------------------------------

    def chunk_range(self, offset: int, length: int) -> List[Tuple[int, int, int]]:
        """Split a byte range into per-object pieces.

        Returns ``(object_index, offset_in_object, piece_length)`` triples.
        """
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        osz = self.data_object_size
        pieces = []
        pos = offset
        end = offset + length
        while pos < end:
            idx = pos // osz
            off = pos % osz
            n = min(osz - off, end - pos)
            pieces.append((idx, off, n))
            pos += n
        return pieces

    def read_object(self, ino: int, index: int,
                    src: Optional[Node] = None) -> SimGen:
        """One whole data object; missing objects read as empty (sparse)."""
        try:
            data = yield from self.store.get(self.key_data(ino, index), src=src)
        except NoSuchKey:
            return b""
        return data

    def read_objects(self, ino: int, indices: List[int],
                     src: Optional[Node] = None) -> SimGen:
        """Scatter-gather read of whole data objects; missing read as empty.

        Returns ``{index: data}``; one batched GET instead of one RTT per
        object (the cold-read fast path when the cache fans out misses)."""
        if not indices:
            return {}
        sp = _span(self.sim, "prt.read_objects", "prt")
        try:
            keys = [self.key_data(ino, idx) for idx in indices]
            raws = yield from self.store.get_many(keys, src=src)
        finally:
            sp.close()
        return {idx: (raw if raw is not None else b"")
                for idx, raw in zip(indices, raws)}

    def write_object(self, ino: int, index: int, data: bytes,
                     src: Optional[Node] = None) -> SimGen:
        if len(data) > self.data_object_size:
            raise ValueError("object larger than data_object_size")
        yield from self.store.put(self.key_data(ino, index), data, src=src)

    def read_data(self, ino: int, offset: int, length: int, file_size: int,
                  src: Optional[Node] = None) -> SimGen:
        """Translate a POSIX read into ranged GETs; zero-fills holes."""
        if offset >= file_size:
            return b""
        length = min(length, file_size - offset)
        extents: Dict[int, PackExtent] = {}
        if self.pack_enabled:
            extents = yield from self.read_extent_index(ino, src=src)
        sp = _span(self.sim, "prt.read_data", "prt")
        out = bytearray()
        try:
            for idx, off, n in self.chunk_range(offset, length):
                ext = extents.get(idx)
                try:
                    if ext is not None:
                        piece = yield from self.read_extent(ext, off, n,
                                                            src=src)
                    else:
                        piece = yield from self.store.get_range(
                            self.key_data(ino, idx), off, n, src=src)
                except NoSuchKey:
                    piece = b""
                if len(piece) < n:
                    piece = piece + b"\x00" * (n - len(piece))
                out += piece
        finally:
            sp.close()
        return bytes(out)

    def write_data(self, ino: int, offset: int, data: bytes,
                   src: Optional[Node] = None) -> SimGen:
        """Translate a POSIX write into object PUTs (read-modify-write at
        the edges when a piece only partially covers an existing object).

        Chunks that currently live as packed extents are converted back to
        plain objects: the extent supplies the RMW base and its index entry
        is dropped afterwards (the extent index must never shadow a newer
        plain object)."""
        extents: Dict[int, PackExtent] = {}
        if self.pack_enabled:
            extents = yield from self.read_extent_index(ino, src=src)
        sp = _span(self.sim, "prt.write_data", "prt")
        unpacked: List[int] = []
        try:
            pos = 0
            for idx, off, n in self.chunk_range(offset, len(data)):
                piece = data[pos : pos + n]
                pos += n
                ext = extents.get(idx)
                if ext is not None:
                    unpacked.append(idx)
                if off == 0 and n == self.data_object_size:
                    yield from self.write_object(ino, idx, piece, src=src)
                    continue
                if ext is not None:
                    try:
                        old = yield from self.read_extent(ext, src=src)
                    except NoSuchKey:
                        old = b""
                else:
                    old = yield from self.read_object(ino, idx, src=src)
                buf = bytearray(old)
                if len(buf) < off:
                    buf += b"\x00" * (off - len(buf))
                buf[off : off + n] = piece
                yield from self.write_object(ino, idx, bytes(buf), src=src)
            if unpacked:
                yield from self.apply_extent_delta(ino, del_list=unpacked,
                                                   src=src)
        finally:
            sp.close()

    def truncate_data(self, ino: int, old_size: int, new_size: int,
                      src: Optional[Node] = None) -> SimGen:
        """Drop objects past the new EOF and trim the boundary object."""
        if new_size >= old_size:
            return
        sp = _span(self.sim, "prt.truncate_data", "prt")
        try:
            osz = self.data_object_size
            first_dead = -(-new_size // osz)  # ceil: first wholly-dead index
            last = (old_size - 1) // osz if old_size else -1
            dead = [self.key_data(ino, idx)
                    for idx in range(first_dead, last + 1)]
            if dead:
                yield from self._purge(dead, src=src)
            if new_size % osz:
                idx = new_size // osz
                old = yield from self.read_object(ino, idx, src=src)
                if len(old) > new_size % osz:
                    yield from self.write_object(
                        ino, idx, old[: new_size % osz], src=src)
        finally:
            sp.close()

    def delete_data(self, ino: int, src: Optional[Node] = None) -> SimGen:
        """Remove every data object of a file; returns count deleted.

        With packing enabled the file's extent index object rides in the
        same batched purge (the container bytes it pointed at become dead
        and are reclaimed by the compactor)."""
        sp = _span(self.sim, "prt.delete_data", "prt")
        try:
            keys = list((yield from self.store.list(
                self.key_data_prefix(ino), src=src)))
            if self.pack_enabled:
                keys.append(self.key_extent_index(ino))
            n = yield from self._purge(keys, src=src)
        finally:
            sp.close()
        return n

    def _purge(self, keys: List[str], src: Optional[Node] = None) -> SimGen:
        """Batched deletion under the store retry policy.

        Every purge path (unlink, truncate, dead-container reclaim) funnels
        here so deletions ride ``delete_many`` fan-out instead of one RTT
        per key, and show up in the ``prt.purge`` metrics."""
        if not keys:
            return 0
        if len(keys) == 1:
            self._c_serial_deletes.inc()
        else:
            self._c_purge_batches.inc()
            self._c_batched_deletes.inc(len(keys))
            self._g_purge_batch.track(len(keys))
        n = yield from self._call(
            lambda: self.store.delete_many(keys, src=src))
        return n

    # -- packed extents ----------------------------------------------------------

    @staticmethod
    def parse_extent_index(raw: bytes) -> Dict[int, PackExtent]:
        d = json.loads(raw)
        return {int(k): PackExtent(v[0], v[1], v[2]) for k, v in d.items()}

    @staticmethod
    def dump_extent_index(extents: Dict[int, PackExtent]) -> bytes:
        return json.dumps(
            {str(k): list(extents[k]) for k in sorted(extents)},
            separators=(",", ":")).encode()

    def read_extent_index(self, ino: int,
                          src: Optional[Node] = None) -> SimGen:
        """The file's chunk → container extent map; ``{}`` when absent."""
        try:
            raw = yield from self.store.get(self.key_extent_index(ino),
                                            src=src)
        except NoSuchKey:
            return {}
        return self.parse_extent_index(raw)

    def read_extent(self, ext: PackExtent, off: int = 0,
                    length: Optional[int] = None,
                    src: Optional[Node] = None) -> SimGen:
        """Ranged GET of (part of) one packed chunk from its container.

        ``off`` is relative to the chunk start (extents always cover a
        chunk prefix); the range is clamped to the extent. Raises
        ``NoSuchKey`` if the container is gone (callers treat that as a
        hole or retry against a fresh index)."""
        n = ext.length - off if length is None else min(length,
                                                        ext.length - off)
        if n <= 0:
            return b""
        return (yield from self.store.get_range(
            self.key_pack(ext.pack), ext.offset + off, n, src=src))

    def apply_extent_delta(self, ino: int,
                           set_map: Optional[Dict[int, PackExtent]] = None,
                           del_list=(), clear: bool = False,
                           src: Optional[Node] = None) -> SimGen:
        """Idempotent read-modify-write on a file's extent index.

        ``clear`` drops the whole index first, then ``del_list`` entries
        are removed and ``set_map`` entries installed; the index object is
        deleted when it ends empty. Replaying the same delta is a no-op,
        which is what lets these ride the journal's redo log."""
        key = self.key_extent_index(ino)
        cur = ({} if clear
               else (yield from self.read_extent_index(ino, src=src)))
        for idx in del_list:
            cur.pop(int(idx), None)
        for idx, ext in (set_map or {}).items():
            cur[int(idx)] = PackExtent(*ext)
        if cur:
            yield from self.store.put(key, self.dump_extent_index(cur),
                                      src=src)
        else:
            try:
                yield from self.store.delete(key, src=src)
            except NoSuchKey:
                pass
        return cur

    def truncate_extents(self, ino: int, new_size: int,
                         src: Optional[Node] = None) -> SimGen:
        """Pack analogue of :meth:`truncate_data`: drop extents wholly past
        the new EOF and shorten the boundary chunk's extent (extents cover
        chunk prefixes, so a prefix trim keeps surviving bytes intact).

        Returns what the truncate killed as ``(chunk index, old extent,
        kept bytes)`` tuples (``kept`` nonzero only for the trimmed
        boundary chunk), so the caller can feed the pack layer's keyed
        live-byte accounting (which drives reclaim and compaction)."""
        cur = yield from self.read_extent_index(ino, src=src)
        if not cur:
            return []
        osz = self.data_object_size
        first_dead = -(-new_size // osz)
        dead = [idx for idx in cur if idx >= first_dead]
        killed = [(idx, cur[idx], 0) for idx in dead]
        set_map: Dict[int, PackExtent] = {}
        if new_size % osz:
            bidx = new_size // osz
            ext = cur.get(bidx)
            if ext is not None and ext.length > new_size % osz:
                kept = new_size % osz
                set_map[bidx] = PackExtent(ext.pack, ext.offset, kept)
                killed.append((bidx, ext, kept))
        if dead or set_map:
            yield from self.apply_extent_delta(
                ino, set_map=set_map, del_list=dead, src=src)
        return killed
