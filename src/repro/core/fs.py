"""ArkFS cluster assembly.

Wires together the pieces the paper's Figure 2 shows: an object-storage
backend (RADOS-like or S3-like), a lease manager on one node, and N client
nodes each running an :class:`~repro.core.client.ArkFSClient` (optionally
behind a FUSE mount model — ArkFS is implemented with FUSE, so benchmarks
mount it that way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..objectstore.base import ObjectStore
from ..objectstore.cluster import ClusterObjectStore
from ..objectstore.memory import InMemoryObjectStore
from ..objectstore.profiles import (RADOS_PROFILE, S3_COLD_PROFILE,
                                    StoreProfile)
from ..objectstore.tiered import TieredObjectStore
from ..posix.fuse import FUSE_DEFAULTS, FuseMount, MountParams
from ..posix.types import FileType
from ..sim.engine import Simulator
from ..sim.network import NetParams, Network, Node
from .client import ArkFSClient
from .lease import LeaseManager, LeaseManagerCluster
from .params import ArkFSParams, DEFAULT_PARAMS
from .prt import PRT
from .retry import RetryPolicy
from .types import Inode, InoAllocator, ROOT_INO

__all__ = ["ArkFSCluster", "build_arkfs", "mkfs"]


def mkfs(sim: Simulator, store: ObjectStore, mode: int = 0o777) -> None:
    """Initialize an empty file system: write the root directory inode."""
    root = Inode(ino=ROOT_INO, ftype=FileType.DIRECTORY, mode=mode,
                 uid=0, gid=0, atime=sim.now, mtime=sim.now, ctime=sim.now)
    sim.run_process(store.put(PRT.key_inode(ROOT_INO), root.to_bytes()),
                    name="mkfs")


@dataclass
class ArkFSCluster:
    """A built ArkFS deployment: clients, mounts, manager, and the backend."""

    sim: Simulator
    net: Network
    store: ObjectStore
    prt: PRT
    params: ArkFSParams
    lease_manager: LeaseManager          # the first (or only) manager
    lease_service: object = None         # LeaseManager or LeaseManagerCluster
    qos: object = None                   # QosManager when params.qos_enabled
    clients: List[ArkFSClient] = field(default_factory=list)
    mounts: List[FuseMount] = field(default_factory=list)

    def client(self, i: int = 0) -> ArkFSClient:
        return self.clients[i]

    def mount(self, i: int = 0) -> FuseMount:
        """The FUSE mount view of client ``i`` (what applications use)."""
        return self.mounts[i]


def build_arkfs(
    sim: Simulator,
    n_clients: int = 1,
    params: ArkFSParams = DEFAULT_PARAMS,
    store: Optional[ObjectStore] = None,
    store_profile: Optional[StoreProfile] = None,
    net_params: Optional[NetParams] = None,
    mount_params: MountParams = FUSE_DEFAULTS,
    client_cores: int = 32,
    functional: bool = False,
    seed: int = 0,
    n_lease_managers: int = 1,
    faults: Optional["FaultPlan"] = None,
    cold_profile: Optional[StoreProfile] = None,
) -> ArkFSCluster:
    """Build a full ArkFS cluster.

    ``functional=True`` uses the zero-latency in-memory store (for semantic
    tests); otherwise a :class:`ClusterObjectStore` with ``store_profile``
    (RADOS-like by default). The lease manager is deployed on one of the
    client nodes, as in the paper's evaluation setup.

    ``n_lease_managers > 1`` deploys a :class:`LeaseManagerCluster`:
    directories hash-partition across managers, authority carries a
    monotonic per-range epoch, and every client wires its journal to the
    cluster's fencing registry so a deposed leader's stale-epoch commits
    are refused (see ``repro.core.lease``).

    ``faults`` (a :class:`repro.faults.FaultPlan`) slides a fault-injection
    shim beneath the store and the network. When it is ``None`` — the
    default — no wrapper is installed at all, so fault-free runs are
    structurally guaranteed to be bit-identical to a build without this
    parameter.
    """
    net = Network(sim, net_params or NetParams())
    # Multi-tenant QoS plane: built first so the stores' OSD queues and the
    # lease managers' CPUs come up tenant-weighted. ``None`` (the default)
    # leaves every queue/dispatch path structurally identical to a build
    # without the subsystem.
    qos = None
    if params.qos_enabled:
        from .qos import QosManager
        qos = QosManager(sim, params)
    if store is None and params.tier_enabled:
        # Hot/cold tiered backend: a fast RADOS-like tier fronting a cold
        # capacity store. The fault shim wraps *each* tier so every
        # stage/drain/promote/demote store op is a crash point, while the
        # tier itself stays unwrapped — crashcheck reaches lose_hot() and
        # the dirty-key bookkeeping directly on ``cluster.store``.
        if functional:
            hot: ObjectStore = InMemoryObjectStore(sim)
            cold: ObjectStore = InMemoryObjectStore(sim)
        else:
            hot = ClusterObjectStore(sim, store_profile or RADOS_PROFILE,
                                     net=net, qos=qos)
            cold = ClusterObjectStore(sim, cold_profile or S3_COLD_PROFILE,
                                      net=net, qos=qos)
        if faults is not None:
            from ..faults.store import FaultyObjectStore
            hot = FaultyObjectStore(hot, faults)
            cold = FaultyObjectStore(cold, faults)
            net.faults = faults
            faults.attach(sim)
        store = TieredObjectStore(
            sim, hot, cold,
            hot_capacity=params.tier_hot_capacity,
            high_watermark=params.tier_high_watermark,
            low_watermark=params.tier_low_watermark,
            dirty_max=params.tier_dirty_max,
            drain_interval=params.tier_drain_interval,
            drain_batch=params.tier_drain_batch,
            promote_max=params.tier_promote_max,
            retry=RetryPolicy.from_params(sim, params),
        )
    else:
        if store is None:
            if functional:
                store = InMemoryObjectStore(sim)
            else:
                store = ClusterObjectStore(sim,
                                           store_profile or RADOS_PROFILE,
                                           net=net, qos=qos)
        if faults is not None:
            from ..faults.store import FaultyObjectStore
            store = FaultyObjectStore(store, faults)
            net.faults = faults
            faults.attach(sim)
    prt = PRT(store, params.data_object_size,
              retry=RetryPolicy.from_params(sim, params),
              pack_enabled=params.pack_enabled)
    mkfs(sim, store)

    if n_lease_managers <= 1:
        mgr_node = Node(sim, "lease-mgr", cores=4, net=net)
        service = LeaseManager(sim, mgr_node, params)
        first = service
    else:
        # The paper's future-work extension: a hash-partitioned manager
        # cluster (see LeaseManagerCluster).
        mgr_nodes = [Node(sim, f"lease-mgr{i}", cores=4, net=net)
                     for i in range(n_lease_managers)]
        service = LeaseManagerCluster(sim, mgr_nodes, params)
        first = service.managers[0]

    if qos is not None:
        # Tenant-weighted WFQ replaces the FIFO CPU queue at every lease
        # manager; handlers attribute their work via the client name on
        # the lease RPC (QosManager.tenant_of).
        from .qos import WFQResource
        managers = getattr(service, "managers", None) or [service]
        for m in managers:
            m.qos = qos
            m.node.cpu = WFQResource(sim, capacity=m.node.cpu.capacity,
                                     name=m.node.cpu.name,
                                     weight_of=qos.weight_of)

    alloc = InoAllocator(seed=seed)
    cluster = ArkFSCluster(sim=sim, net=net, store=store, prt=prt,
                           params=params, lease_manager=first,
                           lease_service=service, qos=qos)
    for i in range(n_clients):
        node = Node(sim, f"client{i}", cores=client_cores, net=net)
        client = ArkFSClient(sim, node, prt, params, service, alloc)
        if qos is not None:
            # Default tenancy: one tenant per client, named after the
            # client node; workloads rebind via client.bind_tenant().
            client.qos = qos
            client.bind_tenant(node.name)
        cluster.clients.append(client)
        cluster.mounts.append(FuseMount(client, node, mount_params))
    # Every client knows the population, so shard-lease placement hashes
    # over the same ring everywhere (names, not objects: a restarted peer
    # stays addressable).
    names = [c.name for c in cluster.clients]
    for c in cluster.clients:
        c.peers = names
    return cluster
