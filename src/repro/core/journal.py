"""Per-directory journaling with compound transactions (Section III-E).

Each directory a client leads gets its own journal in the object store
(``j<dir-uuid>/<seq>`` objects), so journal commits for independent
directories proceed in parallel. Metadata modifications accumulate in an
in-memory *running* transaction for up to ``journal_commit_interval``
seconds (1 s by default); commit threads then write the compound
transaction to the journal, and checkpoint threads apply it to the base
``i``/``e`` objects and invalidate the journal entry. Journals are
statically mapped to commit/checkpoint threads by directory inode number.

Cross-directory operations (RENAME) use two-phase commit: a *prepare*
transaction is force-committed in each participant journal, then a decision
record (``t<txid>``) is atomically created; recovery resolves prepared
transactions against the decision record, writing an "abort" decision with
an exclusive create if none exists (so a crashed coordinator cannot leave
participants in doubt forever).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..objectstore.errors import NoSuchKey
from ..obs import Observability
from ..obs.trace import span as _span
from ..sim.engine import Interrupt, SimGen, Simulator
from ..sim.network import Node
from ..sim.resources import Mutex
from .lease import StaleEpochError
from .params import ArkFSParams
from .prt import PRT
from .retry import RetryPolicy
from .types import Dentry, Inode, ino_hex

__all__ = ["JournalOp", "Transaction", "JournalManager", "apply_ops",
           "ops_put_inode", "ops_del_inode", "ops_put_dentry",
           "ops_del_dentry", "ops_set_extents", "ops_del_extents",
           "ops_clear_extents"]

JournalOp = Dict[str, Any]


# -- op record constructors ---------------------------------------------------

def ops_put_inode(inode: Inode) -> JournalOp:
    return {"op": "put_inode", "inode": inode.to_dict()}


def ops_del_inode(ino: int) -> JournalOp:
    return {"op": "del_inode", "ino": ino_hex(ino)}


def ops_put_dentry(dir_ino: int, dentry: Dentry) -> JournalOp:
    return {"op": "put_dentry", "dir": ino_hex(dir_ino), "dentry": dentry.to_dict()}


def ops_del_dentry(dir_ino: int, name: str) -> JournalOp:
    return {"op": "del_dentry", "dir": ino_hex(dir_ino), "name": name}


def ops_set_extents(ino: int, set_map) -> JournalOp:
    """Install/replace packed-extent entries in a file's extent index."""
    return {"op": "extents", "ino": ino_hex(ino),
            "set": {str(int(k)): list(v) for k, v in set_map.items()}}


def ops_del_extents(ino: int, del_list) -> JournalOp:
    """Remove packed-extent entries (chunk rewritten as a plain object)."""
    return {"op": "extents", "ino": ino_hex(ino),
            "del": sorted(int(i) for i in del_list)}


def ops_clear_extents(ino: int) -> JournalOp:
    """Drop a file's whole extent index (unlink/overwrite purge). Without
    this op, a committed-but-uncheckpointed ``set`` would recreate the
    index object after the purge already deleted it."""
    return {"op": "extents", "ino": ino_hex(ino), "clear": True}


def _coalesce(ops: List[JournalOp]) -> List[JournalOp]:
    """Final-state coalescing: within one transaction only the last action
    per object matters (this is what makes compound transactions cheap)."""
    final: Dict[Tuple, JournalOp] = {}
    for op in ops:
        kind = op["op"]
        if kind in ("put_inode",):
            key = ("i", op["inode"]["ino"])
        elif kind == "del_inode":
            key = ("i", op["ino"])
        elif kind == "put_dentry":
            key = ("e", op["dir"], op["dentry"]["n"])
        elif kind == "del_dentry":
            key = ("e", op["dir"], op["name"])
        elif kind == "extents":
            # Extent deltas MERGE rather than last-wins: each op names only
            # the chunks it touched, so dropping earlier ones would lose
            # index entries. A ``clear`` resets the accumulated state.
            key = ("x", op["ino"])
            prev = final.get(key)
            if prev is None or op.get("clear"):
                final[key] = {
                    "op": "extents", "ino": op["ino"],
                    "set": dict(op.get("set") or {}),
                    "del": sorted(int(i) for i in op.get("del") or ()),
                    "clear": bool(op.get("clear")),
                }
                continue
            sets = prev["set"]
            dels = set(prev["del"])
            for k, v in (op.get("set") or {}).items():
                sets[str(int(k))] = v
                dels.discard(int(k))
            for i in op.get("del") or ():
                sets.pop(str(int(i)), None)
                dels.add(int(i))
            prev["del"] = sorted(dels)
            continue
        else:
            raise ValueError(f"unknown journal op {kind!r}")
        final[key] = op
    return list(final.values())


def _apply_one(prt: PRT, op: JournalOp, src: Optional[Node] = None) -> SimGen:
    kind = op["op"]
    if kind == "put_inode":
        yield from prt.put_inode(Inode.from_dict(op["inode"]), src=src)
    elif kind == "del_inode":
        yield from prt.delete_inode(int(op["ino"], 16), src=src)
    elif kind == "put_dentry":
        yield from prt.put_dentry(int(op["dir"], 16),
                                  Dentry.from_dict(op["dentry"]), src=src)
    elif kind == "del_dentry":
        yield from prt.delete_dentry(int(op["dir"], 16), op["name"], src=src)
    elif kind == "extents":
        yield from prt.apply_extent_delta(
            int(op["ino"], 16),
            set_map={int(k): tuple(v)
                     for k, v in (op.get("set") or {}).items()},
            del_list=op.get("del") or (),
            clear=bool(op.get("clear")),
            src=src)
    else:
        raise ValueError(f"unknown journal op {kind!r}")


def apply_ops(prt: PRT, ops: List[JournalOp],
              src: Optional[Node] = None, parallel: bool = True) -> SimGen:
    """Apply (checkpoint/replay) journal ops to the base objects.

    Idempotent: ops carry full state, deletes tolerate absence — replaying
    a transaction any number of times converges to the same store state.

    After coalescing, every op in a transaction targets a *distinct* base
    object, so ordering within the transaction is free — the PUTs/DELETEs
    are issued concurrently (``parallel=False`` restores the serial walk,
    one object-store RTT per op).
    """
    final = _coalesce(ops)
    if not parallel or len(final) <= 1:
        for op in final:
            yield from _apply_one(prt, op, src=src)
        return len(final)
    sim = prt.store.sim
    procs = [sim.process(_apply_one(prt, op, src=src), name="ckpt-op")
             for op in final]
    yield sim.all_of(procs)
    return len(final)


class Transaction:
    """A committed (on-storage) journal transaction."""

    __slots__ = ("txid", "dir_ino", "kind", "ops", "decision_key", "seq")

    def __init__(self, txid: str, dir_ino: int, kind: str,
                 ops: List[JournalOp], decision_key: Optional[str] = None,
                 seq: int = -1):
        self.txid = txid
        self.dir_ino = dir_ino
        self.kind = kind  # "update" | "prepare"
        self.ops = ops
        self.decision_key = decision_key
        self.seq = seq

    def to_bytes(self) -> bytes:
        d = {"txid": self.txid, "dir": ino_hex(self.dir_ino),
             "kind": self.kind, "ops": self.ops}
        if self.decision_key:
            d["decision"] = self.decision_key
        return json.dumps(d, separators=(",", ":")).encode()

    @classmethod
    def from_bytes(cls, raw: bytes, seq: int = -1) -> "Transaction":
        d = json.loads(raw)
        return cls(txid=d["txid"], dir_ino=int(d["dir"], 16), kind=d["kind"],
                   ops=d["ops"], decision_key=d.get("decision"), seq=seq)


class _DirJournal:
    """In-memory state of one directory's journal at its current leader."""

    __slots__ = ("dir_ino", "running", "next_seq", "pending_seqs",
                 "commit_lock", "ckpt_lock", "ops_recorded", "ops_committed")

    def __init__(self, sim: Simulator, dir_ino: int):
        self.dir_ino = dir_ino
        self.running: List[JournalOp] = []
        self.next_seq = 0
        # Group-commit bookkeeping: a flush only needs ops recorded *before*
        # it was called to become durable; concurrent flushes share commits.
        self.ops_recorded = 0
        self.ops_committed = 0
        # seqs committed to storage but not yet checkpointed
        self.pending_seqs: List[int] = []
        # Commits (new journal objects) and checkpoints (applying old ones)
        # touch disjoint objects, so they serialize independently — a slow
        # background checkpoint must not block an fsync's commit.
        self.commit_lock = Mutex(sim, name=f"jcommit:{dir_ino:x}")
        self.ckpt_lock = Mutex(sim, name=f"jckpt:{dir_ino:x}")


class JournalManager:
    """All journals of one ArkFS client, plus its commit/checkpoint threads."""

    def __init__(self, sim: Simulator, prt: PRT, params: ArkFSParams,
                 node: Node, client_name: str):
        self.sim = sim
        self.prt = prt
        self.params = params
        self.node = node
        self.client_name = client_name
        self.journals: Dict[int, _DirJournal] = {}
        self._txn_counter = 0
        self._threads: List = []
        self._stopped = False
        self._retry = RetryPolicy.from_params(sim, params)
        # Epoch fencing (lease-manager-cluster mode). ``fencing`` is the
        # shared FencingRegistry the journal stream heads consult before
        # accepting a commit; ``token_of`` maps dir_ino -> the client's
        # current (mgr_epoch, dir_epoch) authority token. Both stay None in
        # single-manager builds — no check runs, no events change.
        self.fencing = None
        self.token_of = None
        self.fencing_enforce = True
        # Commit/checkpoint counters and fan-out observability (how parallel
        # the checkpoint/commit paths actually ran) live in the sim-wide
        # metrics registry, namespaced per client.
        m = Observability.of(sim).metrics.scope(client_name + ".journal")
        self._c_commits = m.counter("commits")
        self._c_checkpoints = m.counter("checkpoints")
        self._c_ckpt_batches = m.counter("ckpt_batches")
        self._c_ckpt_batched_ops = m.counter("ckpt_batched_ops")
        self._c_ckpt_serial_ops = m.counter("ckpt_serial_ops")
        self._c_commit_rounds = m.counter("commit_rounds")
        self._g_ckpt_batch = m.gauge("ckpt_batch")
        self._g_commit_fanout = m.gauge("commit_fanout")
        # (dir_ino, seq) -> committed txn awaiting checkpoint
        self._checkpoint_txns: Dict[Tuple[int, int], Transaction] = {}

    @property
    def commits(self) -> int:
        """Committed transactions (legacy accessor for the registry counter)."""
        return self._c_commits.value

    @property
    def checkpoints(self) -> int:
        return self._c_checkpoints.value

    @property
    def fanout(self) -> Dict[str, int]:
        """Legacy snapshot of the fan-out counters (deprecated shim).

        Previously a live dict mutated in place; same keys, now a
        point-in-time copy backed by the metrics registry."""
        return {
            "ckpt_batches": self._c_ckpt_batches.value,
            "ckpt_batched_ops": self._c_ckpt_batched_ops.value,
            "ckpt_serial_ops": self._c_ckpt_serial_ops.value,
            "ckpt_max_batch": self._g_ckpt_batch.max_value,
            "commit_rounds": self._c_commit_rounds.value,
            "commit_max_fanout": self._g_commit_fanout.max_value,
        }

    def _acquire(self, lock: Mutex) -> SimGen:
        """Request a journal lock, attributing a contended wait when traced.

        Returns the granted request (caller must release it)."""
        tr = self.sim._tracer
        req = lock.request()
        if tr is not None and not req.granted:
            with tr.span(lock._wait_name, "queue"):
                yield req
        else:
            yield req
        return req

    # -- lifecycle -----------------------------------------------------------

    def start_threads(self) -> None:
        """Spawn the background commit threads (one pipeline per thread id;
        each also checkpoints what it commits, preserving per-dir order)."""
        for tid in range(self.params.n_commit_threads):
            p = self.sim.process(self._commit_loop(tid),
                                 name=f"{self.client_name}.journal{tid}")
            self._threads.append(p)

    def stop(self) -> None:
        """Abrupt stop (client crash): running transactions are lost, and
        committed-but-unapplied journal objects stay for recovery."""
        self._stopped = True
        for p in self._threads:
            p.interrupt("stop")
        self._threads.clear()

    def _commit_loop(self, tid: int) -> SimGen:
        interval = self.params.journal_commit_interval or 1.0
        try:
            while not self._stopped:
                yield self.sim.timeout(interval)
                dirty = []
                for dir_ino in list(self.journals):
                    if dir_ino % self.params.n_commit_threads != tid:
                        continue
                    dj = self.journals.get(dir_ino)
                    if dj is None or not (dj.running or dj.pending_seqs):
                        continue
                    dirty.append(dj)
                if not dirty:
                    continue
                # Commit every assigned dirty directory in parallel — the
                # journal objects are independent, so one slow directory
                # must not delay the round's other commits by an RTT each.
                self._c_commit_rounds.inc()
                self._g_commit_fanout.track(len(dirty))
                if len(dirty) == 1:
                    yield from self._commit_and_checkpoint(dirty[0])
                else:
                    procs = [
                        self.sim.process(self._commit_and_checkpoint(dj),
                                         name=f"commit:{dj.dir_ino:x}")
                        for dj in dirty
                    ]
                    yield self.sim.all_of(procs)
        except Interrupt:
            return

    # -- recording ------------------------------------------------------------

    def _journal_key(self, dir_ino: int) -> int:
        # Ablation A1: a single shared journal serializes every commit.
        return 0 if self.params.single_journal else dir_ino

    def journal_for(self, dir_ino: int) -> _DirJournal:
        key = self._journal_key(dir_ino)
        dj = self.journals.get(key)
        if dj is None:
            dj = _DirJournal(self.sim, key)
            self.journals[key] = dj
        return dj

    def record(self, dir_ino: int, *ops: JournalOp) -> None:
        """Append ops to the directory's running compound transaction."""
        if self._stopped:
            return
        dj = self.journal_for(dir_ino)
        dj.running.extend(ops)
        dj.ops_recorded += len(ops)

    @property
    def sync_commit(self) -> bool:
        """Ablation A2: commit every op immediately (no 1 s compounding)."""
        return self.params.journal_commit_interval <= 0

    def is_dirty(self, dir_ino: int) -> bool:
        dj = self.journals.get(self._journal_key(dir_ino))
        return bool(dj and (dj.running or dj.pending_seqs))

    def new_txid(self) -> str:
        self._txn_counter += 1
        return f"{self.client_name}-{self._txn_counter:08d}"

    def _note_ckpt_fanout(self, n_ops: int) -> None:
        if n_ops > 1:
            self._c_ckpt_batches.inc()
            self._c_ckpt_batched_ops.inc(n_ops)
            self._g_ckpt_batch.track(n_ops)
        else:
            self._c_ckpt_serial_ops.inc(n_ops)

    # -- commit / checkpoint ------------------------------------------------------

    def _fence_check(self, dir_ino: int):
        """Epoch fence at the journal stream head (cluster mode only).

        Returns the commit's fencing token (``None`` when fencing is off).
        Raises :class:`StaleEpochError` when a newer authority has been
        granted for the directory — the caller's buffered state is a
        zombie's and must not land."""
        if self.fencing is None:
            return None
        token = self.token_of(dir_ino) if self.token_of is not None else (0, 0)
        if self.fencing_enforce and not self.fencing.admit(dir_ino, token):
            raise StaleEpochError(
                f"dir {dir_ino:x}",
                f"commit token {token} below granted authority")
        return token

    def _commit_locked(self, dj: _DirJournal) -> SimGen:
        """Running txn -> durable journal object (the commit thread's job)."""
        if not dj.running:
            return
        token = self._fence_check(dj.dir_ino)
        sp = _span(self.sim, "journal.commit", "journal")
        try:
            ops, dj.running = dj.running, []
            covered = dj.ops_recorded  # everything recorded so far is in ops
            seq = dj.next_seq
            dj.next_seq += 1
            txn = Transaction(self.new_txid(), dj.dir_ino, "update",
                              _coalesce(ops))
            raw = txn.to_bytes()
            jkey = self.prt.key_journal(dj.dir_ino, seq)
            yield from self._retry.call(
                lambda: self.prt.store.put(jkey, raw, src=self.node))
        finally:
            sp.close()
        dj.pending_seqs.append(seq)
        dj.ops_committed = covered
        self._c_commits.inc()
        if self.fencing is not None:
            # Independent audit: every commit that actually landed reports
            # its token, whether or not enforcement was consulted.
            self.fencing.audit_commit(dj.dir_ino, token)
        rec = self.sim._recorder
        if rec is not None:
            rec.record("journal.commit", dir=dj.dir_ino, seq=seq,
                       ops=len(ops))
        self._checkpoint_txns[(dj.dir_ino, seq)] = txn

    def _checkpoint_locked(self, dj: _DirJournal) -> SimGen:
        """Apply committed txns to the base objects and invalidate them
        (the checkpoint thread's job), oldest first."""
        while dj.pending_seqs:
            seq = dj.pending_seqs[0]
            txn = self._checkpoint_txns.get((dj.dir_ino, seq))
            if txn is None:
                break
            sp = _span(self.sim, "journal.ckpt", "journal")
            try:
                n = yield from self._retry.call(
                    lambda: apply_ops(self.prt, txn.ops, src=self.node))
                self._note_ckpt_fanout(n)
                # The invalidating DELETE must stick: a silently-skipped one
                # leaves a stale journal object that a later leader (whose
                # seq counter restarts at 0) would replay over newer state.
                # Transient failures are retried; only true absence passes.
                try:
                    yield from self._retry.call(
                        lambda: self.prt.store.delete(
                            self.prt.key_journal(dj.dir_ino, seq),
                            src=self.node))
                except NoSuchKey:
                    pass
            finally:
                sp.close()
            dj.pending_seqs.pop(0)
            del self._checkpoint_txns[(dj.dir_ino, seq)]
            self._c_checkpoints.inc()

    def _discard_fenced(self, dj: _DirJournal) -> None:
        """A fenced-out journal stream is a zombie's: its never-acknowledged
        buffered ops are dropped and the journal forgotten — the same
        outcome as the leader having crashed, which semantically it has.
        Already-durable journal objects stay on storage for the new
        authority's replay."""
        dj.running.clear()
        dj.ops_committed = dj.ops_recorded
        for seq in dj.pending_seqs:
            self._checkpoint_txns.pop((dj.dir_ino, seq), None)
        dj.pending_seqs.clear()
        self.journals.pop(dj.dir_ino, None)
        rec = self.sim._recorder
        if rec is not None:
            rec.record("journal.fenced", dir=dj.dir_ino)

    def _commit_and_checkpoint(self, dj: _DirJournal) -> SimGen:
        req = yield from self._acquire(dj.commit_lock)
        try:
            yield from self._commit_locked(dj)
        except StaleEpochError:
            # Background commit raced a takeover: a newer authority exists
            # for this directory (our lease has lapsed). Drop the stream.
            self._discard_fenced(dj)
        finally:
            dj.commit_lock.release(req)
        yield from self._bg_checkpoint(dj)

    def _bg_checkpoint(self, dj: _DirJournal) -> SimGen:
        req = yield from self._acquire(dj.ckpt_lock)
        try:
            yield from self._checkpoint_locked(dj)
        finally:
            dj.ckpt_lock.release(req)

    def flush(self, dir_ino: int, full: bool = False) -> SimGen:
        """Make a directory's modifications durable (fsync semantics).

        Committing the compound transaction to the journal object is all
        durability requires; the checkpoint to base objects proceeds in the
        background unless ``full=True`` (lease hand-off / release, which
        must leave the journal empty)."""
        dj = self.journals.get(self._journal_key(dir_ino))
        if dj is None:
            return
        # Group commit: this flush is satisfied once every op recorded
        # before it was issued is durable. While another flush's commit is
        # in flight, wait on the lock and re-check — a burst of concurrent
        # fsyncs on one directory shares one or two journal PUTs instead of
        # serializing one PUT each.
        target = dj.ops_recorded
        while dj.ops_committed < target:
            req = yield from self._acquire(dj.commit_lock)
            try:
                if dj.ops_committed < target:
                    yield from self._commit_locked(dj)
            finally:
                dj.commit_lock.release(req)
        if full:
            yield from self._bg_checkpoint(dj)
        elif dj.pending_seqs:
            self.sim.process(self._bg_checkpoint(dj),
                             name=f"ckpt:{dj.dir_ino:x}")

    def flush_all(self, full: bool = False) -> SimGen:
        """Flush every journal; directories flush in parallel — that is the
        point of per-directory journaling ("multiple journals allow
        parallel commits")."""
        dirs = list(self.journals)
        if not dirs:
            return
        if len(dirs) == 1:
            yield from self.flush(dirs[0], full=full)
            return
        procs = [self.sim.process(self.flush(d, full=full),
                                  name=f"flush:{d:x}") for d in dirs]
        yield self.sim.all_of(procs)

    def drop(self, dir_ino: int) -> None:
        """Forget a (fully flushed) journal, e.g. after releasing the lease."""
        if self.params.single_journal:
            return  # the shared journal outlives individual directories
        dj = self.journals.pop(dir_ino, None)
        if dj is not None and (dj.running or dj.pending_seqs):
            raise RuntimeError("dropping a dirty journal")

    # -- two-phase commit (cross-directory RENAME) ----------------------------------

    def prepare(self, dir_ino: int, txid: str, ops: List[JournalOp],
                decision_key: str) -> SimGen:
        """Force-commit a PREPARE transaction for this participant.

        Returns the journal seq so the participant can finish it later.
        Any buffered running ops are committed first to preserve ordering.
        """
        dj = self.journal_for(dir_ino)
        yield from self._commit_and_checkpoint(dj)  # drain older state
        req = yield from self._acquire(dj.commit_lock)
        try:
            token = self._fence_check(dir_ino)
            seq = dj.next_seq
            dj.next_seq += 1
            txn = Transaction(txid, dir_ino, "prepare", _coalesce(ops),
                              decision_key=decision_key)
            raw = txn.to_bytes()
            jkey = self.prt.key_journal(dir_ino, seq)
            yield from self._retry.call(
                lambda: self.prt.store.put(jkey, raw, src=self.node))
            self._c_commits.inc()
            if self.fencing is not None:
                self.fencing.audit_commit(dir_ino, token)
            return seq
        finally:
            dj.commit_lock.release(req)

    def finish_prepared(self, dir_ino: int, seq: int, ops: List[JournalOp],
                        commit: bool) -> SimGen:
        """Checkpoint (commit=True) or discard (commit=False) a prepared txn."""
        dj = self.journal_for(dir_ino)
        req = yield from self._acquire(dj.ckpt_lock)
        try:
            if commit:
                n = yield from self._retry.call(
                    lambda: apply_ops(self.prt, ops, src=self.node))
                self._note_ckpt_fanout(n)
                self._c_checkpoints.inc()
            try:
                yield from self._retry.call(
                    lambda: self.prt.store.delete(
                        self.prt.key_journal(dir_ino, seq), src=self.node))
            except NoSuchKey:
                pass
        finally:
            dj.ckpt_lock.release(req)
